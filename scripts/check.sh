#!/usr/bin/env bash
# The full offline gate: release build, tests, lints, engine bench.
# Runs with zero network access and zero external crates.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --workspace --offline

echo "== test (offline) =="
cargo test -q --workspace --offline

echo "== clippy (-D warnings) =="
cargo clippy --all-targets --offline -- -D warnings

echo "== lint (netfi-lint workspace invariants) =="
./target/release/netfi-lint .

echo "== engine bench =="
./target/release/bench_engine --sim-ms 2000 --samples 9 --campaigns 0 \
    --out target/BENCH_engine.json
echo "summary: target/BENCH_engine.json"
cat target/BENCH_engine.json

echo "== obs overhead gate =="
./target/release/bench_obs --sim-ms 2000 --samples 5 \
    --baseline target/BENCH_engine.json --min-ratio 0.8 \
    --out target/BENCH_obs.json
echo "summary: target/BENCH_obs.json"
cat target/BENCH_obs.json
