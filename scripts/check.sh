#!/usr/bin/env bash
# The full offline gate: release build, tests, lints, engine bench.
# Runs with zero network access and zero external crates.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --workspace --offline

echo "== test (offline) =="
cargo test -q --workspace --offline

echo "== clippy (-D warnings) =="
cargo clippy --all-targets --offline -- -D warnings

echo "== rustdoc (warning-free, missing_docs denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

echo "== lint (netfi-lint workspace invariants, structural rules) =="
# One structural pass covers the per-line rules plus fork-completeness,
# dead-suppression and relaxed-atomic; a non-zero exit on any of them
# fails the gate here (set -e). The JSON artifact is what CI tooling
# consumes; the text run above it is for humans reading the log. The
# suppression-budget ratchet itself lives in
# crates/lint/tests/workspace_clean.rs, already enforced by the test
# stage above. The analyzer indexes every workspace source on each run,
# so its wall time is recorded — it must stay instant-feeling.
lint_start=$(date +%s%N)
./target/release/netfi-lint .
./target/release/netfi-lint --format json . > target/LINT.json
lint_end=$(date +%s%N)
awk -v s="$lint_start" -v e="$lint_end" \
    'BEGIN { printf "lint wall time: %.3f s (two full scans)\n", (e - s) / 1e9 }'
# Artifact sanity: the JSON names the three structural rules' scan (a
# clean report still carries files/suppressions/violations keys).
for key in files suppressions violations; do
    grep -q "\"$key\"" target/LINT.json || {
        echo "target/LINT.json is missing the \"$key\" key"
        exit 1
    }
done
echo "artifact: target/LINT.json"

echo "== engine bench =="
# 31 samples: throughput is min-of-samples, and on a shared box the min
# needs a wide net to dodge scheduler-noise phases (each sample is ~5 ms).
./target/release/bench_engine --sim-ms 2000 --samples 31 --campaigns 0 \
    --out target/BENCH_engine.json
echo "summary: target/BENCH_engine.json"
cat target/BENCH_engine.json

echo "== engine bench regression gate =="
# The committed BENCH_engine.json is the reference: a run must sustain at
# least 0.9x its events/sec. The slack absorbs scheduler noise, and the
# retries absorb sustained slow phases (shared hosts dip 20-30% for
# minutes at a time, e.g. right after the build above) — a genuine
# regression fails every attempt. When a change makes the engine faster,
# refresh the committed file in the same PR so the gate ratchets forward.
extract() { awk -F'"'"$2"'": ' '/"'"$2"'"/ { gsub(/[,}].*/, "", $2); print $2 }' "$1"; }
committed=$(extract BENCH_engine.json events_per_sec)
gate_ok=0
for attempt in 1 2 3; do
    current=$(extract target/BENCH_engine.json events_per_sec)
    if awk -v c="$current" -v b="$committed" -v a="$attempt" 'BEGIN {
        ratio = c / b
        printf "attempt %s: committed %.0f ev/s, this run %.0f (%.2fx)\n", a, b, c, ratio
        if (ratio > 1.1) {
            print "note: >1.1x the committed number — refresh BENCH_engine.json in this PR"
        }
        exit !(ratio >= 0.9)
    }'; then
        gate_ok=1
        break
    fi
    if [ "$attempt" -lt 3 ]; then
        echo "below 0.9x — letting the machine settle, then retrying"
        sleep 15
        ./target/release/bench_engine --sim-ms 2000 --samples 31 --campaigns 0 \
            --out target/BENCH_engine.json > /dev/null
    fi
done
if [ "$gate_ok" -ne 1 ]; then
    echo "REGRESSION: engine throughput stayed below 0.9x the committed BENCH_engine.json"
    echo "(if the machine is busy, re-run on an idle box before reverting anything)"
    exit 1
fi

echo "== fabric scaling gate =="
# The scaling curve's schema: every committed size must carry its full
# key block (throughput, digest, shard count, both sharded rates). The
# digests themselves are cross-checked in-run by bench_engine (serial vs
# sharded at every size) and pinned for 10/100 hosts in
# tests/determinism.rs, so presence is what's validated here.
for n in 10 100 1000; do
    for key in fabric_${n}_hosts fabric_${n}_shards fabric_${n}_events \
        fabric_${n}_events_per_sec fabric_${n}_ns_per_event fabric_${n}_digest \
        fabric_${n}_sharded_w1_events_per_sec fabric_${n}_sharded_events_per_sec; do
        grep -q "\"$key\"" target/BENCH_engine.json || {
            echo "target/BENCH_engine.json is missing the \"$key\" key"
            exit 1
        }
    done
done
# With real cores to spread windows on, the sharded executor must not
# lose to serial at the 1,000-host size (it already wins on one core
# there — per-shard locality — so this is a conservative floor). On a
# single-core runner the comparison measures nothing but round
# overhead; the gate stays dormant.
cores=$(extract target/BENCH_engine.json cores)
fabric_serial=$(extract target/BENCH_engine.json fabric_1000_events_per_sec)
fabric_sharded=$(extract target/BENCH_engine.json fabric_1000_sharded_events_per_sec)
if [ "$cores" -ge 2 ]; then
    if ! awk -v s="$fabric_serial" -v p="$fabric_sharded" 'BEGIN {
        printf "fabric 1000 hosts: serial %.0f ev/s, sharded %.0f ev/s (%.2fx)\n", s, p, p / s
        exit !(p >= s)
    }'; then
        echo "REGRESSION: sharded fabric ran slower than serial on a ${cores}-core runner"
        exit 1
    fi
else
    awk -v s="$fabric_serial" -v p="$fabric_sharded" 'BEGIN {
        printf "fabric 1000 hosts: serial %.0f ev/s, sharded %.0f ev/s (%.2fx) — single core, gate dormant\n", s, p, p / s
    }'
fi

echo "== campaign bench (serial vs parallel, determinism cross-check) =="
./target/release/bench_campaign --suite-seeds 2 \
    --out target/BENCH_campaign.json
echo "summary: target/BENCH_campaign.json"
cat target/BENCH_campaign.json

echo "== fork-grid gate (snapshot/fork bit-identity + amortization) =="
# Two promises, both hard-failed here. Correctness: the fork-vs-fresh
# tests pin a forked engine's exports against the same golden hashes a
# fresh run carries. Performance: the fork grid exists to delete N-1
# warm-ups, so its wall time may never exceed the fresh grid's (both were
# just measured by bench_campaign above).
cargo test -q --release --offline --test determinism fork
fork_wall=$(extract target/BENCH_campaign.json fork_grid_wall_secs)
fresh_wall=$(extract target/BENCH_campaign.json fresh_grid_wall_secs)
if ! awk -v fork="$fork_wall" -v fresh="$fresh_wall" 'BEGIN {
    printf "fork grid %.2f s vs fresh grid %.2f s (%.2fx)\n", fork, fresh, fresh / fork
    exit !(fork <= fresh)
}'; then
    echo "REGRESSION: the fork grid ran slower than per-spec fresh warm-ups"
    exit 1
fi

echo "== sampled injection campaign gate =="
# The statistical sampler's two promises, hard-failed here. Determinism:
# bench_injections itself asserts byte-identical campaigns at workers
# 1/2/8, and the fingerprint must match the committed artifact exactly —
# same seed, same points, same bytes, on any box. Throughput: the
# sampled rate must sustain 0.9x the committed injections/sec, same
# retry discipline as the engine gate.
./target/release/bench_injections --points 2048 --seed 11 \
    --out target/BENCH_injections.json
echo "summary: target/BENCH_injections.json"
cat target/BENCH_injections.json
for key in injections_per_sec fingerprint \
    masked corrupted_delivered detected_crc detected_timeout hang \
    dir_breakdown control_swap_breakdown dir_a dir_b gap_to_idle; do
    grep -q "\"$key\"" target/BENCH_injections.json || {
        echo "target/BENCH_injections.json is missing the \"$key\" key"
        exit 1
    }
done
committed_fp=$(extract BENCH_injections.json fingerprint)
current_fp=$(extract target/BENCH_injections.json fingerprint)
if [ "$committed_fp" != "$current_fp" ]; then
    echo "DETERMINISM BREAK: campaign fingerprint $current_fp != committed $committed_fp"
    echo "(if a change legitimately altered sampled behaviour, refresh BENCH_injections.json in this PR)"
    exit 1
fi
committed_rate=$(extract BENCH_injections.json injections_per_sec)
gate_ok=0
for attempt in 1 2 3; do
    current_rate=$(extract target/BENCH_injections.json injections_per_sec)
    if awk -v c="$current_rate" -v b="$committed_rate" -v a="$attempt" 'BEGIN {
        ratio = c / b
        printf "attempt %s: committed %.0f inj/s, this run %.0f (%.2fx)\n", a, b, c, ratio
        if (ratio > 1.1) {
            print "note: >1.1x the committed number — refresh BENCH_injections.json in this PR"
        }
        exit !(ratio >= 0.9)
    }'; then
        gate_ok=1
        break
    fi
    if [ "$attempt" -lt 3 ]; then
        echo "below 0.9x — letting the machine settle, then retrying"
        sleep 15
        ./target/release/bench_injections --points 2048 --seed 11 \
            --out target/BENCH_injections.json > /dev/null
    fi
done
if [ "$gate_ok" -ne 1 ]; then
    echo "REGRESSION: sampled injection throughput stayed below 0.9x the committed BENCH_injections.json"
    echo "(if the machine is busy, re-run on an idle box before reverting anything)"
    exit 1
fi

echo "== detection campaign gate =="
# The failure-analysis layer's promise, hard-failed here. bench_detect
# itself asserts the campaign is byte-identical at workers 1/2/4 (plus
# the widest count the box offers); on top of that the fingerprint must
# match the committed artifact exactly — the φ-accrual math is SimTime
# fixed-point and the fault schedule is seeded, so the same spec list
# produces the same bytes on any machine. No throughput ratchet: the
# campaign is latency-study machinery, not a speed benchmark.
./target/release/bench_detect --hosts 100 \
    --out target/BENCH_detect.json
echo "summary: target/BENCH_detect.json"
cat target/BENCH_detect.json
for key in fingerprint scenarios agreement_permille \
    theta2_samples theta2_p50_us theta2_missed theta2_false_alarms \
    theta2_baseline_false_alarms \
    theta5_p50_us theta5_false_alarms theta8_p50_us theta8_false_alarms \
    spof_count diameter redundancy_milli health; do
    grep -q "\"$key\"" target/BENCH_detect.json || {
        echo "target/BENCH_detect.json is missing the \"$key\" key"
        exit 1
    }
done
committed_fp=$(extract BENCH_detect.json fingerprint)
current_fp=$(extract target/BENCH_detect.json fingerprint)
if [ "$committed_fp" != "$current_fp" ]; then
    echo "DETERMINISM BREAK: detection fingerprint $current_fp != committed $committed_fp"
    echo "(if a change legitimately altered detection behaviour, refresh BENCH_detect.json in this PR)"
    exit 1
fi

echo "== obs overhead gate =="
./target/release/bench_obs --sim-ms 2000 --samples 5 \
    --baseline target/BENCH_engine.json --min-ratio 0.8 \
    --out target/BENCH_obs.json
echo "summary: target/BENCH_obs.json"
cat target/BENCH_obs.json
