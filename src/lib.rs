//! `netfi` — umbrella crate for the reproduction of *"An Adaptive
//! Architecture for Monitoring and Failure Analysis of High-Speed Networks"*
//! (Floering, Brothers, Kalbarczyk, Iyer — DSN 2002).
//!
//! This crate re-exports every `netfi` sub-crate under one roof so examples
//! and downstream users can depend on a single package:
//!
//! - [`sim`] — deterministic discrete-event kernel.
//! - [`phy`] — physical-layer substrate (Myrinet symbols, links, 8b/10b,
//!   UART/SPI).
//! - [`myrinet`] — the Myrinet network simulator (packets, switches, slack
//!   buffers, flow control, mapping).
//! - [`fc`] — the Fibre Channel substrate.
//! - [`injector`] — **the paper's contribution**: the in-line adaptive
//!   monitoring and fault-injection device.
//! - [`netstack`] — UDP/addressing/workloads on simulated hosts.
//! - [`nftape`] — the campaign management framework.
//! - [`obs`] — deterministic observability: spans, metrics, flight
//!   recording and failure-analysis exports.
//! - [`sample`] — statistical fault-injection sampling: drawn injection
//!   points, outcome taxonomy and coverage intervals.
//! - [`detect`] — failure *analysis*: φ-accrual failure detectors over
//!   heartbeat streams and SPOF topology analytics over generated fabrics.
//!
//! See the repository README for a quickstart and DESIGN.md for the system
//! inventory.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub use netfi_core as injector;
pub use netfi_detect as detect;
pub use netfi_fc as fc;
pub use netfi_myrinet as myrinet;
pub use netfi_netstack as netstack;
pub use netfi_nftape as nftape;
pub use netfi_obs as obs;
pub use netfi_phy as phy;
pub use netfi_sample as sample;
pub use netfi_sim as sim;
