//! The injector core is media-agnostic (§2 footnote 1, §3.4 footnote 3):
//! these tests push both Myrinet packets and Fibre Channel frames through
//! the *same* `FifoInjector` datapath and verify each medium's own
//! protection (CRC-8 vs CRC-32 + 8b/10b) reacts as the paper describes.

// Tests and examples may unwrap: a failed assertion here is the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use netfi::fc::frame::{decode_line, FcAddress, FcError, FcFrame, OrderedSet};
use netfi::injector::config::InjectorConfig;
use netfi::injector::{FifoInjector, MatchMode};
use netfi::myrinet::packet::{route_to_host, Packet, PacketType};
use netfi::phy::b8b10::{Byte8, Decoder, Encoder};

fn shared_core() -> FifoInjector {
    FifoInjector::new(
        InjectorConfig::builder()
            .match_mode(MatchMode::On)
            .compare(u32::from_be_bytes(*b"BEEF"), 0xFFFF_FFFF)
            .corrupt_toggle(0x0000_0001)
            .build(),
    )
}

#[test]
fn same_core_corrupts_myrinet_and_fc() {
    let mut core = shared_core();

    // Myrinet side: the CRC-8 catches the flip.
    let pkt = Packet::new(
        vec![route_to_host(1)],
        PacketType::DATA,
        b"feed me BEEF today".to_vec(),
    );
    let mut wire = pkt.encode();
    let report = core.process_packet(&mut wire);
    assert_eq!(report.injected_offsets.len(), 1);
    assert!(Packet::parse_delivered(&wire).is_err(), "CRC-8 must fail");

    // Fibre Channel side: the CRC-32 catches the same flip.
    let frame = FcFrame::data(
        FcAddress::new(1),
        FcAddress::new(2),
        0,
        b"feed me BEEF today".to_vec(),
    );
    let mut body = frame.body();
    let report = core.process_packet(&mut body);
    assert_eq!(report.injected_offsets.len(), 1);

    let mut enc = Encoder::new();
    let mut chars: Vec<Byte8> = Vec::new();
    chars.extend(OrderedSet::Sof(frame.sof).chars());
    chars.extend(body.iter().map(|&b| Byte8::Data(b)));
    chars.extend(OrderedSet::Eof(frame.eof).chars());
    let line: Vec<u16> = chars.into_iter().map(|c| enc.push(c).unwrap()).collect();
    let mut dec = Decoder::new();
    assert_eq!(decode_line(&line, &mut dec), Err(FcError::BadCrc));

    assert_eq!(core.stats().packets, 2);
    assert_eq!(core.stats().injections, 2);
}

#[test]
fn fc_line_code_detects_raw_10bit_corruption() {
    // Corrupting below the 8b/10b boundary (which the real device cannot
    // do — it sits behind the PHY) is caught even earlier, by the line
    // code itself.
    let frame = FcFrame::data(FcAddress::new(1), FcAddress::new(2), 0, vec![0xAA; 32]);
    let mut enc = Encoder::new();
    let mut line = frame.to_line(&mut enc).unwrap();
    // All-zeros is never a valid transmission character. (Note that the
    // bitwise complement of a valid codeword is often the same character's
    // opposite-disparity encoding, which would decode cleanly!)
    line[12] = 0;
    let mut dec = Decoder::new();
    assert!(matches!(
        decode_line(&line, &mut dec),
        Err(FcError::LineCode) | Err(FcError::Framing)
    ));
}

#[test]
fn passthrough_core_preserves_both_media() {
    let mut core = FifoInjector::new(InjectorConfig::passthrough());

    let pkt = Packet::new(vec![route_to_host(2)], PacketType::DATA, b"clean".to_vec());
    let mut wire = pkt.encode();
    let orig = wire.clone();
    assert!(!core.process_packet(&mut wire).injected());
    assert_eq!(wire, orig);
    assert!(Packet::parse_delivered(&wire).is_ok());

    let frame = FcFrame::data(FcAddress::new(3), FcAddress::new(4), 1, b"clean".to_vec());
    let mut body = frame.body();
    let orig = body.clone();
    assert!(!core.process_packet(&mut body).injected());
    assert_eq!(body, orig);
}
