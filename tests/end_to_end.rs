//! End-to-end integration: the full reproduction stack — hosts, switch,
//! mapping, UDP, the injector device and its serial command protocol —
//! exercised together.

// Tests and examples may unwrap: a failed assertion here is the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use netfi::injector::command::DirSelect;
use netfi::injector::config::InjectorConfig;
use netfi::injector::{Direction, InjectorDevice, MatchMode};
use netfi::myrinet::addr::EthAddr;
use netfi::myrinet::Ev;
use netfi::netstack::{
    build_testbed, Host, HostCmd, TestbedOptions, UdpDatagram, Workload, SINK_PORT,
};
use netfi::nftape::runner::program_injector;
use netfi::phy::ControlSymbol;
use netfi::sim::{SimDuration, SimTime};

#[test]
fn mapping_traffic_and_injection_interact_correctly() {
    let mut tb = build_testbed(
        TestbedOptions {
            intercept_host: Some(1),
            ..TestbedOptions::default()
        },
        |i, host: &mut Host| {
            if i == 2 {
                host.add_workload(Workload::Sender {
                    dest: EthAddr::myricom(2),
                    interval: SimDuration::from_ms(5),
                    payload_len: 200,
                    forbidden: vec![],
                    burst: 1,
                });
            }
        },
    ).unwrap();
    let device = tb.injector.unwrap();

    // Phase 1: pass-through. Mapping converges across the device; traffic
    // flows losslessly.
    tb.engine.run_until(SimTime::from_secs(3));
    let h1 = tb.engine.component_as::<Host>(tb.hosts[1]).unwrap();
    let received_clean = h1.rx_count(SINK_PORT);
    assert!(received_clean > 300, "received {received_clean}");
    assert_eq!(h1.udp_stats().rx_checksum_drops, 0);

    // Phase 2: program a payload corruption over the real serial path.
    let config = InjectorConfig::builder()
        .match_mode(MatchMode::On)
        .compare(0x2020_2020, 0xFFFF_FFFF) // four ASCII spaces never occur
        .corrupt_toggle(0xFF00_0000)
        .recompute_crc(false)
        .build();
    let now = tb.engine.now();
    program_injector(&mut tb.engine, device, now, DirSelect::B, &config);
    tb.engine.run_for(SimDuration::from_ms(50));
    let dev = tb
        .engine
        .component_as::<InjectorDevice>(device)
        .unwrap();
    assert_eq!(dev.config_of(Direction::BToA), &config);

    // Phase 3: a crafted datagram containing the victim pattern is CRC-
    // dropped at the NIC; ordinary traffic keeps flowing.
    tb.engine.schedule(
        tb.engine.now(),
        tb.hosts[0],
        Ev::App(Box::new(HostCmd::SendUdp {
            dest: EthAddr::myricom(2),
            datagram: UdpDatagram::new(5, SINK_PORT, b"xx    xx".to_vec()),
        })),
    );
    tb.engine.run_for(SimDuration::from_secs(1));
    let h1 = tb.engine.component_as::<Host>(tb.hosts[1]).unwrap();
    assert_eq!(h1.nic().stats().rx_crc_drops, 1, "victim packet CRC-dropped");
    assert!(h1.rx_count(SINK_PORT) > received_clean, "other traffic flows");
}

#[test]
fn control_symbol_swap_visible_at_flow_control_level() {
    // GO -> STOP across the device: host 1's NIC generates GO after
    // congestion; the device turns it into STOP; the switch's egress sees
    // only STOPs and recovers by timeout.
    let mut tb = build_testbed(
        TestbedOptions {
            intercept_host: Some(1),
            ..TestbedOptions::default()
        },
        |i, host: &mut Host| {
            host.nic_mut().set_rx_params(4608, 3072, 512, 200_000_000);
            if i != 1 {
                host.add_workload(Workload::Sender {
                    dest: EthAddr::myricom(2),
                    interval: SimDuration::from_ms(15),
                    payload_len: 512,
                    forbidden: vec![ControlSymbol::Go.encode(), ControlSymbol::Stop.encode()],
                    burst: 16,
                });
            }
        },
    ).unwrap();
    let device = tb.injector.unwrap();
    tb.engine
        .component_as_mut::<InjectorDevice>(device)
        .unwrap()
        .configure(
            Direction::AToB,
            InjectorConfig::control_swap(ControlSymbol::Go.encode(), ControlSymbol::Stop.encode()),
        );
    tb.engine.run_until(SimTime::from_secs(5));

    let dev = tb.engine.component_as::<InjectorDevice>(device).unwrap();
    assert!(
        dev.fifo_stats(Direction::AToB).control_injections > 0,
        "GO symbols crossed and were corrupted"
    );
    // The network survives: timeouts recover the stopped senders.
    let h1 = tb.engine.component_as::<Host>(tb.hosts[1]).unwrap();
    assert!(h1.rx_count(SINK_PORT) > 100);
}

#[test]
fn statistics_gathering_counts_per_identifier_pairs() {
    let mut tb = build_testbed(
        TestbedOptions {
            intercept_host: Some(2),
            ..TestbedOptions::default()
        },
        |i, host: &mut Host| {
            if i < 2 {
                host.add_workload(Workload::Sender {
                    dest: EthAddr::myricom(3),
                    interval: SimDuration::from_ms(7),
                    payload_len: 64,
                    forbidden: vec![],
                    burst: 1,
                });
            }
        },
    ).unwrap();
    tb.engine.run_until(SimTime::from_secs(3));
    let dev = tb
        .engine
        .component_as::<InjectorDevice>(tb.injector.unwrap())
        .unwrap();
    let stats = dev.channel_stats(Direction::BToA);
    // Both flows' (src, dest) pairs were counted by the monitor.
    let pair_a = (EthAddr::myricom(1), EthAddr::myricom(3));
    let pair_b = (EthAddr::myricom(2), EthAddr::myricom(3));
    assert!(stats.id_counts.get(&pair_a).copied().unwrap_or(0) > 100);
    assert!(stats.id_counts.get(&pair_b).copied().unwrap_or(0) > 100);
    assert!(stats.mapping_packets > 0, "mapping chatter observed too");
}
