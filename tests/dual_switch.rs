//! Multi-switch integration: mapping, routing and injection across a
//! two-switch fabric with the injector on the inter-switch trunk.

// Tests and examples may unwrap: a failed assertion here is the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use netfi::injector::config::InjectorConfig;
use netfi::injector::{DeviceConfig, Direction, InjectorDevice, MatchMode};
use netfi::myrinet::addr::{EthAddr, NodeAddress};
use netfi::myrinet::event::connect;
use netfi::myrinet::interface::InterfaceConfig;
use netfi::myrinet::mapper::Topology;
use netfi::myrinet::{Ev, Switch, SwitchConfig};
use netfi::netstack::{Host, HostCmd, HostConfig, Workload, SINK_PORT};
use netfi::phy::Link;
use netfi::sim::{ComponentId, Engine, SimDuration, SimTime};

struct Fabric {
    engine: Engine<Ev>,
    hosts: Vec<ComponentId>,
    device: ComponentId,
}

fn build(seed: u64) -> Fabric {
    let mut engine: Engine<Ev> = Engine::new();
    let topo = Topology::dual_switch(8, 7, 7);
    let link = Link::myrinet_640(1.0);
    let sw0 = engine.add_component(Box::new(Switch::new("sw0", 8, SwitchConfig::default())));
    let sw1 = engine.add_component(Box::new(Switch::new("sw1", 8, SwitchConfig::default())));
    let device = engine.add_component(Box::new(InjectorDevice::new(DeviceConfig {
        name: "fi-trunk".into(),
        route_bytes_hint: 1,
        capture_capacity: 64,
        traffic_capacity: 256,
    })));
    connect::<Switch, InjectorDevice, _>(&mut engine, (sw0, 7), (device, 0), &link).unwrap();
    connect::<InjectorDevice, Switch, _>(&mut engine, (device, 1), (sw1, 7), &link).unwrap();

    let mut hosts = Vec::new();
    for i in 0..4usize {
        let (sw, port) = if i < 2 { (sw0, i as u8) } else { (sw1, (i - 2) as u8) };
        let attachment = (u8::from(i >= 2), port);
        let iface = InterfaceConfig::new(
            NodeAddress(100 + i as u64),
            EthAddr::myricom(i as u32 + 1),
            attachment,
            topo.clone(),
        );
        let mut host = Host::new(HostConfig::fast(iface, seed.wrapping_add(i as u64)));
        if i == 0 {
            host.add_workload(Workload::Sender {
                dest: EthAddr::myricom(4),
                interval: SimDuration::from_ms(4),
                payload_len: 200,
                forbidden: vec![],
                burst: 1,
            });
        }
        let h = engine.add_component(Box::new(host));
        connect::<Host, Switch, _>(&mut engine, (h, 0), (sw, port), &link).unwrap();
        engine.schedule(SimTime::ZERO, h, Ev::App(Box::new(HostCmd::Start)));
        hosts.push(h);
    }
    Fabric {
        engine,
        hosts,
        device,
    }
}

#[test]
fn mapping_and_data_cross_the_trunk() {
    let mut f = build(1);
    f.engine.run_until(SimTime::from_secs(4));
    // Highest address (host 3, on sw1) maps the whole fabric, across the
    // trunk and through the injector.
    let mapper = f.engine.component_as::<Host>(f.hosts[3]).unwrap();
    assert!(mapper.nic().is_mapper());
    assert_eq!(mapper.nic().last_map().unwrap().node_count(), 4);
    // Host 0's route to host 3 carries the switch-bound byte.
    let h0 = f.engine.component_as::<Host>(f.hosts[0]).unwrap();
    assert_eq!(
        h0.nic().routing_table()[&EthAddr::myricom(4)],
        vec![0x87, 0x01]
    );
    // Data flows (lossless after mapping).
    let h3 = f.engine.component_as::<Host>(f.hosts[3]).unwrap();
    assert!(h3.rx_count(SINK_PORT) > 500);
}

#[test]
fn trunk_injection_corrupts_switch_bound_route_bytes() {
    let mut f = build(2);
    f.engine.run_until(SimTime::from_secs(2));
    let before = f
        .engine
        .component_as::<Host>(f.hosts[3])
        .unwrap()
        .rx_count(SINK_PORT);
    // On the trunk, packets for host 3 start [0x01(final byte for sw1's
    // port 1), type...] — sw0 already stripped the 0x87. Misroute them at
    // the trunk by toggling the port bits (0x01 -> 0x05, unwired).
    let config = InjectorConfig::builder()
        .match_mode(MatchMode::On)
        .compare(0x0100_0000, 0xFFFF_FFFF)
        .corrupt_toggle(0x0400_0000)
        .recompute_crc(true)
        .build();
    f.engine
        .component_as_mut::<InjectorDevice>(f.device)
        .unwrap()
        .configure(Direction::AToB, config);
    f.engine.run_for(SimDuration::from_secs(1));
    let h3 = f.engine.component_as::<Host>(f.hosts[3]).unwrap();
    let during = h3.rx_count(SINK_PORT) - before;
    assert!(
        during < 20,
        "misrouted trunk packets must be lost at sw1 (got {during})"
    );
    // Disarm; traffic resumes after the next mapping round.
    f.engine
        .component_as_mut::<InjectorDevice>(f.device)
        .unwrap()
        .configure(Direction::AToB, InjectorConfig::passthrough());
    let mid = f
        .engine
        .component_as::<Host>(f.hosts[3])
        .unwrap()
        .rx_count(SINK_PORT);
    f.engine.run_for(SimDuration::from_secs(2));
    let h3 = f.engine.component_as::<Host>(f.hosts[3]).unwrap();
    assert!(h3.rx_count(SINK_PORT) > mid + 100, "traffic recovers");
}
