//! Engine-level property tests of the device: a pass-through injector is
//! observationally equivalent to a longer cable, for arbitrary frame
//! sequences.

use std::any::Any;

use proptest::prelude::*;

use netfi::injector::InjectorDevice;
use netfi::myrinet::egress::{split_timer_kind, timer_class, EgressPort};
use netfi::myrinet::event::{connect, Attach, Ev, PortPeer};
use netfi::myrinet::frame::Frame;
use netfi::phy::Link;
use netfi::sim::{Component, Context, Engine, SimTime};

/// Endpoint that transmits queued frames and records arrivals.
struct Probe {
    egress: EgressPort,
    rx: Vec<Frame>,
}

impl Probe {
    fn new() -> Probe {
        Probe {
            egress: EgressPort::new(0),
            rx: Vec::new(),
        }
    }
}

impl Attach for Probe {
    fn attach_port(&mut self, _port: u8, peer: PortPeer) {
        self.egress.attach(peer);
    }
}

impl Component<Ev> for Probe {
    fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
        match ev {
            Ev::Rx { frame, .. } => self.rx.push(frame),
            Ev::Timer { kind, gen } => {
                let (class, _) = split_timer_kind(kind);
                match class {
                    timer_class::TX_DONE => self.egress.on_tx_done(ctx),
                    timer_class::STOP_TIMEOUT => self.egress.on_stop_timeout(ctx, gen),
                    _ => {}
                }
            }
            Ev::App(any) => {
                if let Ok(frame) = any.downcast::<Frame>() {
                    self.egress.enqueue(ctx, *frame);
                }
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 6..64).prop_map(Frame::packet),
        // Only the codes that survive tolerant decoding as STOP/GO would
        // perturb flow control; send packets and GAP/IDLE-ish codes so the
        // sender never pauses and ordering is trivially comparable.
        Just(Frame::Control(0x0C)),
        Just(Frame::Control(0x00)),
    ]
}

fn run(frames: &[Frame], with_device: bool) -> Vec<Frame> {
    let mut engine: Engine<Ev> = Engine::new();
    let a = engine.add_component(Box::new(Probe::new()));
    let b = engine.add_component(Box::new(Probe::new()));
    let link = Link::myrinet_640(1.0);
    if with_device {
        let dev = engine.add_component(Box::new(InjectorDevice::with_name("prop")));
        connect::<Probe, InjectorDevice>(&mut engine, (a, 0), (dev, 0), &link);
        connect::<InjectorDevice, Probe>(&mut engine, (dev, 1), (b, 0), &link);
    } else {
        connect::<Probe, Probe>(&mut engine, (a, 0), (b, 0), &link);
    }
    for (i, frame) in frames.iter().enumerate() {
        engine.schedule(
            SimTime::from_us(i as u64),
            a,
            Ev::App(Box::new(frame.clone())),
        );
    }
    engine.run();
    let mut probe_b: Vec<Frame> = Vec::new();
    std::mem::swap(
        &mut engine
            .component_as_mut::<Probe>(b)
            .expect("probe")
            .rx,
        &mut probe_b,
    );
    probe_b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Pass-through transparency, as a property: for any frame sequence,
    /// the receiver sees exactly the same frames in the same order with
    /// and without the device in the path.
    #[test]
    fn passthrough_device_is_a_longer_cable(
        frames in proptest::collection::vec(arb_frame(), 1..24)
    ) {
        let direct = run(&frames, false);
        let through_device = run(&frames, true);
        prop_assert_eq!(direct.len(), frames.len());
        prop_assert_eq!(direct, through_device);
    }
}
