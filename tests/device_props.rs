//! Engine-level property tests of the device: a pass-through injector is
//! observationally equivalent to a longer cable, for arbitrary frame
//! sequences. Driven by seeded loops over `DetRng` (no external
//! dependencies).

// Tests and examples may unwrap: a failed assertion here is the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::any::Any;

use netfi::injector::InjectorDevice;
use netfi::myrinet::egress::{split_timer_kind, timer_class, EgressPort};
use netfi::myrinet::event::{connect, Attach, Ev, PortPeer};
use netfi::myrinet::frame::Frame;
use netfi::phy::Link;
use netfi::sim::{Component, Context, DetRng, Engine, SimTime};

const CASES: usize = 32;

/// Endpoint that transmits queued frames and records arrivals.
#[derive(Clone)]
struct Probe {
    egress: EgressPort,
    rx: Vec<Frame>,
}

impl Probe {
    fn new() -> Probe {
        Probe {
            egress: EgressPort::new(0),
            rx: Vec::new(),
        }
    }
}

impl Attach for Probe {
    fn attach_port(&mut self, _port: u8, peer: PortPeer) {
        self.egress.attach(peer);
    }
}

impl Component<Ev> for Probe {
    fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
        match ev {
            Ev::Rx { frame, .. } => self.rx.push(frame),
            Ev::Timer { kind, gen } => {
                let (class, _) = split_timer_kind(kind);
                match class {
                    timer_class::TX_DONE => self.egress.on_tx_done(ctx),
                    timer_class::STOP_TIMEOUT => self.egress.on_stop_timeout(ctx, gen),
                    _ => {}
                }
            }
            Ev::App(any) => {
                if let Ok(frame) = any.downcast::<Frame>() {
                    self.egress.enqueue(ctx, *frame);
                }
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn fork(&self) -> Box<dyn Component<Ev>> {
        Box::new(self.clone())
    }
}

fn random_frame(rng: &mut DetRng) -> Frame {
    match rng.gen_index(3) {
        0 => {
            let len = 6 + rng.gen_index(58);
            let mut bytes = vec![0u8; len];
            rng.fill_bytes(&mut bytes);
            Frame::packet(bytes)
        }
        // Only the codes that survive tolerant decoding as STOP/GO would
        // perturb flow control; send packets and GAP/IDLE-ish codes so the
        // sender never pauses and ordering is trivially comparable.
        1 => Frame::Control(0x0C),
        _ => Frame::Control(0x00),
    }
}

fn run(frames: &[Frame], with_device: bool) -> Vec<Frame> {
    let mut engine: Engine<Ev> = Engine::new();
    let a = engine.add_component(Box::new(Probe::new()));
    let b = engine.add_component(Box::new(Probe::new()));
    let link = Link::myrinet_640(1.0);
    if with_device {
        let dev = engine.add_component(Box::new(InjectorDevice::with_name("prop")));
        connect::<Probe, InjectorDevice, _>(&mut engine, (a, 0), (dev, 0), &link).unwrap();
        connect::<InjectorDevice, Probe, _>(&mut engine, (dev, 1), (b, 0), &link).unwrap();
    } else {
        connect::<Probe, Probe, _>(&mut engine, (a, 0), (b, 0), &link).unwrap();
    }
    for (i, frame) in frames.iter().enumerate() {
        engine.schedule(
            SimTime::from_us(i as u64),
            a,
            Ev::App(Box::new(frame.clone())),
        );
    }
    engine.run();
    let mut probe_b: Vec<Frame> = Vec::new();
    std::mem::swap(
        &mut engine.component_as_mut::<Probe>(b).expect("probe").rx,
        &mut probe_b,
    );
    probe_b
}

/// Pass-through transparency, as a property: for any frame sequence, the
/// receiver sees exactly the same frames in the same order with and
/// without the device in the path.
#[test]
fn passthrough_device_is_a_longer_cable() {
    let mut rng = DetRng::new(0xDE71_CE01);
    for _ in 0..CASES {
        let frames: Vec<Frame> = (0..1 + rng.gen_index(23))
            .map(|_| random_frame(&mut rng))
            .collect();
        let direct = run(&frames, false);
        let through_device = run(&frames, true);
        assert_eq!(direct.len(), frames.len());
        assert_eq!(direct, through_device);
    }
}
