//! Integration tests over the campaign scenarios — quick versions of the
//! paper's experiments, asserting the qualitative results the paper
//! reports.

// Tests and examples may unwrap: a failed assertion here is the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use netfi::nftape::scenarios::{address, control, ptype, udpcheck};
use netfi::phy::ControlSymbol;
use netfi::sim::SimDuration;

#[test]
fn table4_stop_row_loses_messages_via_overflow() {
    let opts = control::ControlCampaignOptions {
        window: SimDuration::from_secs(4),
        ..control::ControlCampaignOptions::default()
    };
    let row = control::control_symbol_row(ControlSymbol::Stop, ControlSymbol::Go, &opts).unwrap();
    assert!(row.sent > 1_000);
    assert!(
        row.loss_rate() > 0.02 && row.loss_rate() < 0.30,
        "loss {:.3}",
        row.loss_rate()
    );
    assert!(row.extra("nic_overflow_drops").unwrap_or(0.0) > 0.0);
}

#[test]
fn table4_gap_row_loses_messages_via_framing() {
    let opts = control::ControlCampaignOptions {
        window: SimDuration::from_secs(4),
        ..control::ControlCampaignOptions::default()
    };
    let row = control::control_symbol_row(ControlSymbol::Gap, ControlSymbol::Stop, &opts).unwrap();
    assert!(
        row.loss_rate() > 0.02 && row.loss_rate() < 0.40,
        "loss {:.3}",
        row.loss_rate()
    );
    assert!(row.extra("framing_drops").unwrap() > 0.0);
}

#[test]
fn gap_long_timeout_collapses_throughput_to_near_12_percent() {
    let window = SimDuration::from_secs(5);
    let normal = control::gap_timeout(false, window, 9).unwrap();
    let faulty = control::gap_timeout(true, window, 9).unwrap();
    let ratio = faulty.received as f64 / normal.received.max(1) as f64;
    assert!((0.06..0.20).contains(&ratio), "ratio {ratio:.3}");
    assert!(faulty.extra("long_timeout_releases").unwrap() > 10.0);
    assert_eq!(normal.lost(), 0);
}

#[test]
fn faulty_stop_collapses_request_response_rate() {
    let window = SimDuration::from_secs(5);
    let normal = control::stop_throughput(false, window, 9).unwrap();
    let faulty = control::stop_throughput(true, window, 9).unwrap();
    let ratio = faulty.throughput() / normal.throughput().max(1e-9);
    // Paper: ~10% of normal; we accept the same order of magnitude.
    assert!(ratio < 0.25, "ratio {ratio:.3}");
    assert!(faulty.received > 0, "some messages still complete");
}

#[test]
fn mapping_type_corruption_round_trip() {
    let r = ptype::mapping_packet_corruption(31).unwrap();
    assert_eq!(r.extra("removed"), Some(1.0));
    assert_eq!(r.extra("restored"), Some(1.0));
}

#[test]
fn destination_corruption_caught_by_crc8() {
    let r = address::destination_corruption(33, false).unwrap();
    assert_eq!(r.received, 0);
    assert_eq!(r.extra("received_by_wrong_node"), Some(0.0));
    assert!(r.extra("crc_drops").unwrap() as u64 >= r.sent.saturating_sub(2));
}

#[test]
fn udp_word_swap_reaches_application() {
    let r = udpcheck::aliasing_corruption(35).unwrap();
    assert_eq!(r.received, r.sent);
    assert_eq!(r.extra("delivered_intact"), Some(0.0));
}
