//! The zero-copy acceptance test: an uncorrupted pass-through run must
//! perform **zero** payload-byte copies.
//!
//! Wire images travel the simulated network as [`SharedBytes`] — built
//! once at encode time, then shared by reference count across links,
//! through the injector's pass-through, switch forwarding and capture.
//! Only a copy-on-write materialisation (the injector actually corrupting
//! a frame) copies bytes, and it bumps a process-wide counter.
//!
//! This test lives in its own integration-test binary on purpose: the
//! counter is process-wide, and any concurrently running test that
//! injects faults would bump it.

// Tests and examples may unwrap: a failed assertion here is the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use netfi::injector::InjectorDevice;
use netfi::myrinet::addr::EthAddr;
use netfi::netstack::{build_testbed, Host, TestbedOptions, Workload, SINK_PORT};
use netfi::sim::{SharedBytes, SimDuration, SimTime};

#[test]
fn uncorrupted_pass_through_copies_no_payload_bytes() {
    let mut tb = build_testbed(
        TestbedOptions {
            intercept_host: Some(1),
            seed: 12345,
            paper_era_hosts: true,
            ..TestbedOptions::default()
        },
        |i, host: &mut Host| {
            if i == 0 {
                host.add_workload(Workload::Sender {
                    dest: EthAddr::myricom(2),
                    interval: SimDuration::from_ms(3),
                    payload_len: 256,
                    forbidden: vec![],
                    burst: 2,
                });
            }
            if i == 2 {
                host.add_workload(Workload::Flood {
                    peer: EthAddr::myricom(1),
                    payload_len: 64,
                    timeout: SimDuration::from_ms(10),
                });
            }
        },
    ).unwrap();

    let before = SharedBytes::copy_count();
    tb.engine.run_until(SimTime::from_secs(2));
    let after = SharedBytes::copy_count();

    // The run did real work…
    assert!(tb.engine.events_processed() > 10_000);
    let h1 = tb.engine.component_as::<Host>(tb.hosts[1]).unwrap();
    assert!(h1.rx_count(SINK_PORT) > 100, "sink got {}", h1.rx_count(SINK_PORT));
    let dev = tb
        .engine
        .component_as::<InjectorDevice>(tb.injector.unwrap())
        .unwrap();
    use netfi::injector::Direction;
    // The sender's stream (plus mapping traffic) crosses the intercepted
    // link; the flood exercises the switch on the other ports.
    let through_device = dev.channel_stats(Direction::AToB).packets
        + dev.channel_stats(Direction::BToA).packets;
    assert!(through_device > 500, "device saw {through_device} packets");

    // …and not one payload byte was copied along the way.
    assert_eq!(after - before, 0, "copy-on-write fired on a clean run");
}
