//! Engine-level Fibre Channel: two N_Ports exchanging class-3 frames and
//! R_RDY credits across the injector device — the board's second medium
//! (§3.4), exercised through the same event engine, links and device as
//! Myrinet.
//!
//! FC frame bodies travel as packet frames; the R_RDY primitive travels as
//! a control character whose code (0x95, the first data character of the
//! R_RDY ordered set) is not a Myrinet control symbol, so the device
//! forwards it untouched unless a campaign targets it.

// Tests and examples may unwrap: a failed assertion here is the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::any::Any;
use std::collections::VecDeque;

use netfi::fc::frame::{FcAddress, FcFrame};
use netfi::fc::NPort;
use netfi::injector::config::InjectorConfig;
use netfi::injector::{Direction, InjectorDevice, MatchMode};
use netfi::myrinet::egress::{split_timer_kind, timer_class, EgressPort};
use netfi::myrinet::event::{connect, Attach, Ev, PortPeer};
use netfi::myrinet::frame::Frame;
use netfi::phy::Link;
use netfi::sim::{Component, ComponentId, Context, Engine, SimDuration, SimTime};

/// The on-wire code used for the R_RDY primitive in this harness.
const R_RDY_CODE: u8 = 0x95;

/// An FC endpoint: an N_Port with credit flow control over the engine.
#[derive(Clone)]
struct FcEndpoint {
    port: NPort,
    egress: EgressPort,
    to_send: VecDeque<FcFrame>,
    delivered: Vec<FcFrame>,
    crc_rejects: u64,
}

impl FcEndpoint {
    fn new(bb_credit: u32) -> FcEndpoint {
        FcEndpoint {
            port: NPort::new(bb_credit),
            egress: EgressPort::new(0),
            to_send: VecDeque::new(),
            delivered: Vec::new(),
            crc_rejects: 0,
        }
    }

    fn push_releases(&mut self, ctx: &mut Context<'_, Ev>, released: Vec<FcFrame>) {
        for frame in released {
            self.egress.enqueue(ctx, Frame::packet(frame.body()));
        }
    }
}

impl Attach for FcEndpoint {
    fn attach_port(&mut self, _port: u8, peer: PortPeer) {
        self.egress.attach(peer);
    }
}

#[derive(Clone)]
enum Cmd {
    Queue(Vec<FcFrame>),
}

impl Component<Ev> for FcEndpoint {
    fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
        match ev {
            Ev::Rx { frame, .. } => match frame {
                Frame::Packet(pf) => {
                    // Body integrity first (the line code is behind the
                    // PHY in this harness; the CRC-32 travels in-body).
                    if !netfi::fc::crc32::verify(&pf.bytes) {
                        self.crc_rejects += 1;
                        return;
                    }
                    let header: [u8; 24] =
                        pf.bytes[..24].try_into().expect("header present");
                    let rx = FcFrame {
                        sof: netfi::fc::frame::Sof::Normal3,
                        header: netfi::fc::frame::FcHeader::decode(&header),
                        payload: pf.bytes.slice(24..pf.bytes.len() - 4),
                        eof: netfi::fc::frame::Eof::Normal,
                    };
                    if self.port.receive(rx) {
                        // Host drains immediately; the freed buffer owes an
                        // R_RDY to the sender.
                        if let Some(frame) = self.port.deliver() {
                            self.delivered.push(frame);
                        }
                        self.egress.enqueue_control(ctx, R_RDY_CODE);
                    }
                }
                Frame::Control(code) if code == R_RDY_CODE => {
                    let released = self.port.on_r_rdy();
                    self.push_releases(ctx, released);
                }
                Frame::Control(_) => {}
            },
            Ev::Timer { kind, gen } => {
                let (class, _) = split_timer_kind(kind);
                match class {
                    timer_class::TX_DONE => self.egress.on_tx_done(ctx),
                    timer_class::STOP_TIMEOUT => self.egress.on_stop_timeout(ctx, gen),
                    _ => {}
                }
            }
            Ev::App(any) => {
                if let Ok(cmd) = any.downcast::<Cmd>() {
                    let Cmd::Queue(frames) = *cmd;
                    self.to_send.extend(frames);
                    while let Some(frame) = self.to_send.pop_front() {
                        let released = self.port.send(frame);
                        self.push_releases(ctx, released);
                    }
                }
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn fork(&self) -> Box<dyn Component<Ev>> {
        Box::new(self.clone())
    }
}

fn build(bb_credit: u32) -> (Engine<Ev>, ComponentId, ComponentId, ComponentId) {
    let mut engine: Engine<Ev> = Engine::new();
    let a = engine.add_component(Box::new(FcEndpoint::new(bb_credit)));
    let b = engine.add_component(Box::new(FcEndpoint::new(bb_credit)));
    let dev = engine.add_component(Box::new(InjectorDevice::with_name("fc-fi")));
    let link = Link::fibre_channel(5.0);
    connect::<FcEndpoint, InjectorDevice, _>(&mut engine, (a, 0), (dev, 0), &link).unwrap();
    connect::<InjectorDevice, FcEndpoint, _>(&mut engine, (dev, 1), (b, 0), &link).unwrap();
    (engine, a, b, dev)
}

fn frames(n: u16) -> Vec<FcFrame> {
    (0..n)
        .map(|seq| {
            FcFrame::data(
                FcAddress::new(0x020202),
                FcAddress::new(0x010101),
                seq,
                format!("fc payload {seq}").into_bytes(),
            )
        })
        .collect()
}

#[test]
fn credit_paced_transfer_through_passthrough_device() {
    let (mut engine, a, b, _) = build(2);
    let sent = frames(20);
    engine.schedule(SimTime::ZERO, a, Ev::App(Box::new(Cmd::Queue(sent.clone()))));
    engine.run_until(SimTime::from_ms(10));
    let eb = engine.component_as::<FcEndpoint>(b).unwrap();
    assert_eq!(eb.delivered.len(), 20, "all frames arrive");
    // The SOF/EOF delimiters are not carried through this harness (only
    // the body is), so compare headers and payloads.
    for (rx, tx) in eb.delivered.iter().zip(&sent) {
        assert_eq!(rx.header, tx.header, "in order, intact");
        assert_eq!(rx.payload, tx.payload);
    }
    assert_eq!(eb.crc_rejects, 0);
    // Credit conservation held throughout: the sender never had more than
    // BB_Credit frames outstanding (checked inside NPort), and ends full.
    let ea = engine.component_as::<FcEndpoint>(a).unwrap();
    assert_eq!(ea.port.credits(), 2);
    assert_eq!(ea.port.tx_backlog(), 0);
}

#[test]
fn injector_corrupts_fc_payload_and_crc32_catches_it() {
    let (mut engine, a, b, dev) = build(4);
    engine
        .component_as_mut::<InjectorDevice>(dev)
        .unwrap()
        .configure(
            Direction::AToB,
            InjectorConfig::builder()
                .match_mode(MatchMode::Once)
                .compare(u32::from_be_bytes(*b"fc p"), 0xFFFF_FFFF)
                .corrupt_toggle(0x0000_2000)
                .recompute_crc(false) // the device's CRC-8 fixer is the wrong code anyway
                .build(),
        );
    engine.schedule(SimTime::ZERO, a, Ev::App(Box::new(Cmd::Queue(frames(10)))));
    engine.run_until(SimTime::from_ms(10));
    let eb = engine.component_as::<FcEndpoint>(b).unwrap();
    assert_eq!(eb.crc_rejects, 1, "exactly one frame corrupted (once mode)");
    assert_eq!(eb.delivered.len(), 9);
    // Class 3 has no retransmission: the frame is simply gone, and its
    // credit came back with the next R_RDY-less... in this harness the
    // receiver only credits accepted frames, so the sender ends one short.
    let ea = engine.component_as::<FcEndpoint>(a).unwrap();
    assert_eq!(ea.port.credits(), 3, "one credit lost with the dead frame");
}

#[test]
fn eating_r_rdy_credits_starves_the_sender() {
    // The FC analogue of GO corruption: the injector swallows R_RDY
    // primitives (corrupting them into an unused code), and the sender
    // stalls once its login credit is spent.
    let (mut engine, a, b, dev) = build(2);
    engine
        .component_as_mut::<InjectorDevice>(dev)
        .unwrap()
        .configure(
            Direction::BToA,
            InjectorConfig::builder()
                .match_mode(MatchMode::On)
                .control_swap(R_RDY_CODE, 0x00)
                .build(),
        );
    engine.schedule(SimTime::ZERO, a, Ev::App(Box::new(Cmd::Queue(frames(10)))));
    engine.run_until(SimTime::from_ms(20));
    let eb = engine.component_as::<FcEndpoint>(b).unwrap();
    assert_eq!(
        eb.delivered.len(),
        2,
        "only the initial BB_Credit frames ever fly"
    );
    let ea = engine.component_as::<FcEndpoint>(a).unwrap();
    assert_eq!(ea.port.credits(), 0);
    assert_eq!(ea.port.tx_backlog(), 8, "the rest starve for credit");
    // Stop the corruption: credits flow again and the backlog drains.
    engine
        .component_as_mut::<InjectorDevice>(dev)
        .unwrap()
        .configure(Direction::BToA, InjectorConfig::passthrough());
    // Nudge with a fresh credit from the receiver side (the stranded
    // R_RDYs are gone forever; the endpoint re-credits on its next accept,
    // so send one more frame after repair).
    engine.schedule(
        engine.now() + SimDuration::from_ms(1),
        a,
        Ev::App(Box::new(Cmd::Queue(vec![]))),
    );
    engine.run_until(engine.now() + SimDuration::from_ms(20));
    // Deadlock: with all credits eaten, nothing moves without recovery —
    // exactly why real FC ports re-login (credit recovery) after errors.
    let ea = engine.component_as::<FcEndpoint>(a).unwrap();
    assert_eq!(ea.port.tx_backlog(), 8, "credit loss is permanent in class 3");
}
