//! Every `netfi` simulation is bit-for-bit reproducible: no wall clock, no
//! global RNG, deterministic event ordering. These tests run the same
//! seeded scenarios twice and require identical outcomes.

use netfi::injector::{Direction, InjectorDevice};
use netfi::myrinet::addr::EthAddr;
use netfi::netstack::{build_testbed, Host, TestbedOptions, Workload, SINK_PORT};
use netfi::sim::{SimDuration, SimTime};

fn run_once(seed: u64) -> (u64, u64, u64, u64) {
    let mut tb = build_testbed(
        TestbedOptions {
            intercept_host: Some(1),
            seed,
            paper_era_hosts: true,
            ..TestbedOptions::default()
        },
        |i, host: &mut Host| {
            if i == 0 {
                host.add_workload(Workload::Sender {
                    dest: EthAddr::myricom(2),
                    interval: SimDuration::from_ms(3),
                    payload_len: 256,
                    forbidden: vec![],
                    burst: 2,
                });
            }
            if i == 2 {
                host.add_workload(Workload::Flood {
                    peer: EthAddr::myricom(1),
                    payload_len: 64,
                    timeout: SimDuration::from_ms(10),
                });
            }
        },
    );
    tb.engine.run_until(SimTime::from_secs(4));
    let h1 = tb.engine.component_as::<Host>(tb.hosts[1]).unwrap();
    let h2 = tb.engine.component_as::<Host>(tb.hosts[2]).unwrap();
    let dev = tb
        .engine
        .component_as::<InjectorDevice>(tb.injector.unwrap())
        .unwrap();
    (
        h1.rx_count(SINK_PORT),
        h2.ping_report(0).completed,
        dev.channel_stats(Direction::AToB).packets,
        tb.engine.events_processed(),
    )
}

#[test]
fn identical_seeds_produce_identical_runs() {
    let a = run_once(12345);
    let b = run_once(12345);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_still_deliver_but_differ_in_timing_noise() {
    let a = run_once(1);
    let b = run_once(2);
    // Functional outcomes match (lossless workloads) …
    assert_eq!(a.0, b.0, "sink deliveries are workload-determined");
    // … but paper-era jitter shifts event interleavings.
    assert!(a.1 > 100 && b.1 > 100);
}

#[test]
fn campaign_scenarios_are_deterministic() {
    use netfi::nftape::scenarios::udpcheck;
    let a = udpcheck::aliasing_corruption(7);
    let b = udpcheck::aliasing_corruption(7);
    assert_eq!(a, b);
}
