//! Every `netfi` simulation is bit-for-bit reproducible: no wall clock, no
//! global RNG, deterministic event ordering. These tests run the same
//! seeded scenarios twice and require identical outcomes.

// Tests and examples may unwrap: a failed assertion here is the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use netfi::injector::{Direction, InjectorDevice};
use netfi::myrinet::addr::EthAddr;
use netfi::netstack::{build_testbed, Host, TestbedOptions, Workload, SINK_PORT};
use netfi::sim::{SimDuration, SimTime};

fn run_once(seed: u64) -> (u64, u64, u64, u64) {
    let mut tb = build_testbed(
        TestbedOptions {
            intercept_host: Some(1),
            seed,
            paper_era_hosts: true,
            ..TestbedOptions::default()
        },
        |i, host: &mut Host| {
            if i == 0 {
                host.add_workload(Workload::Sender {
                    dest: EthAddr::myricom(2),
                    interval: SimDuration::from_ms(3),
                    payload_len: 256,
                    forbidden: vec![],
                    burst: 2,
                });
            }
            if i == 2 {
                host.add_workload(Workload::Flood {
                    peer: EthAddr::myricom(1),
                    payload_len: 64,
                    timeout: SimDuration::from_ms(10),
                });
            }
        },
    ).unwrap();
    tb.engine.run_until(SimTime::from_secs(4));
    let h1 = tb.engine.component_as::<Host>(tb.hosts[1]).unwrap();
    let h2 = tb.engine.component_as::<Host>(tb.hosts[2]).unwrap();
    let dev = tb
        .engine
        .component_as::<InjectorDevice>(tb.injector.unwrap())
        .unwrap();
    (
        h1.rx_count(SINK_PORT),
        h2.ping_report(0).completed,
        dev.channel_stats(Direction::AToB).packets,
        tb.engine.events_processed(),
    )
}

#[test]
fn identical_seeds_produce_identical_runs() {
    let a = run_once(12345);
    let b = run_once(12345);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_still_deliver_but_differ_in_timing_noise() {
    let a = run_once(1);
    let b = run_once(2);
    // Functional outcomes match (lossless workloads) …
    assert_eq!(a.0, b.0, "sink deliveries are workload-determined");
    // … but paper-era jitter shifts event interleavings.
    assert!(a.1 > 100 && b.1 > 100);
}

#[test]
fn campaign_scenarios_are_deterministic() {
    use netfi::nftape::scenarios::udpcheck;
    let a = udpcheck::aliasing_corruption(7).unwrap();
    let b = udpcheck::aliasing_corruption(7).unwrap();
    assert_eq!(a, b);
}

/// FNV-1a over a byte stream — enough to pin a golden value without
/// pulling in a hash crate.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs the saturated testbed with the injector's full-traffic log on and
/// hashes the observed event trace: every frame the device saw (time,
/// direction, summary, length) plus the end-of-run counters.
fn event_trace_hash(seed: u64) -> u64 {
    let mut tb = build_testbed(
        TestbedOptions {
            intercept_host: Some(1),
            seed,
            paper_era_hosts: true,
            ..TestbedOptions::default()
        },
        |i, host: &mut Host| {
            if i == 0 {
                host.add_workload(Workload::Sender {
                    dest: EthAddr::myricom(2),
                    interval: SimDuration::from_ms(3),
                    payload_len: 256,
                    forbidden: vec![],
                    burst: 2,
                });
            }
            if i == 2 {
                host.add_workload(Workload::Flood {
                    peer: EthAddr::myricom(1),
                    payload_len: 64,
                    timeout: SimDuration::from_ms(10),
                });
            }
        },
    ).unwrap();
    let dev_id = tb.injector.unwrap();
    tb.engine
        .component_as_mut::<InjectorDevice>(dev_id)
        .unwrap()
        .set_traffic_log(true);
    tb.engine.run_until(SimTime::from_secs(2));

    let mut text = String::new();
    let dev = tb.engine.component_as::<InjectorDevice>(dev_id).unwrap();
    for rec in dev.traffic_log().iter() {
        use std::fmt::Write;
        writeln!(text, "{} {:?}", rec.time, rec.value).unwrap();
    }
    use std::fmt::Write;
    writeln!(text, "events={}", tb.engine.events_processed()).unwrap();
    writeln!(text, "a2b={:?}", dev.channel_stats(Direction::AToB)).unwrap();
    writeln!(text, "b2a={:?}", dev.channel_stats(Direction::BToA)).unwrap();
    let h1 = tb.engine.component_as::<Host>(tb.hosts[1]).unwrap();
    writeln!(text, "h1={:?} sink={}", h1.udp_stats(), h1.rx_count(SINK_PORT)).unwrap();
    let h2 = tb.engine.component_as::<Host>(tb.hosts[2]).unwrap();
    writeln!(text, "h2={:?} {:?}", h2.udp_stats(), h2.ping_report(0)).unwrap();
    fnv1a(text.as_bytes())
}

/// Golden hash of the saturated-testbed event trace. This value must not
/// change across refactors: it pins the exact frame-by-frame behaviour
/// of the simulation (the zero-copy datapath, the table-driven CRCs and
/// the reusable engine outbox all preserve it bit-for-bit). If a change
/// legitimately alters simulation behaviour, update the constant in the
/// same commit and say why.
#[test]
fn event_trace_golden_hash() {
    assert_eq!(event_trace_hash(12345), 0xA91C_0CD2_ED32_79F8);
}

/// Golden hash of the §4.3.4 campaign results — pins the campaign
/// pipeline end to end (trigger scan, corruption, checksum behaviour,
/// result accounting).
#[test]
fn campaign_results_golden_hash() {
    use netfi::nftape::scenarios::udpcheck;
    let text = format!(
        "{:?}\n{:?}\n{:?}\n",
        udpcheck::baseline(7).unwrap(),
        udpcheck::aliasing_corruption(7).unwrap(),
        udpcheck::detected_corruption(7).unwrap(),
    );
    assert_eq!(fnv1a(text.as_bytes()), 0xA700_F551_56B5_1037);
}

/// Golden hashes of the observed campaign's two export artifacts. The
/// obs subsystem's contract is that observation is deterministic end to
/// end: the same seeded campaign, run with every flight recorder armed
/// and the engine dispatch probe installed, exports byte-identical
/// Chrome-trace JSON and text tables on every rerun. If a change
/// legitimately alters the campaign's observable behaviour, update the
/// constants in the same commit and say why.
#[test]
fn observed_exports_golden_hash() {
    use netfi::nftape::observed::observed_campaign;
    let run = observed_campaign(11).unwrap();
    let rerun = observed_campaign(11).unwrap();
    let chrome = run.chrome_trace();
    let table = run.text_table();
    // Byte-identical across reruns …
    assert_eq!(chrome, rerun.chrome_trace());
    assert_eq!(table, rerun.text_table());
    // … and pinned across commits.
    assert_eq!(fnv1a(chrome.as_bytes()), 0xBC3B_4DA1_B316_3F10);
    assert_eq!(fnv1a(table.as_bytes()), 0x9EA5_7953_A6F8_C154);
}

/// The sharded engine's contract, pinned against the *serial* golden
/// hashes above: running the same observed campaign inside one
/// `ShardedEngine` — components partitioned into affinity shards, windows
/// executed on scoped worker threads — exports the same bytes as the
/// serial engine, for workers 1, 2 and 4. This is engine-level
/// parallelism (inside one run), complementing the campaign-level
/// fan-out checked below; DESIGN.md §11 carries the argument.
#[test]
fn sharded_observed_campaign_matches_serial_golden_hash() {
    use netfi::nftape::observed::observed_campaign_sharded;
    let mut schedule = Vec::new();
    for workers in [1, 2, 4] {
        let run = observed_campaign_sharded(11, workers).unwrap();
        assert_eq!(
            fnv1a(run.campaign.chrome_trace().as_bytes()),
            0xBC3B_4DA1_B316_3F10,
            "workers={workers}"
        );
        assert_eq!(
            fnv1a(run.campaign.text_table().as_bytes()),
            0x9EA5_7953_A6F8_C154,
            "workers={workers}"
        );
        assert_eq!(run.shards, 4);
        assert!(run.rounds > 0);
        assert!(run.cross_events > 0);
        schedule.push((run.rounds, run.cross_events));
    }
    // The window schedule and mailbox traffic are functions of the
    // simulation alone — identical whatever the thread count.
    assert_eq!(schedule[0], schedule[1]);
    assert_eq!(schedule[0], schedule[2]);
}

/// The generated-fabric determinism oracle, pinned. A 10-host and a
/// 100-host leaf–spine fabric (`nftape::topo`, stride traffic, static
/// ECMP routes) each carry a committed 64-bit `fabric_digest` — engine
/// clock, delivery count, every host's sink/sender/UDP/NIC counters,
/// every switch's forwarding counters. The serial engine and the sharded
/// engine at workers 1, 2 and 4 must all land on that exact digest: the
/// topology-derived affinity groups (one shard per leaf plus a spine
/// shard, trunk-delay lookahead) may not perturb a single byte. The
/// 1,000-host size is covered by `bench_engine`'s in-run cross-check —
/// too heavy for a debug-mode tier-1 test.
#[test]
fn fabric_digests_identical_across_worker_counts() {
    use netfi::nftape::{build_fabric, fabric_digest, TopoOptions};
    use netfi::sim::{NullProbe, ShardedEngine, Simulation};

    fn digest_at(hosts: usize, sim_ms: u64, workers: Option<usize>) -> u64 {
        let options = TopoOptions::sized(hosts);
        let fab = build_fabric(&options, |_, _| {}).unwrap();
        let switches: Vec<_> = fab.leaves.iter().chain(&fab.spines).copied().collect();
        match workers {
            None => {
                let mut engine = fab.engine;
                engine.run_until(SimTime::from_ms(sim_ms));
                fabric_digest(&engine, &fab.hosts, &switches)
            }
            Some(w) => {
                let spec = fab.shard_spec(w);
                let host_ids = fab.hosts;
                let mut sim: ShardedEngine<_, NullProbe> =
                    ShardedEngine::from_engine(fab.engine, spec, |_| NullProbe);
                sim.run_until(SimTime::from_ms(sim_ms));
                fabric_digest(&sim, &host_ids, &switches)
            }
        }
    }

    for (hosts, sim_ms, golden) in [
        (10, 10, 0x8A12_0E12_4707_0A3A_u64),
        (100, 5, 0x9E72_FF68_5C85_30ED_u64),
    ] {
        assert_eq!(
            digest_at(hosts, sim_ms, None),
            golden,
            "serial digest moved: {hosts} hosts @ {sim_ms} ms"
        );
        for w in [1, 2, 4] {
            assert_eq!(
                digest_at(hosts, sim_ms, Some(w)),
                golden,
                "sharded digest diverged: {hosts} hosts @ {sim_ms} ms, workers={w}"
            );
        }
    }
}

/// The snapshot/fork seam's headline contract, pinned against the *same*
/// golden hashes as the fresh campaign above: warming a donor engine
/// through the map phase, capturing it with `Engine::snapshot`, and
/// driving the program + inject phases on a fork must export the exact
/// bytes a fresh engine produces when it runs all three phases itself.
/// Nothing in the fork — component state, timing wheel, RNG, sequence
/// counter, probe — may remember that it was forked.
#[test]
fn forked_campaign_matches_fresh_golden_hash() {
    use netfi::nftape::observed::observed_campaign_forked;
    let run = observed_campaign_forked(11).unwrap();
    assert_eq!(fnv1a(run.chrome_trace().as_bytes()), 0xBC3B_4DA1_B316_3F10);
    assert_eq!(fnv1a(run.text_table().as_bytes()), 0x9EA5_7953_A6F8_C154);
}

/// The fork grid's contract: forking one warmed donor per failure spec
/// produces byte-identical results to building and warming a fresh test
/// bed per spec, and the worker count (1, 2, 8) is invisible in the
/// output — same fingerprint, same rendered exports, same row order.
#[test]
fn fork_grid_matches_fresh_grid_across_worker_counts() {
    use netfi::nftape::grid::{fork_grid, fresh_grid, grid_specs};
    let specs = grid_specs();
    let fresh = fresh_grid(11, &specs, 2).unwrap();
    for workers in [1, 2, 8] {
        let forked = fork_grid(11, &specs, workers).unwrap();
        assert_eq!(
            forked.fingerprint(),
            fresh.fingerprint(),
            "workers={workers}"
        );
        assert_eq!(forked, fresh, "workers={workers}");
    }
}

/// The parallel campaign runner's contract: the worker count is invisible
/// in the output. A full observed suite (three seeded scenarios, every
/// recorder armed) run with 1, 2 and 8 workers must produce byte-identical
/// merged report tables, text tables and Chrome-trace exports — the same
/// guarantee, scenario-for-scenario, as a serial run.
#[test]
fn observed_suite_identical_across_worker_counts() {
    use netfi::nftape::observed::{observed_campaign, observed_suite};
    let seeds = [11, 21, 31];
    let w1 = observed_suite(&seeds, 1).unwrap();
    let w2 = observed_suite(&seeds, 2).unwrap();
    let w8 = observed_suite(&seeds, 8).unwrap();
    // Fingerprint covers every export artifact (tables + traces).
    assert_eq!(w1.fingerprint(), w2.fingerprint());
    assert_eq!(w1.fingerprint(), w8.fingerprint());
    // Spot-check the artifacts byte-for-byte, not just the hash.
    assert_eq!(w1.text_table(), w8.text_table());
    assert_eq!(w1.chrome_traces(), w8.chrome_traces());
    let render = |s: &netfi::nftape::ObservedSuite| {
        s.report_tables().iter().map(|t| t.render()).collect::<Vec<_>>()
    };
    assert_eq!(render(&w1), render(&w8));
    // And the fold matches a plain serial loop over the same seeds.
    let serial: u64 = seeds
        .iter()
        .map(|&s| observed_campaign(s).unwrap().dispatches)
        .sum();
    assert_eq!(w1.dispatches, serial);
}

/// Same contract for the spec-list runner: explicit worker counts change
/// nothing about the result rows, including their order.
#[test]
fn campaign_rows_identical_across_worker_counts() {
    use netfi::nftape::campaign::{run_campaigns_with_workers, CampaignSpec, FaultSpec};
    let specs = vec![
        CampaignSpec::new("udp", FaultSpec::UdpAliasing, 3),
        CampaignSpec::new("data", FaultSpec::DataType, 4),
        CampaignSpec::new("misroute", FaultSpec::Misroute, 5),
        CampaignSpec::new("route msb", FaultSpec::RouteMsb, 6),
    ];
    let w1 = run_campaigns_with_workers(&specs, 1).unwrap();
    let w2 = run_campaigns_with_workers(&specs, 2).unwrap();
    let w8 = run_campaigns_with_workers(&specs, 8).unwrap();
    assert_eq!(w1, w2);
    assert_eq!(w1, w8);
    let text = format!("{w1:?}");
    assert_eq!(fnv1a(text.as_bytes()), fnv1a(format!("{w8:?}").as_bytes()));
}

/// The statistical sampler's contract: a 512-point sampled injection
/// campaign — points drawn from per-index RNG substreams, each run as a
/// fork of one warm donor snapshot, classified against a healthy
/// baseline fork — produces byte-identical results at workers 1, 2
/// and 8. The campaign fingerprint covers every drawn point, its
/// evidence counters and its outcome class; the rendered coverage
/// report (class histogram + Wilson 95% intervals) is compared
/// byte-for-byte on top.
#[test]
fn sampled_campaign_identical_across_worker_counts() {
    use netfi::sample::{run_sampled_campaign, OutcomeClass, SampleOptions};
    let run = |workers: usize| {
        run_sampled_campaign(&SampleOptions {
            seed: 11,
            points: 512,
            workers,
        })
        .unwrap()
    };
    let w1 = run(1);
    let w2 = run(2);
    let w8 = run(8);
    assert_eq!(w1.fingerprint(), w2.fingerprint());
    assert_eq!(w1.fingerprint(), w8.fingerprint());
    assert_eq!(w1.report().render(), w8.report().render());
    assert_eq!(w1, w2);
    assert_eq!(w1, w8);
    // The taxonomy is fully rendered (zero-draw classes included) and
    // the space is rich enough that several classes actually fire.
    let report = w1.report();
    assert_eq!(report.rows.len(), OutcomeClass::ALL.len());
    let populated = report.rows.iter().filter(|r| r.count > 0).count();
    assert!(populated >= 3, "degenerate sample: {}", report.render());
    assert_eq!(report.n, 512);
}

/// The detection campaign's contract, pinned: φ-accrual suspicion
/// monitors fed by heartbeats over a 10-host generated fabric, faults
/// (power-off, link/trunk severs, injector corruption) applied to forks
/// of one warm donor. The campaign fingerprint covers every suspicion
/// verdict, latency sample and rendered registry table; it must be
/// byte-identical at workers 1, 2 and 4 and must match the committed
/// golden. If a change legitimately alters detection behaviour, update
/// the constant in the same commit and say why (`BENCH_detect.json`
/// carries the matching 100-host fingerprint, gated by check.sh).
#[test]
fn detection_campaign_golden_fingerprint_across_worker_counts() {
    use netfi::detect::Phi;
    use netfi::nftape::detection::{detect_specs, run_detection, DetectOptions};
    use netfi::nftape::TopoOptions;

    let options = DetectOptions {
        topo: TopoOptions {
            intercept_host: Some(1),
            interval: SimDuration::from_ms(2),
            ..TopoOptions::sized(10)
        },
        window: 8,
        heartbeat: SimDuration::from_ms(5),
        stagger: SimDuration::from_us(50),
        poll: SimDuration::from_ms(1),
        warm: SimDuration::from_ms(100),
        margin: SimDuration::from_ms(20),
        tail: SimDuration::from_ms(200),
        thresholds: vec![Phi::from_int(2), Phi::from_int(5), Phi::from_int(8)],
        reference: 1,
        poll_event_budget: 5_000_000,
    };
    let specs = detect_specs(&options);
    let w1 = run_detection(&options, &specs, 1).unwrap();
    for workers in [2, 4] {
        let w = run_detection(&options, &specs, workers).unwrap();
        assert_eq!(w.fingerprint(), w1.fingerprint(), "workers={workers}");
        assert_eq!(w.render(), w1.render(), "workers={workers}");
        assert_eq!(w, w1, "workers={workers}");
    }
    assert_eq!(
        w1.fingerprint(),
        0x1000_121D_01AF_A971,
        "detection fingerprint moved: {:#018x}",
        w1.fingerprint()
    );
}

/// Percentile extraction is exact wherever the log-bucketed histogram
/// holds full resolution: single-sample buckets and per-bucket-uniform
/// distributions interpolate back to the exact rank value.
#[test]
fn histogram_percentiles_are_exact_on_known_distributions() {
    use netfi::obs::LogHistogram;
    // 1..=1000 uniform: the nearest-rank percentiles are the ranks
    // themselves.
    let mut h = LogHistogram::new();
    for v in 1..=1000u64 {
        h.record(v);
    }
    let p = h.percentiles();
    assert_eq!((p.p50, p.p95, p.p99), (500, 950, 990));
    assert_eq!(h.quantile(0.0), h.min());
    assert_eq!(h.quantile(1.0), 1000);
    // A constant distribution is exact at every quantile.
    let mut c = LogHistogram::new();
    for _ in 0..37 {
        c.record(4096);
    }
    let pc = c.percentiles();
    assert_eq!((pc.p50, pc.p95, pc.p99), (4096, 4096, 4096));
}

/// The event-rate meter is pure sim-time arithmetic (its wall-clock
/// dependency was removed when `netfi-lint` started enforcing the
/// determinism rules), so bracketing the same seeded run twice yields
/// bit-identical reports that agree exactly with the engine's own
/// counters.
#[test]
fn event_rate_meter_is_deterministic() {
    use netfi::sim::metrics::EventRate;
    let measure = |seed: u64| {
        let mut tb = build_testbed(
            TestbedOptions {
                seed,
                ..TestbedOptions::default()
            },
            |i, host: &mut Host| {
                if i == 0 {
                    host.add_workload(Workload::Sender {
                        dest: EthAddr::myricom(2),
                        interval: SimDuration::from_ms(2),
                        payload_len: 128,
                        forbidden: vec![],
                        burst: 1,
                    });
                }
            },
        )
        .unwrap();
        let meter = EventRate::start(tb.engine.now(), tb.engine.events_processed());
        tb.engine.run_until(SimTime::from_secs(2));
        let report = meter.stop(tb.engine.now(), tb.engine.events_processed());
        (report, tb.engine.events_processed())
    };
    let (a, events_a) = measure(77);
    let (b, events_b) = measure(77);
    // Same seed, same report — field for field, no wall-clock noise.
    assert_eq!(a, b);
    assert_eq!(events_a, events_b);
    // The meter agrees exactly with the engine it sampled: started at
    // zero, so the measured span and count are the totals.
    assert_eq!(a.events(), events_a);
    assert!(a.events() > 1_000, "run too quiet: {} events", a.events());
    assert!(a.events_per_sim_sec() > 0.0);
    assert!(a.sim_ns_per_event() > 0.0);
}
