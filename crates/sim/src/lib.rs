//! `netfi-sim` — deterministic discrete-event simulation kernel.
//!
//! This crate is the substrate every other `netfi` crate runs on. It provides:
//!
//! - [`SimTime`] / [`SimDuration`]: picosecond-resolution simulated time, so
//!   the 12.5 ns Myrinet character period (at 80 MB/s) and sub-nanosecond
//!   cable propagation delays are represented exactly.
//! - [`Engine`]: an event queue plus a component registry. Events carry a
//!   user-defined payload type `M`; components implement [`Component`] and
//!   exchange payloads through the scheduler. Ties in time are broken by a
//!   monotone sequence number, making every run bit-for-bit reproducible.
//! - [`rng::DetRng`]: a seeded, splittable PRNG (SplitMix64-seeded
//!   xoshiro256**) so stochastic workloads are reproducible without any
//!   global state.
//! - [`bytes::SharedBytes`]: cheaply-clonable, copy-on-write byte buffers, so
//!   a packet's wire image is built once and shared across links, switch
//!   fan-out and capture snapshots without copying.
//! - [`metrics`]: counters, Welford summaries and fixed-bin histograms used by
//!   the experiment harnesses.
//! - [`engine::Probe`]: a compile-time observation seam on the dispatch
//!   loop. The default [`NullProbe`] costs nothing; `netfi-obs` plugs a
//!   real probe in to watch dispatches without perturbing the run.
//! - [`shard::ShardedEngine`]: conservative-window parallel execution of one
//!   engine run across component-affinity shards, byte-identical to the
//!   serial engine for any worker count. The [`Simulation`] trait is the
//!   control surface shared by both executors.
//! - [`snapshot::Fork`] / [`engine::EngineSnapshot`]: capture a warmed
//!   engine's full deterministic state once and fork it into independent
//!   runnable engines in O(state) — the warm-up amortisation behind the
//!   `nftape` fork grid. A fork replays bit-identically to a fresh run
//!   reaching the same state.
//!
//! # Example
//!
//! ```
//! use netfi_sim::{Component, Context, Engine, SimDuration, SimTime};
//!
//! struct Echo { heard: u32 }
//!
//! impl Component<u32> for Echo {
//!     fn on_event(&mut self, ctx: &mut Context<'_, u32>, payload: u32) {
//!         self.heard += payload;
//!         if payload > 0 {
//!             ctx.send_self(SimDuration::from_ns(10), payload - 1);
//!         }
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//!     fn fork(&self) -> Box<dyn Component<u32>> { Box::new(Echo { heard: self.heard }) }
//! }
//!
//! let mut engine = Engine::new();
//! let id = engine.add_component(Box::new(Echo { heard: 0 }));
//! engine.schedule(SimTime::ZERO, id, 3);
//! engine.run();
//! assert_eq!(engine.component_as::<Echo>(id).unwrap().heard, 3 + 2 + 1);
//! assert_eq!(engine.now(), SimTime::ZERO + SimDuration::from_ns(30));
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub(crate) mod arena;
pub mod bytes;
pub mod engine;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod snapshot;
pub mod time;

pub use bytes::SharedBytes;
pub use engine::{
    Component, ComponentId, Context, Engine, EngineSnapshot, NullProbe, Probe, RunBudget,
    RunOutcome, Simulation,
};
pub use queue::TimingWheel;
pub use rng::DetRng;
pub use shard::{ShardSpec, ShardedEngine};
pub use snapshot::Fork;
pub use time::{SimDuration, SimTime};
