//! Bounded event tracing.
//!
//! [`TraceBuffer`] is the software analogue of the injector's SDRAM capture
//! memory: a bounded ring that keeps the most recent records. Experiments use
//! it to capture the environment around an injection event, mirroring the
//! paper's "keep the bytes surrounding the fault injection event" feature.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// One timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord<T> {
    /// When the record was captured.
    pub time: SimTime,
    /// The captured value.
    pub value: T,
}

/// A bounded ring buffer of timestamped records.
///
/// # Example
///
/// ```
/// use netfi_sim::trace::TraceBuffer;
/// use netfi_sim::SimTime;
///
/// let mut buf = TraceBuffer::new(2);
/// buf.push(SimTime::from_ns(1), "a");
/// buf.push(SimTime::from_ns(2), "b");
/// buf.push(SimTime::from_ns(3), "c"); // evicts "a"
/// let values: Vec<_> = buf.iter().map(|r| r.value).collect();
/// assert_eq!(values, ["b", "c"]);
/// assert_eq!(buf.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuffer<T> {
    capacity: usize,
    records: VecDeque<TraceRecord<T>>,
    dropped: u64,
}

impl<T> TraceBuffer<T> {
    /// Creates a buffer holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace buffer capacity must be non-zero");
        TraceBuffer {
            capacity,
            records: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest if full.
    pub fn push(&mut self, time: SimTime, value: T) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord { time, value });
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no records are held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Maximum number of records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates oldest-to-newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord<T>> {
        self.records.iter()
    }

    /// The most recent record, if any.
    pub fn last(&self) -> Option<&TraceRecord<T>> {
        self.records.back()
    }

    /// Removes all records (eviction counter is preserved).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Drains all records oldest-to-newest.
    pub fn drain(&mut self) -> impl Iterator<Item = TraceRecord<T>> + '_ {
        self.records.drain(..)
    }
}

impl<T: fmt::Display> TraceBuffer<T> {
    /// Renders the buffer as one line per record, oldest first.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(out, "[{}] {}", r.time, r.value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent() {
        let mut buf = TraceBuffer::new(3);
        for i in 0..5u32 {
            buf.push(SimTime::from_ns(i as u64), i);
        }
        let vals: Vec<u32> = buf.iter().map(|r| r.value).collect();
        assert_eq!(vals, vec![2, 3, 4]);
        assert_eq!(buf.dropped(), 2);
        assert_eq!(buf.last().unwrap().value, 4);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = TraceBuffer::<u8>::new(0);
    }

    #[test]
    fn clear_preserves_dropped_counter() {
        let mut buf = TraceBuffer::new(1);
        buf.push(SimTime::ZERO, 1);
        buf.push(SimTime::ZERO, 2);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.dropped(), 1);
    }

    #[test]
    fn drain_empties_in_order() {
        let mut buf = TraceBuffer::new(4);
        buf.push(SimTime::from_ns(1), "x");
        buf.push(SimTime::from_ns(2), "y");
        let drained: Vec<&str> = buf.drain().map(|r| r.value).collect();
        assert_eq!(drained, vec!["x", "y"]);
        assert!(buf.is_empty());
    }

    #[test]
    fn render_includes_timestamps() {
        let mut buf = TraceBuffer::new(4);
        buf.push(SimTime::from_ns(1), "hello");
        let s = buf.render();
        assert!(s.contains("1.000ns"));
        assert!(s.contains("hello"));
    }
}
