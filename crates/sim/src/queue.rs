//! The engine's event queue: a bucketed timing wheel with a far-future
//! overflow heap.
//!
//! PR 1 left the event queue on `BinaryHeap<QueuedEvent>`: every push and
//! pop is a sift over `(time, seq)` keys that touches O(log n) scattered
//! cache lines while moving 56-byte events around. At the saturated
//! testbed's steady-state depth (~30 events) those two sifts cost more
//! than a quarter of the whole per-event budget. The wheel replaces them
//! with O(1) bucket appends and pops:
//!
//! - **Near future** (within [`WHEEL_SPAN`] of the cursor): events land in
//!   one of [`SLOTS`] fixed time buckets of [`SLOT_PS`] picoseconds each.
//!   A bucket is sorted at most once, lazily, when the cursor reaches it;
//!   an occupancy bitmap (one bit per slot, [`WORDS`](self) `u64` words —
//!   two cache lines) finds the next occupied bucket in a few word
//!   operations. The whole index plus the slot headers stays small enough
//!   to live in L1/L2; the first wheel cut (8192 fine-grained slots)
//!   measured *slower* than this one purely from slot-header cache misses.
//! - **Far future** (beyond the wheel's horizon): events overflow into a
//!   small min-heap and are re-cascaded into buckets as the cursor
//!   advances and the horizon moves past them.
//!
//! Ordering is *exactly* the heap's: ascending `(time, seq)`, so
//! same-instant events deliver in scheduling order. `seq` is unique, so
//! the order is total and a bucket's unstable sort is deterministic. The
//! property test in `crates/sim/tests/props.rs` pits the wheel against a
//! reference `BinaryHeap` on randomized streams with duplicate timestamps,
//! and the golden event-trace hashes in `tests/determinism.rs` pin that
//! the swap changed nothing observable.

// netfi-lint: deny(hot-path-alloc)
//
// Push and pop run once per simulated event. The only allocations allowed
// here are the one-time constructor ones (allowlisted below); buckets and
// the overflow heap retain their high-water capacity, so steady state
// performs no per-event allocation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::SimTime;

/// log2 of the bucket granularity in picoseconds: 2^24 ps ≈ 16.8 µs.
///
/// Coarse enough that a wheel rotation spans ~17 ms of simulated time
/// from only [`SLOTS`] buckets, so the testbeds' 10 ms timers stay inside
/// the wheel instead of churning the overflow heap. The grain was tuned
/// against finer settings (2^21 × 8192 slots, 2^23 × 2048): fewer, fatter
/// buckets won because the slot-header array shrinks below cache size and
/// the extra in-bucket sorting is cheaper than the misses it replaces.
const SLOT_SHIFT: u32 = 24;
/// Bucket granularity in picoseconds.
pub const SLOT_PS: u64 = 1 << SLOT_SHIFT;
/// Number of buckets; must be a power of two (mask indexing) and a
/// multiple of 64 (whole bitmap words).
pub const SLOTS: usize = 1024;
/// The wheel's horizon: how far past the cursor a bucket can represent
/// (≈ 17.2 ms of simulated time). Events beyond it overflow into the heap.
pub const WHEEL_SPAN: u64 = SLOT_PS * SLOTS as u64;

const SLOT_MASK: u64 = SLOTS as u64 - 1;
const WORDS: usize = SLOTS / 64;

/// One queued item: the ordering key plus the caller's payload.
struct Entry<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

impl<T> Entry<T> {
    #[inline(always)]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Overflow-heap wrapper: min-heap order on `(time, seq)`.
struct FarEntry<T>(Entry<T>);

impl<T> PartialEq for FarEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<T> Eq for FarEntry<T> {}
impl<T> PartialOrd for FarEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for FarEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest entry is on top.
        other.0.key().cmp(&self.0.key())
    }
}

/// One wheel bucket: events whose time falls in the same [`SLOT_PS`]
/// window, plus whether they are currently held in descending `(time,
/// seq)` order (so the next event to deliver is `items.last()`).
/// (Packing `sorted` into a side bitmap to shrink the slot to `Vec` size
/// was measured and did not beat this layout.)
struct Slot<T> {
    items: Vec<Entry<T>>,
    sorted: bool,
}

/// A hierarchical timing wheel ordered by ascending `(time, seq)`.
///
/// Drop-in replacement for the engine's former `BinaryHeap`: `push` keys
/// an item by `(time, seq)`, `pop` returns items in exactly the order the
/// heap produced — ascending time, scheduling order within a time. The
/// `seq` values pushed must be unique (the engine's are: one counter
/// assigns them); duplicate times are expected and welcome.
///
/// `peek_time` never commits the cursor: the minimum is located through
/// the occupancy bitmap without moving the wheel, so a caller that peeks,
/// declines (deadline reached) and later schedules *earlier* events —
/// still at or after the last popped time — stays correct.
pub struct TimingWheel<T> {
    /// Fixed-size (not a slice) so `idx & SLOT_MASK` provably fits and
    /// the per-event indexing compiles without bounds checks.
    slots: Box<[Slot<T>; SLOTS]>,
    /// One bit per slot index; set while the slot holds any event.
    occupied: [u64; WORDS],
    /// Absolute bucket number (`time_ps >> SLOT_SHIFT`) of the cursor.
    /// Every wheel-resident event's bucket is in `[base, base + SLOTS)`;
    /// every overflow event's bucket is `>= base + SLOTS`.
    base: u64,
    /// Far-future events, cascaded in as the horizon advances.
    overflow: BinaryHeap<FarEntry<T>>,
    len: usize,
}

impl<T> fmt::Debug for TimingWheel<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimingWheel")
            .field("len", &self.len)
            .field("base", &self.base)
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// Creates an empty wheel with its cursor at time zero.
    pub fn new() -> TimingWheel<T> {
        TimingWheel {
            // lint: allow(hot-path-alloc) one-time constructor; every bucket Vec starts at capacity 0
            slots: Box::new(std::array::from_fn(|_| Slot { items: Vec::new(), sorted: true })),
            occupied: [0; WORDS],
            base: 0,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Number of queued events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues `item` under the key `(time, seq)`.
    ///
    /// Times earlier than the last popped event's bucket are not
    /// representable (the engine never schedules into the past); in debug
    /// builds that misuse is caught by an assertion.
    #[inline]
    pub fn push(&mut self, time: SimTime, seq: u64, item: T) {
        let bucket = time.as_ps() >> SLOT_SHIFT;
        debug_assert!(bucket >= self.base, "push into the wheel's past");
        self.len += 1;
        if bucket < self.base + SLOTS as u64 {
            self.place(bucket, Entry { time, seq, item });
        } else {
            self.overflow.push(FarEntry(Entry { time, seq, item }));
        }
    }

    /// Inserts an in-window entry into its bucket, preserving the
    /// descending order of already-sorted buckets.
    #[inline]
    fn place(&mut self, bucket: u64, entry: Entry<T>) {
        let idx = (bucket & SLOT_MASK) as usize;
        self.occupied[idx / 64] |= 1 << (idx % 64);
        let slot = &mut self.slots[idx];
        if slot.items.is_empty() {
            slot.items.push(entry);
            slot.sorted = true;
        } else if slot.sorted && bucket == self.base {
            // The cursor is draining this bucket from the back; keep the
            // descending order so `pop` stays O(1).
            let key = entry.key();
            let at = slot.items.partition_point(|e| e.key() > key);
            slot.items.insert(at, entry);
        } else {
            slot.items.push(entry);
            slot.sorted = false;
        }
    }

    /// The `(time, seq)`-minimal queued event's time, without popping it
    /// and without advancing the cursor.
    #[inline]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        match self.locate_min() {
            Some((_, idx)) => self.slots[idx].items.last().map(|e| e.time),
            None => self.overflow.peek().map(|e| e.0.time),
        }
    }

    /// Removes and returns the `(time, seq)`-minimal event as
    /// `(time, seq, item)`.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.pop_due(SimTime::MAX)
    }

    /// Removes and returns the minimal event only if its time is at or
    /// before `deadline`; otherwise leaves the queue (and the cursor)
    /// untouched. This is `peek` + `pop` in one queue walk.
    #[inline]
    pub fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, u64, T)> {
        if self.len == 0 {
            return None;
        }
        let (bucket, idx) = match self.locate_min() {
            Some(found) => found,
            None => {
                // Everything queued is beyond the horizon: jump the wheel
                // to the overflow's first bucket and refill.
                let first = self.overflow.peek().map(|e| e.0.time.as_ps())? >> SLOT_SHIFT;
                if (self.overflow.peek().map(|e| e.0.time)?) > deadline {
                    return None;
                }
                self.base = first;
                self.cascade();
                (first, (first & SLOT_MASK) as usize)
            }
        };
        let slot = &mut self.slots[idx];
        match slot.items.last() {
            Some(next) if next.time <= deadline => {}
            _ => return None,
        }
        let entry = slot.items.pop()?;
        if slot.items.is_empty() {
            self.occupied[idx / 64] &= !(1 << (idx % 64));
        }
        self.len -= 1;
        // Commit: the cursor moves to the popped event's bucket. Every
        // event the engine schedules from here on is at or after the
        // popped time, so nothing can land below the new base. Cascading
        // after the pop is safe: overflow events lie beyond the *old*
        // horizon, so none of them can precede the entry just popped.
        if bucket > self.base {
            self.base = bucket;
            if !self.overflow.is_empty() {
                self.cascade();
            }
        }
        Some((entry.time, entry.seq, entry.item))
    }

    /// Finds the wheel bucket holding the minimal event, sorting it on
    /// first touch. Returns `None` when every queued event is in the
    /// overflow heap. Does not move `base`.
    #[inline]
    fn locate_min(&mut self) -> Option<(u64, usize)> {
        let from = (self.base & SLOT_MASK) as usize;
        let distance = self.next_occupied(from)?;
        let bucket = self.base + distance as u64;
        let idx = (bucket & SLOT_MASK) as usize;
        let slot = &mut self.slots[idx];
        if !slot.sorted {
            // Keys are unique, so the unstable sort is deterministic.
            slot.items.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
            slot.sorted = true;
        }
        Some((bucket, idx))
    }

    /// Circular distance (in slots, `0..SLOTS`) from `from` to the first
    /// occupied slot, or `None` if the wheel is empty.
    #[inline]
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let (word0, bit0) = (from / 64, from % 64);
        let first = self.occupied[word0] >> bit0;
        if first != 0 {
            return Some(first.trailing_zeros() as usize);
        }
        // Ring scan over the remaining words: the bitmap is WORDS (= 16)
        // words, two cache lines, so a straight loop beats a summary level.
        for step in 1..=WORDS {
            let w = (word0 + step) % WORDS;
            let mut bits = self.occupied[w];
            if step == WORDS {
                // Wrapped all the way around: only the bits below `from`
                // are left to inspect (the rest were covered by `first`).
                bits &= (1u64 << bit0) - 1;
            }
            if bits != 0 {
                let idx = w * 64 + bits.trailing_zeros() as usize;
                return Some((idx + SLOTS - from) % SLOTS);
            }
        }
        None
    }

    /// Moves every overflow event that the advanced horizon now covers
    /// into its wheel bucket.
    fn cascade(&mut self) {
        let horizon = self.base + SLOTS as u64;
        while let Some(top) = self.overflow.peek() {
            let bucket = top.0.time.as_ps() >> SLOT_SHIFT;
            if bucket >= horizon {
                break;
            }
            if let Some(FarEntry(entry)) = self.overflow.pop() {
                self.place(bucket, entry);
            }
        }
    }
}

impl<T: crate::snapshot::Fork> crate::snapshot::Fork for TimingWheel<T> {
    /// Deep-copies the wheel, preserving the exact pop order:
    ///
    /// - every bucket's item order and `sorted` flag are copied verbatim,
    ///   so a lazily-unsorted bucket sorts at the same first-touch moment
    ///   in the fork as in the original (keys are unique, so the unstable
    ///   sort is deterministic either way);
    /// - the overflow heap is rebuilt by iterating the original — its
    ///   internal array layout may differ, but a binary heap pops strictly
    ///   by key and `(time, seq)` keys are unique, so the cascade order is
    ///   identical;
    /// - the occupancy bitmap, cursor base and length are plain copies.
    fn fork(&self) -> Self {
        TimingWheel {
            // lint: allow(hot-path-alloc) snapshot capture is campaign setup, not the event loop
            slots: Box::new(std::array::from_fn(|i| Slot {
                items: self.slots[i]
                    .items
                    .iter()
                    .map(|e| Entry { time: e.time, seq: e.seq, item: e.item.fork() })
                    .collect(),
                sorted: self.slots[i].sorted,
            })),
            occupied: self.occupied,
            base: self.base,
            overflow: self
                .overflow
                .iter()
                .map(|FarEntry(e)| FarEntry(Entry { time: e.time, seq: e.seq, item: e.item.fork() }))
                .collect(),
            len: self.len,
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Fork;

    fn drain(wheel: &mut TimingWheel<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some((t, s, v)) = wheel.pop() {
            out.push((t.as_ps(), s, v));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimingWheel::new();
        w.push(SimTime::from_ns(30), 0, 30);
        w.push(SimTime::from_ns(10), 1, 10);
        w.push(SimTime::from_ns(10), 2, 11);
        w.push(SimTime::from_ns(20), 3, 20);
        assert_eq!(w.len(), 4);
        assert_eq!(
            drain(&mut w),
            vec![(10_000, 1, 10), (10_000, 2, 11), (20_000, 3, 20), (30_000, 0, 30)]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn far_future_events_cascade_back() {
        let mut w = TimingWheel::new();
        // Beyond the horizon (~17 ms): lives in the overflow heap first.
        w.push(SimTime::from_ms(50), 0, 1);
        w.push(SimTime::from_ms(100), 1, 2);
        w.push(SimTime::from_ns(5), 2, 0);
        assert_eq!(
            drain(&mut w),
            vec![
                (5_000, 2, 0),
                (SimTime::from_ms(50).as_ps(), 0, 1),
                (SimTime::from_ms(100).as_ps(), 1, 2),
            ]
        );
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut w = TimingWheel::new();
        w.push(SimTime::from_ns(10), 0, 0);
        assert_eq!(w.pop().map(|(t, ..)| t), Some(SimTime::from_ns(10)));
        // Same-bucket, same-time push after a pop: delivered next, in seq
        // order, even though the bucket was already being drained.
        w.push(SimTime::from_ns(500), 1, 1);
        w.push(SimTime::from_ns(10), 2, 2);
        w.push(SimTime::from_ns(10), 3, 3);
        assert_eq!(
            drain(&mut w),
            vec![(10_000, 2, 2), (10_000, 3, 3), (500_000, 1, 1)]
        );
    }

    #[test]
    fn peek_does_not_commit_the_cursor() {
        let mut w = TimingWheel::new();
        w.push(SimTime::from_ms(20), 0, 0);
        // Peeking at a far-future event must not advance the wheel …
        assert_eq!(w.peek_time(), Some(SimTime::from_ms(20)));
        // … so an earlier (but still future) event pushed afterwards is
        // still representable and pops first.
        w.push(SimTime::from_ms(4), 1, 1);
        w.push(SimTime::from_us(3), 2, 2);
        assert_eq!(w.peek_time(), Some(SimTime::from_us(3)));
        assert_eq!(
            drain(&mut w),
            vec![
                (SimTime::from_us(3).as_ps(), 2, 2),
                (SimTime::from_ms(4).as_ps(), 1, 1),
                (SimTime::from_ms(20).as_ps(), 0, 0),
            ]
        );
    }

    #[test]
    fn pop_due_respects_the_deadline() {
        let mut w = TimingWheel::new();
        w.push(SimTime::from_ns(10), 0, 0);
        w.push(SimTime::from_ms(30), 1, 1);
        assert!(w.pop_due(SimTime::from_ns(5)).is_none());
        assert_eq!(w.pop_due(SimTime::from_ns(10)).map(|(.., v)| v), Some(0));
        // The far event sits in overflow; a deadline before it must not
        // jump the wheel forward.
        assert!(w.pop_due(SimTime::from_ms(29)).is_none());
        w.push(SimTime::from_ms(1), 2, 2);
        assert_eq!(w.pop_due(SimTime::from_ms(29)).map(|(.., v)| v), Some(2));
        assert_eq!(w.pop_due(SimTime::from_ms(30)).map(|(.., v)| v), Some(1));
        assert!(w.pop().is_none());
    }

    #[test]
    fn bucket_boundary_and_same_bucket_distinct_times() {
        let mut w = TimingWheel::new();
        // Two distinct times in one bucket, pushed out of order.
        w.push(SimTime::from_ps(SLOT_PS - 1), 0, 1);
        w.push(SimTime::from_ps(1), 1, 0);
        // Exactly on a bucket boundary.
        w.push(SimTime::from_ps(SLOT_PS), 2, 2);
        assert_eq!(
            drain(&mut w),
            vec![(1, 1, 0), (SLOT_PS - 1, 0, 1), (SLOT_PS, 2, 2)]
        );
    }

    #[test]
    fn full_rotation_reuses_slots() {
        let mut w = TimingWheel::new();
        let mut seq = 0;
        // March the cursor through several full rotations, one event per
        // half-horizon, so slots are reused with new bucket numbers.
        let mut expect = Vec::new();
        for k in 0..40u64 {
            let t = SimTime::from_ps(k * (WHEEL_SPAN / 2 + 12_345));
            w.push(t, seq, k as u32);
            expect.push((t.as_ps(), seq, k as u32));
            seq += 1;
        }
        assert_eq!(drain(&mut w), expect);
    }

    #[test]
    fn fork_mid_drain_pops_identically() {
        // Build a wheel that exercises every state a fork must capture:
        // a partially drained sorted bucket, an unsorted bucket, and
        // overflow entries awaiting a cascade.
        let mut w = TimingWheel::new();
        let mut seq = 0;
        for k in [5u64, 3, 9, 1, 7] {
            w.push(SimTime::from_ns(10 * k), seq, k as u32);
            seq += 1;
        }
        for k in [40u64, 25, 60] {
            w.push(SimTime::from_ms(k), seq, k as u32);
            seq += 1;
        }
        // Drain partway so the cursor sits inside a bucket.
        let _ = w.pop();
        let _ = w.pop();
        w.push(SimTime::from_ns(80), seq, 8);

        let mut fork = w.fork();
        assert_eq!(fork.len(), w.len());
        assert_eq!(drain(&mut fork), drain(&mut w));
    }

    #[test]
    fn fork_is_independent_of_the_original() {
        let mut w = TimingWheel::new();
        w.push(SimTime::from_ns(10), 0, 0);
        let mut fork = w.fork();
        fork.push(SimTime::from_ns(5), 1, 1);
        assert_eq!(w.len(), 1);
        assert_eq!(drain(&mut fork), vec![(5_000, 1, 1), (10_000, 0, 0)]);
        assert_eq!(drain(&mut w), vec![(10_000, 0, 0)]);
    }

    #[test]
    fn empty_wheel_behaves() {
        let mut w: TimingWheel<u8> = TimingWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.peek_time(), None);
        assert!(w.pop().is_none());
        assert!(w.pop_due(SimTime::MAX).is_none());
    }
}
