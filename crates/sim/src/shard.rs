//! Component-affinity sharding: parallelism *inside* one engine run.
//!
//! A [`ShardedEngine`] partitions an engine's components into affinity
//! groups ("shards") and executes them with conservative-window
//! synchronization — the classic conservative parallel-DES recipe, shaped
//! to this workspace's determinism contract:
//!
//! 1. **Affinity partition.** Every component belongs to exactly one shard
//!    (the paper's per-direction pipelines are the natural grouping: each
//!    host-side pipeline is independent between link crossings). A shard
//!    owns its components and a private [`TimingWheel`], so within a shard
//!    execution is *exactly* the serial engine: `(time, seq)` order, seq
//!    assigned at scheduling time.
//! 2. **Conservative windows.** Each round, the engine takes the global
//!    minimum due time `s` and lets every shard deliver all events in
//!    `[s, s + lookahead)`. The lookahead is the minimum cross-shard
//!    latency (for linked components, serialization + propagation), so no
//!    event delivered in the window can cause a *cross-shard* event inside
//!    it — shards cannot affect each other mid-window. An `assert!` in
//!    `Context::send` enforces the bound on every cross-shard send.
//! 3. **Key-preserving mailbox merge.** Every send carries a *sub-tick
//!    key* assigned at emission: `(source slot, per-source emission
//!    index)` — see `engine::tick_key`. Cross-shard sends are captured in
//!    per-shard outboxes with their keys and pushed into the destination
//!    shard's wheel at the window barrier, key intact. No sequence
//!    numbers are re-assigned anywhere, so the merge is pure placement
//!    and its order is irrelevant.
//!
//! Equality with the serial engine holds for *every* delivery, ties
//! included. The argument is two short inductions. Per-source keys match:
//! a component's emission counter is carried through decomposition and
//! advanced only when the component handles an event, and by induction on
//! delivery order each component handles the same event sequence in both
//! executors, so its `k`-th emission gets the same key. Per-destination
//! order matches: a destination wheel pops `(time, key)` ascending, the
//! conservative windows guarantee every event due in a window is in the
//! destination wheel before the window executes (cross-shard sends must
//! land strictly beyond the emitting window, and are merged at the next
//! barrier), and both executors therefore sort the same key set the same
//! way. Same-instant ties that the old global-sequence scheme resolved by
//! emission interleave — unreproducible shard-locally, and counted as
//! `cross_collisions` through PR 6 — are now ordered by the key, a pure
//! function of simulation state, so the tie classes are structurally
//! impossible rather than merely counted. DESIGN.md §11 has the full
//! argument, including the designs that lost.
//!
//! # Example
//!
//! Build serially, then shard — the component ids, pending events and
//! clock carry over, so the same harness code drives either executor:
//!
//! ```
//! use netfi_sim::shard::{ShardSpec, ShardedEngine};
//! use netfi_sim::{Component, ComponentId, Context, Engine, NullProbe};
//! use netfi_sim::{SimDuration, SimTime, Simulation};
//!
//! struct Counter { peer: Option<ComponentId>, heard: u64 }
//!
//! impl Component<u64> for Counter {
//!     fn on_event(&mut self, ctx: &mut Context<'_, u64>, payload: u64) {
//!         self.heard += 1;
//!         if payload > 0 {
//!             if let Some(peer) = self.peer {
//!                 // 10 ns >= the lookahead below: legal across shards.
//!                 ctx.send(peer, SimDuration::from_ns(10), payload - 1);
//!             }
//!         }
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//!     fn fork(&self) -> Box<dyn Component<u64>> {
//!         Box::new(Counter { peer: self.peer, heard: self.heard })
//!     }
//! }
//!
//! fn build() -> (Engine<u64>, ComponentId, ComponentId) {
//!     let mut e = Engine::new();
//!     let a = e.add_component(Box::new(Counter { peer: None, heard: 0 }));
//!     let b = e.add_component(Box::new(Counter { peer: Some(a), heard: 0 }));
//!     e.component_as_mut::<Counter>(a).unwrap().peer = Some(b);
//!     e.schedule(SimTime::ZERO, a, 40);
//!     (e, a, b)
//! }
//!
//! // Serial reference run …
//! let (mut serial, a, b) = build();
//! serial.run_until(SimTime::from_ms(1));
//!
//! // … and the same simulation, sharded one component per shard.
//! let (engine, _, _) = build();
//! let spec = ShardSpec {
//!     affinity: vec![0, 1],
//!     lookahead: SimDuration::from_ns(10),
//!     workers: 2,
//! };
//! let mut sharded = ShardedEngine::from_engine(engine, spec, |_| NullProbe);
//! sharded.run_until(SimTime::from_ms(1));
//!
//! assert_eq!(sharded.events_processed(), serial.events_processed());
//! assert_eq!(
//!     sharded.component_as::<Counter>(a).unwrap().heard,
//!     serial.component_as::<Counter>(a).unwrap().heard,
//! );
//! assert_eq!(sharded.component_as::<Counter>(b).unwrap().heard, 20);
//! assert_eq!(sharded.cross_events(), 40);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, PoisonError};

use crate::arena::ComponentArena;
use crate::engine::{
    tick_key, ComponentId, Context, CrossSend, Probe, Queued, RunBudget, RunOutcome, ShardRoute,
    Simulation,
};
use crate::queue::TimingWheel;
use crate::time::{SimDuration, SimTime};

/// How to shard an engine: the partition, the time bound, the fan-out.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Shard id per component index ([`ComponentId::index`]). Shard count
    /// is `max + 1`; every component must be covered.
    pub affinity: Vec<u16>,
    /// The conservative window length: a lower bound on the delay of any
    /// cross-shard send. For components linked by a physical link this is
    /// the link's propagation delay (serialization only adds to it).
    pub lookahead: SimDuration,
    /// Worker threads to execute window batches on. `1` runs every round
    /// inline with no threads. The output is byte-identical for any value.
    pub workers: usize,
}

/// An event in flight between shards. Its sub-tick key was minted by the
/// emitting component at send time, so the destination wheel orders it
/// exactly as the serial engine's single wheel would — the mailbox needs
/// no sorting and assigns nothing.
struct Routed<M> {
    time: SimTime,
    key: u64,
    dst: ComponentId,
    payload: M,
}

/// One affinity group: a slice of the component table plus a private
/// clock, wheel and probe. Within a shard, dispatch is *identical* to the
/// serial engine's.
struct Shard<M, P: Probe> {
    home: u16,
    /// The shard's slice of the donor's dense slot table: each slot
    /// carries a component and its emission counter, re-homed intact by
    /// the decomposition so the sub-tick keys minted here continue the
    /// serial sequences (see [`crate::arena`]).
    arena: ComponentArena<M>,
    wheel: TimingWheel<Queued<M>>,
    now: SimTime,
    events: u64,
    stop: bool,
    probe: P,
    outbox: Vec<CrossSend<M>>,
}

impl<M: 'static, P: Probe> Shard<M, P> {
    /// Delivers every due event in the window ending at `window_last`
    /// (inclusive). Exactly the serial `step_due` loop, against the
    /// shard's private wheel, with cross-shard sends diverted to the
    /// outbox by the routed [`Context`].
    fn run_window(&mut self, window_last: SimTime, affinity: &[u16], locs: &[u32], total: u32) {
        while !self.stop {
            let Some((time, _key, (dst, payload))) = self.wheel.pop_due(window_last) else {
                break;
            };
            debug_assert!(time >= self.now);
            self.now = time;
            self.events += 1;
            self.probe.on_dispatch(time, dst, self.events);
            let loc = locs[dst.index()] as usize;
            // Split one slot borrow across its fields, exactly like the
            // serial dispatch loop: the context takes `&mut slot.emit`,
            // the handler call takes `&mut slot.component`.
            let emitted = {
                let slot = self.arena.slot_mut(loc);
                let emit_before = slot.emit;
                let mut ctx = Context::for_shard(
                    time,
                    dst,
                    &mut slot.emit,
                    &mut self.wheel,
                    total,
                    &mut self.stop,
                    ShardRoute {
                        affinity,
                        home: self.home,
                        window_last,
                        outbox: &mut self.outbox,
                    },
                );
                slot.component.on_event(&mut ctx, payload);
                (slot.emit - emit_before) as usize
            };
            self.probe.on_deliver(time, dst, emitted);
        }
    }

    /// Next due time of this shard's wheel, as picoseconds (`u64::MAX`
    /// when empty) — the form the coordinator's min-reduction uses.
    fn next_due_ps(&mut self) -> u64 {
        self.wheel.peek_time().map_or(u64::MAX, |t| t.as_ps())
    }
}

/// The sharded engine: affinity groups of an [`crate::Engine`], run under
/// conservative-window scheduling with a deterministic mailbox merge.
///
/// Construct one with [`ShardedEngine::from_engine`] (see the
/// [module docs](self) for the model and a compiled example). Drive it
/// through the same [`Simulation`] surface the serial engine implements.
pub struct ShardedEngine<M, P: Probe = crate::engine::NullProbe> {
    shards: Vec<Shard<M, P>>,
    affinity: Vec<u16>,
    /// Component index → index within its shard's component table.
    locs: Vec<u32>,
    lookahead: SimDuration,
    workers: usize,
    components_total: u32,
    now: SimTime,
    /// Events the donor engine had already delivered at conversion.
    base_events: u64,
    /// The donor's engine-level schedule counter (sub-tick source slot
    /// 0), continued by [`Simulation::schedule`] on this engine.
    external_seq: u64,
    rounds: u64,
    cross_events: u64,
    stopped: bool,
}

impl<M, P: Probe> fmt::Debug for ShardedEngine<M, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.shards.len())
            .field("components", &self.affinity.len())
            .field("workers", &self.workers)
            .field("lookahead", &self.lookahead)
            .field("now", &self.now)
            .field("rounds", &self.rounds)
            .field("cross_events", &self.cross_events)
            .finish()
    }
}

impl<M: Send + 'static, P: Probe + Send> ShardedEngine<M, P> {
    /// Decomposes a serially-built engine into shards.
    ///
    /// Component ids, pending events, emission counters and the clock all
    /// carry over: events are re-routed to their destination shard with
    /// their sub-tick keys intact, which preserves every per-destination
    /// delivery order. The donor's probe is dropped; `probe_for` supplies
    /// one probe per shard (merge them afterwards with e.g. `netfi-obs`'s
    /// merged dispatch probe).
    ///
    /// # Panics
    ///
    /// Panics if the affinity table does not cover every component, the
    /// lookahead is zero, or `workers` is zero.
    pub fn from_engine<P0: Probe>(
        engine: crate::Engine<M, P0>,
        spec: ShardSpec,
        mut probe_for: impl FnMut(usize) -> P,
    ) -> ShardedEngine<M, P> {
        let parts = engine.into_shard_parts();
        let n = parts.components.len();
        assert!(
            spec.affinity.len() == n,
            "affinity table must cover every component"
        );
        assert!(spec.lookahead.as_ps() > 0, "lookahead must be positive");
        assert!(spec.workers > 0, "worker count must be non-zero");
        let nshards = spec
            .affinity
            .iter()
            .map(|&s| s as usize + 1)
            .max()
            .unwrap_or(1);
        let mut shards: Vec<Shard<M, P>> = (0..nshards)
            .map(|i| Shard {
                home: i as u16,
                arena: ComponentArena::new(),
                wheel: TimingWheel::new(),
                now: parts.now,
                events: 0,
                stop: false,
                probe: probe_for(i),
                outbox: Vec::new(),
            })
            .collect();
        let mut locs = vec![0u32; n];
        for (idx, slot) in parts.components.into_slots().into_iter().enumerate() {
            let shard = &mut shards[spec.affinity[idx] as usize];
            locs[idx] = shard.arena.len() as u32;
            // Slots move whole: each component keeps its emission counter.
            shard.arena.push_slot(slot);
        }
        // Pending events keep the sub-tick keys they were emitted with;
        // re-routing is pure placement, so each destination wheel holds
        // exactly the ordered set the serial wheel would pop for it.
        let mut queue = parts.queue;
        while let Some((time, key, (dst, payload))) = queue.pop() {
            let shard = &mut shards[spec.affinity[dst.index()] as usize];
            shard.wheel.push(time, key, (dst, payload));
        }
        ShardedEngine {
            shards,
            affinity: spec.affinity,
            locs,
            lookahead: spec.lookahead,
            workers: spec.workers,
            components_total: n as u32,
            now: parts.now,
            base_events: parts.events_processed,
            external_seq: parts.external_seq,
            rounds: 0,
            cross_events: 0,
            stopped: false,
        }
    }

    /// Number of affinity groups.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The worker-thread count this engine executes windows on.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The conservative window length.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Synchronization rounds (windows) executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Events that crossed a shard boundary through the mailbox.
    pub fn cross_events(&self) -> u64 {
        self.cross_events
    }

    /// The shard a component is assigned to.
    pub fn shard_of(&self, id: ComponentId) -> Option<usize> {
        self.affinity.get(id.index()).map(|&s| s as usize)
    }

    /// Borrows one shard's observation probe.
    pub fn probe(&self, shard: usize) -> Option<&P> {
        self.shards.get(shard).map(|s| &s.probe)
    }

    /// Iterates over every shard's probe, in shard order.
    pub fn probes(&self) -> impl Iterator<Item = &P> + '_ {
        self.shards.iter().map(|s| &s.probe)
    }

    /// Events delivered by one shard.
    pub fn shard_events(&self, shard: usize) -> u64 {
        self.shards.get(shard).map_or(0, |s| s.events)
    }

    fn window_last(start_ps: u64, lookahead: SimDuration, deadline: SimTime) -> SimTime {
        let end = start_ps.saturating_add(lookahead.as_ps() - 1);
        SimTime::from_ps(end.min(deadline.as_ps()))
    }

    /// Pushes mailbox entries into their destination shards' wheels with
    /// their emission-time keys intact — pure placement, order-free.
    fn distribute(shards: &mut [Shard<M, P>], affinity: &[u16], mailbox: &mut Vec<Routed<M>>) {
        for routed in mailbox.drain(..) {
            let shard = &mut shards[affinity[routed.dst.index()] as usize];
            shard.wheel.push(routed.time, routed.key, (routed.dst, routed.payload));
        }
    }

    /// The inline executor: same rounds, no threads. `workers == 1` (or a
    /// single shard) takes this path; it is the reference the threaded
    /// path must be indistinguishable from. Returns whether the event
    /// budget ended the run.
    fn run_rounds_inline(&mut self, deadline: SimTime, max_events: u64) -> bool {
        let ShardedEngine {
            ref mut shards,
            ref affinity,
            ref locs,
            lookahead,
            components_total,
            ..
        } = *self;
        let start_events: u64 = shards.iter().map(|s| s.events).sum();
        let mut mailbox: Vec<Routed<M>> = Vec::new();
        loop {
            // The budget is checked at round boundaries only, so the
            // decision is a pure function of simulation state — the
            // threaded executor evaluates the identical predicate at the
            // identical boundaries.
            let delivered: u64 = shards.iter().map(|s| s.events).sum::<u64>() - start_events;
            if delivered >= max_events {
                return true;
            }
            let start_ps = shards.iter_mut().map(Shard::next_due_ps).min().unwrap_or(u64::MAX);
            if start_ps == u64::MAX || start_ps > deadline.as_ps() {
                break;
            }
            let window_last = Self::window_last(start_ps, lookahead, deadline);
            self.rounds += 1;
            for shard in shards.iter_mut() {
                shard.run_window(window_last, affinity, locs, components_total);
            }
            for shard in shards.iter_mut() {
                for CrossSend { time, key, dst, payload } in shard.outbox.drain(..) {
                    mailbox.push(Routed { time, key, dst, payload });
                }
            }
            self.cross_events += mailbox.len() as u64;
            Self::distribute(shards, affinity, &mut mailbox);
            if shards.iter().any(|s| s.stop) {
                self.stopped = true;
                break;
            }
        }
        false
    }

    /// The threaded executor: shards are statically chunked over at most
    /// `workers` scoped threads (ceil-div chunking may need fewer threads
    /// than workers); the coordinator (this thread) merges mailboxes and
    /// opens windows between two barrier waits per round. Every decision
    /// is a function of simulation state gathered at barriers, so this
    /// path is byte-indistinguishable from [`Self::run_rounds_inline`].
    fn run_rounds_threaded(&mut self, deadline: SimTime, max_events: u64) -> bool {
        let nshards = self.shards.len();
        let workers = self.workers.min(nshards);
        let chunk = nshards.div_ceil(workers);
        // Ceil-div chunking can produce fewer chunks than `workers`
        // (5 shards over 4 workers → chunks of 2 → 3 threads); the
        // barrier must count the threads actually spawned or every
        // `wait` deadlocks.
        let nthreads = nshards.div_ceil(chunk);
        let affinity: &[u16] = &self.affinity;
        let locs: &[u32] = &self.locs;
        let lookahead = self.lookahead;
        let components_total = self.components_total;

        // Shared round state. Barriers order every access: the window and
        // inboxes are written by the coordinator before barrier A and read
        // by workers after it; mins/outboxes/stop are written by workers
        // before barrier B and read by the coordinator after it. Each
        // access additionally carries its own acquire/release edge so the
        // byte-identity argument never leans on barrier internals — every
        // value that reaches an output byte is ordered by the access that
        // published it (the workspace lint rejects `Ordering::Relaxed` in
        // determinism-scope crates for exactly this reason).
        let barrier = Barrier::new(nthreads + 1);
        let window_ps = AtomicU64::new(0);
        let exit = AtomicBool::new(false);
        let stop_flag = AtomicBool::new(false);
        // A component panic (e.g. the conservative-window assert) must
        // not strand the other threads at a barrier: the worker traps the
        // payload here, keeps pacing the barriers, and the coordinator
        // re-raises it after the scope joins.
        let panicked = AtomicBool::new(false);
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let mins: Vec<AtomicU64> = self
            .shards
            .iter_mut()
            .map(|s| AtomicU64::new(s.next_due_ps()))
            .collect();
        // Per-shard delivery counts, published at each barrier B so the
        // coordinator can evaluate the event budget at round boundaries.
        let counts: Vec<AtomicU64> = self
            .shards
            .iter()
            .map(|s| AtomicU64::new(s.events))
            .collect();
        let start_events: u64 = self.shards.iter().map(|s| s.events).sum();
        let inboxes: Vec<Mutex<Vec<Routed<M>>>> =
            (0..nshards).map(|_| Mutex::new(Vec::new())).collect();
        let outboxes: Vec<Mutex<Vec<CrossSend<M>>>> =
            (0..nshards).map(|_| Mutex::new(Vec::new())).collect();

        let mut rounds = 0u64;
        let mut cross_events = 0u64;
        let mut budget_hit = false;
        let mut mailbox: Vec<Routed<M>> = Vec::new();

        // lint: allow(thread-spawn) conservative-window fan-out: workers only execute pre-determined per-shard batches between barriers; merge order is a pure function of simulation state, so the schedule cannot reach any output byte
        std::thread::scope(|scope| {
            for shard_chunk in self.shards.chunks_mut(chunk) {
                let barrier = &barrier;
                let window_ps = &window_ps;
                let exit = &exit;
                let stop_flag = &stop_flag;
                let panicked = &panicked;
                let panic_payload = &panic_payload;
                let mins = &mins;
                let counts = &counts;
                let inboxes = &inboxes;
                let outboxes = &outboxes;
                scope.spawn(move || {
                    let mut dead = false;
                    loop {
                        barrier.wait(); // A: window opened (or exit).
                        if exit.load(Ordering::Acquire) {
                            break;
                        }
                        // A dead worker still paces the barriers so the
                        // others can reach the coordinator's exit order.
                        if dead {
                            barrier.wait(); // B (degenerate round).
                            continue;
                        }
                        let window_last = SimTime::from_ps(window_ps.load(Ordering::Acquire));
                        let round = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            for shard in shard_chunk.iter_mut() {
                                let sid = shard.home as usize;
                                {
                                    let mut inbox = inboxes[sid]
                                        .lock()
                                        .unwrap_or_else(PoisonError::into_inner);
                                    for routed in inbox.drain(..) {
                                        // Keys travel with the events; the
                                        // merge assigns nothing.
                                        shard.wheel.push(routed.time, routed.key, (routed.dst, routed.payload));
                                    }
                                }
                                shard.run_window(window_last, affinity, locs, components_total);
                                if shard.stop {
                                    stop_flag.store(true, Ordering::Release);
                                }
                                {
                                    let mut slot = outboxes[sid]
                                        .lock()
                                        .unwrap_or_else(PoisonError::into_inner);
                                    std::mem::swap(&mut *slot, &mut shard.outbox);
                                }
                                mins[sid].store(shard.next_due_ps(), Ordering::Release);
                                counts[sid].store(shard.events, Ordering::Release);
                            }
                        }));
                        if let Err(payload) = round {
                            dead = true;
                            let mut slot = panic_payload
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner);
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            drop(slot);
                            panicked.store(true, Ordering::Release);
                        }
                        barrier.wait(); // B: window drained, outboxes deposited.
                    }
                });
            }

            loop {
                // A worker died mid-round: its shard state is suspect and
                // its mins are stale, so release everyone and re-raise.
                if panicked.load(Ordering::Acquire) {
                    exit.store(true, Ordering::Release);
                    barrier.wait(); // A: release workers into their exit.
                    break;
                }
                // Gather deposited outboxes. The mailbox order is
                // irrelevant: every entry carries its emission-time key.
                for slot in outboxes.iter() {
                    let mut deposited = slot.lock().unwrap_or_else(PoisonError::into_inner);
                    for CrossSend { time, key, dst, payload } in deposited.drain(..) {
                        mailbox.push(Routed { time, key, dst, payload });
                    }
                }
                cross_events += mailbox.len() as u64;
                let mut next_ps = mins
                    .iter()
                    .map(|m| m.load(Ordering::Acquire))
                    .min()
                    .unwrap_or(u64::MAX);
                for routed in &mailbox {
                    next_ps = next_ps.min(routed.time.as_ps());
                }
                // The same round-boundary budget predicate the inline
                // executor evaluates, from the counts published at the
                // last barrier B.
                let delivered = counts
                    .iter()
                    .map(|c| c.load(Ordering::Acquire))
                    .sum::<u64>()
                    - start_events;
                if delivered >= max_events {
                    budget_hit = true;
                }
                if stop_flag.load(Ordering::Acquire) || budget_hit || next_ps > deadline.as_ps() {
                    exit.store(true, Ordering::Release);
                    barrier.wait(); // A: release workers into their exit.
                    break;
                }
                for routed in mailbox.drain(..) {
                    inboxes[affinity[routed.dst.index()] as usize]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(routed);
                }
                window_ps.store(
                    Self::window_last(next_ps, lookahead, deadline).as_ps(),
                    Ordering::Release,
                );
                rounds += 1;
                barrier.wait(); // A: open the window.
                barrier.wait(); // B: wait for the batch.
            }
        });

        if let Some(payload) = panic_payload
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
        {
            // Fail as loudly as the inline path: the first component
            // panic (its message intact) becomes this call's panic.
            std::panic::resume_unwind(payload);
        }
        self.rounds += rounds;
        self.cross_events += cross_events;
        self.stopped = stop_flag.load(Ordering::Acquire);
        // A stop can leave merged-but-undistributed mailbox entries (the
        // serial engine likewise leaves its queue populated on stop); park
        // them in the destination wheels (keys intact) so
        // `pending_events` and any later run see them.
        Self::distribute(&mut self.shards, &self.affinity, &mut mailbox);
        budget_hit
    }
}

impl<M: Send + 'static, P: Probe + Send> Simulation<M> for ShardedEngine<M, P> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn events_processed(&self) -> u64 {
        self.base_events + self.shards.iter().map(|s| s.events).sum::<u64>()
    }

    fn pending_events(&self) -> usize {
        self.shards.iter().map(|s| s.wheel.len()).sum()
    }

    fn component_count(&self) -> usize {
        self.affinity.len()
    }

    fn schedule(&mut self, time: SimTime, dst: ComponentId, payload: M) {
        assert!(time >= self.now, "cannot schedule into the past");
        assert!(dst.index() < self.affinity.len(), "unknown component {dst}");
        // Continue the donor engine's slot-0 schedule stream, so the
        // serial engine's keys for the same stimulus are reproduced.
        let key = tick_key(0, self.external_seq);
        self.external_seq += 1;
        let shard = &mut self.shards[self.affinity[dst.index()] as usize];
        shard.wheel.push(time, key, (dst, payload));
    }

    fn run_until(&mut self, deadline: SimTime) {
        let _ = self.run_budgeted(RunBudget::until(deadline));
    }

    fn run_budgeted(&mut self, budget: RunBudget) -> RunOutcome {
        self.stopped = false;
        for shard in &mut self.shards {
            shard.stop = false;
        }
        let budget_hit = if self.workers <= 1 || self.shards.len() <= 1 {
            self.run_rounds_inline(budget.deadline, budget.max_events)
        } else {
            self.run_rounds_threaded(budget.deadline, budget.max_events)
        };
        let max_now = self.shards.iter().map(|s| s.now).max().unwrap_or(self.now);
        if max_now > self.now {
            self.now = max_now;
        }
        if self.stopped {
            return RunOutcome::Stopped;
        }
        if budget_hit {
            return RunOutcome::BudgetExhausted;
        }
        if self.now < budget.deadline {
            self.now = budget.deadline;
        }
        if self.pending_events() == 0 {
            RunOutcome::Drained
        } else {
            RunOutcome::DeadlineReached
        }
    }

    fn component_as<T: 'static>(&self, id: ComponentId) -> Option<&T> {
        let shard = *self.affinity.get(id.index())? as usize;
        let loc = *self.locs.get(id.index())? as usize;
        self.shards
            .get(shard)?
            .arena
            .get(loc)?
            .as_any()
            .downcast_ref::<T>()
    }

    fn component_as_mut<T: 'static>(&mut self, id: ComponentId) -> Option<&mut T> {
        let shard = *self.affinity.get(id.index())? as usize;
        let loc = *self.locs.get(id.index())? as usize;
        self.shards
            .get_mut(shard)?
            .arena
            .get_mut(loc)?
            .as_any_mut()
            .downcast_mut::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NullProbe;
    use crate::{Component, Engine};
    use std::any::Any;

    /// Relays a countdown to its peer with a fixed delay, recording every
    /// delivery.
    #[derive(Debug, Clone)]
    struct Relay {
        peer: Option<ComponentId>,
        delay: SimDuration,
        log: Vec<(SimTime, u64)>,
    }

    impl Component<u64> for Relay {
        fn on_event(&mut self, ctx: &mut Context<'_, u64>, payload: u64) {
            self.log.push((ctx.now(), payload));
            if payload > 0 {
                if let Some(peer) = self.peer {
                    ctx.send(peer, self.delay, payload - 1);
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn fork(&self) -> Box<dyn Component<u64>> {
            Box::new(self.clone())
        }
    }

    fn ring(n: usize, delay: SimDuration, hops: u64) -> (Engine<u64>, Vec<ComponentId>) {
        let mut e = Engine::new();
        let ids: Vec<ComponentId> = (0..n)
            .map(|_| {
                e.add_component(Box::new(Relay {
                    peer: None,
                    delay,
                    log: Vec::new(),
                }))
            })
            .collect();
        for i in 0..n {
            e.component_as_mut::<Relay>(ids[i]).unwrap().peer = Some(ids[(i + 1) % n]);
        }
        e.schedule(SimTime::ZERO, ids[0], hops);
        (e, ids)
    }

    fn logs(ids: &[ComponentId], sim: &impl Simulation<u64>) -> Vec<Vec<(SimTime, u64)>> {
        ids.iter()
            .map(|&id| sim.component_as::<Relay>(id).unwrap().log.clone())
            .collect()
    }

    #[test]
    fn sharded_ring_matches_serial_for_every_worker_count() {
        let delay = SimDuration::from_ns(25);
        let deadline = SimTime::from_ms(1);
        let (mut serial, ids) = ring(4, delay, 100);
        serial.run_until(deadline);
        let want = logs(&ids, &serial);
        for workers in [1, 2, 4] {
            let (engine, ids) = ring(4, delay, 100);
            let spec = ShardSpec {
                affinity: vec![0, 1, 2, 3],
                lookahead: delay,
                workers,
            };
            let mut sharded = ShardedEngine::from_engine(engine, spec, |_| NullProbe);
            sharded.run_until(deadline);
            assert_eq!(logs(&ids, &sharded), want, "workers={workers}");
            assert_eq!(sharded.events_processed(), serial.events_processed());
            assert_eq!(sharded.now(), serial.now());
            assert_eq!(sharded.cross_events(), 100);
            assert!(sharded.rounds() > 0);
        }
    }

    #[test]
    fn intra_shard_sends_may_undercut_the_lookahead() {
        // Ring of 4 in 2 shards of 2: neighbours within a shard talk at
        // 1 ns while the lookahead is 25 ns — legal, because only
        // cross-shard sends carry the bound.
        #[derive(Debug)]
        struct Hub;
        impl Component<u64> for Hub {
            fn on_event(&mut self, _ctx: &mut Context<'_, u64>, _p: u64) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
            fn fork(&self) -> Box<dyn Component<u64>> {
                Box::new(Hub)
            }
        }
        let build = || {
            let mut e = Engine::new();
            let a = e.add_component(Box::new(Relay {
                peer: None,
                delay: SimDuration::from_ns(1),
                log: Vec::new(),
            }));
            let b = e.add_component(Box::new(Relay {
                peer: None,
                delay: SimDuration::from_ns(25),
                log: Vec::new(),
            }));
            let c = e.add_component(Box::new(Relay {
                peer: None,
                delay: SimDuration::from_ns(1),
                log: Vec::new(),
            }));
            let d = e.add_component(Box::new(Relay {
                peer: None,
                delay: SimDuration::from_ns(25),
                log: Vec::new(),
            }));
            let _ = e.add_component(Box::new(Hub));
            e.component_as_mut::<Relay>(a).unwrap().peer = Some(b);
            e.component_as_mut::<Relay>(b).unwrap().peer = Some(c);
            e.component_as_mut::<Relay>(c).unwrap().peer = Some(d);
            e.component_as_mut::<Relay>(d).unwrap().peer = Some(a);
            e.schedule(SimTime::ZERO, a, 64);
            (e, vec![a, b, c, d])
        };
        let (mut serial, ids) = build();
        serial.run_until(SimTime::from_ms(1));
        let want = logs(&ids, &serial);
        for workers in [1, 3] {
            let (engine, ids) = build();
            let spec = ShardSpec {
                affinity: vec![0, 0, 1, 1, 0],
                lookahead: SimDuration::from_ns(25),
                workers,
            };
            let mut sharded = ShardedEngine::from_engine(engine, spec, |_| NullProbe);
            sharded.run_until(SimTime::from_ms(1));
            assert_eq!(logs(&ids, &sharded), want, "workers={workers}");
            // Half the hops are intra-shard.
            assert_eq!(sharded.cross_events(), 32);
        }
    }

    #[test]
    fn schedule_between_runs_routes_to_the_right_shard() {
        let (engine, ids) = ring(2, SimDuration::from_ns(10), 0);
        let spec = ShardSpec {
            affinity: vec![0, 1],
            lookahead: SimDuration::from_ns(10),
            workers: 2,
        };
        let mut sharded = ShardedEngine::from_engine(engine, spec, |_| NullProbe);
        sharded.run_until(SimTime::from_us(1));
        sharded.schedule(SimTime::from_us(2), ids[1], 0);
        assert_eq!(sharded.pending_events(), 1);
        sharded.run_until(SimTime::from_us(3));
        assert_eq!(sharded.pending_events(), 0);
        assert_eq!(sharded.component_as::<Relay>(ids[1]).unwrap().log.len(), 1);
        assert_eq!(sharded.now(), SimTime::from_us(3));
    }

    #[test]
    fn uneven_shard_to_worker_chunking_terminates_and_matches_serial() {
        // 5 shards over 4 workers: ceil-div chunking (chunks of 2) spawns
        // 3 threads, fewer than `workers` — the barrier-sizing regression
        // case that used to deadlock. Workers=3 chunks evenly and rides
        // along as the control.
        let delay = SimDuration::from_ns(25);
        let deadline = SimTime::from_ms(1);
        let (mut serial, ids) = ring(5, delay, 100);
        serial.run_until(deadline);
        let want = logs(&ids, &serial);
        for workers in [3, 4] {
            let (engine, ids) = ring(5, delay, 100);
            let spec = ShardSpec {
                affinity: vec![0, 1, 2, 3, 4],
                lookahead: delay,
                workers,
            };
            let mut sharded = ShardedEngine::from_engine(engine, spec, |_| NullProbe);
            sharded.run_until(deadline);
            assert_eq!(logs(&ids, &sharded), want, "workers={workers}");
            assert_eq!(sharded.events_processed(), serial.events_processed());
            assert_eq!(sharded.now(), serial.now());
        }
    }

    #[test]
    fn same_window_local_and_cross_tie_matches_serial() {
        // a (shard 0) and c (shard 1) both fire at t = 0 and send to
        // b (shard 1) with the same 100 ns delay: a's arrival crosses
        // shards, c's stays local, and the two tie on (time, dst). This
        // was the residual tie class the pre-key merge could invert
        // (local seqs were assigned mid-window, merged seqs after it).
        // With sub-tick keys the pair orders by (source slot, emission
        // index) in both executors: a registered before c, so a's event
        // delivers first — serially and at every worker count.
        let relay = |delay| {
            Box::new(Relay {
                peer: None,
                delay,
                log: Vec::new(),
            })
        };
        let build = || {
            let mut e = Engine::new();
            let a = e.add_component(relay(SimDuration::from_ns(100)));
            let b = e.add_component(relay(SimDuration::from_ns(100)));
            let c = e.add_component(relay(SimDuration::from_ns(100)));
            e.component_as_mut::<Relay>(a).unwrap().peer = Some(b);
            e.component_as_mut::<Relay>(c).unwrap().peer = Some(b);
            e.schedule(SimTime::ZERO, a, 5);
            e.schedule(SimTime::ZERO, c, 9);
            (e, vec![a, b, c])
        };
        let (mut serial, ids) = build();
        serial.run_until(SimTime::from_ms(1));
        let t = SimTime::from_ns(100);
        assert_eq!(
            serial.component_as::<Relay>(ids[1]).unwrap().log,
            vec![(t, 4), (t, 8)],
            "serial tie order is source order: a's event first"
        );
        let want = logs(&ids, &serial);
        for workers in [1, 2] {
            let (engine, ids) = build();
            let spec = ShardSpec {
                affinity: vec![0, 1, 1],
                lookahead: SimDuration::from_ns(100),
                workers,
            };
            let mut sharded = ShardedEngine::from_engine(engine, spec, |_| NullProbe);
            sharded.run_until(SimTime::from_ms(1));
            assert_eq!(sharded.cross_events(), 1, "workers={workers}");
            assert_eq!(logs(&ids, &sharded), want, "workers={workers}");
        }
    }

    #[test]
    fn budgeted_run_is_worker_invariant_and_terminates() {
        // A tight ring running far past the budget: every executor must
        // report BudgetExhausted with the identical delivery count, since
        // the budget is evaluated at deterministic round boundaries.
        let delay = SimDuration::from_ns(25);
        let deadline = SimTime::from_ms(10);
        let budget = RunBudget::until(deadline).with_max_events(57);
        let mut counts = Vec::new();
        for workers in [1, 2, 4] {
            let (engine, _) = ring(4, delay, 1_000_000);
            let spec = ShardSpec {
                affinity: vec![0, 1, 2, 3],
                lookahead: delay,
                workers,
            };
            let mut sharded = ShardedEngine::from_engine(engine, spec, |_| NullProbe);
            assert_eq!(
                sharded.run_budgeted(budget),
                RunOutcome::BudgetExhausted,
                "workers={workers}"
            );
            assert!(sharded.events_processed() >= 57, "workers={workers}");
            counts.push((sharded.events_processed(), sharded.now(), sharded.rounds()));
        }
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[0], counts[2]);

        // Under the deadline with a generous budget, outcomes match the
        // serial engine's.
        let (engine, _) = ring(4, delay, 10);
        let spec = ShardSpec {
            affinity: vec![0, 1, 2, 3],
            lookahead: delay,
            workers: 2,
        };
        let mut sharded = ShardedEngine::from_engine(engine, spec, |_| NullProbe);
        assert_eq!(
            sharded.run_budgeted(RunBudget::until(deadline).with_max_events(1_000)),
            RunOutcome::Drained
        );
        assert_eq!(sharded.now(), deadline);
    }

    #[test]
    #[should_panic(expected = "inside the conservative window")]
    fn cross_shard_send_below_lookahead_is_rejected() {
        let (engine, _) = ring(2, SimDuration::from_ns(1), 5);
        let spec = ShardSpec {
            affinity: vec![0, 1],
            lookahead: SimDuration::from_ns(100),
            workers: 1,
        };
        let mut sharded = ShardedEngine::from_engine(engine, spec, |_| NullProbe);
        sharded.run_until(SimTime::from_ms(1));
    }

    #[test]
    #[should_panic(expected = "inside the conservative window")]
    fn cross_shard_send_below_lookahead_is_rejected_threaded() {
        // Same violation under the threaded executor: the worker's panic
        // must propagate out of `run_until` (with its message intact)
        // instead of stranding the coordinator at a barrier.
        let (engine, _) = ring(2, SimDuration::from_ns(1), 5);
        let spec = ShardSpec {
            affinity: vec![0, 1],
            lookahead: SimDuration::from_ns(100),
            workers: 2,
        };
        let mut sharded = ShardedEngine::from_engine(engine, spec, |_| NullProbe);
        sharded.run_until(SimTime::from_ms(1));
    }

    #[test]
    fn per_shard_probes_sum_to_the_serial_dispatch_count() {
        #[derive(Debug, Default)]
        struct CountProbe {
            dispatches: u64,
            emitted: u64,
        }
        impl Probe for CountProbe {
            fn on_dispatch(&mut self, _now: SimTime, _dst: ComponentId, _n: u64) {
                self.dispatches += 1;
            }
            fn on_deliver(&mut self, _now: SimTime, _dst: ComponentId, emitted: usize) {
                self.emitted += emitted as u64;
            }
        }
        let (mut serial, _) = ring(3, SimDuration::from_ns(10), 30);
        serial.run_until(SimTime::from_ms(1));
        let (engine, _) = ring(3, SimDuration::from_ns(10), 30);
        let spec = ShardSpec {
            affinity: vec![0, 1, 2],
            lookahead: SimDuration::from_ns(10),
            workers: 2,
        };
        let mut sharded = ShardedEngine::from_engine(engine, spec, |_| CountProbe::default());
        sharded.run_until(SimTime::from_ms(1));
        let dispatches: u64 = sharded.probes().map(|p| p.dispatches).sum();
        let emitted: u64 = sharded.probes().map(|p| p.emitted).sum();
        assert_eq!(dispatches, serial.events_processed());
        assert_eq!(emitted, 30);
    }
}
