//! Snapshot/fork support: deep, deterministic duplication of engine state.
//!
//! A campaign that replays every scenario from t=0 pays the same warm-up
//! (mapper election, route discovery) once per scenario. The snapshot
//! seam removes that cost: warm one engine, capture it into an
//! [`crate::engine::EngineSnapshot`], and [`fork`](Fork::fork) the capture
//! into as many independent runnable engines as the grid needs — each in
//! O(state), with no re-simulation.
//!
//! [`Fork`] is the capture primitive: a *deep*, *deterministic* copy. It
//! is deliberately a separate trait from `Clone`:
//!
//! - `Clone` on shared-buffer types ([`crate::bytes::SharedBytes`]) is a
//!   reference-count bump — which is exactly right for a fork too (the
//!   buffers are copy-on-write, so forks cannot observe each other), but
//!   the distinction matters for payload types that embed interior
//!   mutability or external handles: those must not silently satisfy a
//!   blanket bound and leak shared state across forks.
//! - A required `fork` method on [`crate::engine::Component`] threads the
//!   seam through every component layer explicitly; each implementation
//!   is one visible line that a review can hold to the fork-vs-fresh
//!   bit-identity contract.
//!
//! The correctness claim — a fork is bit-identical to a fresh run that
//! reached the same state — rests on every `fork` implementation copying
//! *all* state that can influence future event processing (queues, RNGs,
//! counters, timers, flow-control flags). The golden-export-hash oracle in
//! `tests/determinism.rs` pins the claim end-to-end for the full observed
//! campaign — and `netfi-lint`'s structural `fork-completeness` rule now
//! checks the field inventory statically: every type with an `impl Fork`,
//! a `Component::fork`, or a listing in the `fork_via_clone!` macro
//! below is resolved against its declaration, and a declared field the
//! fork body never reads fails the lint unless waived field-by-field
//! with `lint: allow(fork-skip) <field>: <reason>`. Growing a struct
//! without growing its fork is a CI failure, not a latent replay bug.

/// Deep, deterministic duplication for engine snapshots.
///
/// `fork` must return a value whose observable behaviour is identical to
/// the original's from this instant on: same pending work, same RNG
/// position, same counters. Implementations must not consult wall-clock
/// time, global state or anything else outside `self` (the `netfi-lint`
/// determinism rules police the `sim` code paths).
pub trait Fork {
    /// Returns an independent copy with identical observable state.
    fn fork(&self) -> Self;
}

/// Implements [`Fork`] as `Clone` for plain owned-data types whose clone
/// already is a deep, deterministic copy.
macro_rules! fork_via_clone {
    ($($ty:ty),* $(,)?) => {
        $(impl Fork for $ty {
            #[inline]
            fn fork(&self) -> Self {
                self.clone()
            }
        })*
    };
}

fork_via_clone!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, char, (), String
);

// Engine vocabulary: all plain owned data. `SharedBytes` is copy-on-write,
// so the refcount-bump clone is a correct fork (writers copy first).
fork_via_clone!(
    crate::time::SimTime,
    crate::time::SimDuration,
    crate::engine::ComponentId,
    crate::bytes::SharedBytes
);

impl<A: Fork, B: Fork> Fork for (A, B) {
    fn fork(&self) -> Self {
        (self.0.fork(), self.1.fork())
    }
}

impl<T: Fork> Fork for Option<T> {
    fn fork(&self) -> Self {
        self.as_ref().map(Fork::fork)
    }
}

impl<T: Fork> Fork for Vec<T> {
    fn fork(&self) -> Self {
        self.iter().map(Fork::fork).collect()
    }
}

impl<T: Fork> Fork for Box<T> {
    fn fork(&self) -> Self {
        Box::new((**self).fork())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::SharedBytes;
    use crate::time::SimTime;

    #[test]
    fn scalars_and_tuples_fork_by_value() {
        assert_eq!(7u32.fork(), 7);
        assert_eq!((SimTime::from_ns(5), 9u64).fork(), (SimTime::from_ns(5), 9));
        assert_eq!(Some("x".to_string()).fork(), Some("x".to_string()));
        assert_eq!(vec![1u8, 2, 3].fork(), vec![1, 2, 3]);
        assert_eq!(Box::new(4i64).fork(), Box::new(4));
    }

    #[test]
    fn shared_bytes_fork_is_cow_independent() {
        let original = SharedBytes::from(vec![1u8, 2, 3]);
        let mut forked = original.fork();
        assert_eq!(&*forked, &*original);
        // Writing to the fork copies first; the original is untouched.
        forked.make_mut()[0] = 9;
        assert_eq!(original[0], 1);
        assert_eq!(forked[0], 9);
    }
}
