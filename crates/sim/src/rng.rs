//! Deterministic, splittable pseudo-random numbers.
//!
//! Every stochastic element of a `netfi` experiment draws from a [`DetRng`]
//! seeded explicitly by the campaign, so reruns are bit-identical. The
//! generator is xoshiro256\*\* seeded through SplitMix64 — the combination
//! recommended by the xoshiro authors — implemented here directly so the
//! kernel has no external dependencies.

/// A deterministic PRNG (xoshiro256\*\*, SplitMix64-seeded).
///
/// # Example
///
/// ```
/// use netfi_sim::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let mut stream = a.fork(7); // independent substream, still deterministic
/// let _ = stream.gen_range(0..10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent substream keyed by `stream`.
    ///
    /// Forking with distinct keys from the same parent yields decorrelated
    /// generators; the parent is unaffected.
    pub fn fork(&self, stream: u64) -> DetRng {
        // Mix the current state with the stream key through SplitMix64.
        let mut sm = self.s[0] ^ self.s[3] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random value in `range` (Lemire's method, bias-free).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = range.end - range.start;
        // Lemire rejection sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(span as u128);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(span as u128);
                lo = m as u64;
            }
        }
        range.start + (m >> 64) as u64
    }

    /// A random `usize` index below `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn gen_index(&mut self, len: usize) -> usize {
        self.gen_range(0..len as u64) as usize
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        self.gen_f64() < p
    }

    /// A uniformly random float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A sample from the exponential distribution with the given mean.
    ///
    /// Useful for Poisson packet arrivals in workload generators.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "gen_exp: mean must be positive");
        let u = 1.0 - self.gen_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Chooses a uniformly random element of `slice`.
    ///
    /// Returns `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_index(slice.len())])
        }
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let parent = DetRng::new(99);
        let mut f1 = parent.fork(1);
        let mut f1b = parent.fork(1);
        let mut f2 = parent.fork(2);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = DetRng::new(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_whole_range() {
        let mut rng = DetRng::new(7);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        DetRng::new(0).gen_range(5..5);
    }

    #[test]
    fn gen_bool_probability_is_roughly_right() {
        let mut rng = DetRng::new(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = DetRng::new(3);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_exp_mean_is_roughly_right() {
        let mut rng = DetRng::new(5);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| rng.gen_exp(4.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = DetRng::new(13);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(17);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = DetRng::new(19);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }
}
