//! Cheaply-clonable byte buffers for wire images.
//!
//! A packet's bytes are built exactly once (at encode time) and then
//! travel the simulated network: across links, through switch fan-out,
//! into capture snapshots. None of those hops mutates the bytes, so they
//! all share one reference-counted allocation. Only the fault injector
//! writes into a frame in flight, and it pays for a private copy at that
//! moment — classic copy-on-write.
//!
//! [`SharedBytes::copy_count`] exposes a process-wide counter of how many
//! copy-on-write materialisations have happened, so tests can assert that
//! an uncorrupted pass-through run copies zero payload bytes.

// netfi-lint: deny(hot-path-alloc)
//
// Every frame in flight flows through this module; allocations here are
// either construction-time (building the one wire image) or the sanctioned
// copy-on-write, and each is individually allowlisted below.

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of copy-on-write materialisations (test hook).
static COW_COPIES: AtomicU64 = AtomicU64::new(0);

/// An immutable, cheaply-clonable view into a shared byte buffer.
///
/// Dereferences to `[u8]`, so all slice methods apply. [`Clone`] bumps a
/// reference count; [`SharedBytes::slice`] narrows the view without
/// copying; [`SharedBytes::make_mut`] gives mutable access, copying the
/// viewed bytes first only if the allocation is shared or windowed.
///
/// # Example
///
/// ```
/// use netfi_sim::bytes::SharedBytes;
/// let wire: SharedBytes = vec![0xCA, 0xFE, 0xBA, 0xBE].into();
/// let view = wire.slice(1..3);            // no copy
/// assert_eq!(&view[..], &[0xFE, 0xBA]);
/// let mut corrupted = wire.clone();       // no copy
/// corrupted.make_mut()[0] ^= 0xFF;        // copies here, once
/// assert_eq!(wire[0], 0xCA);
/// assert_eq!(corrupted[0], 0x35);
/// ```
#[derive(Clone)]
pub struct SharedBytes {
    // `Arc<Vec<u8>>` rather than `Arc<[u8]>`: wrapping an already-built
    // `Vec` is then a pointer move instead of a byte copy, and building
    // the wire image exactly once is the whole point of this type.
    data: Arc<Vec<u8>>,
    // u32 offsets keep the struct at 16 bytes, which shrinks every event
    // that carries a frame and with it the simulator's priority queue.
    // Wire images are packets: 4 GiB is unreachable by construction.
    start: u32,
    end: u32,
}

impl SharedBytes {
    /// An empty buffer (no allocation is shared, but none is needed).
    pub fn new() -> SharedBytes {
        // lint: allow(hot-path-alloc) Vec::new is capacity 0 and allocates nothing
        SharedBytes::from(Vec::new())
    }

    /// Narrows the view to `range` (relative to this view) without
    /// copying. Panics if the range is out of bounds, matching slice
    /// indexing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> SharedBytes {
        let len = (self.end - self.start) as usize;
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice {lo}..{hi} out of range for SharedBytes of length {len}"
        );
        SharedBytes {
            data: Arc::clone(&self.data),
            start: self.start + lo as u32,
            end: self.start + hi as u32,
        }
    }

    /// Mutable access to the bytes, copying them into a private
    /// allocation first if the current one is shared or windowed.
    ///
    /// Each materialising call bumps the process-wide
    /// [`copy_count`](SharedBytes::copy_count).
    pub fn make_mut(&mut self) -> &mut [u8] {
        let full = self.start == 0 && self.end as usize == self.data.len();
        let unique = Arc::get_mut(&mut self.data).is_some();
        if !(full && unique) {
            COW_COPIES.fetch_add(1, Ordering::AcqRel);
            // lint: allow(hot-path-alloc) this IS the sanctioned copy-on-write copy
            self.data = Arc::new(self.data[self.start as usize..self.end as usize].to_vec());
            self.start = 0;
            self.end = self.data.len() as u32;
        }
        // The branch above guarantees uniqueness, so this never clones.
        &mut Arc::make_mut(&mut self.data)[..]
    }

    /// How many copy-on-write materialisations have happened process-wide.
    ///
    /// Test hook: snapshot before a run, compare after, and an
    /// uncorrupted pass-through must show a delta of zero.
    pub fn copy_count() -> u64 {
        COW_COPIES.load(Ordering::Acquire)
    }
}

impl Deref for SharedBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start as usize..self.end as usize]
    }
}

impl AsRef<[u8]> for SharedBytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Default for SharedBytes {
    fn default() -> SharedBytes {
        SharedBytes::new()
    }
}

impl From<Vec<u8>> for SharedBytes {
    #[allow(clippy::expect_used)]
    fn from(v: Vec<u8>) -> SharedBytes {
        // lint: allow(expect) packets are KiB-scale; a 4 GiB wire image is a caller bug
        let end = u32::try_from(v.len()).expect("wire image over 4 GiB");
        SharedBytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&[u8]> for SharedBytes {
    fn from(s: &[u8]) -> SharedBytes {
        // lint: allow(hot-path-alloc) construction-time copy from a borrowed slice
        SharedBytes::from(s.to_vec())
    }
}

impl<const N: usize> From<[u8; N]> for SharedBytes {
    fn from(a: [u8; N]) -> SharedBytes {
        SharedBytes::from(&a[..])
    }
}

impl From<SharedBytes> for Vec<u8> {
    fn from(b: SharedBytes) -> Vec<u8> {
        // lint: allow(hot-path-alloc) explicit materialisation requested by the caller
        b.to_vec()
    }
}

impl fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl PartialEq for SharedBytes {
    fn eq(&self, other: &SharedBytes) -> bool {
        **self == **other
    }
}

impl Eq for SharedBytes {}

impl std::hash::Hash for SharedBytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (**self).hash(state)
    }
}

impl PartialEq<[u8]> for SharedBytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<&[u8]> for SharedBytes {
    fn eq(&self, other: &&[u8]) -> bool {
        **self == **other
    }
}

impl PartialEq<Vec<u8>> for SharedBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl PartialEq<SharedBytes> for Vec<u8> {
    fn eq(&self, other: &SharedBytes) -> bool {
        self[..] == **other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for SharedBytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        **self == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for SharedBytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        **self == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_the_allocation() {
        let a: SharedBytes = vec![1, 2, 3, 4, 5].into();
        let b = a.clone();
        let c = a.slice(1..4);
        assert_eq!(b, a);
        assert_eq!(&c[..], &[2, 3, 4]);
        assert!(Arc::ptr_eq(&a.data, &b.data));
        assert!(Arc::ptr_eq(&a.data, &c.data));
    }

    #[test]
    fn make_mut_copies_only_when_shared_or_windowed() {
        let mut a: SharedBytes = vec![9, 9, 9].into();
        let before = SharedBytes::copy_count();
        a.make_mut()[0] = 1; // unique + full view: no copy
        assert_eq!(SharedBytes::copy_count(), before);

        let b = a.clone();
        a.make_mut()[1] = 2; // shared: copies
        assert_eq!(SharedBytes::copy_count(), before + 1);
        assert_eq!(b, vec![1, 9, 9]);
        assert_eq!(a, vec![1, 2, 9]);

        let mut w = b.slice(1..3);
        w.make_mut()[0] = 7; // windowed: copies
        assert_eq!(SharedBytes::copy_count(), before + 2);
        assert_eq!(b, vec![1, 9, 9]);
        assert_eq!(&w[..], &[7, 9]);
    }

    #[test]
    fn slice_of_slice_and_bounds() {
        let a: SharedBytes = vec![0, 1, 2, 3, 4, 5].into();
        let b = a.slice(2..);
        let c = b.slice(..=1);
        assert_eq!(&c[..], &[2, 3]);
        assert_eq!(a.slice(6..).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        let a: SharedBytes = vec![1, 2].into();
        let _ = a.slice(1..4);
    }

    #[test]
    fn equality_across_representations() {
        let a: SharedBytes = vec![1, 2, 3].into();
        assert_eq!(a, vec![1, 2, 3]);
        assert_eq!(a, [1u8, 2, 3]);
        assert_eq!(a, &[1u8, 2, 3][..]);
        assert_eq!(a, SharedBytes::from(&[1u8, 2, 3][..]));
        assert_ne!(a, SharedBytes::new());
        assert_eq!(SharedBytes::default().len(), 0);
    }
}
