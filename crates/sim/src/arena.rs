//! Dense component storage for the dispatch hot path.
//!
//! The engine used to keep two parallel `Vec`s — `Vec<Box<dyn
//! Component<M>>>` and `Vec<u64>` emission counters — so every delivery
//! touched two unrelated heap tables. [`ComponentArena`] fuses them into
//! one slot table: each [`ArenaSlot`] co-locates a component's fat
//! pointer (16 bytes) with its emission counter (8 bytes) in a single
//! 24-byte record, so the dispatch loop's per-event metadata — the
//! counter it reads *and* writes, and the vtable pointer it jumps
//! through — lands on one cache line per component instead of two. At a
//! 1,000-host fabric (~1,020 slots ≈ 24 KiB) the whole table stays
//! resident in L1; the split layout needed twice the live lines.
//!
//! The arena is storage only: it never reorders slots, so a component's
//! index — and therefore its sub-tick key stream (see
//! `crate::engine::tick_key`) — is identical to the old twin-`Vec`
//! layout, byte for byte. Snapshots deep-copy slots via
//! [`ComponentArena::fork`]; shard decomposition consumes them via
//! [`ComponentArena::into_slots`] and rebuilds per-shard arenas with
//! [`ComponentArena::push_slot`], preserving each counter next to its
//! component.

// netfi-lint: deny(hot-path-alloc)
//
// `slot_mut` sits inside the engine's and the sharded executor's
// innermost loops; the only allocations here are the constructor's empty
// table and the setup-path `push`/`fork` growth, allowlisted below.

use crate::engine::Component;

/// One dense record of the component table: the component itself plus
/// its per-source emission counter (the low half of every sub-tick key
/// it mints). Keeping the counter inside the slot means a delivery's
/// read-modify-write of the counter and its indirect call through the
/// component share one cache line.
pub(crate) struct ArenaSlot<M> {
    /// The component occupying this slot.
    pub(crate) component: Box<dyn Component<M>>,
    /// The slot's emission counter. Carried through snapshots and shard
    /// decomposition: resetting one would re-issue sub-tick keys already
    /// spent on queued events.
    pub(crate) emit: u64,
}

impl<M: 'static> ArenaSlot<M> {
    /// Deep-copies the slot: the component via [`Component::fork`], the
    /// counter by value.
    pub(crate) fn fork(&self) -> ArenaSlot<M> {
        ArenaSlot {
            component: self.component.fork(),
            emit: self.emit,
        }
    }
}

/// The dense component table shared by the serial engine, snapshots and
/// shard decomposition (see the module docs).
pub(crate) struct ComponentArena<M> {
    slots: Vec<ArenaSlot<M>>,
}

impl<M> ComponentArena<M> {
    /// An empty arena.
    pub(crate) fn new() -> ComponentArena<M> {
        ComponentArena {
            // lint: allow(hot-path-alloc) one-time constructor; the slot table starts at capacity 0
            slots: Vec::new(),
        }
    }

    /// Number of occupied slots.
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Appends a fresh component with a zeroed emission counter and
    /// returns its slot index. Registration order is delivery-tie order,
    /// so the arena never reorders.
    pub(crate) fn push(&mut self, component: Box<dyn Component<M>>) -> usize {
        let idx = self.slots.len();
        self.slots.push(ArenaSlot { component, emit: 0 });
        idx
    }

    /// Appends an already-populated slot (shard decomposition re-homing
    /// a donor slot with its counter intact).
    pub(crate) fn push_slot(&mut self, slot: ArenaSlot<M>) {
        self.slots.push(slot);
    }

    /// Borrows a slot for one delivery. The caller splits the borrow
    /// across the slot's fields: `&mut slot.emit` feeds the context,
    /// `slot.component` handles the event.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds — the engine asserts destination
    /// validity at send time, so an out-of-range index here is a bug.
    #[inline]
    pub(crate) fn slot_mut(&mut self, idx: usize) -> &mut ArenaSlot<M> {
        &mut self.slots[idx]
    }

    /// Borrows a component immutably, if the slot exists.
    pub(crate) fn get(&self, idx: usize) -> Option<&dyn Component<M>> {
        self.slots.get(idx).map(|s| s.component.as_ref())
    }

    /// Borrows a component mutably, if the slot exists.
    pub(crate) fn get_mut(&mut self, idx: usize) -> Option<&mut Box<dyn Component<M>>> {
        self.slots.get_mut(idx).map(|s| &mut s.component)
    }

    /// Consumes the arena into its slots, in index order, for shard
    /// decomposition.
    pub(crate) fn into_slots(self) -> Vec<ArenaSlot<M>> {
        self.slots
    }
}

impl<M: 'static> ComponentArena<M> {
    /// Deep-copies the whole table for a snapshot or fork (see
    /// [`ArenaSlot::fork`]). Setup-path: runs once per capture, never in
    /// the event loop.
    pub(crate) fn fork(&self) -> ComponentArena<M> {
        ComponentArena {
            slots: self.slots.iter().map(ArenaSlot::fork).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Context;
    use std::any::Any;

    #[derive(Debug, Clone, Default)]
    struct Tick(u32);

    impl Component<u32> for Tick {
        fn on_event(&mut self, _ctx: &mut Context<'_, u32>, payload: u32) {
            self.0 += payload;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn fork(&self) -> Box<dyn Component<u32>> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn push_assigns_dense_indices_and_zeroed_counters() {
        let mut arena: ComponentArena<u32> = ComponentArena::new();
        assert_eq!(arena.push(Box::new(Tick::default())), 0);
        assert_eq!(arena.push(Box::new(Tick::default())), 1);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.slot_mut(0).emit, 0);
        assert_eq!(arena.slot_mut(1).emit, 0);
    }

    #[test]
    fn fork_deep_copies_components_and_counters() {
        let mut arena: ComponentArena<u32> = ComponentArena::new();
        arena.push(Box::new(Tick(7)));
        arena.slot_mut(0).emit = 42;

        let mut copy = arena.fork();
        assert_eq!(copy.slot_mut(0).emit, 42);

        // Mutating the copy must not touch the original.
        copy.slot_mut(0).emit = 99;
        if let Some(c) = copy.get_mut(0) {
            if let Some(t) = c.as_any_mut().downcast_mut::<Tick>() {
                t.0 = 1000;
            }
        }
        assert_eq!(arena.slot_mut(0).emit, 42);
        let orig = arena.get(0).and_then(|c| c.as_any().downcast_ref::<Tick>());
        assert_eq!(orig.map(|t| t.0), Some(7));
    }

    #[test]
    fn into_slots_preserves_order_and_counters() {
        let mut arena: ComponentArena<u32> = ComponentArena::new();
        arena.push(Box::new(Tick(1)));
        arena.push(Box::new(Tick(2)));
        arena.slot_mut(1).emit = 5;

        let slots = arena.into_slots();
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].emit, 0);
        assert_eq!(slots[1].emit, 5);

        let mut rebuilt: ComponentArena<u32> = ComponentArena::new();
        for slot in slots {
            rebuilt.push_slot(slot);
        }
        assert_eq!(rebuilt.slot_mut(1).emit, 5);
        let t = rebuilt.get(1).and_then(|c| c.as_any().downcast_ref::<Tick>());
        assert_eq!(t.map(|t| t.0), Some(2));
    }
}
