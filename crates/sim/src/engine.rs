//! The discrete-event engine.
//!
//! An [`Engine`] owns a set of components (network hosts, switches, the fault
//! injector, traffic sources, …) and a time-ordered event queue. Events carry
//! a domain-defined payload type `M`; delivery order is `(time, key)` where
//! the sub-tick key encodes *(source slot, per-source emission index)* — see
//! `tick_key` — so same-time events order by who emitted them and in what
//! order, a pure function of simulation state. Runs are fully deterministic,
//! and the order is reproducible shard-locally by a
//! [`crate::shard::ShardedEngine`] with no global coordination.

// netfi-lint: deny(hot-path-alloc)
//
// The event loop (`step`) is the simulator's innermost loop. The only
// allocations permitted here are one-time constructor ones (allowlisted
// below); the timing-wheel queue and component table amortise to zero
// allocations at steady state.

use std::any::Any;
use std::fmt;

use crate::arena::ComponentArena;
use crate::queue::TimingWheel;
use crate::snapshot::Fork;
use crate::time::{SimDuration, SimTime};

/// Bits reserved for the per-source emission counter in a sub-tick key;
/// the source slot occupies the bits above.
pub(crate) const EMIT_BITS: u32 = 40;

/// Packs a sub-tick ordering key from a source slot and that source's
/// emission counter.
///
/// Slot `0` is the engine-level [`Engine::schedule`] stream; slot
/// `id + 1` is component `id`'s [`Context::send`] stream. Counters
/// strictly increase per source, so keys are globally unique, and the
/// key of an emission depends only on *which component emitted it and
/// how many it had emitted before* — not on how emissions from other
/// sources interleave. That locality is what lets the sharded engine
/// reproduce the serial same-instant delivery order without seeing the
/// global emission sequence (see [`crate::shard`]).
pub(crate) fn tick_key(src_slot: u64, counter: u64) -> u64 {
    debug_assert!(
        counter < (1u64 << EMIT_BITS),
        "per-source emission counter overflow"
    );
    (src_slot << EMIT_BITS) | counter
}

/// Identifies a component registered with an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(u32);

impl ComponentId {
    /// The raw index of this component within its engine.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A simulated entity that reacts to events.
///
/// Implementors also supply the `as_any` hooks so experiment harnesses can
/// downcast components back to their concrete types after a run (see
/// [`Engine::component_as`]).
///
/// `Send` is a supertrait so any engine can be decomposed into a
/// [`crate::shard::ShardedEngine`], whose affinity groups execute on scoped
/// worker threads. Component state is plain owned data everywhere in this
/// workspace, so the bound costs nothing; it rules out `Rc`/`RefCell`
/// state, which would also defeat the determinism story.
pub trait Component<M>: 'static + Send {
    /// Called when an event addressed to this component becomes due.
    fn on_event(&mut self, ctx: &mut Context<'_, M>, payload: M);

    /// Upcast for downcasting by harnesses.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for downcasting by harnesses.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Deep-copies the component for an [`EngineSnapshot`].
    ///
    /// The copy must carry *all* state that can influence future event
    /// processing — queues, RNG positions, counters, generation numbers,
    /// flow-control flags — so a forked engine replays bit-identically to
    /// the original (see [`crate::snapshot`]). Components whose state is
    /// plain owned data implement this as `Box::new(self.clone())`.
    fn fork(&self) -> Box<dyn Component<M>>;
}

/// What the queue stores per event: destination and payload. Time and
/// sequence number are the wheel's ordering key.
pub(crate) type Queued<M> = (ComponentId, M);

/// A send that crossed a shard boundary during a conservative window.
/// Captured in the emitting shard's outbox and merged into the destination
/// shard's wheel at the window barrier (see [`crate::shard`]). It carries
/// the sub-tick key assigned at emission, so the destination wheel orders
/// it exactly as the serial engine's single wheel would.
pub(crate) struct CrossSend<M> {
    pub(crate) time: SimTime,
    pub(crate) key: u64,
    pub(crate) dst: ComponentId,
    pub(crate) payload: M,
}

/// Sharded-execution routing state threaded through a [`Context`].
///
/// Present only while a [`crate::shard::ShardedEngine`] is delivering a
/// window batch; the serial engine always runs with `route: None`, so its
/// dispatch loop pays one always-false branch per send.
pub(crate) struct ShardRoute<'a, M> {
    /// Component index → shard id, for the whole engine.
    pub(crate) affinity: &'a [u16],
    /// The shard this context is executing in.
    pub(crate) home: u16,
    /// Last instant (inclusive) of the current conservative window.
    /// Cross-shard sends must land strictly after it.
    pub(crate) window_last: SimTime,
    /// Captures cross-shard sends for the barrier merge.
    pub(crate) outbox: &'a mut Vec<CrossSend<M>>,
}

/// Scheduling context handed to a component while it handles an event.
///
/// All side effects a component can have on the simulation — scheduling
/// future events, stopping the run — go through the context. Events are
/// pushed straight into the engine's timing wheel (no intermediate
/// outbox), so an emitted event is handled exactly once.
pub struct Context<'a, M> {
    now: SimTime,
    self_id: ComponentId,
    /// The handling component's own emission counter — the low half of
    /// every sub-tick key it mints (see [`tick_key`]).
    emit: &'a mut u64,
    queue: &'a mut TimingWheel<Queued<M>>,
    components: u32,
    stop_requested: &'a mut bool,
    route: Option<ShardRoute<'a, M>>,
}

impl<M> fmt::Debug for Context<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("now", &self.now)
            .field("self_id", &self.self_id)
            .finish_non_exhaustive()
    }
}

impl<M> Context<'_, M> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the component currently handling an event.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Schedules `payload` for delivery to `dst` after `delay`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not a registered component.
    pub fn send(&mut self, dst: ComponentId, delay: SimDuration, payload: M) {
        assert!(
            dst.0 < self.components,
            "event addressed to unknown component {dst}"
        );
        let time = self.now + delay;
        let counter = *self.emit;
        *self.emit += 1;
        let key = tick_key(u64::from(self.self_id.0) + 1, counter);
        if let Some(route) = self.route.as_mut() {
            if route.affinity[dst.index()] != route.home {
                // The conservative-window invariant: a cross-shard send may
                // not land inside the window the shards are executing, or
                // the destination shard could already have run past it.
                assert!(
                    time > route.window_last,
                    "cross-shard send to {dst} lands inside the conservative \
                     window; the affinity partition violates the lookahead bound"
                );
                route.outbox.push(CrossSend { time, key, dst, payload });
                return;
            }
        }
        self.queue.push(time, key, (dst, payload));
    }

    /// Schedules `payload` for delivery back to the current component.
    pub fn send_self(&mut self, delay: SimDuration, payload: M) {
        self.send(self.self_id, delay, payload);
    }

    /// Schedules `payload` for immediate (same-time) delivery to `dst`.
    ///
    /// Same-time events are delivered in scheduling order.
    pub fn send_now(&mut self, dst: ComponentId, payload: M) {
        self.send(dst, SimDuration::ZERO, payload);
    }

    /// Asks the engine to stop after the current event completes.
    ///
    /// Under a [`crate::shard::ShardedEngine`] the request takes effect at
    /// the current window barrier: the stopping shard delivers no further
    /// events, other shards finish their window batch, and the run ends at
    /// the round boundary (see the module docs of [`crate::shard`]).
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }
}

impl<'a, M> Context<'a, M> {
    /// Builds a context for one sharded-window delivery. Only
    /// [`crate::shard`] calls this; the serial engine builds its contexts
    /// inline with `route: None`.
    pub(crate) fn for_shard(
        now: SimTime,
        self_id: ComponentId,
        emit: &'a mut u64,
        queue: &'a mut TimingWheel<Queued<M>>,
        components: u32,
        stop_requested: &'a mut bool,
        route: ShardRoute<'a, M>,
    ) -> Context<'a, M> {
        Context {
            now,
            self_id,
            emit,
            queue,
            components,
            stop_requested,
            route: Some(route),
        }
    }
}

/// An observation seam on the engine's dispatch loop.
///
/// The probe is a *type parameter* of [`Engine`], so the choice of probe is
/// made at compile time and dispatch is static. The default, [`NullProbe`],
/// has empty `#[inline(always)]` hooks: an unprobed engine compiles to the
/// same dispatch loop it had before the seam existed. A real probe (e.g.
/// `netfi-obs`'s `DispatchProbe`) sees every delivery without the engine
/// paying for observation when it is off.
///
/// `Debug` is a supertrait so harness structs generic over their probe can
/// keep `#[derive(Debug)]`.
pub trait Probe: fmt::Debug + 'static {
    /// Called when an event is popped, immediately before delivery.
    ///
    /// `events_processed` is the running delivery count *including* this
    /// event.
    #[inline(always)]
    fn on_dispatch(&mut self, now: SimTime, dst: ComponentId, events_processed: u64) {
        let _ = (now, dst, events_processed);
    }

    /// Called after the component handled the event. `emitted` is how
    /// many events the handler scheduled.
    #[inline(always)]
    fn on_deliver(&mut self, now: SimTime, dst: ComponentId, emitted: usize) {
        let _ = (now, dst, emitted);
    }
}

/// The no-op probe: both hooks inline to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// Bounds for a budgeted run (see [`Engine::run_budgeted`]): a simulated
/// deadline *and* a cap on delivered events. Both are pure functions of
/// simulation state, so a budgeted run returns the same [`RunOutcome`] on
/// the serial engine and on a [`crate::shard::ShardedEngine`] at any
/// worker count (the sharded engine checks the event cap at window
/// boundaries, so it may overrun `max_events` by at most one window's
/// deliveries — deterministically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunBudget {
    /// Latest simulated instant to deliver events at (inclusive).
    pub deadline: SimTime,
    /// Maximum events to deliver in this call.
    pub max_events: u64,
}

impl RunBudget {
    /// A pure time bound: run to `deadline` with no event cap.
    pub fn until(deadline: SimTime) -> RunBudget {
        RunBudget {
            deadline,
            max_events: u64::MAX,
        }
    }

    /// Caps the number of events delivered by this run.
    #[must_use]
    pub fn with_max_events(mut self, max_events: u64) -> RunBudget {
        self.max_events = max_events;
        self
    }
}

/// Why a budgeted run returned (see [`Engine::run_budgeted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The queue drained: nothing left to deliver anywhere.
    Drained,
    /// A component called [`Context::stop`].
    Stopped,
    /// Events remain, but none due at or before the deadline.
    DeadlineReached,
    /// The event cap ran out with the deadline not yet reached — the
    /// signature of a livelock when the cap was sized generously.
    BudgetExhausted,
}

/// The event-driven simulation engine.
///
/// See the [crate-level documentation](crate) for a complete example. The
/// `P` parameter selects the observation [`Probe`]; it defaults to
/// [`NullProbe`] (no observation, no overhead), so existing
/// `Engine<M>`-typed code is unaffected.
pub struct Engine<M, P: Probe = NullProbe> {
    /// The component table: one dense slot per component co-locating the
    /// component with its emission counter (the low half of the sub-tick
    /// keys it mints), so a delivery's counter read-modify-write and its
    /// vtable jump share a cache line (see [`crate::arena`]). Counters
    /// are carried through snapshots and shard decomposition: resetting
    /// one would re-issue keys already spent on queued events.
    components: ComponentArena<M>,
    /// The event queue: a bucketed timing wheel (see [`crate::queue`])
    /// that preserves the exact `(time, seq)` delivery order the old
    /// binary heap had, at O(1) push/pop instead of O(log n) sifts.
    queue: TimingWheel<Queued<M>>,
    now: SimTime,
    /// Emission counter for the engine-level [`Engine::schedule`] stream
    /// (sub-tick source slot 0).
    external_seq: u64,
    events_processed: u64,
    stop_requested: bool,
    probe: P,
}

impl<M, P: Probe> fmt::Debug for Engine<M, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("components", &self.components.len())
            .field("queued", &self.queue.len())
            .field("now", &self.now)
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<M: 'static> Default for Engine<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: 'static> Engine<M> {
    /// Creates an empty engine at time zero with no observation probe.
    pub fn new() -> Self {
        Engine::with_probe(NullProbe)
    }
}

impl<M: 'static, P: Probe> Engine<M, P> {
    /// Creates an empty engine at time zero observed by `probe`.
    pub fn with_probe(probe: P) -> Self {
        Engine {
            components: ComponentArena::new(),
            queue: TimingWheel::new(),
            now: SimTime::ZERO,
            external_seq: 0,
            events_processed: 0,
            stop_requested: false,
            probe,
        }
    }

    /// Borrows the observation probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Mutably borrows the observation probe (e.g. to arm or drain it).
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Registers a component and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the component table would exceed the sub-tick key
    /// scheme's source-slot capacity (2²⁴ − 2 components).
    #[allow(clippy::expect_used)]
    pub fn add_component(&mut self, component: Box<dyn Component<M>>) -> ComponentId {
        // Slot `id + 1` must fit the 24 bits above the emission counter.
        assert!(
            self.components.len() < (1usize << (64 - EMIT_BITS)) - 1,
            "too many components for the sub-tick key scheme"
        );
        // lint: allow(expect) the slot-capacity assert above already bounds the table
        let id = ComponentId(u32::try_from(self.components.len()).expect("too many components"));
        self.components.push(component);
        id
    }

    /// The current simulated time (the time of the last delivered event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The total number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The number of events still queued.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `payload` for delivery to `dst` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past or `dst` is not registered.
    pub fn schedule(&mut self, time: SimTime, dst: ComponentId, payload: M) {
        assert!(time >= self.now, "cannot schedule into the past");
        assert!(dst.index() < self.components.len(), "unknown component {dst}");
        let key = tick_key(0, self.external_seq);
        self.external_seq += 1;
        self.queue.push(time, key, (dst, payload));
    }

    /// Schedules `payload` for delivery to `dst` after `delay` from now.
    pub fn schedule_after(&mut self, delay: SimDuration, dst: ComponentId, payload: M) {
        self.schedule(self.now + delay, dst, payload);
    }

    /// Delivers the next event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        self.step_due(SimTime::MAX)
    }

    /// Delivers the next event if it is due at or before `deadline`.
    /// One queue walk covers both the deadline check and the pop.
    #[inline]
    fn step_due(&mut self, deadline: SimTime) -> bool {
        let Some((time, _key, (dst, payload))) = self.queue.pop_due(deadline) else {
            return false;
        };
        debug_assert!(time >= self.now);
        self.now = time;
        self.events_processed += 1;
        self.probe.on_dispatch(self.now, dst, self.events_processed);

        let idx = dst.index();
        let registered = u32::try_from(self.components.len()).unwrap_or(u32::MAX);
        // One slot borrow covers the counter and the component: the
        // context takes `&mut slot.emit`, the handler call takes
        // `&mut slot.component` — disjoint fields of one dense record.
        let emitted = {
            let slot = self.components.slot_mut(idx);
            let emit_before = slot.emit;
            let mut ctx = Context {
                now: self.now,
                self_id: dst,
                emit: &mut slot.emit,
                queue: &mut self.queue,
                components: registered,
                stop_requested: &mut self.stop_requested,
                route: None,
            };
            slot.component.on_event(&mut ctx, payload);
            // Every send a handler makes goes through its own counter,
            // so the delta is exactly what this delivery emitted.
            (slot.emit - emit_before) as usize
        };
        self.probe.on_deliver(self.now, dst, emitted);
        true
    }

    /// Runs until the queue drains or a component calls [`Context::stop`].
    pub fn run(&mut self) {
        self.stop_requested = false;
        while !self.stop_requested && self.step() {}
    }

    /// Runs until simulated time would exceed `deadline`, the queue drains,
    /// or a component requests a stop. Events at exactly `deadline` are
    /// delivered; the engine clock never passes `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        let _ = self.run_budgeted(RunBudget::until(deadline));
    }

    /// Runs under both a time bound and an event-count bound, and reports
    /// which condition ended the run.
    ///
    /// The event budget is what makes fault-injection campaigns total: a
    /// fault that livelocks the simulated system (e.g. a corrupted
    /// control loop re-arming itself at the same instant forever) cannot
    /// spin the host — the run returns [`RunOutcome::BudgetExhausted`]
    /// after exactly `max_events` deliveries, a pure function of
    /// simulation state. On the deadline/drain/stop paths the clock
    /// behaves exactly like [`Engine::run_until`]; on budget exhaustion
    /// the clock stays at the last delivered event.
    pub fn run_budgeted(&mut self, budget: RunBudget) -> RunOutcome {
        self.stop_requested = false;
        let mut delivered = 0u64;
        while !self.stop_requested {
            if delivered >= budget.max_events {
                return RunOutcome::BudgetExhausted;
            }
            if !self.step_due(budget.deadline) {
                break;
            }
            delivered += 1;
        }
        if self.stop_requested {
            return RunOutcome::Stopped;
        }
        if self.now < budget.deadline {
            self.now = budget.deadline;
        }
        if self.queue.is_empty() {
            RunOutcome::Drained
        } else {
            RunOutcome::DeadlineReached
        }
    }

    /// Runs for `span` of simulated time from now.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    /// Borrows a component by id.
    ///
    /// Returns `None` if `id` is stale/unknown.
    pub fn component(&self, id: ComponentId) -> Option<&dyn Component<M>> {
        self.components.get(id.index())
    }

    /// Downcasts a component to its concrete type.
    ///
    /// # Example
    ///
    /// See the [crate-level documentation](crate).
    pub fn component_as<T: 'static>(&self, id: ComponentId) -> Option<&T> {
        self.components
            .get(id.index())
            .and_then(|c| c.as_any().downcast_ref::<T>())
    }

    /// Mutably downcasts a component to its concrete type.
    pub fn component_as_mut<T: 'static>(&mut self, id: ComponentId) -> Option<&mut T> {
        self.components
            .get_mut(id.index())
            .and_then(|c| c.as_any_mut().downcast_mut::<T>())
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Decomposes the engine into the pieces a
    /// [`crate::shard::ShardedEngine`] redistributes: the component table,
    /// the pending event queue and the clock/sequence state. The donor's
    /// probe is dropped — the sharded engine installs one probe per shard.
    pub(crate) fn into_shard_parts(self) -> ShardParts<M> {
        ShardParts {
            components: self.components,
            external_seq: self.external_seq,
            queue: self.queue,
            now: self.now,
            events_processed: self.events_processed,
        }
    }
}

impl<M: Fork + 'static, P: Probe + Clone> Engine<M, P> {
    /// Captures the engine's full deterministic state — components, the
    /// timing wheel (buckets, overflow heap, bitmap, cursor), clock,
    /// sequence counter, delivery count and probe — into an immutable
    /// [`EngineSnapshot`].
    ///
    /// The canonical use is amortising campaign warm-up: run one engine
    /// to a warmed state, snapshot it once, then
    /// [`fork`](EngineSnapshot::fork) the snapshot into an independent
    /// runnable engine per failure scenario in O(state), with no
    /// re-simulation. Each fork replays bit-identically to a fresh run
    /// that reached the same state (pinned end-to-end by the golden
    /// export hashes in `tests/determinism.rs`).
    pub fn snapshot(&self) -> EngineSnapshot<M, P> {
        EngineSnapshot {
            components: self.components.fork(),
            queue: self.queue.fork(),
            now: self.now,
            external_seq: self.external_seq,
            events_processed: self.events_processed,
            // lint: allow(hot-path-alloc) snapshot capture is campaign setup, not the event loop
            probe: self.probe.clone(),
        }
    }
}

/// An immutable capture of a warmed [`Engine`], forkable into independent
/// runnable engines (see [`Engine::snapshot`] and [`crate::snapshot`]).
///
/// The snapshot holds its own deep copy of every component, the full
/// timing-wheel state (buckets in their exact order, lazy-sort flags, the
/// overflow heap, the occupancy bitmap and cursor), the clock, the
/// sequence counter, the delivery count, and the probe. It holds *no*
/// reference back to the donor engine: the donor may keep running — or be
/// dropped — without affecting any fork taken later.
pub struct EngineSnapshot<M, P: Probe = NullProbe> {
    components: ComponentArena<M>,
    queue: TimingWheel<Queued<M>>,
    now: SimTime,
    external_seq: u64,
    events_processed: u64,
    probe: P,
}

impl<M, P: Probe> fmt::Debug for EngineSnapshot<M, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineSnapshot")
            .field("components", &self.components.len())
            .field("queued", &self.queue.len())
            .field("now", &self.now)
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<M: Fork + 'static, P: Probe + Clone> EngineSnapshot<M, P> {
    /// Builds an independent runnable [`Engine`] from the captured state.
    ///
    /// Forking is O(state): components and queued events are deep-copied,
    /// nothing is re-simulated. The fork resumes at the capture's clock
    /// and sequence counter with `stop_requested` cleared, so its event
    /// trajectory is exactly the donor's from the capture instant on —
    /// until the caller perturbs it (a failure spec, new stimulus).
    pub fn fork(&self) -> Engine<M, P> {
        Engine {
            components: self.components.fork(),
            queue: self.queue.fork(),
            now: self.now,
            external_seq: self.external_seq,
            events_processed: self.events_processed,
            stop_requested: false,
            // lint: allow(hot-path-alloc) fork construction is campaign setup, not the event loop
            probe: self.probe.clone(),
        }
    }
}

impl<M, P: Probe> EngineSnapshot<M, P> {
    /// The simulated time the capture was taken at.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events that were pending when the capture was taken.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Number of captured components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }
}

/// What [`Engine::into_shard_parts`] yields (see [`crate::shard`]).
pub(crate) struct ShardParts<M> {
    /// The donor's dense slot table: each slot carries a component and
    /// its emission counter (see [`crate::arena`]).
    pub(crate) components: ComponentArena<M>,
    /// The engine-level schedule stream's counter (source slot 0).
    pub(crate) external_seq: u64,
    pub(crate) queue: TimingWheel<Queued<M>>,
    pub(crate) now: SimTime,
    pub(crate) events_processed: u64,
}

/// The control surface shared by the serial [`Engine`] and the
/// [`crate::shard::ShardedEngine`].
///
/// Harness code written against this trait (building scripts, scheduling
/// stimulus, running phases, downcasting components afterwards) runs
/// unchanged on either executor — which is how `nftape`'s observed
/// campaign pins the sharded engine against the serial golden hashes.
/// The trait has generic methods, so it is meant for `impl Simulation<M>`
/// bounds rather than trait objects.
pub trait Simulation<M> {
    /// The current simulated time (see [`Engine::now`]).
    fn now(&self) -> SimTime;

    /// Total events delivered so far.
    fn events_processed(&self) -> u64;

    /// Events still queued.
    fn pending_events(&self) -> usize;

    /// Number of registered components.
    fn component_count(&self) -> usize;

    /// Schedules `payload` for delivery to `dst` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past or `dst` is not registered.
    fn schedule(&mut self, time: SimTime, dst: ComponentId, payload: M);

    /// Runs until `deadline` (events at exactly `deadline` are delivered;
    /// the clock never passes it), the queue drains, or a stop request.
    fn run_until(&mut self, deadline: SimTime);

    /// Runs under a time bound *and* an event-count bound, reporting
    /// which ended the run (see [`Engine::run_budgeted`]). Campaign
    /// drivers use this instead of open-ended runs so a fault that
    /// livelocks the simulated system terminates deterministically as
    /// [`RunOutcome::BudgetExhausted`].
    fn run_budgeted(&mut self, budget: RunBudget) -> RunOutcome;

    /// Schedules `payload` for delivery to `dst` after `delay` from now.
    fn schedule_after(&mut self, delay: SimDuration, dst: ComponentId, payload: M) {
        let time = self.now() + delay;
        self.schedule(time, dst, payload);
    }

    /// Runs for `span` of simulated time from now.
    fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now() + span;
        self.run_until(deadline);
    }

    /// Downcasts a component to its concrete type.
    fn component_as<T: 'static>(&self, id: ComponentId) -> Option<&T>;

    /// Mutably downcasts a component to its concrete type.
    fn component_as_mut<T: 'static>(&mut self, id: ComponentId) -> Option<&mut T>;
}

impl<M: 'static, P: Probe> Simulation<M> for Engine<M, P> {
    fn now(&self) -> SimTime {
        Engine::now(self)
    }
    fn events_processed(&self) -> u64 {
        Engine::events_processed(self)
    }
    fn pending_events(&self) -> usize {
        Engine::pending_events(self)
    }
    fn component_count(&self) -> usize {
        Engine::component_count(self)
    }
    fn schedule(&mut self, time: SimTime, dst: ComponentId, payload: M) {
        Engine::schedule(self, time, dst, payload);
    }
    fn run_until(&mut self, deadline: SimTime) {
        Engine::run_until(self, deadline);
    }
    fn run_budgeted(&mut self, budget: RunBudget) -> RunOutcome {
        Engine::run_budgeted(self, budget)
    }
    fn component_as<T: 'static>(&self, id: ComponentId) -> Option<&T> {
        Engine::component_as(self, id)
    }
    fn component_as_mut<T: 'static>(&mut self, id: ComponentId) -> Option<&mut T> {
        Engine::component_as_mut(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Default)]
    struct Recorder {
        seen: Vec<(u64, u32)>, // (time in ns, value)
    }

    impl Component<u32> for Recorder {
        fn on_event(&mut self, ctx: &mut Context<'_, u32>, payload: u32) {
            self.seen.push((ctx.now().as_ps() / 1000, payload));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn fork(&self) -> Box<dyn Component<u32>> {
            Box::new(self.clone())
        }
    }

    #[derive(Debug, Clone)]
    struct PingPong {
        peer: Option<ComponentId>,
        remaining: u32,
        bounces: u32,
    }

    impl Component<u32> for PingPong {
        fn on_event(&mut self, ctx: &mut Context<'_, u32>, payload: u32) {
            self.bounces += 1;
            if payload > 0 {
                if let Some(peer) = self.peer {
                    ctx.send(peer, SimDuration::from_ns(5), payload - 1);
                }
            } else {
                ctx.stop();
            }
            self.remaining = payload;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn fork(&self) -> Box<dyn Component<u32>> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn events_deliver_in_time_order() {
        let mut e = Engine::new();
        let r = e.add_component(Box::new(Recorder::default()));
        e.schedule(SimTime::from_ns(30), r, 3);
        e.schedule(SimTime::from_ns(10), r, 1);
        e.schedule(SimTime::from_ns(20), r, 2);
        e.run();
        let rec = e.component_as::<Recorder>(r).unwrap();
        assert_eq!(rec.seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn same_time_events_deliver_in_schedule_order() {
        let mut e = Engine::new();
        let r = e.add_component(Box::new(Recorder::default()));
        for v in 0..10 {
            e.schedule(SimTime::from_ns(5), r, v);
        }
        e.run();
        let rec = e.component_as::<Recorder>(r).unwrap();
        let values: Vec<u32> = rec.seen.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn ping_pong_terminates_and_counts() {
        let mut e = Engine::new();
        let a = e.add_component(Box::new(PingPong { peer: None, remaining: 0, bounces: 0 }));
        let b = e.add_component(Box::new(PingPong { peer: Some(a), remaining: 0, bounces: 0 }));
        e.component_as_mut::<PingPong>(a).unwrap().peer = Some(b);
        e.schedule(SimTime::ZERO, a, 10);
        e.run();
        let ta = e.component_as::<PingPong>(a).unwrap().bounces;
        let tb = e.component_as::<PingPong>(b).unwrap().bounces;
        assert_eq!(ta + tb, 11);
        assert_eq!(e.now(), SimTime::from_ns(50));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = Engine::new();
        let r = e.add_component(Box::new(Recorder::default()));
        e.schedule(SimTime::from_ns(10), r, 1);
        e.schedule(SimTime::from_ns(100), r, 2);
        e.run_until(SimTime::from_ns(50));
        assert_eq!(e.now(), SimTime::from_ns(50));
        assert_eq!(e.pending_events(), 1);
        let rec = e.component_as::<Recorder>(r).unwrap();
        assert_eq!(rec.seen.len(), 1);
    }

    #[test]
    fn run_until_delivers_events_at_exact_deadline() {
        let mut e = Engine::new();
        let r = e.add_component(Box::new(Recorder::default()));
        e.schedule(SimTime::from_ns(50), r, 1);
        e.run_until(SimTime::from_ns(50));
        assert_eq!(e.component_as::<Recorder>(r).unwrap().seen.len(), 1);
    }

    #[test]
    fn run_for_advances_clock_even_when_idle() {
        let mut e: Engine<u32> = Engine::new();
        let _ = e.add_component(Box::new(Recorder::default()));
        e.run_for(SimDuration::from_ms(5));
        assert_eq!(e.now(), SimTime::from_ms(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn schedule_in_the_past_panics() {
        let mut e = Engine::new();
        let r = e.add_component(Box::new(Recorder::default()));
        e.schedule(SimTime::from_ns(10), r, 1);
        e.run();
        e.schedule(SimTime::from_ns(5), r, 2);
    }

    #[test]
    #[should_panic(expected = "unknown component")]
    fn schedule_to_unknown_component_panics() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(SimTime::ZERO, ComponentId(7), 1);
    }

    #[test]
    fn step_on_empty_queue_returns_false() {
        let mut e: Engine<u32> = Engine::new();
        assert!(!e.step());
        assert_eq!(e.events_processed(), 0);
    }

    #[derive(Debug, Clone, Default)]
    struct CountingProbe {
        dispatches: u64,
        emitted: u64,
    }

    impl Probe for CountingProbe {
        fn on_dispatch(&mut self, _now: SimTime, _dst: ComponentId, _n: u64) {
            self.dispatches += 1;
        }
        fn on_deliver(&mut self, _now: SimTime, _dst: ComponentId, emitted: usize) {
            self.emitted += emitted as u64;
        }
    }

    #[test]
    fn probe_sees_every_dispatch_and_emission() {
        let mut e = Engine::with_probe(CountingProbe::default());
        let a = e.add_component(Box::new(PingPong { peer: None, remaining: 0, bounces: 0 }));
        e.component_as_mut::<PingPong>(a).unwrap().peer = Some(a);
        e.schedule(SimTime::ZERO, a, 3);
        e.run();
        // Payload counts down 3→0: four deliveries, three of which emit.
        assert_eq!(e.probe().dispatches, 4);
        assert_eq!(e.probe().emitted, 3);
        e.probe_mut().dispatches = 0;
        assert_eq!(e.probe().dispatches, 0);
    }

    #[test]
    fn null_probe_engine_matches_probed_run() {
        fn run<P: Probe>(mut e: Engine<u32, P>) -> (SimTime, u64) {
            let a = e.add_component(Box::new(PingPong { peer: None, remaining: 0, bounces: 0 }));
            e.component_as_mut::<PingPong>(a).unwrap().peer = Some(a);
            e.schedule(SimTime::ZERO, a, 5);
            e.run();
            (e.now(), e.events_processed())
        }
        assert_eq!(run(Engine::new()), run(Engine::with_probe(CountingProbe::default())));
    }

    #[test]
    fn fork_replays_identically_to_the_donor() {
        // Warm an engine partway through a ping-pong, snapshot, then let
        // the donor and a fork finish independently: identical state.
        let mut e = Engine::new();
        let a = e.add_component(Box::new(PingPong { peer: None, remaining: 0, bounces: 0 }));
        let b = e.add_component(Box::new(PingPong { peer: Some(a), remaining: 0, bounces: 0 }));
        e.component_as_mut::<PingPong>(a).unwrap().peer = Some(b);
        e.schedule(SimTime::ZERO, a, 10);
        e.run_until(SimTime::from_ns(22));

        let snap = e.snapshot();
        assert_eq!(snap.now(), e.now());
        assert_eq!(snap.pending_events(), e.pending_events());
        assert_eq!(snap.component_count(), 2);
        assert!(format!("{snap:?}").contains("EngineSnapshot"));

        let mut f = snap.fork();
        e.run();
        f.run();
        assert_eq!(f.now(), e.now());
        assert_eq!(f.events_processed(), e.events_processed());
        for id in [a, b] {
            assert_eq!(
                f.component_as::<PingPong>(id).unwrap().bounces,
                e.component_as::<PingPong>(id).unwrap().bounces
            );
        }
    }

    #[test]
    fn forks_are_mutually_independent() {
        let mut e = Engine::new();
        let r = e.add_component(Box::new(Recorder::default()));
        e.schedule(SimTime::from_ns(10), r, 1);
        e.schedule(SimTime::from_ns(20), r, 2);
        let snap = e.snapshot();
        // Perturb one fork; the other and the donor must not see it.
        let mut f1 = snap.fork();
        let mut f2 = snap.fork();
        f1.schedule(SimTime::from_ns(15), r, 99);
        f1.run();
        f2.run();
        e.run();
        assert_eq!(
            f1.component_as::<Recorder>(r).unwrap().seen,
            vec![(10, 1), (15, 99), (20, 2)]
        );
        assert_eq!(f2.component_as::<Recorder>(r).unwrap().seen, vec![(10, 1), (20, 2)]);
        assert_eq!(e.component_as::<Recorder>(r).unwrap().seen, vec![(10, 1), (20, 2)]);
    }

    #[test]
    fn snapshot_carries_the_probe_state() {
        let mut e = Engine::with_probe(CountingProbe::default());
        let a = e.add_component(Box::new(PingPong { peer: None, remaining: 0, bounces: 0 }));
        e.component_as_mut::<PingPong>(a).unwrap().peer = Some(a);
        e.schedule(SimTime::ZERO, a, 5);
        e.run_until(SimTime::from_ns(7));
        let mid_dispatches = e.probe().dispatches;
        let snap = e.snapshot();
        let mut f = snap.fork();
        e.run();
        f.run();
        assert!(mid_dispatches > 0);
        assert_eq!(f.probe().dispatches, e.probe().dispatches);
        assert_eq!(f.probe().emitted, e.probe().emitted);
    }

    /// Re-arms itself at the same instant forever: the canonical
    /// livelock a budgeted run must terminate.
    #[derive(Debug, Clone)]
    struct Livelock;

    impl Component<u32> for Livelock {
        fn on_event(&mut self, ctx: &mut Context<'_, u32>, payload: u32) {
            ctx.send_self(SimDuration::ZERO, payload);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn fork(&self) -> Box<dyn Component<u32>> {
            Box::new(Livelock)
        }
    }

    #[test]
    fn budgeted_run_terminates_a_livelock() {
        let mut e = Engine::new();
        let a = e.add_component(Box::new(Livelock));
        e.schedule(SimTime::from_ns(10), a, 1);
        let outcome =
            e.run_budgeted(RunBudget::until(SimTime::from_ms(1)).with_max_events(10_000));
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
        assert_eq!(e.events_processed(), 10_000);
        // The clock stays at the livelocked instant; it must not jump
        // to the deadline as if the window had completed healthily.
        assert_eq!(e.now(), SimTime::from_ns(10));
    }

    #[test]
    fn budgeted_outcomes_distinguish_drain_deadline_and_stop() {
        // Drained: the queue empties before the deadline.
        let mut e = Engine::new();
        let r = e.add_component(Box::new(Recorder::default()));
        e.schedule(SimTime::from_ns(10), r, 1);
        let budget = RunBudget::until(SimTime::from_ms(1)).with_max_events(100);
        assert_eq!(e.run_budgeted(budget), RunOutcome::Drained);
        assert_eq!(e.now(), SimTime::from_ms(1), "drain still advances to the deadline");

        // DeadlineReached: an event remains beyond the deadline.
        let mut e = Engine::new();
        let r = e.add_component(Box::new(Recorder::default()));
        e.schedule(SimTime::from_ms(2), r, 1);
        assert_eq!(e.run_budgeted(budget), RunOutcome::DeadlineReached);
        assert_eq!(e.pending_events(), 1);

        // Stopped: a component requests a stop mid-run.
        let mut e = Engine::new();
        let a = e.add_component(Box::new(PingPong { peer: None, remaining: 0, bounces: 0 }));
        e.component_as_mut::<PingPong>(a).unwrap().peer = Some(a);
        e.schedule(SimTime::ZERO, a, 3);
        assert_eq!(e.run_budgeted(budget), RunOutcome::Stopped);
    }

    #[test]
    fn same_time_events_order_by_source_then_emission() {
        // Two sources emit to the same destination at the same instant:
        // delivery orders by (source slot, per-source index), not by the
        // global interleave of the emissions.
        #[derive(Debug, Clone)]
        struct Burst {
            dst: Option<ComponentId>,
            base: u32,
        }
        impl Component<u32> for Burst {
            fn on_event(&mut self, ctx: &mut Context<'_, u32>, _p: u32) {
                if let Some(dst) = self.dst {
                    ctx.send(dst, SimDuration::from_ns(10), self.base);
                    ctx.send(dst, SimDuration::from_ns(10), self.base + 1);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
            fn fork(&self) -> Box<dyn Component<u32>> {
                Box::new(self.clone())
            }
        }
        let mut e = Engine::new();
        let r = e.add_component(Box::new(Recorder::default()));
        let hi = e.add_component(Box::new(Burst { dst: Some(r), base: 100 }));
        let lo = e.add_component(Box::new(Burst { dst: Some(r), base: 200 }));
        // Deliver the later-registered source first: its emissions still
        // sort *after* the earlier-registered source's at the tied instant.
        e.schedule(SimTime::ZERO, lo, 0);
        e.schedule(SimTime::ZERO, hi, 0);
        e.run();
        let rec = e.component_as::<Recorder>(r).unwrap();
        let values: Vec<u32> = rec.seen.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![100, 101, 200, 201]);
    }

    #[test]
    fn stop_request_halts_run() {
        let mut e = Engine::new();
        let a = e.add_component(Box::new(PingPong { peer: None, remaining: 0, bounces: 0 }));
        // Self-loop would run 4 events then stop (payload counts down from 3).
        e.component_as_mut::<PingPong>(a).unwrap().peer = Some(a);
        e.schedule(SimTime::ZERO, a, 3);
        e.run();
        assert_eq!(e.events_processed(), 4);
    }
}
