//! Simulated time.
//!
//! Time is kept in **picoseconds** as a `u64`. That gives a little over 213
//! days of simulated time, with exact representation of the quantities the
//! paper cares about: a Myrinet character period of 12.5 ns at 80 MB/s
//! (12_500 ps), cable propagation of ~5 ns/m, and multi-second mapping
//! rounds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An instant in simulated time, measured in picoseconds from the start of
/// the simulation.
///
/// # Example
///
/// ```
/// use netfi_sim::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_ns(12) + SimDuration::from_ps(500);
/// assert_eq!(t.as_ps(), 12_500);
/// assert_eq!(format!("{t}"), "12.500ns");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in picoseconds.
///
/// # Example
///
/// ```
/// use netfi_sim::SimDuration;
/// let char_period = SimDuration::from_ps(12_500); // 12.5 ns @ 80 MB/s
/// assert_eq!(char_period * 16, SimDuration::from_ns(200));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ps` picoseconds after the origin.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates an instant `ns` nanoseconds after the origin.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates an instant `us` microseconds after the origin.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates an instant `ms` milliseconds after the origin.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates an instant `s` seconds after the origin.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Picoseconds since the origin.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Nanoseconds since the origin, as a float (lossless below 2^53 ps).
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Microseconds since the origin, as a float.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds since the origin, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[allow(clippy::expect_used)]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                // lint: allow(expect) documented panic; checked_duration_since is the fallible form
                .expect("duration_since: earlier is later than self"),
        )
    }

    /// Time elapsed since `earlier`, or `None` if `earlier > self`.
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Saturating subtraction of a duration (clamps at the origin).
    pub fn saturating_sub_duration(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `ps` picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Creates a duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000_000)
    }

    /// The time needed to transfer `bits` at `bits_per_sec`, rounded up to
    /// the next picosecond.
    ///
    /// # Example
    ///
    /// ```
    /// use netfi_sim::SimDuration;
    /// // One 9-bit Myrinet character at 1.28 Gb/s link signalling and
    /// // 8 data bits per character period of 12.5ns:
    /// let d = SimDuration::from_bits(8, 640_000_000);
    /// assert_eq!(d, SimDuration::from_ps(12_500));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sec` is zero.
    #[allow(clippy::expect_used)]
    pub fn from_bits(bits: u64, bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "bits_per_sec must be non-zero");
        // ps = bits * 1e12 / bps. Any realistic transfer (bits < ~1.8e7,
        // i.e. anything under ~2 MB) fits the product in u64, where the
        // rounded-up division is a single hardware divide; the u128 path
        // (a software `__udivti3` call) is only the overflow fallback.
        if let Some(product) = bits.checked_mul(1_000_000_000_000) {
            return SimDuration(product.div_ceil(bits_per_sec));
        }
        let ps = (bits as u128 * 1_000_000_000_000u128).div_ceil(bits_per_sec as u128);
        // lint: allow(expect) documented panic; a >213-day transfer is a caller bug
        SimDuration(u64::try_from(ps).expect("duration overflows u64 picoseconds"))
    }

    /// Picoseconds in this duration.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Nanoseconds in this duration, as a float.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds in this duration, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by an integer factor.
    pub fn checked_mul(self, n: u64) -> Option<SimDuration> {
        self.0.checked_mul(n).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[allow(clippy::expect_used)]
    fn add(self, d: SimDuration) -> SimTime {
        // lint: allow(expect) operator impls cannot return Result; overflow is a bug
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[allow(clippy::expect_used)]
    fn sub(self, d: SimDuration) -> SimTime {
        // lint: allow(expect) operator impls cannot return Result; underflow is a bug
        SimTime(self.0.checked_sub(d.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.duration_since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[allow(clippy::expect_used)]
    fn add(self, other: SimDuration) -> SimDuration {
        // lint: allow(expect) operator impls cannot return Result; overflow is a bug
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[allow(clippy::expect_used)]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(other.0)
                // lint: allow(expect) operator impls cannot return Result; underflow is a bug
                .expect("SimDuration underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[allow(clippy::expect_used)]
    fn mul(self, n: u64) -> SimDuration {
        // lint: allow(expect) operator impls cannot return Result; overflow is a bug
        SimDuration(self.0.checked_mul(n).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, n: u64) -> SimDuration {
        SimDuration(self.0 / n)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    fn div(self, other: SimDuration) -> u64 {
        self.0 / other.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 % other.0)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

fn fmt_ps(ps: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ps == 0 {
        return write!(f, "0ps");
    }
    if ps.is_multiple_of(1_000_000_000_000) {
        write!(f, "{}s", ps / 1_000_000_000_000)
    } else if ps >= 1_000_000_000_000 {
        write!(f, "{:.6}s", ps as f64 / 1e12)
    } else if ps >= 1_000_000_000 {
        write!(f, "{:.3}ms", ps as f64 / 1e9)
    } else if ps >= 1_000_000 {
        write!(f, "{:.3}us", ps as f64 / 1e6)
    } else if ps >= 1_000 {
        write!(f, "{:.3}ns", ps as f64 / 1e3)
    } else {
        write!(f, "{ps}ps")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_secs(1).as_ps(), 1_000_000_000_000);
        assert_eq!(SimDuration::from_ns(5).as_ps(), 5_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_ns(100);
        let d = SimDuration::from_ns(30);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.duration_since(SimTime::ZERO), SimDuration::from_ns(100));
    }

    #[test]
    fn duration_since_checked() {
        let early = SimTime::from_ns(1);
        let late = SimTime::from_ns(2);
        assert_eq!(late.checked_duration_since(early), Some(SimDuration::from_ns(1)));
        assert_eq!(early.checked_duration_since(late), None);
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn duration_since_panics_backwards() {
        let _ = SimTime::from_ns(1).duration_since(SimTime::from_ns(2));
    }

    #[test]
    fn from_bits_matches_character_period() {
        // Paper: at 80 MB/s a character period is roughly 12.5 ns.
        let d = SimDuration::from_bits(8, 640_000_000);
        assert_eq!(d.as_ps(), 12_500);
        // 1.28 Gb/s data rate: a 32-bit segment takes 25 ns.
        let seg = SimDuration::from_bits(32, 1_280_000_000);
        assert_eq!(seg.as_ps(), 25_000);
    }

    #[test]
    fn from_bits_rounds_up() {
        // 1 bit at 3 bps = 333_333_333_333.33.. ps, rounds up.
        let d = SimDuration::from_bits(1, 3);
        assert_eq!(d.as_ps(), 333_333_333_334);
    }

    #[test]
    fn duration_division_and_modulo() {
        let d = SimDuration::from_ns(100);
        assert_eq!(d / SimDuration::from_ns(30), 3);
        assert_eq!(d % SimDuration::from_ns(30), SimDuration::from_ns(10));
        assert_eq!(d / 4, SimDuration::from_ns(25));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::ZERO), "0ps");
        assert_eq!(format!("{}", SimDuration::from_ps(17)), "17ps");
        assert_eq!(format!("{}", SimDuration::from_ps(12_500)), "12.500ns");
        assert_eq!(format!("{}", SimDuration::from_us(3)), "3.000us");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ns).sum();
        assert_eq!(total, SimDuration::from_ns(10));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_ns(1)), SimTime::MAX);
        assert_eq!(
            SimDuration::from_ns(1).saturating_sub(SimDuration::from_ns(2)),
            SimDuration::ZERO
        );
    }
}
