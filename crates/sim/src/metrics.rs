//! Measurement primitives for experiment harnesses.
//!
//! The paper's campaigns report message counts, loss rates, throughput and
//! latency distributions; these types collect them.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Sim-time event-density meter for engine runs.
///
/// Bracket a simulation span between [`EventRate::start`] and
/// [`EventRate::stop`], feeding it the engine's clock (`engine.now()`)
/// and its `events_processed` counter, and read back events per
/// *simulated* second and simulated nanoseconds per event. The meter is
/// pure sim-time arithmetic — no wall clock — so two runs of the same
/// seeded scenario produce identical reports (pinned by
/// `tests/determinism.rs`). Wall-clock throughput belongs to the bench
/// harness (`netfi-bench`), which may measure whatever it likes.
///
/// # Example
///
/// ```
/// use netfi_sim::metrics::EventRate;
/// use netfi_sim::SimTime;
/// let meter = EventRate::start(SimTime::ZERO, 0);
/// // ... engine.run_until(...) ...
/// let rate = meter.stop(SimTime::from_us(1), 1_000);
/// assert_eq!(rate.events(), 1_000);
/// assert!(rate.events_per_sim_sec() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRate {
    events_at_start: u64,
    started: SimTime,
}

impl EventRate {
    /// Starts the meter at the engine's current time and
    /// `events_processed` count.
    pub fn start(now: SimTime, events_processed: u64) -> EventRate {
        EventRate {
            events_at_start: events_processed,
            started: now,
        }
    }

    /// Stops the meter at the engine's final time and `events_processed`
    /// count. A `now` earlier than the start clamps the span to zero.
    pub fn stop(self, now: SimTime, events_processed: u64) -> EventRateReport {
        EventRateReport {
            events: events_processed.saturating_sub(self.events_at_start),
            span: now
                .checked_duration_since(self.started)
                .unwrap_or(SimDuration::ZERO),
        }
    }
}

/// The result of an [`EventRate`] measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRateReport {
    events: u64,
    span: SimDuration,
}

impl EventRateReport {
    /// Events delivered during the measured span.
    pub fn events(self) -> u64 {
        self.events
    }

    /// Simulated time of the measured span.
    pub fn span(self) -> SimDuration {
        self.span
    }

    /// Delivered events per simulated second.
    pub fn events_per_sim_sec(self) -> f64 {
        let secs = self.span.as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            self.events as f64 / secs
        }
    }

    /// Simulated nanoseconds per delivered event.
    pub fn sim_ns_per_event(self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.span.as_ns_f64() / self.events as f64
        }
    }
}

impl fmt::Display for EventRateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events in {} of sim time ({:.0} events/sim-s, {:.1} sim-ns/event)",
            self.events,
            self.span,
            self.events_per_sim_sec(),
            self.sim_ns_per_event()
        )
    }
}

/// Streaming mean/variance/extrema (Welford's algorithm).
///
/// # Example
///
/// ```
/// use netfi_sim::metrics::Summary;
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.record(v);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(4.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.n += 1;
        let delta = value - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_ns_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let total = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.n as f64 * other.n as f64) / total as f64;
        self.n = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.n == 0 {
            write!(f, "n=0")
        } else {
            write!(
                f,
                "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
                self.n,
                self.mean,
                self.stddev(),
                self.min,
                self.max
            )
        }
    }
}

/// A fixed-width-bin histogram over `[0, bin_width * bins)` with an overflow
/// bin, plus exact percentile queries over the binned data.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of width `bin_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `bin_width` is not positive.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(bin_width > 0.0, "bin width must be positive");
        Histogram {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
        }
    }

    /// Records a (non-negative) observation. Negative values clamp to bin 0.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        let idx = (value / self.bin_width).floor().max(0.0) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of observations beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The value at quantile `q` in `[0, 1]`, resolved to the upper edge of
    /// the containing bin. Returns `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return None;
        }
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i + 1) as f64 * self.bin_width);
            }
        }
        Some(self.counts.len() as f64 * self.bin_width)
    }

    /// Per-bin counts (not including overflow).
    pub fn bins(&self) -> &[u64] {
        &self.counts
    }
}

/// A named loss-rate accumulator: sent vs. received, as used by the
/// campaign tables in the paper.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LossMeter {
    sent: u64,
    received: u64,
}

impl LossMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` messages sent.
    pub fn add_sent(&mut self, n: u64) {
        self.sent += n;
    }

    /// Records `n` messages received.
    pub fn add_received(&mut self, n: u64) {
        self.received += n;
    }

    /// Messages sent.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages received.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Messages lost (saturating at zero).
    pub fn lost(&self) -> u64 {
        self.sent.saturating_sub(self.received)
    }

    /// Loss rate in `[0, 1]`; 0 when nothing was sent.
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.lost() as f64 / self.sent as f64
        }
    }
}

impl fmt::Display for LossMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} received={} loss={:.1}%",
            self.sent,
            self.received,
            self.loss_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn event_rate_is_sim_time_arithmetic() {
        let m = EventRate::start(SimTime::from_us(1), 100);
        let r = m.stop(SimTime::from_us(3), 1_100);
        assert_eq!(r.events(), 1_000);
        assert_eq!(r.span(), SimDuration::from_us(2));
        assert!((r.events_per_sim_sec() - 5e8).abs() < 1.0);
        assert!((r.sim_ns_per_event() - 2.0).abs() < 1e-12);
        // Identical inputs give identical reports: no wall clock anywhere.
        assert_eq!(m.stop(SimTime::from_us(3), 1_100), r);
        assert!(r.to_string().contains("events/sim-s"));
    }

    #[test]
    fn event_rate_degenerate_spans() {
        let m = EventRate::start(SimTime::from_us(5), 0);
        assert_eq!(
            m.stop(SimTime::from_us(5), 10).events_per_sim_sec(),
            f64::INFINITY
        );
        // Clock moving backwards clamps to an empty span.
        assert_eq!(m.stop(SimTime::ZERO, 10).span(), SimDuration::ZERO);
        // No events: ns/event reads zero rather than dividing by zero.
        assert_eq!(m.stop(SimTime::from_us(6), 0).sim_ns_per_event(), 0.0);
    }

    #[test]
    fn summary_mean_and_variance() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn summary_empty_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn summary_merge_matches_pooled() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut pooled = Summary::new();
        for i in 0..50 {
            let v = (i * 37 % 11) as f64;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            pooled.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), pooled.count());
        assert!((a.mean() - pooled.mean()).abs() < 1e-9);
        assert!((a.variance() - pooled.variance()).abs() < 1e-9);
        assert_eq!(a.min(), pooled.min());
        assert_eq!(a.max(), pooled.max());
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.record(3.0);
        let b = Summary::new();
        let mut a2 = a;
        a2.merge(&b);
        assert_eq!(a2, a);
        let mut e = Summary::new();
        e.merge(&a);
        assert_eq!(e.count(), 1);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(1.0, 10);
        for v in 0..100 {
            h.record(v as f64 / 10.0); // 0.0 .. 9.9 uniformly
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.quantile(0.5), Some(5.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
        assert_eq!(h.quantile(0.0), Some(1.0)); // first non-empty bin edge
    }

    #[test]
    fn histogram_overflow_bin() {
        let mut h = Histogram::new(1.0, 2);
        h.record(5.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn histogram_empty_quantile_none() {
        let h = Histogram::new(1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn loss_meter_rates() {
        let mut m = LossMeter::new();
        m.add_sent(4064);
        m.add_received(3705);
        assert_eq!(m.lost(), 359);
        assert!((m.loss_rate() - 0.0883).abs() < 0.001);
    }

    #[test]
    fn loss_meter_zero_sent() {
        let m = LossMeter::new();
        assert_eq!(m.loss_rate(), 0.0);
    }
}
