//! Property-based tests for the simulation kernel.

use proptest::prelude::*;

use netfi_sim::metrics::{Histogram, LossMeter, Summary};
use netfi_sim::{Component, Context, DetRng, Engine, SimDuration, SimTime};
use std::any::Any;

proptest! {
    /// Time arithmetic: (t + a) + b == t + (a + b); subtraction inverts.
    #[test]
    fn time_arithmetic(t in 0u64..1 << 40, a in 0u64..1 << 40, b in 0u64..1 << 40) {
        let t0 = SimTime::from_ps(t);
        let da = SimDuration::from_ps(a);
        let db = SimDuration::from_ps(b);
        prop_assert_eq!((t0 + da) + db, t0 + (da + db));
        prop_assert_eq!((t0 + da) - da, t0);
        prop_assert_eq!((t0 + da).duration_since(t0), da);
    }

    /// from_bits is monotone in bits and antitone in rate.
    #[test]
    fn from_bits_monotone(bits in 1u64..1 << 20, rate in 1u64..1 << 34) {
        let d1 = SimDuration::from_bits(bits, rate);
        let d2 = SimDuration::from_bits(bits + 1, rate);
        prop_assert!(d2 >= d1);
        let d3 = SimDuration::from_bits(bits, rate + 1);
        prop_assert!(d3 <= d1);
    }

    /// gen_range stays in bounds for arbitrary non-empty ranges.
    #[test]
    fn rng_range_bounds(seed in any::<u64>(), lo in 0u64..1 << 60, span in 1u64..1 << 50) {
        let mut rng = DetRng::new(seed);
        for _ in 0..32 {
            let v = rng.gen_range(lo..lo + span);
            prop_assert!((lo..lo + span).contains(&v));
        }
    }

    /// Forked streams are deterministic functions of (parent state, key).
    #[test]
    fn rng_fork_determinism(seed in any::<u64>(), key in any::<u64>()) {
        let parent = DetRng::new(seed);
        let mut a = parent.fork(key);
        let mut b = parent.fork(key);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Summary::merge equals pooled accumulation for arbitrary splits.
    #[test]
    fn summary_merge_pooled(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..64),
        ys in proptest::collection::vec(-1e6f64..1e6, 0..64)
    ) {
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut pooled = Summary::new();
        for &x in &xs { a.record(x); pooled.record(x); }
        for &y in &ys { b.record(y); pooled.record(y); }
        a.merge(&b);
        prop_assert_eq!(a.count(), pooled.count());
        if pooled.count() > 0 {
            prop_assert!((a.mean() - pooled.mean()).abs() <= 1e-6 * (1.0 + pooled.mean().abs()));
            prop_assert!((a.variance() - pooled.variance()).abs()
                <= 1e-5 * (1.0 + pooled.variance().abs()));
        }
    }

    /// Histogram quantiles are monotone and total counts add up.
    #[test]
    fn histogram_quantiles_monotone(
        values in proptest::collection::vec(0f64..100.0, 1..200),
        q1 in 0f64..1.0,
        q2 in 0f64..1.0
    ) {
        let mut h = Histogram::new(1.0, 128);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let vlo = h.quantile(lo).unwrap();
        let vhi = h.quantile(hi).unwrap();
        prop_assert!(vlo <= vhi);
    }

    /// Loss meter arithmetic is consistent.
    #[test]
    fn loss_meter_consistent(sent in 0u64..1 << 40, received in 0u64..1 << 40) {
        let mut m = LossMeter::new();
        m.add_sent(sent);
        m.add_received(received);
        prop_assert_eq!(m.lost(), sent.saturating_sub(received));
        let rate = m.loss_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
    }
}

/// A component that records delivery order.
struct Recorder {
    seen: Vec<(SimTime, u64)>,
}

impl Component<u64> for Recorder {
    fn on_event(&mut self, ctx: &mut Context<'_, u64>, payload: u64) {
        self.seen.push((ctx.now(), payload));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

proptest! {
    /// Events always deliver in (time, scheduling-order) order, for any
    /// scheduling pattern.
    #[test]
    fn engine_delivery_order(times in proptest::collection::vec(0u64..1000, 1..100)) {
        let mut engine: Engine<u64> = Engine::new();
        let r = engine.add_component(Box::new(Recorder { seen: Vec::new() }));
        for (i, &t) in times.iter().enumerate() {
            engine.schedule(SimTime::from_ns(t), r, i as u64);
        }
        engine.run();
        let rec = engine.component_as::<Recorder>(r).unwrap();
        prop_assert_eq!(rec.seen.len(), times.len());
        for pair in rec.seen.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order violated");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "same-time FIFO violated");
            }
        }
        prop_assert_eq!(engine.events_processed(), times.len() as u64);
    }
}
