//! Randomized property tests for the simulation kernel, driven by seeded
//! loops over [`DetRng`] so they run with zero external dependencies and
//! are bit-for-bit reproducible.

use netfi_sim::metrics::{Histogram, LossMeter, Summary};
use netfi_sim::{
    Component, ComponentId, Context, DetRng, Engine, NullProbe, ShardSpec, ShardedEngine,
    SimDuration, SimTime, Simulation, TimingWheel,
};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const CASES: usize = 256;

/// Time arithmetic: (t + a) + b == t + (a + b); subtraction inverts.
#[test]
fn time_arithmetic() {
    let mut rng = DetRng::new(0x7157_0001);
    for _ in 0..CASES {
        let t0 = SimTime::from_ps(rng.gen_range(0..1 << 40));
        let da = SimDuration::from_ps(rng.gen_range(0..1 << 40));
        let db = SimDuration::from_ps(rng.gen_range(0..1 << 40));
        assert_eq!((t0 + da) + db, t0 + (da + db));
        assert_eq!((t0 + da) - da, t0);
        assert_eq!((t0 + da).duration_since(t0), da);
    }
}

/// from_bits is monotone in bits and antitone in rate.
#[test]
fn from_bits_monotone() {
    let mut rng = DetRng::new(0x7157_0002);
    for _ in 0..CASES {
        let bits = rng.gen_range(1..1 << 20);
        let rate = rng.gen_range(1..1 << 34);
        let d1 = SimDuration::from_bits(bits, rate);
        let d2 = SimDuration::from_bits(bits + 1, rate);
        assert!(d2 >= d1);
        let d3 = SimDuration::from_bits(bits, rate + 1);
        assert!(d3 <= d1);
    }
}

/// gen_range stays in bounds for arbitrary non-empty ranges.
#[test]
fn rng_range_bounds() {
    let mut meta = DetRng::new(0x7157_0003);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let lo = meta.gen_range(0..1 << 60);
        let span = meta.gen_range(1..1 << 50);
        let mut rng = DetRng::new(seed);
        for _ in 0..32 {
            let v = rng.gen_range(lo..lo + span);
            assert!((lo..lo + span).contains(&v));
        }
    }
}

/// Forked streams are deterministic functions of (parent state, key).
#[test]
fn rng_fork_determinism() {
    let mut meta = DetRng::new(0x7157_0004);
    for _ in 0..CASES {
        let parent = DetRng::new(meta.next_u64());
        let key = meta.next_u64();
        let mut a = parent.fork(key);
        let mut b = parent.fork(key);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

fn sample_values(rng: &mut DetRng, max_len: usize, lo: f64, hi: f64) -> Vec<f64> {
    let len = rng.gen_index(max_len + 1);
    (0..len).map(|_| lo + rng.gen_f64() * (hi - lo)).collect()
}

/// Summary::merge equals pooled accumulation for arbitrary splits.
#[test]
fn summary_merge_pooled() {
    let mut rng = DetRng::new(0x7157_0005);
    for _ in 0..CASES {
        let xs = sample_values(&mut rng, 64, -1e6, 1e6);
        let ys = sample_values(&mut rng, 64, -1e6, 1e6);
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut pooled = Summary::new();
        for &x in &xs {
            a.record(x);
            pooled.record(x);
        }
        for &y in &ys {
            b.record(y);
            pooled.record(y);
        }
        a.merge(&b);
        assert_eq!(a.count(), pooled.count());
        if pooled.count() > 0 {
            assert!((a.mean() - pooled.mean()).abs() <= 1e-6 * (1.0 + pooled.mean().abs()));
            assert!(
                (a.variance() - pooled.variance()).abs()
                    <= 1e-5 * (1.0 + pooled.variance().abs())
            );
        }
    }
}

/// Histogram quantiles are monotone and total counts add up.
#[test]
fn histogram_quantiles_monotone() {
    let mut rng = DetRng::new(0x7157_0006);
    for _ in 0..CASES {
        let len = 1 + rng.gen_index(199);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_f64() * 100.0).collect();
        let q1 = rng.gen_f64();
        let q2 = rng.gen_f64();
        let mut h = Histogram::new(1.0, 128);
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), values.len() as u64);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let vlo = h.quantile(lo).unwrap();
        let vhi = h.quantile(hi).unwrap();
        assert!(vlo <= vhi);
    }
}

/// Loss meter arithmetic is consistent.
#[test]
fn loss_meter_consistent() {
    let mut rng = DetRng::new(0x7157_0007);
    for _ in 0..CASES {
        let sent = rng.gen_range(0..1 << 40);
        let received = rng.gen_range(0..1 << 40);
        let mut m = LossMeter::new();
        m.add_sent(sent);
        m.add_received(received);
        assert_eq!(m.lost(), sent.saturating_sub(received));
        let rate = m.loss_rate();
        assert!((0.0..=1.0).contains(&rate));
    }
}

/// The timing wheel agrees with a reference `BinaryHeap` on every
/// operation of a randomized interleaved push/pop/pop_due stream.
///
/// The stream generator is adversarial on purpose: offsets of zero (pushes
/// at exactly the cursor time), sub-bucket offsets (ties inside one slot),
/// exact duplicates of the previous timestamp (FIFO broken only by `seq`),
/// offsets across the wheel span (forcing overflow parking and cascade),
/// and `pop_due` deadlines that land before, on and after the queue
/// minimum. The one invariant the generator honours is the engine's:
/// never push earlier than the last popped time.
#[test]
fn wheel_matches_reference_heap() {
    let mut rng = DetRng::new(0x7157_0009);
    for _ in 0..CASES {
        let mut wheel: TimingWheel<u32> = TimingWheel::new();
        let mut reference: BinaryHeap<Reverse<(SimTime, u64, u32)>> = BinaryHeap::new();
        let mut now = SimTime::ZERO; // last popped time; pushes stay >= now
        let mut last_pushed = now;
        let mut seq = 0u64;
        let ops = 64 + rng.gen_index(192);
        for _ in 0..ops {
            match rng.gen_index(8) {
                // Push (biased: the queue must mostly grow or pops see
                // nothing but empties).
                0..=4 => {
                    let time = match rng.gen_index(5) {
                        0 => now,
                        1 => last_pushed.max(now),
                        2 => now + SimDuration::from_ps(rng.gen_range(0..1 << 10)),
                        3 => now + SimDuration::from_ps(rng.gen_range(0..1 << 30)),
                        // Beyond the wheel span (2^34 ps): overflow path.
                        _ => now + SimDuration::from_ps(rng.gen_range(1 << 34..1 << 36)),
                    };
                    wheel.push(time, seq, seq as u32);
                    reference.push(Reverse((time, seq, seq as u32)));
                    last_pushed = time;
                    seq += 1;
                }
                // Pop the minimum.
                5..=6 => {
                    let got = wheel.pop();
                    let want = reference.pop().map(|Reverse((t, s, v))| (t, s, v));
                    assert_eq!(got, want, "pop diverged");
                    if let Some((t, _, _)) = got {
                        now = t;
                    }
                }
                // Pop against a deadline that may or may not be reached.
                _ => {
                    let deadline = now + SimDuration::from_ps(rng.gen_range(0..1 << 35));
                    let due = reference
                        .peek()
                        .is_some_and(|Reverse((t, _, _))| *t <= deadline);
                    let got = wheel.pop_due(deadline);
                    let want = if due {
                        reference.pop().map(|Reverse((t, s, v))| (t, s, v))
                    } else {
                        None
                    };
                    assert_eq!(got, want, "pop_due({deadline:?}) diverged");
                    if let Some((t, _, _)) = got {
                        now = t;
                    }
                }
            }
            assert_eq!(wheel.len(), reference.len(), "len diverged");
            assert_eq!(
                wheel.peek_time(),
                reference.peek().map(|Reverse((t, _, _))| *t),
                "peek diverged"
            );
        }
        // Drain: the full remaining order must match exactly.
        while let Some(Reverse(want)) = reference.pop() {
            assert_eq!(wheel.pop(), Some(want), "drain diverged");
        }
        assert!(wheel.is_empty());
        assert_eq!(wheel.pop(), None);
    }
}

/// Snapshot round-trip: forking a wheel at an arbitrary point in an
/// adversarial push/pop stream preserves the exact remaining pop order.
///
/// The stream generator reuses the adversarial patterns of
/// [`wheel_matches_reference_heap`] — cursor-time pushes, sub-bucket ties,
/// duplicate timestamps, overflow-spanning offsets — then forks the wheel
/// mid-stream (after some slots have gone through the lazy-sort path and
/// some overflow entries have cascaded) and drains both. The fork must pop
/// the identical `(time, seq, item)` sequence, and further pushes into the
/// fork must not disturb the original.
#[test]
fn wheel_fork_round_trip_matches_original() {
    use netfi_sim::Fork;
    let mut rng = DetRng::new(0x7157_000B);
    for _ in 0..CASES {
        let mut wheel: TimingWheel<u32> = TimingWheel::new();
        let mut now = SimTime::ZERO;
        let mut seq = 0u64;
        let ops = 32 + rng.gen_index(128);
        for _ in 0..ops {
            match rng.gen_index(4) {
                0..=2 => {
                    let time = match rng.gen_index(4) {
                        0 => now,
                        1 => now + SimDuration::from_ps(rng.gen_range(0..1 << 10)),
                        2 => now + SimDuration::from_ps(rng.gen_range(0..1 << 30)),
                        // Beyond the wheel span (2^34 ps): overflow path.
                        _ => now + SimDuration::from_ps(rng.gen_range(1 << 34..1 << 36)),
                    };
                    wheel.push(time, seq, seq as u32);
                    seq += 1;
                }
                _ => {
                    if let Some((t, _, _)) = wheel.pop() {
                        now = t;
                    }
                }
            }
        }
        let mut fork = wheel.fork();
        assert_eq!(fork.len(), wheel.len());
        assert_eq!(fork.peek_time(), wheel.peek_time());
        // Mutating the fork leaves the original untouched.
        let before = wheel.len();
        fork.push(now + SimDuration::from_ps(1), seq, u32::MAX);
        assert_eq!(fork.len(), before + 1);
        assert_eq!(wheel.len(), before);
        // Take a clean fork and drain both fully: identical
        // (time, seq, item) sequences.
        let mut fork = wheel.fork();
        loop {
            let want = wheel.pop();
            let got = fork.pop();
            assert_eq!(got, want, "forked drain diverged");
            if want.is_none() {
                break;
            }
        }
        assert!(fork.is_empty());
    }
}

/// A component that records delivery order.
#[derive(Clone)]
struct Recorder {
    seen: Vec<(SimTime, u64)>,
}

impl Component<u64> for Recorder {
    fn on_event(&mut self, ctx: &mut Context<'_, u64>, payload: u64) {
        self.seen.push((ctx.now(), payload));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn fork(&self) -> Box<dyn Component<u64>> {
        Box::new(self.clone())
    }
}

/// Events always deliver in (time, scheduling-order) order, for any
/// scheduling pattern.
#[test]
fn engine_delivery_order() {
    let mut rng = DetRng::new(0x7157_0008);
    for _ in 0..CASES {
        let n = 1 + rng.gen_index(99);
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
        let mut engine: Engine<u64> = Engine::new();
        let r = engine.add_component(Box::new(Recorder { seen: Vec::new() }));
        for (i, &t) in times.iter().enumerate() {
            engine.schedule(SimTime::from_ns(t), r, i as u64);
        }
        engine.run();
        let rec = engine.component_as::<Recorder>(r).unwrap();
        assert_eq!(rec.seen.len(), times.len());
        for pair in rec.seen.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "time order violated");
            if pair[0].0 == pair[1].0 {
                assert!(pair[0].1 < pair[1].1, "same-time FIFO violated");
            }
        }
        assert_eq!(engine.events_processed(), times.len() as u64);
    }
}

/// A relay on a fixed successor edge of a random permutation. Each hop
/// forwards the (decremented) token with a private-RNG jitter on top of
/// the lookahead, keeping its own emission arrival times strictly
/// increasing. In-degree one plus monotone emissions means no two events
/// ever share a (delivery time, destination), so the serial tie-break
/// never has to choose between sources and *any* affinity partition is a
/// valid shard map with zero merge collisions.
#[derive(Clone)]
struct Relay {
    next: Option<ComponentId>,
    rng: DetRng,
    lookahead: SimDuration,
    last_arrival: SimTime,
    seen: Vec<(SimTime, u64)>,
}

impl Component<u64> for Relay {
    fn on_event(&mut self, ctx: &mut Context<'_, u64>, payload: u64) {
        self.seen.push((ctx.now(), payload));
        if payload == 0 {
            return;
        }
        let jitter = SimDuration::from_ps(self.rng.gen_range(0..1 << 20));
        let mut arrival = ctx.now() + self.lookahead + jitter;
        if arrival <= self.last_arrival {
            arrival = self.last_arrival + SimDuration::from_ps(1);
        }
        self.last_arrival = arrival;
        let delay = arrival.duration_since(ctx.now());
        ctx.send(self.next.unwrap(), delay, payload - 1);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn fork(&self) -> Box<dyn Component<u64>> {
        Box::new(self.clone())
    }
}

/// Differential test: the sharded engine is a drop-in replacement for the
/// serial engine. On randomized permutation topologies with random
/// affinity partitions, per-component delivery logs, event counts and
/// clocks are identical for workers 1, 2 and 4, and the tie-free
/// construction yields zero cross-shard merge collisions.
#[test]
fn sharded_engine_matches_serial_on_random_topologies() {
    let mut rng = DetRng::new(0x7157_000A);
    // 64 cases, each running one serial and three sharded engines.
    for _ in 0..64 {
        let n = 2 + rng.gen_index(15); // 2..=16 components
        let mut succ: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_index(i + 1);
            succ.swap(i, j);
        }
        // Initial tokens land at t < 64 ps, strictly before any relayed
        // arrival, so they can never tie with one.
        let lookahead = SimDuration::from_ps(64 + rng.gen_range(0..1 << 16));
        let seeds: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let tokens = 1 + rng.gen_index(n);
        let hops = 1 + rng.gen_range(0..64);
        let build = |seeds: &[u64], succ: &[usize]| {
            let mut engine: Engine<u64> = Engine::new();
            let ids: Vec<ComponentId> = seeds
                .iter()
                .map(|&s| {
                    engine.add_component(Box::new(Relay {
                        next: None,
                        rng: DetRng::new(s),
                        lookahead,
                        last_arrival: SimTime::ZERO,
                        seen: Vec::new(),
                    }))
                })
                .collect();
            for (i, id) in ids.iter().enumerate() {
                engine.component_as_mut::<Relay>(*id).unwrap().next = Some(ids[succ[i]]);
            }
            for k in 0..tokens {
                engine.schedule(SimTime::from_ps(k as u64), ids[k], hops);
            }
            (engine, ids)
        };
        // ~1k events with ~1.1 us worst-case steps drain well before 4 ms.
        let deadline = SimTime::from_ms(4);
        let (mut serial, ids) = build(&seeds, &succ);
        serial.run_until(deadline);
        let want: Vec<Vec<(SimTime, u64)>> = ids
            .iter()
            .map(|&id| serial.component_as::<Relay>(id).unwrap().seen.clone())
            .collect();
        assert_eq!(
            serial.events_processed(),
            (tokens as u64) * (hops + 1),
            "every token must drain its hops"
        );
        for workers in [1usize, 2, 4] {
            let nshards = 1 + rng.gen_index(4);
            let affinity: Vec<u16> = (0..n).map(|_| rng.gen_index(nshards) as u16).collect();
            let (engine, ids) = build(&seeds, &succ);
            let mut sharded: ShardedEngine<u64, NullProbe> = ShardedEngine::from_engine(
                engine,
                ShardSpec {
                    affinity,
                    lookahead,
                    workers,
                },
                |_| NullProbe,
            );
            sharded.run_until(deadline);
            assert_eq!(sharded.events_processed(), serial.events_processed());
            assert_eq!(sharded.now(), serial.now());
            assert_eq!(sharded.pending_events(), 0);
            for (i, id) in ids.iter().enumerate() {
                let got = &sharded.component_as::<Relay>(*id).unwrap().seen;
                assert_eq!(
                    got, &want[i],
                    "component {i} delivery log diverged at workers={workers}"
                );
            }
        }
    }
}
