//! The assembled fault-injection and monitoring device.
//!
//! [`InjectorDevice`] is the complete instrument of the paper: a two-port
//! component spliced into a network link ("the transmitted data must be
//! intercepted on one network segment and retransmitted with the desired
//! faults inserted on the opposite segment", §3.2). Each direction has its
//! own [`FifoInjector`] datapath with independent configuration —
//! "the injector can execute different and independent commands on data
//! traveling in different directions" — a capture memory, and statistics
//! counters ("data-link packet data such as source and destination
//! identifier numbers can be monitored, with counters incremented for each
//! packet seen").
//!
//! The device is transparent: every frame in is a frame out (possibly
//! corrupted), delayed by the cut-through pipeline latency (≈250 ns at
//! 640 Mb/s, paper footnote 5). It is reconfigured at run time through its
//! serial port ([`Ev::Serial`] events feeding the command decoder), exactly
//! as NFTAPE drives the real board.

use std::any::Any;
use std::collections::BTreeMap;

use netfi_myrinet::addr::EthAddr;
use netfi_myrinet::egress::{split_timer_kind, timer_class, EgressPort};
use netfi_myrinet::event::{Attach, Ev, PortPeer};
use netfi_myrinet::frame::{Frame, PacketFrame};
use netfi_myrinet::interface::EthHeader;
use netfi_myrinet::packet::PacketType;
use netfi_sim::{Component, Context, SimDuration};

use crate::capture::{CaptureBuffer, CaptureRecord};
use netfi_obs::{FlightRecorder, Recorder, Sink};
use crate::command::{Command, CommandDecoder, DirSelect};
use crate::config::{ControlInject, InjectorConfig};
use crate::corrupt::{ControlCorrupt, CorruptMode};
use crate::fifo::{FifoInjector, FifoStats};
use crate::trigger::ControlCompare;

/// One direction through the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Direction {
    /// Entering port 0 (side A), leaving port 1 (side B) — "left going".
    AToB,
    /// Entering port 1 (side B), leaving port 0 (side A) — "right going".
    BToA,
}

impl Direction {
    /// The input port of this direction.
    pub fn in_port(self) -> u8 {
        match self {
            Direction::AToB => 0,
            Direction::BToA => 1,
        }
    }

    /// The output port of this direction.
    pub fn out_port(self) -> u8 {
        match self {
            Direction::AToB => 1,
            Direction::BToA => 0,
        }
    }

    fn from_in_port(port: u8) -> Direction {
        match port {
            0 => Direction::AToB,
            _ => Direction::BToA,
        }
    }

    fn index(self) -> usize {
        match self {
            Direction::AToB => 0,
            Direction::BToA => 1,
        }
    }
}

/// One record of the full-traffic capture memory (the board's SDRAM is
/// "large enough to hold a significant amount of network traffic (for
/// later transmission and analysis)", §3.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficRecord {
    /// Direction the frame travelled.
    pub direction: Direction,
    /// Frame summary.
    pub summary: String,
    /// Wire length in characters.
    pub chars: usize,
}

impl std::fmt::Display for TrafficRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let arrow = match self.direction {
            Direction::AToB => "A>B",
            Direction::BToA => "B>A",
        };
        write!(f, "{arrow} {} ({} chars)", self.summary, self.chars)
    }
}

/// Monitoring counters for one direction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Packet frames observed.
    pub packets: u64,
    /// Standalone control symbols observed.
    pub controls: u64,
    /// DATA-type packets observed.
    pub data_packets: u64,
    /// MAPPING-type packets observed.
    pub mapping_packets: u64,
    /// Per-(source, destination) packet counts — the statistics-gathering
    /// feature of §3.2.
    pub id_counts: BTreeMap<(EthAddr, EthAddr), u64>,
}

#[derive(Clone)]
struct Channel {
    injector: FifoInjector,
    capture: CaptureBuffer,
    stats: ChannelStats,
}


/// Configuration of the device.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Name for monitoring output.
    pub name: String,
    /// Number of leading route bytes expected in observed packets (used
    /// only to locate the type field for monitoring; 1 on a host link in
    /// this model).
    pub route_bytes_hint: usize,
    /// Capture memory capacity (records per direction).
    pub capture_capacity: usize,
    /// Full-traffic capture memory capacity (frames; the SDRAM model).
    pub traffic_capacity: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            name: "injector".to_string(),
            route_bytes_hint: 1,
            capture_capacity: 1024,
            traffic_capacity: 4096,
        }
    }
}

/// The in-line fault injector and monitor.
#[derive(Clone)]
pub struct InjectorDevice {
    config: DeviceConfig,
    /// Authoritative editable per-direction configurations.
    dir_configs: [InjectorConfig; 2],
    channels: [Channel; 2],
    /// Egress by physical output port.
    egress: [EgressPort; 2],
    decoder: CommandDecoder,
    dir_select: DirSelect,
    serial_out: Vec<u8>,
    traffic_log_enabled: bool,
    traffic_log: FlightRecorder<TrafficRecord>,
    /// Observability recorder (scope `"device"`), disarmed by default.
    obs: Recorder,
}

impl std::fmt::Debug for InjectorDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InjectorDevice")
            .field("name", &self.config.name)
            .field("dir_select", &self.dir_select)
            .finish_non_exhaustive()
    }
}

impl InjectorDevice {
    /// Creates a device in pass-through mode on both directions.
    pub fn new(config: DeviceConfig) -> InjectorDevice {
        let mk_channel = || Channel {
            injector: FifoInjector::new(InjectorConfig::passthrough()),
            capture: CaptureBuffer::new(config.capture_capacity),
            stats: ChannelStats::default(),
        };
        InjectorDevice {
            dir_configs: [InjectorConfig::passthrough(); 2],
            channels: [mk_channel(), mk_channel()],
            egress: [EgressPort::new(0), EgressPort::new(1)],
            decoder: CommandDecoder::new(),
            dir_select: DirSelect::Both,
            serial_out: Vec::new(),
            traffic_log_enabled: false,
            traffic_log: FlightRecorder::new(config.traffic_capacity),
            obs: Recorder::disarmed(),
            config,
        }
    }

    /// The device's observability recorder.
    pub fn obs(&self) -> &Recorder {
        &self.obs
    }

    /// Mutable access to the recorder (arm it before an observed run).
    pub fn obs_mut(&mut self) -> &mut Recorder {
        &mut self.obs
    }

    /// A device with default configuration.
    pub fn with_name(name: impl Into<String>) -> InjectorDevice {
        InjectorDevice::new(DeviceConfig {
            name: name.into(),
            ..DeviceConfig::default()
        })
    }

    /// The device's name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Installs a configuration on one direction (the programmatic
    /// equivalent of a serial command sequence).
    pub fn configure(&mut self, dir: Direction, config: InjectorConfig) {
        self.dir_configs[dir.index()] = config;
        self.channels[dir.index()].injector.set_config(config);
    }

    /// Installs the same configuration on both directions.
    pub fn configure_both(&mut self, config: InjectorConfig) {
        self.configure(Direction::AToB, config);
        self.configure(Direction::BToA, config);
    }

    /// The active configuration of one direction.
    pub fn config_of(&self, dir: Direction) -> &InjectorConfig {
        self.channels[dir.index()].injector.config()
    }

    /// Forces one injection on the next segment of `dir`.
    pub fn inject_now(&mut self, dir: Direction) {
        self.channels[dir.index()].injector.inject_now();
    }

    /// Re-arms the `once` latch of `dir`.
    pub fn rearm(&mut self, dir: Direction) {
        self.channels[dir.index()].injector.rearm();
    }

    /// Datapath counters for one direction.
    pub fn fifo_stats(&self, dir: Direction) -> FifoStats {
        self.channels[dir.index()].injector.stats()
    }

    /// Monitoring counters for one direction.
    pub fn channel_stats(&self, dir: Direction) -> &ChannelStats {
        &self.channels[dir.index()].stats
    }

    /// Capture memory for one direction.
    pub fn capture(&self, dir: Direction) -> &CaptureBuffer {
        &self.channels[dir.index()].capture
    }

    /// Drains the output generator's serial response bytes.
    pub fn take_serial_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.serial_out)
    }

    /// Enables or disables full-traffic capture into the SDRAM model.
    pub fn set_traffic_log(&mut self, on: bool) {
        self.traffic_log_enabled = on;
    }

    /// The full-traffic capture memory (most recent frames first evicted).
    pub fn traffic_log(&self) -> &FlightRecorder<TrafficRecord> {
        &self.traffic_log
    }

    /// The device's cut-through latency on `dir`, given its output link.
    pub fn latency(&self, dir: Direction) -> SimDuration {
        let rate = self.egress[dir.out_port() as usize]
            .peer()
            .map(|p| p.link.data_rate_bps())
            .unwrap_or(640_000_000);
        self.channels[dir.index()].injector.latency(rate)
    }

    fn monitor_packet(&mut self, dir: Direction, bytes: &[u8]) {
        let ch = &mut self.channels[dir.index()];
        ch.stats.packets += 1;
        let hint = self.config.route_bytes_hint;
        let Some(ptype) = PacketType::from_slice(bytes.get(hint..).unwrap_or(&[])) else {
            return;
        };
        match ptype {
            PacketType::DATA => {
                ch.stats.data_packets += 1;
                if let Some(header) = EthHeader::from_slice(bytes.get(hint + 4..).unwrap_or(&[]))
                {
                    *ch.stats
                        .id_counts
                        .entry((header.src, header.dest))
                        .or_insert(0) += 1;
                }
            }
            PacketType::MAPPING => ch.stats.mapping_packets += 1,
            _ => {}
        }
    }

    fn log_traffic(&mut self, ctx: &Context<'_, Ev>, dir: Direction, frame: &Frame) {
        if !self.traffic_log_enabled {
            return;
        }
        let summary = match frame {
            Frame::Packet(pf) => {
                let hint = self.config.route_bytes_hint;
                match PacketType::from_slice(pf.bytes.get(hint..).unwrap_or(&[])) {
                    Some(t) => format!("{t} packet, {} bytes", pf.bytes.len()),
                    None => format!("short packet, {} bytes", pf.bytes.len()),
                }
            }
            Frame::Control(code) => match netfi_phy::ControlSymbol::decode_tolerant(*code) {
                Some(sym) => format!("<{sym}>"),
                None => format!("<CTL {code:02x}>"),
            },
        };
        self.traffic_log.push(
            ctx.now(),
            TrafficRecord {
                direction: dir,
                summary,
                chars: frame.wire_len(),
            },
        );
    }

    fn process_frame(&mut self, ctx: &mut Context<'_, Ev>, dir: Direction, frame: Frame) {
        self.log_traffic(ctx, dir, &frame);
        let out_frame = match frame {
            Frame::Packet(pf) => {
                self.monitor_packet(dir, &pf.bytes);
                let ch = &mut self.channels[dir.index()];
                // A reference-count bump, not a byte copy: the injector
                // materialises a private `bytes` only when it corrupts.
                let original = pf.bytes.clone();
                let mut bytes = pf.bytes;
                let report = ch.injector.process_packet_shared(&mut bytes);
                for &offset in &report.injected_offsets {
                    ch.capture
                        .record(ctx.now(), CaptureRecord::new(&original, &bytes, offset));
                    self.obs
                        .instant(ctx.now(), "device", "inject", offset as u64);
                }
                if report.crc_fixed {
                    self.obs.instant(ctx.now(), "device", "crc_repair", 0);
                }
                let terminator = pf
                    .terminator
                    .map(|code| ch.injector.process_terminator(code).0);
                Frame::Packet(PacketFrame { bytes, terminator })
            }
            Frame::Control(code) => {
                let ch = &mut self.channels[dir.index()];
                ch.stats.controls += 1;
                let (out, _injected) = ch.injector.process_control(code);
                Frame::Control(out)
            }
        };
        // Retransmit cut-through: the device streams characters out as they
        // emerge from the pipeline, so the frame's trailing edge leaves
        // `latency` after it arrived — no re-serialization is charged
        // ("data passed through the fault injector at the same rate it
        // would have if the fault injector had not been in the data path",
        // §3.5). Input spacing guarantees output events stay ordered and
        // non-overlapping for equal-rate segments.
        let latency = self.latency(dir);
        if let Some(peer) = self.egress[dir.out_port() as usize].peer().copied() {
            ctx.send(
                peer.dst,
                latency + peer.propagation(),
                Ev::Rx {
                    port: peer.dst_port,
                    frame: out_frame,
                },
            );
        }
    }

    fn apply_command(&mut self, cmd: Command) {
        let dirs: &[Direction] = match self.dir_select {
            DirSelect::A => &[Direction::AToB],
            DirSelect::B => &[Direction::BToA],
            DirSelect::Both => &[Direction::AToB, Direction::BToA],
        };
        match cmd {
            Command::SelectDirection(sel) => {
                self.dir_select = sel;
                return;
            }
            Command::QueryStats => {
                let report = self.render_stats();
                self.serial_out.extend_from_slice(report.as_bytes());
                return;
            }
            Command::ResetStats => {
                for dir in dirs {
                    self.channels[dir.index()].stats = ChannelStats::default();
                }
                return;
            }
            Command::TrafficLog(on) => {
                self.traffic_log_enabled = on;
                return;
            }
            Command::InjectNow => {
                for dir in dirs {
                    self.channels[dir.index()].injector.inject_now();
                }
                return;
            }
            Command::Rearm => {
                for dir in dirs {
                    self.channels[dir.index()].injector.rearm();
                }
                return;
            }
            _ => {}
        }
        for dir in dirs {
            let cfg = &mut self.dir_configs[dir.index()];
            match cmd {
                Command::MatchMode(m) => cfg.match_mode = m,
                Command::CompareData(v) => cfg.compare.compare_data = v,
                Command::CompareMask(v) => cfg.compare.compare_mask = v,
                Command::CorruptMode(m) => cfg.corrupt.mode = m,
                Command::CorruptData(v) => cfg.corrupt.corrupt_data = v,
                Command::CorruptMask(v) => cfg.corrupt.corrupt_mask = v,
                Command::CrcRecompute(on) => cfg.crc_recompute = on,
                Command::ControlSwap { from, mask, to } => {
                    cfg.control = Some(ControlInject {
                        compare: ControlCompare {
                            compare_code: from,
                            compare_mask: mask,
                        },
                        corrupt: ControlCorrupt {
                            mode: CorruptMode::Replace,
                            corrupt_code: to,
                            corrupt_mask: 0xFF,
                        },
                        include_terminators: true,
                    });
                }
                Command::ControlOff => cfg.control = None,
                Command::RandomRate(v) => {
                    cfg.random =
                        (v > 0).then_some(crate::random::RandomInject { threshold: v });
                }
                // Dispatch-only commands were fully handled (and returned)
                // above; a no-op here keeps the library panic-free in
                // release while tests still catch a mis-routed variant.
                _ => debug_assert!(false, "non-config command reached config dispatch"),
            }
            let cfg = *cfg;
            self.channels[dir.index()].injector.set_config(cfg);
        }
    }

    fn render_stats(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (label, dir) in [("A>B", Direction::AToB), ("B>A", Direction::BToA)] {
            let fifo = self.fifo_stats(dir);
            let ch = self.channel_stats(dir);
            let _ = writeln!(
                out,
                "{label}: packets={} controls={} matches={} injections={} ctl_inj={}",
                ch.packets, ch.controls, fifo.matches, fifo.injections, fifo.control_injections
            );
            for ((src, dst), n) in &ch.id_counts {
                let _ = writeln!(out, "{label}:   {src} -> {dst}: {n}");
            }
        }
        out
    }

    fn on_serial(&mut self, byte: u8) {
        if let Some(result) = self.decoder.feed(byte) {
            match result {
                Ok(cmd) => {
                    self.apply_command(cmd);
                    self.serial_out.extend_from_slice(b"+\n");
                }
                Err(_) => {
                    self.serial_out.extend_from_slice(b"?\n");
                }
            }
        }
    }

    /// Feeds a whole command string through the serial path (harness
    /// convenience; each byte arrives as an `Ev::Serial` in live use).
    pub fn feed_serial(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.on_serial(b);
        }
    }
}

impl Attach for InjectorDevice {
    fn attach_port(&mut self, port: u8, peer: PortPeer) {
        self.egress[port as usize].attach(peer);
    }
}

impl Component<Ev> for InjectorDevice {
    fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
        match ev {
            Ev::Rx { port, frame } => {
                self.process_frame(ctx, Direction::from_in_port(port), frame);
            }
            Ev::Timer { kind, .. } => {
                let (class, port) = split_timer_kind(kind);
                if class == timer_class::TX_DONE {
                    self.egress[port as usize].on_tx_done(ctx);
                }
            }
            Ev::Serial(byte) => self.on_serial(byte),
            Ev::App(_) | Ev::Deliver { .. } | Ev::Send { .. } => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn fork(&self) -> Box<dyn Component<Ev>> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trigger::MatchMode;
    use netfi_myrinet::event::connect;
    use netfi_myrinet::packet::{route_to_host, Packet};
    use netfi_phy::{ControlSymbol, Link};
    use netfi_sim::{ComponentId, Engine, SimTime};

    /// Bare endpoint that records frames and can transmit them.
    #[derive(Clone)]
    struct Probe {
        egress: EgressPort,
        rx: Vec<(SimTime, Frame)>,
    }

    impl Probe {
        fn new() -> Probe {
            Probe {
                egress: EgressPort::new(0),
                rx: Vec::new(),
            }
        }
    }

    impl Attach for Probe {
        fn attach_port(&mut self, _port: u8, peer: PortPeer) {
            self.egress.attach(peer);
        }
    }

    impl Component<Ev> for Probe {
        fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            match ev {
                Ev::Rx { frame, .. } => self.rx.push((ctx.now(), frame)),
                Ev::Timer { kind, gen } => {
                    let (class, _) = split_timer_kind(kind);
                    match class {
                        timer_class::TX_DONE => self.egress.on_tx_done(ctx),
                        timer_class::STOP_TIMEOUT => self.egress.on_stop_timeout(ctx, gen),
                        _ => {}
                    }
                }
                Ev::App(f) => {
                    if let Ok(frame) = f.downcast::<Frame>() {
                        self.egress.enqueue(ctx, *frame);
                    }
                }
                _ => {}
            }
        }
        fn fork(&self) -> Box<dyn Component<Ev>> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A ── injector ── B over 640 Mb/s links.
    fn inline_setup() -> (Engine<Ev>, ComponentId, ComponentId, ComponentId) {
        let mut engine: Engine<Ev> = Engine::new();
        let a = engine.add_component(Box::new(Probe::new()));
        let b = engine.add_component(Box::new(Probe::new()));
        let dev = engine.add_component(Box::new(InjectorDevice::with_name("fi0")));
        let link = Link::myrinet_640(1.0);
        connect::<Probe, InjectorDevice, _>(&mut engine, (a, 0), (dev, 0), &link);
        connect::<InjectorDevice, Probe, _>(&mut engine, (dev, 1), (b, 0), &link);
        (engine, a, b, dev)
    }

    fn data_wire(payload: &[u8]) -> Vec<u8> {
        let header = EthHeader {
            dest: EthAddr::myricom(2),
            src: EthAddr::myricom(1),
        };
        let mut full = header.encode().to_vec();
        full.extend_from_slice(payload);
        Packet::new(vec![route_to_host(1)], PacketType::DATA, full).encode()
    }

    fn send(engine: &mut Engine<Ev>, from: ComponentId, frame: Frame) {
        engine.schedule(engine.now(), from, Ev::App(Box::new(frame)));
    }

    #[test]
    fn passthrough_is_transparent_both_directions() {
        let (mut engine, a, b, _) = inline_setup();
        let wire = data_wire(b"hello");
        send(&mut engine, a, Frame::packet(wire.clone()));
        send(&mut engine, b, Frame::packet(wire.clone()));
        engine.run();
        let pa = engine.component_as::<Probe>(a).unwrap();
        let pb = engine.component_as::<Probe>(b).unwrap();
        assert_eq!(pa.rx.len(), 1);
        assert_eq!(pb.rx.len(), 1);
        match (&pa.rx[0].1, &pb.rx[0].1) {
            (Frame::Packet(x), Frame::Packet(y)) => {
                assert_eq!(x.bytes, wire);
                assert_eq!(y.bytes, wire);
            }
            other => panic!("unexpected frames: {other:?}"),
        }
    }

    #[test]
    fn adds_cut_through_latency() {
        // Send the same packet with and without the device and compare
        // arrival times: the difference must be the pipeline latency
        // (250 ns at 640 Mb/s) plus one extra cable's propagation + the
        // second serialization (store-and-forward at frame granularity).
        let (mut engine, a, b, dev) = inline_setup();
        let wire = data_wire(b"latency");
        send(&mut engine, a, Frame::packet(wire.clone()));
        engine.run();
        let with_device = engine.component_as::<Probe>(b).unwrap().rx[0].0;

        // Reference: direct link.
        let mut ref_engine: Engine<Ev> = Engine::new();
        let ra = ref_engine.add_component(Box::new(Probe::new()));
        let rb = ref_engine.add_component(Box::new(Probe::new()));
        connect::<Probe, Probe, _>(&mut ref_engine, (ra, 0), (rb, 0), &Link::myrinet_640(1.0));
        ref_engine.schedule(
            SimTime::ZERO,
            ra,
            Ev::App(Box::new(Frame::packet(wire.clone()))),
        );
        ref_engine.run();
        let direct = ref_engine.component_as::<Probe>(rb).unwrap().rx[0].0;

        let added = with_device - direct;
        let device = engine.component_as::<InjectorDevice>(dev).unwrap();
        let pipeline = device.channels[0].injector.latency(640_000_000);
        assert_eq!(pipeline, SimDuration::from_ns(250));
        // Cut-through: added = pipeline + one extra cable's propagation —
        // "this delay … can be simply modeled by a longer cable" (§1).
        assert_eq!(added, pipeline + SimDuration::from_ns(5));
    }

    #[test]
    fn triggered_injection_with_crc_fix() {
        let (mut engine, a, b, dev) = inline_setup();
        let config = InjectorConfig::builder()
            .match_mode(MatchMode::On)
            .compare(0x1818_0000, 0xFFFF_0000)
            .corrupt_replace(0x1918_0000, 0xFFFF_0000)
            .recompute_crc(true)
            .build();
        engine
            .component_as_mut::<InjectorDevice>(dev)
            .unwrap()
            .configure(Direction::AToB, config);
        send(&mut engine, a, Frame::packet(data_wire(&[0x18, 0x18, 0x44])));
        engine.run();
        let pb = engine.component_as::<Probe>(b).unwrap();
        let Frame::Packet(pf) = &pb.rx[0].1 else {
            panic!("expected packet")
        };
        let delivered = Packet::parse_delivered(&pf.bytes).unwrap();
        assert_eq!(&delivered.payload[12..], &[0x19, 0x18, 0x44]);
        let device = engine.component_as::<InjectorDevice>(dev).unwrap();
        assert_eq!(device.fifo_stats(Direction::AToB).injections, 1);
        assert_eq!(device.fifo_stats(Direction::BToA).injections, 0);
        assert_eq!(device.capture(Direction::AToB).len(), 1);
    }

    #[test]
    fn directions_are_independent() {
        let (mut engine, a, b, dev) = inline_setup();
        // Corrupt only B->A.
        engine
            .component_as_mut::<InjectorDevice>(dev)
            .unwrap()
            .configure(
                Direction::BToA,
                InjectorConfig::control_swap(
                    ControlSymbol::Go.encode(),
                    ControlSymbol::Stop.encode(),
                ),
            );
        send(&mut engine, a, Frame::control(ControlSymbol::Go));
        send(&mut engine, b, Frame::control(ControlSymbol::Go));
        engine.run();
        let pa = engine.component_as::<Probe>(a).unwrap();
        let pb = engine.component_as::<Probe>(b).unwrap();
        // B received A's GO untouched; A received B's GO corrupted to STOP.
        assert_eq!(pb.rx[0].1.as_control(), Some(ControlSymbol::Go));
        assert_eq!(pa.rx[0].1.as_control(), Some(ControlSymbol::Stop));
    }

    #[test]
    fn terminator_corruption() {
        let (mut engine, a, b, dev) = inline_setup();
        engine
            .component_as_mut::<InjectorDevice>(dev)
            .unwrap()
            .configure(
                Direction::AToB,
                InjectorConfig::control_swap(
                    ControlSymbol::Gap.encode(),
                    ControlSymbol::Idle.encode(),
                ),
            );
        send(&mut engine, a, Frame::packet(data_wire(b"x")));
        engine.run();
        let pb = engine.component_as::<Probe>(b).unwrap();
        let Frame::Packet(pf) = &pb.rx[0].1 else {
            panic!("expected packet")
        };
        assert!(!pf.gap_terminated(), "GAP must have been corrupted");
        assert_eq!(pf.terminator, Some(ControlSymbol::Idle.encode()));
    }

    #[test]
    fn serial_configuration_applies() {
        let (mut engine, a, b, dev) = inline_setup();
        // Program the paper's 0x1818 -> 0x1918 scenario over the serial
        // line, direction A only.
        let script = b"DA\nM1\nC18180000\nKFFFF0000\nR\nV19180000\nXFFFF0000\nG1\n";
        for (i, &byte) in script.iter().enumerate() {
            engine.schedule(SimTime::from_us(i as u64), dev, Ev::Serial(byte));
        }
        engine.run_until(SimTime::from_ms(1));
        let device = engine.component_as_mut::<InjectorDevice>(dev).unwrap();
        let acks = device.take_serial_output();
        assert_eq!(acks, b"+\n+\n+\n+\n+\n+\n+\n+\n".to_vec());
        send(&mut engine, a, Frame::packet(data_wire(&[0x18, 0x18, 0x44])));
        engine.run();
        let pb = engine.component_as::<Probe>(b).unwrap();
        let Frame::Packet(pf) = &pb.rx[0].1 else {
            panic!("expected packet")
        };
        let delivered = Packet::parse_delivered(&pf.bytes).unwrap();
        assert_eq!(&delivered.payload[12..], &[0x19, 0x18, 0x44]);
    }

    #[test]
    fn serial_errors_are_reported() {
        let mut device = InjectorDevice::with_name("t");
        device.feed_serial(b"BOGUS\nQ\n");
        let out = device.take_serial_output();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("?\n"), "{text}");
        assert!(text.contains("A>B: packets=0"), "{text}");
    }

    #[test]
    fn statistics_gathering_counts_identifiers() {
        let (mut engine, a, _b, dev) = inline_setup();
        for _ in 0..3 {
            send(&mut engine, a, Frame::packet(data_wire(b"count me")));
            engine.run();
        }
        let device = engine.component_as::<InjectorDevice>(dev).unwrap();
        let stats = device.channel_stats(Direction::AToB);
        assert_eq!(stats.packets, 3);
        assert_eq!(stats.data_packets, 3);
        assert_eq!(
            stats.id_counts[&(EthAddr::myricom(1), EthAddr::myricom(2))],
            3
        );
    }

    #[test]
    fn traffic_log_records_passing_frames() {
        let (mut engine, a, _b, dev) = inline_setup();
        // Enable the log over the serial line.
        engine.schedule(SimTime::ZERO, dev, Ev::Serial(b'L'));
        engine.schedule(SimTime::from_us(100), dev, Ev::Serial(b'1'));
        engine.schedule(SimTime::from_us(200), dev, Ev::Serial(b'\n'));
        engine.run_until(SimTime::from_ms(1));
        send(&mut engine, a, Frame::packet(data_wire(b"logged")));
        send(&mut engine, a, Frame::control(ControlSymbol::Stop));
        engine.run();
        let device = engine.component_as::<InjectorDevice>(dev).unwrap();
        let log: Vec<String> = device
            .traffic_log()
            .iter()
            .map(|r| r.value.to_string())
            .collect();
        assert_eq!(log.len(), 2, "{log:?}");
        // The control symbol interleaves past the serializing packet, so
        // it is observed first.
        assert!(log[0].contains("<STOP>"), "{log:?}");
        assert!(log[1].contains("DATA packet"), "{log:?}");
        // Disable and verify nothing more is recorded.
        let device = engine.component_as_mut::<InjectorDevice>(dev).unwrap();
        device.set_traffic_log(false);
        send(&mut engine, a, Frame::control(ControlSymbol::Go));
        engine.run();
        let device = engine.component_as::<InjectorDevice>(dev).unwrap();
        assert_eq!(device.traffic_log().len(), 2);
    }

    #[test]
    fn routes_map_through_in_both_directions() {
        // §3.5: "routes are correctly mapped through in both directions" —
        // frames pass unmodified in pass-through, including control frames.
        let (mut engine, a, b, _) = inline_setup();
        send(&mut engine, a, Frame::control(ControlSymbol::Gap));
        send(&mut engine, b, Frame::control(ControlSymbol::Stop));
        engine.run();
        assert_eq!(
            engine.component_as::<Probe>(b).unwrap().rx[0].1.as_control(),
            Some(ControlSymbol::Gap)
        );
        assert_eq!(
            engine.component_as::<Probe>(a).unwrap().rx[0].1.as_control(),
            Some(ControlSymbol::Stop)
        );
    }
}
