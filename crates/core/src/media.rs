//! The second-generation architecture: media abstraction.
//!
//! Footnote 1 of the paper: "We are currently working on a second
//! generation device that abstracts the interface logic away from the
//! injector logic and allows much more flexibility in this regard." This
//! module realizes that design: [`MediaInterface`] captures everything
//! medium-specific — integrity-code repair and traffic classification —
//! while the injector logic ([`FifoInjector`])
//! stays byte-oriented and medium-blind. [`Gen2Injector`] composes the two.
//!
//! Two interfaces ship, matching the board's two PHYs: [`MyrinetMedia`]
//! (trailing CRC-8, route/type/Ethernet-header layout) and
//! [`FibreChannelMedia`] (trailing CRC-32, FC header layout).

use std::collections::BTreeMap;
use std::fmt;

use netfi_myrinet::interface::EthHeader;
use netfi_myrinet::packet::PacketType;

use crate::config::InjectorConfig;
use crate::fifo::{FifoInjector, PacketReport};

/// What a medium's interface logic learned about one passing packet.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MediaClass {
    /// Medium-specific kind label ("DATA", "MAPPING", "FC type 0x08", …).
    pub kind: Option<String>,
    /// Source/destination identifiers, as opaque 64-bit values.
    pub endpoints: Option<(u64, u64)>,
}

/// Medium-specific interface logic, separated from the injector logic.
///
/// This trait is the crate's extension point for new media: implement it
/// and the whole injector — triggers, corruption, match modes, random SEU
/// injection, capture — works on the new network unchanged.
pub trait MediaInterface: fmt::Debug + 'static {
    /// The medium's name (for reports).
    fn name(&self) -> &str;

    /// Repairs the medium's end-to-end integrity code in place after a
    /// corruption (the gen-1 device's "recalculate the correct CRC value
    /// to transmit immediately before the EOF", generalized).
    fn repair_integrity(&self, bytes: &mut [u8]);

    /// `true` if the integrity code currently verifies.
    fn integrity_ok(&self, bytes: &[u8]) -> bool;

    /// Classifies a packet for the statistics unit.
    fn classify(&self, bytes: &[u8]) -> MediaClass;
}

/// Myrinet SAN interface logic (the MyriPHY side of the board).
#[derive(Debug, Clone)]
pub struct MyrinetMedia {
    /// Leading route bytes before the type field at this observation
    /// point (1 on a host link in this model).
    pub route_bytes: usize,
}

impl Default for MyrinetMedia {
    fn default() -> Self {
        MyrinetMedia { route_bytes: 1 }
    }
}

impl MediaInterface for MyrinetMedia {
    fn name(&self) -> &str {
        "Myrinet"
    }

    fn repair_integrity(&self, bytes: &mut [u8]) {
        if bytes.len() >= 2 {
            let last = bytes.len() - 1;
            bytes[last] = netfi_myrinet::crc8::checksum(&bytes[..last]);
        }
    }

    fn integrity_ok(&self, bytes: &[u8]) -> bool {
        netfi_myrinet::crc8::verify(bytes)
    }

    fn classify(&self, bytes: &[u8]) -> MediaClass {
        let Some(ptype) = PacketType::from_slice(bytes.get(self.route_bytes..).unwrap_or(&[]))
        else {
            return MediaClass::default();
        };
        let endpoints = (ptype == PacketType::DATA)
            .then(|| EthHeader::from_slice(bytes.get(self.route_bytes + 4..).unwrap_or(&[])))
            .flatten()
            .map(|h| (eth_to_u64(h.src), eth_to_u64(h.dest)));
        MediaClass {
            kind: Some(ptype.to_string()),
            endpoints,
        }
    }
}

fn eth_to_u64(addr: netfi_myrinet::addr::EthAddr) -> u64 {
    let o = addr.octets();
    u64::from_be_bytes([0, 0, o[0], o[1], o[2], o[3], o[4], o[5]])
}

/// Fibre Channel interface logic (the FCPHY side of the board). Operates
/// on frame *bodies* (header + payload + CRC-32, between the SOF and EOF
/// ordered sets), which is what the device sees behind its 8b/10b PHY.
#[derive(Debug, Clone, Default)]
pub struct FibreChannelMedia;

impl MediaInterface for FibreChannelMedia {
    fn name(&self) -> &str {
        "Fibre Channel"
    }

    fn repair_integrity(&self, bytes: &mut [u8]) {
        if bytes.len() >= 4 {
            let body_len = bytes.len() - 4;
            let crc = netfi_fc_crc32(&bytes[..body_len]);
            bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        }
    }

    fn integrity_ok(&self, bytes: &[u8]) -> bool {
        netfi_fc_verify(bytes)
    }

    fn classify(&self, bytes: &[u8]) -> MediaClass {
        if bytes.len() < 24 {
            return MediaClass::default();
        }
        let Ok(header) = <[u8; 24]>::try_from(&bytes[..24]) else {
            return MediaClass::default();
        };
        let d_id = u64::from(u32::from_be_bytes([0, header[1], header[2], header[3]]));
        let s_id = u64::from(u32::from_be_bytes([0, header[5], header[6], header[7]]));
        MediaClass {
            kind: Some(format!("FC type 0x{:02x}", header[8])),
            endpoints: Some((s_id, d_id)),
        }
    }
}

// Thin local aliases so this module reads independently of the fc crate's
// module layout.
fn netfi_fc_crc32(data: &[u8]) -> u32 {
    netfi_fc::crc32::checksum(data)
}

fn netfi_fc_verify(data: &[u8]) -> bool {
    netfi_fc::crc32::verify(data)
}

/// Statistics gathered by a [`Gen2Injector`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Gen2Stats {
    /// Packets processed.
    pub packets: u64,
    /// Packets corrupted.
    pub injected_packets: u64,
    /// Integrity codes repaired after corruption.
    pub repairs: u64,
    /// Packet counts per kind label.
    pub kind_counts: BTreeMap<String, u64>,
    /// Packet counts per (source, destination) identifier pair.
    pub endpoint_counts: BTreeMap<(u64, u64), u64>,
}

/// The gen-2 injector: medium-blind injector logic + pluggable interface
/// logic.
///
/// # Example
///
/// ```
/// use netfi_core::media::{FibreChannelMedia, Gen2Injector, MediaInterface};
/// use netfi_core::config::InjectorConfig;
/// use netfi_core::trigger::MatchMode;
///
/// let config = InjectorConfig::builder()
///     .match_mode(MatchMode::On)
///     .compare(u32::from_be_bytes(*b"SCSI"), 0xFFFF_FFFF)
///     .corrupt_toggle(0x0000_0001)
///     .recompute_crc(true) // repaired with the *medium's* code: CRC-32
///     .build();
/// let mut injector = Gen2Injector::new(FibreChannelMedia, config);
/// assert_eq!(injector.media().name(), "Fibre Channel");
/// ```
#[derive(Debug)]
pub struct Gen2Injector<M: MediaInterface> {
    media: M,
    fifo: FifoInjector,
    /// Whether injected packets get their integrity code repaired — the
    /// gen-1 `crc_recompute` flag, honoured at the media layer.
    repair_enabled: bool,
    stats: Gen2Stats,
}

impl<M: MediaInterface> Gen2Injector<M> {
    /// Composes injector logic with a medium's interface logic.
    pub fn new(media: M, config: InjectorConfig) -> Gen2Injector<M> {
        // Integrity repair belongs to the media layer here; disable the
        // gen-1 datapath's built-in CRC-8 fixer and honour the flag at
        // this level instead.
        let mut inner = config;
        inner.crc_recompute = false;
        Gen2Injector {
            media,
            fifo: FifoInjector::new(inner),
            repair_enabled: config.crc_recompute,
            stats: Gen2Stats::default(),
        }
    }

    /// The medium's interface logic.
    pub fn media(&self) -> &M {
        &self.media
    }

    /// The injector logic, read-only (counters, armed state).
    pub fn fifo(&self) -> &FifoInjector {
        &self.fifo
    }

    /// Mutable injector logic (for `inject_now` and re-arming).
    pub fn fifo_mut(&mut self) -> &mut FifoInjector {
        &mut self.fifo
    }

    /// Reconfigures the injector logic.
    pub fn set_config(&mut self, config: InjectorConfig) {
        let mut inner = config;
        inner.crc_recompute = false;
        self.fifo.set_config(inner);
        self.repair_enabled = config.crc_recompute;
    }

    /// Statistics.
    pub fn stats(&self) -> &Gen2Stats {
        &self.stats
    }

    /// Pushes one packet (wire image for Myrinet; frame body for FC)
    /// through the datapath.
    pub fn process(&mut self, bytes: &mut [u8]) -> PacketReport {
        self.stats.packets += 1;
        let class = self.media.classify(bytes);
        if let Some(kind) = class.kind {
            *self.stats.kind_counts.entry(kind).or_insert(0) += 1;
        }
        if let Some(pair) = class.endpoints {
            *self.stats.endpoint_counts.entry(pair).or_insert(0) += 1;
        }
        let report = self.fifo.process_packet(bytes);
        if report.injected() {
            self.stats.injected_packets += 1;
            if self.repair_enabled {
                self.media.repair_integrity(bytes);
                self.stats.repairs += 1;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trigger::MatchMode;
    use netfi_fc::frame::{FcAddress, FcFrame};
    use netfi_myrinet::packet::{route_to_host, Packet};

    fn trigger_config(pattern: &[u8; 4], repair: bool) -> InjectorConfig {
        InjectorConfig::builder()
            .match_mode(MatchMode::On)
            .compare(u32::from_be_bytes(*pattern), 0xFFFF_FFFF)
            .corrupt_toggle(0x0000_00FF)
            .recompute_crc(repair)
            .build()
    }

    #[test]
    fn myrinet_media_repairs_crc8() {
        let mut injector = Gen2Injector::new(MyrinetMedia::default(), trigger_config(b"BEEF", true));
        let pkt = Packet::new(
            vec![route_to_host(1)],
            PacketType::DATA,
            b"some BEEF here".to_vec(),
        );
        let mut wire = pkt.encode();
        let report = injector.process(&mut wire);
        assert!(report.injected());
        assert!(injector.media().integrity_ok(&wire), "CRC-8 repaired");
        assert_eq!(injector.stats().repairs, 1);
    }

    #[test]
    fn fc_media_repairs_crc32() {
        // The gen-1 device could only repair the Myrinet CRC-8; the gen-2
        // media abstraction repairs whatever the medium uses.
        let mut injector = Gen2Injector::new(FibreChannelMedia, trigger_config(b"BEEF", true));
        let frame = FcFrame::data(
            FcAddress::new(0x111111),
            FcAddress::new(0x222222),
            0,
            b"fc BEEF payload".to_vec(),
        );
        let mut body = frame.body();
        let report = injector.process(&mut body);
        assert!(report.injected());
        assert!(injector.media().integrity_ok(&body), "CRC-32 repaired");
    }

    #[test]
    fn repair_disabled_leaves_integrity_broken() {
        let mut injector = Gen2Injector::new(FibreChannelMedia, trigger_config(b"BEEF", false));
        let frame = FcFrame::data(FcAddress::new(1), FcAddress::new(2), 0, b"xx BEEF".to_vec());
        let mut body = frame.body();
        assert!(injector.process(&mut body).injected());
        assert!(!injector.media().integrity_ok(&body));
        assert_eq!(injector.stats().repairs, 0);
    }

    #[test]
    fn classification_is_medium_specific() {
        let mut myri = Gen2Injector::new(
            MyrinetMedia::default(),
            InjectorConfig::passthrough(),
        );
        let pkt = Packet::new(vec![route_to_host(1)], PacketType::MAPPING, vec![1, 2, 3]);
        let mut wire = pkt.encode();
        myri.process(&mut wire);
        assert_eq!(myri.stats().kind_counts.get("MAPPING"), Some(&1));

        let mut fc = Gen2Injector::new(FibreChannelMedia, InjectorConfig::passthrough());
        let frame = FcFrame::data(FcAddress::new(0xA), FcAddress::new(0xB), 0, vec![]);
        let mut body = frame.body();
        fc.process(&mut body);
        assert_eq!(fc.stats().kind_counts.get("FC type 0x08"), Some(&1));
        // classify reports (source, destination) = (s_id, d_id).
        assert_eq!(fc.stats().endpoint_counts.get(&(0xB, 0xA)), Some(&1));
    }

    #[test]
    fn myrinet_endpoint_counting_matches_gen1() {
        use netfi_myrinet::addr::EthAddr;
        use netfi_myrinet::interface::EthHeader;
        let mut injector =
            Gen2Injector::new(MyrinetMedia::default(), InjectorConfig::passthrough());
        let header = EthHeader {
            dest: EthAddr::myricom(2),
            src: EthAddr::myricom(1),
        };
        let mut payload = header.encode().to_vec();
        payload.extend_from_slice(b"data");
        let pkt = Packet::new(vec![route_to_host(1)], PacketType::DATA, payload);
        let mut wire = pkt.encode();
        injector.process(&mut wire);
        let src = super::eth_to_u64(EthAddr::myricom(1));
        let dst = super::eth_to_u64(EthAddr::myricom(2));
        assert_eq!(injector.stats().endpoint_counts.get(&(src, dst)), Some(&1));
    }

    #[test]
    fn random_seu_works_through_gen2() {
        let config = InjectorConfig::builder().random_seu(1.0).recompute_crc(true).build();
        let mut injector = Gen2Injector::new(FibreChannelMedia, config);
        let frame = FcFrame::data(FcAddress::new(1), FcAddress::new(2), 0, vec![0u8; 64]);
        let mut body = frame.body();
        let report = injector.process(&mut body);
        assert!(report.injected(), "p=1.0 must flip bits");
        assert!(injector.media().integrity_ok(&body), "CRC-32 repaired after SEU");
    }
}
