//! Random fault injection — the first fault model of §3.1: "Random faults
//! causing bit flip errors for system availability and fault tolerance
//! characterization under SEU conditions."
//!
//! The hardware implementation is an LFSR compared against a programmable
//! threshold each 32-bit segment; on a hit, one bit of the segment is
//! flipped. We model exactly that: a 32-bit Galois LFSR (taps per the
//! maximal-length polynomial x³²+x²²+x²+x+1), an integer threshold out of
//! 2³², and LFSR-selected bit positions — fully deterministic per seed, as
//! befits reproducible campaigns.

/// A 32-bit maximal-length Galois LFSR, the hardware's randomness source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lfsr32 {
    state: u32,
}

impl Lfsr32 {
    /// Taps for x³² + x²² + x² + x + 1 (maximal length).
    const TAPS: u32 = 0x8020_0003;

    /// Creates an LFSR; a zero seed is mapped to the all-ones state (an
    /// LFSR must never be zero).
    pub fn new(seed: u32) -> Lfsr32 {
        Lfsr32 {
            state: if seed == 0 { 0xFFFF_FFFF } else { seed },
        }
    }

    /// Advances one step and returns the new state.
    #[allow(clippy::should_implement_trait)] // hardware register semantics, not an iterator
    pub fn next(&mut self) -> u32 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb != 0 {
            self.state ^= Self::TAPS;
        }
        self.state
    }

    /// Advances a full word period (32 steps) and returns the state: the
    /// hardware clocks the LFSR once per bit time, i.e. 32 steps per
    /// segment, so successive per-segment samples share no register bits.
    pub fn next_word(&mut self) -> u32 {
        for _ in 0..31 {
            self.next();
        }
        self.next()
    }
}

/// Configuration of the random (SEU) injection unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomInject {
    /// Per-32-bit-segment flip probability, as a numerator over 2³²
    /// (integer, so the config stays `Eq` and matches the hardware's
    /// threshold-register design).
    pub threshold: u32,
}

impl RandomInject {
    /// A unit whose per-segment flip probability approximates `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_probability(p: f64) -> RandomInject {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        RandomInject {
            threshold: (p * u32::MAX as f64) as u32,
        }
    }

    /// The configured probability as a float.
    pub fn probability(&self) -> f64 {
        self.threshold as f64 / u32::MAX as f64
    }

    /// The equivalent per-bit error rate (one flipped bit per hit segment
    /// of 32 bits).
    pub fn bit_error_rate(&self) -> f64 {
        self.probability() / 32.0
    }
}

/// The runtime state of the random injector: LFSR + threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomUnit {
    config: RandomInject,
    lfsr: Lfsr32,
}

impl RandomUnit {
    /// Creates a unit with the given configuration and LFSR seed.
    pub fn new(config: RandomInject, seed: u32) -> RandomUnit {
        RandomUnit {
            config,
            lfsr: Lfsr32::new(seed),
        }
    }

    /// Decides, for one 32-bit segment, whether to flip a bit; returns the
    /// bit index (0–31) to flip, if any.
    pub fn draw(&mut self) -> Option<u32> {
        if self.config.threshold == 0 {
            return None;
        }
        let roll = self.lfsr.next_word();
        if roll < self.config.threshold {
            Some(self.lfsr.next_word() & 31)
        } else {
            None
        }
    }

    /// The active configuration.
    pub fn config(&self) -> RandomInject {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_never_zero_and_periodic() {
        let mut l = Lfsr32::new(1);
        let mut seen_zero = false;
        for _ in 0..100_000 {
            if l.next() == 0 {
                seen_zero = true;
            }
        }
        assert!(!seen_zero);
        // Zero seed handled.
        let mut z = Lfsr32::new(0);
        assert_ne!(z.next(), 0);
    }

    #[test]
    fn lfsr_deterministic() {
        let mut a = Lfsr32::new(42);
        let mut b = Lfsr32::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn zero_threshold_never_fires() {
        let mut u = RandomUnit::new(RandomInject { threshold: 0 }, 7);
        for _ in 0..10_000 {
            assert_eq!(u.draw(), None);
        }
    }

    #[test]
    fn full_threshold_always_fires() {
        let mut u = RandomUnit::new(RandomInject { threshold: u32::MAX }, 7);
        for _ in 0..1_000 {
            let bit = u.draw();
            assert!(bit.is_some());
            assert!(bit.unwrap() < 32);
        }
    }

    #[test]
    fn hit_rate_tracks_threshold() {
        let p = 0.125;
        let mut u = RandomUnit::new(RandomInject::with_probability(p), 99);
        let n = 200_000;
        let hits = (0..n).filter(|_| u.draw().is_some()).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - p).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn probability_roundtrip() {
        let r = RandomInject::with_probability(0.25);
        assert!((r.probability() - 0.25).abs() < 1e-6);
        assert!((r.bit_error_rate() - 0.25 / 32.0).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_probability() {
        let _ = RandomInject::with_probability(1.5);
    }
}
