//! Synthesis resource estimation (paper Table 1).
//!
//! The paper reports Synopsys/Xilinx synthesis results for the six VHDL
//! entities of the injector. We cannot run vendor synthesis, so this module
//! substitutes a first-order *structural* estimator: each entity is
//! described by the registers, FSM state, counters, compare networks,
//! mux bit-slices and random combinational terms that our emulation of that
//! entity actually contains, and uniform coefficients map the structure to
//! the four columns the paper reports:
//!
//! - **D flip-flops** = register bits + state bits + counter bits (exact).
//! - **Multiplexors** = 2:1 mux bit-slices (exact).
//! - **Function generators** (4-input LUTs) = XOR-compare bits / 2
//!   + mux bits / 2 + decode terms + 4 × state bits + counter bits
//!   + register-enable fanout (register bits / 4).
//! - **Gates** = function generators minus a 1/16 LUT-packing saving (the
//!   vendor "gates" metric consistently ran a few percent below the FG
//!   count in Table 1).
//!
//! The regenerator (`table1_synthesis`) prints paper-reported versus
//! model-estimated values with per-cell error.

use std::fmt;

/// Structural description of one VHDL entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntityStructure {
    /// Entity name as in Table 1.
    pub name: &'static str,
    /// Number of instances on the device.
    pub instances: u32,
    /// Data/configuration register bits per instance.
    pub register_bits: u32,
    /// FSM state register bits per instance (one-hot where the paper's
    /// design used one-hot encoding).
    pub state_bits: u32,
    /// Counter bits per instance.
    pub counter_bits: u32,
    /// Bit-width of XOR/AND compare-and-mask networks per instance.
    pub xor_compare_bits: u32,
    /// 2:1 multiplexor bit-slices per instance.
    pub mux2_bits: u32,
    /// Irregular combinational terms (decoders, priority logic) per
    /// instance.
    pub decode_terms: u32,
}

/// Estimated resources, in the four columns of Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceEstimate {
    /// Gate equivalents.
    pub gates: u32,
    /// 4-input function generators (LUTs).
    pub function_generators: u32,
    /// Multiplexors.
    pub multiplexors: u32,
    /// D flip-flops.
    pub dffs: u32,
}

impl ResourceEstimate {
    /// Sums two estimates.
    #[allow(clippy::should_implement_trait)] // a column-wise tally, not arithmetic closure
    pub fn add(self, other: ResourceEstimate) -> ResourceEstimate {
        ResourceEstimate {
            gates: self.gates + other.gates,
            function_generators: self.function_generators + other.function_generators,
            multiplexors: self.multiplexors + other.multiplexors,
            dffs: self.dffs + other.dffs,
        }
    }
}

impl EntityStructure {
    /// Applies the coefficient model to produce a per-device estimate
    /// (all instances included).
    pub fn estimate(&self) -> ResourceEstimate {
        let fg_per_instance = self.xor_compare_bits.div_ceil(2)
            + self.mux2_bits.div_ceil(2)
            + self.decode_terms
            + 4 * self.state_bits
            + self.counter_bits
            + self.register_bits.div_ceil(4);
        let gates_per_instance = fg_per_instance - fg_per_instance.div_ceil(16);
        let dff_per_instance = self.register_bits + self.state_bits + self.counter_bits;
        ResourceEstimate {
            gates: gates_per_instance * self.instances,
            function_generators: fg_per_instance * self.instances,
            multiplexors: self.mux2_bits * self.instances,
            dffs: dff_per_instance * self.instances,
        }
    }
}

/// The six entities of the injector, with structures matching the
/// emulation in this crate (`FifoInjector`, `CommandDecoder`, …).
pub fn entity_structures() -> Vec<EntityStructure> {
    vec![
        // Clock generator: an 11-bit divider plus phase decode.
        EntityStructure {
            name: "Clck_gen",
            instances: 1,
            register_bits: 0,
            state_bits: 0,
            counter_bits: 11,
            xor_compare_bits: 0,
            mux2_bits: 1,
            decode_terms: 4,
        },
        // Communications handler: byte latches, small FSM, interrupt
        // decode.
        EntityStructure {
            name: "Comm",
            instances: 1,
            register_bits: 24,
            state_bits: 3,
            counter_bits: 4,
            xor_compare_bits: 16,
            mux2_bits: 9,
            decode_terms: 60,
        },
        // Command (instruction) decoder: the large FSM plus the staged
        // 2 × 128-bit configuration register file.
        EntityStructure {
            name: "Inst_dec",
            instances: 1,
            register_bits: 256,
            state_bits: 22,
            counter_bits: 8,
            xor_compare_bits: 0,
            mux2_bits: 17,
            decode_terms: 100,
        },
        // Output generator: mostly combinational ASCII formatting, a
        // small one-hot FSM.
        EntityStructure {
            name: "Out_gen",
            instances: 1,
            register_bits: 8,
            state_bits: 7,
            counter_bits: 0,
            xor_compare_bits: 0,
            mux2_bits: 0,
            decode_terms: 50,
        },
        // SPI: two 16-bit shift registers, bit counter, small FSM.
        EntityStructure {
            name: "SPI",
            instances: 1,
            register_bits: 34,
            state_bits: 4,
            counter_bits: 4,
            xor_compare_bits: 0,
            mux2_bits: 6,
            decode_terms: 37,
        },
        // FIFO injector (×2, one per direction): compare shift registers,
        // pipeline registers, per-direction config latches, wide
        // compare/corrupt networks, FIFO addressing.
        EntityStructure {
            name: "FIFO_Inject",
            instances: 2,
            register_bits: 330,
            state_bits: 4,
            counter_bits: 60,
            xor_compare_bits: 160,
            mux2_bits: 175,
            decode_terms: 573,
        },
    ]
}

/// Values reported in the paper's Table 1 (FIFO_Inject row covers both
/// instances, matching the paper's totals).
pub fn paper_table1() -> Vec<(&'static str, ResourceEstimate)> {
    vec![
        ("Clck_gen", ResourceEstimate { gates: 10, function_generators: 15, multiplexors: 1, dffs: 11 }),
        ("Comm", ResourceEstimate { gates: 94, function_generators: 100, multiplexors: 9, dffs: 31 }),
        ("Inst_dec", ResourceEstimate { gates: 259, function_generators: 275, multiplexors: 17, dffs: 286 }),
        ("Out_gen", ResourceEstimate { gates: 78, function_generators: 80, multiplexors: 0, dffs: 15 }),
        ("SPI", ResourceEstimate { gates: 66, function_generators: 69, multiplexors: 6, dffs: 42 }),
        ("FIFO_Inject", ResourceEstimate { gates: 1768, function_generators: 1800, multiplexors: 350, dffs: 788 }),
    ]
}

/// One row of the reproduction: paper value vs model estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Entity name.
    pub name: &'static str,
    /// As reported in the paper.
    pub paper: ResourceEstimate,
    /// As estimated by the structural model.
    pub model: ResourceEstimate,
}

/// Builds the full paper-vs-model comparison, with a `Total` row.
pub fn table1() -> Vec<Table1Row> {
    let paper = paper_table1();
    let mut rows: Vec<Table1Row> = entity_structures()
        .into_iter()
        .zip(paper)
        .map(|(s, (name, p))| {
            debug_assert_eq!(s.name, name);
            Table1Row {
                name,
                paper: p,
                model: s.estimate(),
            }
        })
        .collect();
    let total = rows.iter().fold(
        Table1Row {
            name: "Total",
            paper: ResourceEstimate::default(),
            model: ResourceEstimate::default(),
        },
        |acc, row| Table1Row {
            name: "Total",
            paper: acc.paper.add(row.paper),
            model: acc.model.add(row.model),
        },
    );
    rows.push(total);
    rows
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} gates {:>5}/{:<5} FGs {:>5}/{:<5} mux {:>4}/{:<4} dff {:>5}/{:<5}",
            self.name,
            self.paper.gates,
            self.model.gates,
            self.paper.function_generators,
            self.model.function_generators,
            self.paper.multiplexors,
            self.model.multiplexors,
            self.paper.dffs,
            self.model.dffs,
        )
    }
}

/// Renders the whole comparison table (paper/model in each cell).
pub fn render_table1() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1 — synthesis results, paper-reported / model-estimated"
    );
    for row in table1() {
        let _ = writeln!(out, "{row}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(paper: u32, model: u32) -> bool {
        let diff = paper.abs_diff(model);
        // within 10 % or 6 absolute (small entities).
        diff * 10 <= paper.max(model) || diff <= 6
    }

    #[test]
    fn dff_counts_match_paper_exactly() {
        // Register inventories are exact structure, so the D-FF column
        // must reproduce Table 1 exactly.
        for row in table1() {
            assert_eq!(row.paper.dffs, row.model.dffs, "{}", row.name);
        }
    }

    #[test]
    fn mux_counts_match_paper_exactly() {
        for row in table1() {
            assert_eq!(row.paper.multiplexors, row.model.multiplexors, "{}", row.name);
        }
    }

    #[test]
    fn fg_and_gate_estimates_within_tolerance() {
        for row in table1() {
            assert!(
                close(row.paper.function_generators, row.model.function_generators),
                "{}: FG paper={} model={}",
                row.name,
                row.paper.function_generators,
                row.model.function_generators
            );
            assert!(
                close(row.paper.gates, row.model.gates),
                "{}: gates paper={} model={}",
                row.name,
                row.paper.gates,
                row.model.gates
            );
        }
    }

    #[test]
    fn totals_match_paper_sums() {
        // The paper's totals: 2275 / 2339 / 383 / 1173.
        let rows = table1();
        let total = rows.last().unwrap();
        assert_eq!(total.paper.gates, 2275);
        assert_eq!(total.paper.function_generators, 2339);
        assert_eq!(total.paper.multiplexors, 383);
        assert_eq!(total.paper.dffs, 1173);
    }

    #[test]
    fn fifo_injector_dominates() {
        // The datapath is by far the largest entity — the design insight
        // Table 1 communicates.
        let rows = table1();
        let fifo = rows.iter().find(|r| r.name == "FIFO_Inject").unwrap();
        for row in rows.iter().filter(|r| r.name != "FIFO_Inject" && r.name != "Total") {
            assert!(fifo.model.function_generators > 3 * row.model.function_generators);
        }
    }

    #[test]
    fn render_contains_all_entities() {
        let text = render_table1();
        for name in ["Clck_gen", "Comm", "Inst_dec", "Out_gen", "SPI", "FIFO_Inject", "Total"] {
            assert!(text.contains(name), "missing {name}");
        }
    }
}
