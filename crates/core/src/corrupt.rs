//! The corruption unit (paper §3.3, "Injector Control Inputs").
//!
//! "Corrupt mode has two options: toggle and replace. In toggle mode, the
//! bits of the corrupt data vector are toggled, i.e., errors in the data
//! stream correspond to the bit positions in logic one of the corrupt data
//! vector. In replace mode, the correct data is replaced by the data in the
//! corrupt data vector … while applying the corrupt mask vector and
//! allowing only selected bits of the corrupt data vector to replace the
//! correct data; other bits pass unchanged."

// netfi-lint: deny(hot-path-alloc)
//
// The corrupt unit mutates frame bytes in place; it must never allocate.

/// Corruption mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorruptMode {
    /// XOR the corrupt-data vector into the stream.
    #[default]
    Toggle,
    /// Replace masked bits with the corrupt-data vector.
    Replace,
}

/// The 32-bit corruption unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CorruptUnit {
    /// Toggle or replace.
    pub mode: CorruptMode,
    /// The corrupt-data vector.
    pub corrupt_data: u32,
    /// In replace mode, which bits are replaced (1 = replace). Ignored in
    /// toggle mode.
    pub corrupt_mask: u32,
}

impl CorruptUnit {
    /// A unit that toggles the bits set in `corrupt_data`.
    pub fn toggle(corrupt_data: u32) -> CorruptUnit {
        CorruptUnit {
            mode: CorruptMode::Toggle,
            corrupt_data,
            corrupt_mask: 0,
        }
    }

    /// A unit that replaces the bits selected by `corrupt_mask` with
    /// `corrupt_data`.
    pub fn replace(corrupt_data: u32, corrupt_mask: u32) -> CorruptUnit {
        CorruptUnit {
            mode: CorruptMode::Replace,
            corrupt_data,
            corrupt_mask,
        }
    }

    /// Applies the corruption to a 32-bit window.
    pub fn apply(&self, window: u32) -> u32 {
        match self.mode {
            CorruptMode::Toggle => window ^ self.corrupt_data,
            CorruptMode::Replace => {
                (window & !self.corrupt_mask) | (self.corrupt_data & self.corrupt_mask)
            }
        }
    }

    /// Applies the corruption to four big-endian bytes at `offset` in a
    /// buffer (the window position found by the compare unit). Bytes past
    /// the end of the buffer are left untouched.
    pub fn apply_at(&self, bytes: &mut [u8], offset: usize) {
        let mut window = [0u8; 4];
        for (k, w) in window.iter_mut().enumerate() {
            if let Some(&b) = bytes.get(offset + k) {
                *w = b;
            }
        }
        let corrupted = self.apply(u32::from_be_bytes(window)).to_be_bytes();
        for (k, &c) in corrupted.iter().enumerate() {
            if let Some(b) = bytes.get_mut(offset + k) {
                *b = c;
            }
        }
    }
}

/// An 8-bit corruption unit for control symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlCorrupt {
    /// Toggle or replace.
    pub mode: CorruptMode,
    /// The corrupt-data vector.
    pub corrupt_code: u8,
    /// In replace mode, which bits are replaced.
    pub corrupt_mask: u8,
}

impl ControlCorrupt {
    /// A unit that rewrites a control code to exactly `code`.
    pub fn replace_with(code: u8) -> ControlCorrupt {
        ControlCorrupt {
            mode: CorruptMode::Replace,
            corrupt_code: code,
            corrupt_mask: 0xFF,
        }
    }

    /// Applies the corruption to a control code.
    pub fn apply(&self, code: u8) -> u8 {
        match self.mode {
            CorruptMode::Toggle => code ^ self.corrupt_code,
            CorruptMode::Replace => {
                (code & !self.corrupt_mask) | (self.corrupt_code & self.corrupt_mask)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_flips_selected_bits() {
        let u = CorruptUnit::toggle(0x0000_0101);
        assert_eq!(u.apply(0x0000_0000), 0x0000_0101);
        assert_eq!(u.apply(0xFFFF_FFFF), 0xFFFF_FEFE);
        // Toggle twice restores.
        assert_eq!(u.apply(u.apply(0x1234_5678)), 0x1234_5678);
    }

    #[test]
    fn replace_respects_mask() {
        // The paper's scenario: replace 0x1818 with 0x1918 in the top half.
        let u = CorruptUnit::replace(0x1918_0000, 0xFFFF_0000);
        assert_eq!(u.apply(0x1818_ABCD), 0x1918_ABCD);
        // Unmasked bits of corrupt_data are ignored.
        let u2 = CorruptUnit::replace(0xFFFF_FFFF, 0x0000_00FF);
        assert_eq!(u2.apply(0x12345600), 0x123456FF);
    }

    #[test]
    fn apply_at_offset() {
        let u = CorruptUnit::replace(0x1918_0000, 0xFFFF_0000);
        let mut data = vec![0x00, 0x18, 0x18, 0x55, 0x66];
        u.apply_at(&mut data, 1);
        assert_eq!(data, vec![0x00, 0x19, 0x18, 0x55, 0x66]);
    }

    #[test]
    fn apply_at_end_of_buffer_is_safe() {
        let u = CorruptUnit::toggle(0xFF00_0000);
        let mut data = vec![0xAA, 0xBB];
        u.apply_at(&mut data, 1);
        assert_eq!(data, vec![0xAA, 0x44]);
        // Offset beyond the end: nothing happens.
        let mut d2 = vec![0x01];
        u.apply_at(&mut d2, 5);
        assert_eq!(d2, vec![0x01]);
    }

    #[test]
    fn control_corrupt_modes() {
        let rep = ControlCorrupt::replace_with(0x03);
        assert_eq!(rep.apply(0x0F), 0x03);
        let tog = ControlCorrupt {
            mode: CorruptMode::Toggle,
            corrupt_code: 0x0C,
            corrupt_mask: 0,
        };
        assert_eq!(tog.apply(0x0F), 0x03); // STOP -> GO by toggling two bits
    }
}
