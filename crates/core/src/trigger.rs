//! The real-time triggering mechanism (paper §3.2–3.3).
//!
//! "Incoming data is compared with the compare data (bit-wise XOR)
//! operation. The trigger line is asserted if they all match. … The compare
//! mask enables the use of 'don't care' bits" — so a window matches when
//! `(window XOR compare_data) AND compare_mask == 0`. The hardware shifts
//! the incoming stream through 32-bit compare registers one character at a
//! time, so the window slides *byte-wise* over the stream; "by using the
//! mask commands, we can specify any arbitrary number of bits between 0
//! and 32".

// netfi-lint: deny(hot-path-alloc)
//
// The compare unit scans every byte of every intercepted frame. The
// allocating `scan` is a test/debug convenience; the datapath uses
// `scan_each`, which visits matches through a callback.

/// Match-mode of the trigger (paper: "on, off, and once").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchMode {
    /// The trigger is disabled.
    #[default]
    Off,
    /// The trigger fires on every match.
    On,
    /// The trigger fires on the first match, then ignores all subsequent
    /// matches — "useful if the user wants to inject only one controlled,
    /// synchronous error and study its effects over a relatively long
    /// time".
    Once,
}

/// The 32-bit compare unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompareUnit {
    /// Pattern the stream is compared against.
    pub compare_data: u32,
    /// Which bits must match (1 = must match, 0 = don't care).
    pub compare_mask: u32,
}

impl CompareUnit {
    /// Creates a compare unit.
    pub fn new(compare_data: u32, compare_mask: u32) -> CompareUnit {
        CompareUnit {
            compare_data,
            compare_mask,
        }
    }

    /// `true` if a 32-bit window matches.
    ///
    /// A mask of zero matches everything — all 32 bits are "don't care".
    pub fn matches(&self, window: u32) -> bool {
        (window ^ self.compare_data) & self.compare_mask == 0
    }

    /// Scans a byte stream with a byte-sliding 32-bit window (big-endian,
    /// matching transmission order) and returns every matching offset.
    ///
    /// The scan always runs over the *original* data: in the hardware, the
    /// compare registers see the incoming stream, while corruption is
    /// applied later, in the FIFO — so earlier injections never perturb
    /// later comparisons.
    pub fn scan(&self, bytes: &[u8]) -> Vec<usize> {
        // lint: allow(hot-path-alloc) allocating convenience form; datapath uses scan_each
        let mut out = Vec::new();
        self.scan_each(bytes, |i| out.push(i));
        out
    }

    /// Like [`CompareUnit::scan`], but visits each matching offset through
    /// `hit` instead of allocating a vector — the hot-path form used by the
    /// injector datapath.
    pub fn scan_each(&self, bytes: &[u8], mut hit: impl FnMut(usize)) {
        if bytes.len() < 4 {
            return;
        }
        for i in 0..=bytes.len() - 4 {
            let window = u32::from_be_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
            if self.matches(window) {
                hit(i);
            }
        }
    }
}

/// An 8-bit compare unit for control symbols, which travel outside the
/// 32-bit data path (they are single 9-bit characters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlCompare {
    /// Code the control character is compared against.
    pub compare_code: u8,
    /// Which bits must match.
    pub compare_mask: u8,
}

impl ControlCompare {
    /// A comparator matching `code` exactly.
    pub fn exact(code: u8) -> ControlCompare {
        ControlCompare {
            compare_code: code,
            compare_mask: 0xFF,
        }
    }

    /// `true` if a control code matches.
    pub fn matches(&self, code: u8) -> bool {
        (code ^ self.compare_code) & self.compare_mask == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mask_requires_exact_match() {
        let cmp = CompareUnit::new(0xDEADBEEF, 0xFFFF_FFFF);
        assert!(cmp.matches(0xDEADBEEF));
        assert!(!cmp.matches(0xDEADBEEE));
    }

    #[test]
    fn zero_mask_matches_everything() {
        let cmp = CompareUnit::new(0x12345678, 0);
        assert!(cmp.matches(0));
        assert!(cmp.matches(u32::MAX));
    }

    #[test]
    fn partial_mask_ignores_dont_care_bits() {
        // The paper's scenario: match the 16 bits 0x1818 at the head of a
        // window, ignore the low 16.
        let cmp = CompareUnit::new(0x1818_0000, 0xFFFF_0000);
        assert!(cmp.matches(0x1818_0000));
        assert!(cmp.matches(0x1818_FFFF));
        assert!(!cmp.matches(0x1918_0000));
    }

    #[test]
    fn scan_finds_byte_aligned_positions() {
        let cmp = CompareUnit::new(0x1818_0000, 0xFFFF_0000);
        let data = [0x00, 0x18, 0x18, 0x55, 0x66, 0x18, 0x18, 0x77, 0x88];
        assert_eq!(cmp.scan(&data), vec![1, 5]);
    }

    #[test]
    fn scan_short_buffers() {
        let cmp = CompareUnit::new(0, 0);
        assert!(cmp.scan(&[1, 2, 3]).is_empty());
        assert_eq!(cmp.scan(&[1, 2, 3, 4]), vec![0]);
    }

    #[test]
    fn scan_overlapping_matches() {
        let cmp = CompareUnit::new(0x1818_0000, 0xFFFF_0000);
        let data = [0x18, 0x18, 0x18, 0x18, 0x18, 0x00];
        // Windows at 0,1,2 all start with 0x1818.
        assert_eq!(cmp.scan(&data), vec![0, 1, 2]);
    }

    #[test]
    fn control_compare() {
        let c = ControlCompare::exact(0x0C);
        assert!(c.matches(0x0C));
        assert!(!c.matches(0x0F));
        let loose = ControlCompare {
            compare_code: 0x0C,
            compare_mask: 0x0C,
        };
        assert!(loose.matches(0x0C));
        assert!(loose.matches(0x0D)); // low bits don't care
        assert!(!loose.matches(0x08));
    }
}
