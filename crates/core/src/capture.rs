//! Data monitoring: capture of the injection environment.
//!
//! "The FPGA can be programmed to keep the bytes surrounding the fault
//! injection event, thus giving the user sufficient dynamic state
//! information about the environment in which the fault injection was
//! performed" (§3.2). The capture memory is backed by the board's SDRAM in
//! hardware; here a bounded [`FlightRecorder`] plays that role.

use std::fmt;

use netfi_obs::FlightRecorder;
use netfi_sim::SimTime;

/// How many context bytes to keep on each side of an injection site.
pub const CONTEXT_BYTES: usize = 8;

/// One captured injection event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureRecord {
    /// Byte offset of the corrupted window within the packet.
    pub offset: usize,
    /// The window before corruption.
    pub before: [u8; 4],
    /// The window after corruption.
    pub after: [u8; 4],
    /// Packet bytes surrounding the injection site (±[`CONTEXT_BYTES`]).
    pub context: Vec<u8>,
}

impl CaptureRecord {
    /// Builds a record from the original and corrupted packet images.
    pub fn new(original: &[u8], corrupted: &[u8], offset: usize) -> CaptureRecord {
        let mut before = [0u8; 4];
        let mut after = [0u8; 4];
        for k in 0..4 {
            if let Some(&b) = original.get(offset + k) {
                before[k] = b;
            }
            if let Some(&b) = corrupted.get(offset + k) {
                after[k] = b;
            }
        }
        let start = offset.saturating_sub(CONTEXT_BYTES);
        let end = (offset + 4 + CONTEXT_BYTES).min(original.len());
        CaptureRecord {
            offset,
            before,
            after,
            context: original[start..end].to_vec(),
        }
    }
}

impl fmt::Display for CaptureRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "@{}: {:02X}{:02X}{:02X}{:02X} -> {:02X}{:02X}{:02X}{:02X} ctx[",
            self.offset,
            self.before[0],
            self.before[1],
            self.before[2],
            self.before[3],
            self.after[0],
            self.after[1],
            self.after[2],
            self.after[3],
        )?;
        for (i, b) in self.context.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{b:02X}")?;
        }
        write!(f, "]")
    }
}

/// The capture memory for one direction of the device.
#[derive(Debug, Clone)]
pub struct CaptureBuffer {
    buf: FlightRecorder<CaptureRecord>,
}

impl CaptureBuffer {
    /// Creates a capture memory holding up to `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> CaptureBuffer {
        CaptureBuffer {
            buf: FlightRecorder::new(capacity),
        }
    }

    /// Records an injection event.
    pub fn record(&mut self, time: SimTime, record: CaptureRecord) {
        self.buf.push(time, record);
    }

    /// Records held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Iterates over captured records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &CaptureRecord> {
        self.buf.iter().map(|r| &r.value)
    }

    /// The most recent capture.
    pub fn last(&self) -> Option<&CaptureRecord> {
        self.buf.last().map(|r| &r.value)
    }

    /// Renders all records, one per line.
    pub fn render(&self) -> String {
        self.buf.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_extracts_windows_and_context() {
        let original: Vec<u8> = (0..32).collect();
        let mut corrupted = original.clone();
        corrupted[12] ^= 0xFF;
        let rec = CaptureRecord::new(&original, &corrupted, 12);
        assert_eq!(rec.before, [12, 13, 14, 15]);
        assert_eq!(rec.after, [12 ^ 0xFF, 13, 14, 15]);
        // context spans 4..24
        assert_eq!(rec.context, (4..24).collect::<Vec<u8>>());
    }

    #[test]
    fn record_clamps_at_packet_edges() {
        let original = vec![1u8, 2, 3];
        let corrupted = vec![1u8, 2, 0xFF];
        let rec = CaptureRecord::new(&original, &corrupted, 2);
        assert_eq!(rec.before, [3, 0, 0, 0]);
        assert_eq!(rec.after, [0xFF, 0, 0, 0]);
        assert_eq!(rec.context, vec![1, 2, 3]);
    }

    #[test]
    fn buffer_keeps_most_recent() {
        let mut cap = CaptureBuffer::new(2);
        for i in 0..3u8 {
            let orig = vec![i; 8];
            cap.record(
                SimTime::from_ns(i as u64),
                CaptureRecord::new(&orig, &orig, 0),
            );
        }
        assert_eq!(cap.len(), 2);
        assert_eq!(cap.last().unwrap().before[0], 2);
        assert_eq!(cap.iter().count(), 2);
    }

    #[test]
    fn display_is_readable() {
        let rec = CaptureRecord::new(&[0x18, 0x18, 0xAA, 0xBB], &[0x19, 0x18, 0xAA, 0xBB], 0);
        let s = rec.to_string();
        assert!(s.contains("1818AABB -> 1918AABB"), "{s}");
    }
}
