//! The serial command protocol: UART → SPI → command decoder FSM.
//!
//! "In a typical fault injection campaign, the user uploads a series of
//! commands to the Command Decoder via a standard serial interface"
//! (§3.3). "The command decoder is a large finite-state machine (FSM),
//! which receives data from the communication handler and applies
//! configuration information to the injector circuitry. It also generates
//! error and acknowledgment signals that are interpreted by the output
//! generator for configuration feedback."
//!
//! The ASCII command language (one command per line, terminated by `\n` or
//! `;`):
//!
//! | Command | Meaning |
//! |---|---|
//! | `DA` / `DB` / `D*` | select direction A→B, B→A, or both |
//! | `M0` / `M1` / `MO` | match mode off / on / once |
//! | `Cxxxxxxxx` | compare data (8 hex digits) |
//! | `Kxxxxxxxx` | compare mask |
//! | `T` / `R` | corrupt mode toggle / replace |
//! | `Vxxxxxxxx` | corrupt data |
//! | `Xxxxxxxx…` | corrupt mask (8 hex digits) |
//! | `G0` / `G1` | CRC recompute off / on |
//! | `Sffmmtt` | control swap: from, mask, to (2 hex digits each) |
//! | `s` | control injection off |
//! | `Nxxxxxxxx` | random-SEU threshold out of 2³² (0 disables) |
//! | `L0` / `L1` | full-traffic capture off / on |
//! | `I` | inject now |
//! | `A` | re-arm the `once` latch |
//! | `Q` | query statistics |
//! | `Z` | zero statistics |
//!
//! The output generator answers `+` (ack), `?` (error), or a text report
//! for queries.

use std::error::Error;
use std::fmt;

use crate::corrupt::CorruptMode;
use crate::trigger::MatchMode;

/// Which direction(s) a configuration command applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirSelect {
    /// The A→B channel only.
    A,
    /// The B→A channel only.
    B,
    /// Both channels.
    #[default]
    Both,
}

/// A decoded configuration command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Select the direction subsequent commands apply to.
    SelectDirection(DirSelect),
    /// Set the match mode.
    MatchMode(MatchMode),
    /// Set the 32-bit compare data.
    CompareData(u32),
    /// Set the 32-bit compare mask.
    CompareMask(u32),
    /// Set the corruption mode.
    CorruptMode(CorruptMode),
    /// Set the 32-bit corrupt data.
    CorruptData(u32),
    /// Set the 32-bit corrupt mask.
    CorruptMask(u32),
    /// Enable/disable CRC-8 recomputation.
    CrcRecompute(bool),
    /// Install a control-symbol swap (from, mask, to).
    ControlSwap {
        /// Code to match.
        from: u8,
        /// Match mask.
        mask: u8,
        /// Replacement code.
        to: u8,
    },
    /// Remove the control-symbol injection.
    ControlOff,
    /// Set the random-SEU threshold (numerator over 2³²; 0 disables).
    RandomRate(u32),
    /// Enable/disable full-traffic capture into the SDRAM model.
    TrafficLog(bool),
    /// Force one injection on the next segment.
    InjectNow,
    /// Re-arm the `once` latch.
    Rearm,
    /// Ask the output generator for statistics.
    QueryStats,
    /// Zero the statistics counters.
    ResetStats,
}

/// A command the decoder could not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandError {
    line: String,
}

impl CommandError {
    /// The offending line.
    pub fn line(&self) -> &str {
        &self.line
    }
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognized command {:?}", self.line)
    }
}

impl Error for CommandError {}

fn parse_hex_u32(s: &str) -> Option<u32> {
    (s.len() == 8).then(|| u32::from_str_radix(s, 16).ok()).flatten()
}

fn parse_hex_u8(s: &str) -> Option<u8> {
    (s.len() == 2).then(|| u8::from_str_radix(s, 16).ok()).flatten()
}

/// Parses one command line (without terminator).
///
/// # Errors
///
/// [`CommandError`] echoing the unrecognized line.
pub fn parse_command(line: &str) -> Result<Command, CommandError> {
    let line = line.trim();
    let err = || CommandError {
        line: line.to_string(),
    };
    let mut chars = line.chars();
    let head = chars.next().ok_or_else(err)?;
    let rest: &str = &line[head.len_utf8()..];
    let cmd = match head {
        'D' => match rest {
            "A" => Command::SelectDirection(DirSelect::A),
            "B" => Command::SelectDirection(DirSelect::B),
            "*" => Command::SelectDirection(DirSelect::Both),
            _ => return Err(err()),
        },
        'M' => match rest {
            "0" => Command::MatchMode(MatchMode::Off),
            "1" => Command::MatchMode(MatchMode::On),
            "O" => Command::MatchMode(MatchMode::Once),
            _ => return Err(err()),
        },
        'C' => Command::CompareData(parse_hex_u32(rest).ok_or_else(err)?),
        'K' => Command::CompareMask(parse_hex_u32(rest).ok_or_else(err)?),
        'T' if rest.is_empty() => Command::CorruptMode(CorruptMode::Toggle),
        'R' if rest.is_empty() => Command::CorruptMode(CorruptMode::Replace),
        'V' => Command::CorruptData(parse_hex_u32(rest).ok_or_else(err)?),
        'X' => Command::CorruptMask(parse_hex_u32(rest).ok_or_else(err)?),
        'G' => match rest {
            "0" => Command::CrcRecompute(false),
            "1" => Command::CrcRecompute(true),
            _ => return Err(err()),
        },
        'S' => {
            if rest.len() != 6 {
                return Err(err());
            }
            Command::ControlSwap {
                from: parse_hex_u8(&rest[0..2]).ok_or_else(err)?,
                mask: parse_hex_u8(&rest[2..4]).ok_or_else(err)?,
                to: parse_hex_u8(&rest[4..6]).ok_or_else(err)?,
            }
        }
        's' if rest.is_empty() => Command::ControlOff,
        'N' => Command::RandomRate(parse_hex_u32(rest).ok_or_else(err)?),
        'L' => match rest {
            "0" => Command::TrafficLog(false),
            "1" => Command::TrafficLog(true),
            _ => return Err(err()),
        },
        'I' if rest.is_empty() => Command::InjectNow,
        'A' if rest.is_empty() => Command::Rearm,
        'Q' if rest.is_empty() => Command::QueryStats,
        'Z' if rest.is_empty() => Command::ResetStats,
        _ => return Err(err()),
    };
    Ok(cmd)
}

/// Streaming line assembler: feed serial bytes, get commands out at each
/// terminator.
#[derive(Debug, Clone, Default)]
pub struct CommandDecoder {
    line: Vec<u8>,
}

impl CommandDecoder {
    /// Creates an empty decoder.
    pub fn new() -> CommandDecoder {
        CommandDecoder::default()
    }

    /// Feeds one serial byte. Returns a parse result when a line
    /// terminator (`\n`, `\r` or `;`) completes a non-empty line.
    pub fn feed(&mut self, byte: u8) -> Option<Result<Command, CommandError>> {
        match byte {
            b'\n' | b'\r' | b';' => {
                if self.line.is_empty() {
                    return None;
                }
                let line = String::from_utf8_lossy(&self.line).into_owned();
                self.line.clear();
                Some(parse_command(&line))
            }
            _ => {
                // Bound the line buffer: a runaway stream without
                // terminators must not grow memory.
                if self.line.len() < 64 {
                    self.line.push(byte);
                }
                None
            }
        }
    }
}

/// Renders a command back into its wire syntax (for campaign scripting).
pub fn render_command(cmd: &Command) -> String {
    match cmd {
        Command::SelectDirection(DirSelect::A) => "DA".into(),
        Command::SelectDirection(DirSelect::B) => "DB".into(),
        Command::SelectDirection(DirSelect::Both) => "D*".into(),
        Command::MatchMode(MatchMode::Off) => "M0".into(),
        Command::MatchMode(MatchMode::On) => "M1".into(),
        Command::MatchMode(MatchMode::Once) => "MO".into(),
        Command::CompareData(v) => format!("C{v:08X}"),
        Command::CompareMask(v) => format!("K{v:08X}"),
        Command::CorruptMode(CorruptMode::Toggle) => "T".into(),
        Command::CorruptMode(CorruptMode::Replace) => "R".into(),
        Command::CorruptData(v) => format!("V{v:08X}"),
        Command::CorruptMask(v) => format!("X{v:08X}"),
        Command::CrcRecompute(false) => "G0".into(),
        Command::CrcRecompute(true) => "G1".into(),
        Command::ControlSwap { from, mask, to } => format!("S{from:02X}{mask:02X}{to:02X}"),
        Command::ControlOff => "s".into(),
        Command::RandomRate(v) => format!("N{v:08X}"),
        Command::TrafficLog(false) => "L0".into(),
        Command::TrafficLog(true) => "L1".into(),
        Command::InjectNow => "I".into(),
        Command::Rearm => "A".into(),
        Command::QueryStats => "Q".into(),
        Command::ResetStats => "Z".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_vocabulary() {
        let cases = [
            ("DA", Command::SelectDirection(DirSelect::A)),
            ("DB", Command::SelectDirection(DirSelect::B)),
            ("D*", Command::SelectDirection(DirSelect::Both)),
            ("M0", Command::MatchMode(MatchMode::Off)),
            ("M1", Command::MatchMode(MatchMode::On)),
            ("MO", Command::MatchMode(MatchMode::Once)),
            ("C18180000", Command::CompareData(0x1818_0000)),
            ("KFFFF0000", Command::CompareMask(0xFFFF_0000)),
            ("T", Command::CorruptMode(CorruptMode::Toggle)),
            ("R", Command::CorruptMode(CorruptMode::Replace)),
            ("V19180000", Command::CorruptData(0x1918_0000)),
            ("XFFFF0000", Command::CorruptMask(0xFFFF_0000)),
            ("G0", Command::CrcRecompute(false)),
            ("G1", Command::CrcRecompute(true)),
            (
                "S0FFF0C",
                Command::ControlSwap {
                    from: 0x0F,
                    mask: 0xFF,
                    to: 0x0C,
                },
            ),
            ("s", Command::ControlOff),
            ("I", Command::InjectNow),
            ("A", Command::Rearm),
            ("Q", Command::QueryStats),
            ("Z", Command::ResetStats),
        ];
        for (text, expected) in cases {
            assert_eq!(parse_command(text), Ok(expected), "{text}");
        }
    }

    #[test]
    fn render_roundtrips() {
        let cmds = [
            Command::SelectDirection(DirSelect::Both),
            Command::CompareData(0xDEAD_BEEF),
            Command::ControlSwap {
                from: 0x0C,
                mask: 0xFF,
                to: 0x03,
            },
            Command::MatchMode(MatchMode::Once),
            Command::InjectNow,
        ];
        for cmd in cmds {
            assert_eq!(parse_command(&render_command(&cmd)), Ok(cmd));
        }
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "D", "DX", "M2", "C123", "CZZZZZZZZ", "S0F0C", "foo", "I2"] {
            assert!(parse_command(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn decoder_assembles_lines() {
        let mut dec = CommandDecoder::new();
        let mut results = Vec::new();
        for &b in b"M1\nC18180000;V19180000\n" {
            if let Some(r) = dec.feed(b) {
                results.push(r);
            }
        }
        assert_eq!(
            results,
            vec![
                Ok(Command::MatchMode(MatchMode::On)),
                Ok(Command::CompareData(0x1818_0000)),
                Ok(Command::CorruptData(0x1918_0000)),
            ]
        );
    }

    #[test]
    fn decoder_skips_blank_lines_and_reports_errors() {
        let mut dec = CommandDecoder::new();
        assert_eq!(dec.feed(b'\n'), None);
        assert_eq!(dec.feed(b';'), None);
        for &b in b"nope" {
            assert_eq!(dec.feed(b), None);
        }
        let err = dec.feed(b'\n').unwrap().unwrap_err();
        assert_eq!(err.line(), "nope");
    }

    #[test]
    fn decoder_bounds_runaway_lines() {
        let mut dec = CommandDecoder::new();
        for _ in 0..10_000 {
            assert_eq!(dec.feed(b'x'), None);
        }
        // Still functional after the flood.
        assert!(dec.feed(b'\n').unwrap().is_err());
        for &b in b"Q" {
            dec.feed(b);
        }
        assert_eq!(dec.feed(b'\n'), Some(Ok(Command::QueryStats)));
    }
}
