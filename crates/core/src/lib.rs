//! `netfi-core` — the paper's contribution: an adaptive, in-line device for
//! monitoring and fault injection on high-speed networks.
//!
//! This crate emulates the FPGA design of *"An Adaptive Architecture for
//! Monitoring and Failure Analysis of High-Speed Networks"* (DSN 2002):
//! a reconfigurable device spliced into a network link that decodes the
//! passing data, corrupts it on precisely triggered conditions, and
//! retransmits it — all within a cut-through latency comparable to a few
//! metres of cable.
//!
//! Module map (mirroring Figure 1 of the paper):
//!
//! | Paper entity | Module |
//! |---|---|
//! | FIFO injector + dual-port RAM | [`fifo`] |
//! | compare data / compare mask trigger | [`trigger`] |
//! | corrupt mode / data / mask | [`corrupt`] |
//! | command decoder + output generator | [`command`] |
//! | injector control inputs | [`config`] |
//! | data monitoring (SDRAM capture) | [`capture`] |
//! | the assembled bidirectional device | [`device`] |
//! | Table 1 synthesis estimates | [`synth`] |
//!
//! # Quickstart
//!
//! ```
//! use netfi_core::config::InjectorConfig;
//! use netfi_core::fifo::FifoInjector;
//! use netfi_core::trigger::MatchMode;
//!
//! // The paper's typical scenario: match 0x1818, replace with 0x1918.
//! let config = InjectorConfig::builder()
//!     .match_mode(MatchMode::On)
//!     .compare(0x1818_0000, 0xFFFF_0000)
//!     .corrupt_replace(0x1918_0000, 0xFFFF_0000)
//!     .build();
//! let mut injector = FifoInjector::new(config);
//! let mut stream = vec![0x00, 0x18, 0x18, 0x55, 0x66];
//! let report = injector.process_packet(&mut stream);
//! assert_eq!(report.injected_offsets, vec![1]);
//! assert_eq!(stream, vec![0x00, 0x19, 0x18, 0x55, 0x66]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod capture;
pub mod command;
pub mod config;
pub mod corrupt;
pub mod device;
pub mod fifo;
pub mod media;
pub mod random;
pub mod synth;
pub mod trigger;

pub use command::{Command, CommandDecoder, DirSelect};
pub use config::InjectorConfig;
pub use corrupt::{CorruptMode, CorruptUnit};
pub use device::{DeviceConfig, Direction, InjectorDevice};
pub use fifo::{FifoInjector, FifoPipeline};
pub use media::{FibreChannelMedia, Gen2Injector, MediaInterface, MyrinetMedia};
pub use random::RandomInject;
pub use trigger::{CompareUnit, MatchMode};
