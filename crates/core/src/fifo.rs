//! The FIFO injector — the heart of the device (paper §3.3, Figures 2/3).
//!
//! "The actual fault injection is performed by the FIFO injector, which
//! also provides the data path through the injector. A two-phase operation
//! is required to push data into and out of a FIFO structure, to perform
//! the compare operation, and to modify data in the FIFO if either the
//! data meets injection criteria or a forced injection is desired."
//!
//! Two views are provided:
//!
//! - [`FifoPipeline`] — a cycle-accurate model of the odd/even clock
//!   behaviour of Figures 2 and 3, operating on aligned 32-bit segments
//!   through a dual-port-RAM ring, used for unit-level verification and the
//!   Figure 2/3 benchmark.
//! - [`FifoInjector`] — the packet-level datapath used by the device: it
//!   applies the same compare/corrupt semantics (byte-sliding window, match
//!   modes, forced injection, CRC recomputation) to whole packets and
//!   accounts the cycles the pipeline would have spent.

// netfi-lint: deny(hot-path-alloc)
//
// The FIFO is the device's datapath; every intercepted frame crosses it.
// Corruption happens in place on the frame's copy-on-write buffer — the
// only allocation is the constructor's backing RAM, allowlisted below.

use netfi_myrinet::crc8;
use netfi_phy::clock::{ClockGenerator, ClockPhase};
use netfi_sim::{SharedBytes, SimDuration};

use crate::config::InjectorConfig;
use crate::corrupt::CorruptUnit;
use crate::random::{RandomInject, RandomUnit};
use crate::trigger::{CompareUnit, MatchMode};

/// Pipeline latency in clock cycles — "the current VHDL code pipelines the
/// inject operation for three clock cycles" (paper footnote 5).
pub const PIPELINE_CYCLES: u64 = 3;

/// Extra 32-bit segments kept in the FIFO before transmission — "but keeps
/// a few more 32-bit segments in the FIFO before sending it".
pub const FIFO_SLACK_SEGMENTS: u64 = 2;

/// Counters kept by the injector datapath.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoStats {
    /// Packets pushed through.
    pub packets: u64,
    /// 32-bit segments pushed through.
    pub segments: u64,
    /// Clock cycles consumed (two per segment).
    pub cycles: u64,
    /// Data-path trigger matches observed.
    pub matches: u64,
    /// Data-path injections performed.
    pub injections: u64,
    /// Control-symbol injections performed.
    pub control_injections: u64,
    /// Forced (`inject now`) injections performed.
    pub forced_injections: u64,
    /// Random (SEU) bit flips performed.
    pub random_injections: u64,
    /// CRC-8 recomputations performed after injection.
    pub crc_recomputes: u64,
}

/// Report for one packet processed by [`FifoInjector::process_packet`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PacketReport {
    /// How many times the trigger matched (matches are observed even when
    /// the match mode keeps them from firing).
    pub matches: u64,
    /// Byte offsets where corruption was applied.
    pub injected_offsets: Vec<usize>,
    /// Whether the trailing CRC was recomputed.
    pub crc_fixed: bool,
}

impl PacketReport {
    /// `true` if any corruption was applied.
    pub fn injected(&self) -> bool {
        !self.injected_offsets.is_empty()
    }
}

/// What the read-only plan phase decided to do to a packet. On the
/// uncorrupted pass-through path every field stays empty, so planning
/// allocates nothing and the wire bytes are never written.
#[derive(Debug, Default)]
struct InjectPlan {
    /// Trigger matches observed (counted even when firing is disabled).
    matches: u64,
    /// A pending `inject now` fires on the first segment.
    forced: bool,
    /// Trigger offsets where the corruption function fires.
    fire_offsets: Vec<usize>,
    /// Per-segment LFSR bit flips.
    random_flips: Vec<RandomFlip>,
}

impl InjectPlan {
    /// `true` if applying the plan would write any byte.
    fn mutates(&self) -> bool {
        self.forced || !self.fire_offsets.is_empty() || !self.random_flips.is_empty()
    }
}

/// One random (SEU) bit flip chosen by the LFSR during planning.
#[derive(Debug)]
struct RandomFlip {
    /// The segment-aligned offset recorded in the report.
    segment_offset: usize,
    /// The byte actually flipped.
    byte_index: usize,
    /// The bit within that byte.
    bit_mask: u8,
}

/// The packet-level injector datapath for one direction.
#[derive(Debug, Clone)]
pub struct FifoInjector {
    config: InjectorConfig,
    /// Latch for `once` mode: cleared after the first injection, re-armed
    /// by reconfiguration.
    armed: bool,
    inject_now_pending: bool,
    random: RandomUnit,
    stats: FifoStats,
}

impl FifoInjector {
    /// The LFSR seed used by the random-injection unit.
    const LFSR_SEED: u32 = 0xACE1_2B4D;

    /// Creates a datapath with the given configuration.
    pub fn new(config: InjectorConfig) -> FifoInjector {
        FifoInjector {
            config,
            armed: true,
            inject_now_pending: false,
            random: RandomUnit::new(
                config.random.unwrap_or(RandomInject { threshold: 0 }),
                Self::LFSR_SEED,
            ),
            stats: FifoStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &InjectorConfig {
        &self.config
    }

    /// Replaces the configuration and re-arms the `once` latch. The
    /// random unit's LFSR restarts from its seed (reconfiguration is a
    /// campaign boundary).
    pub fn set_config(&mut self, config: InjectorConfig) {
        self.config = config;
        self.armed = true;
        self.random = RandomUnit::new(
            config.random.unwrap_or(RandomInject { threshold: 0 }),
            Self::LFSR_SEED,
        );
    }

    /// Re-arms the `once` latch without reconfiguring.
    pub fn rearm(&mut self) {
        self.armed = true;
    }

    /// `true` while a `once` trigger is still waiting for its match.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Asserts the `inject now` line: "the current injection configuration
    /// is exercised on one 32-bit segment during the next even clock
    /// cycle" — i.e. on the first segment of the next packet.
    pub fn inject_now(&mut self) {
        self.inject_now_pending = true;
    }

    /// Counters.
    pub fn stats(&self) -> FifoStats {
        self.stats
    }

    /// Whether the current mode/latch allows a trigger to fire.
    fn may_fire(&self) -> bool {
        match self.config.match_mode {
            MatchMode::Off => false,
            MatchMode::On => true,
            MatchMode::Once => self.armed,
        }
    }

    /// Pushes a packet's wire bytes through the datapath, corrupting in
    /// place per the active configuration.
    pub fn process_packet(&mut self, bytes: &mut [u8]) -> PacketReport {
        let plan = self.plan_packet(bytes);
        let mut report = PacketReport {
            matches: plan.matches,
            ..PacketReport::default()
        };
        if plan.mutates() {
            self.apply_plan(bytes, &plan, &mut report);
        }
        report
    }

    /// Zero-copy variant of [`FifoInjector::process_packet`]: the shared
    /// wire image is materialised (copy-on-write) only when the plan
    /// actually corrupts something. Uncorrupted pass-through never touches
    /// the payload bytes.
    pub fn process_packet_shared(&mut self, bytes: &mut SharedBytes) -> PacketReport {
        let plan = self.plan_packet(bytes);
        let mut report = PacketReport {
            matches: plan.matches,
            ..PacketReport::default()
        };
        if plan.mutates() {
            let bytes = bytes.make_mut();
            self.apply_plan(bytes, &plan, &mut report);
        }
        report
    }

    /// The read-only half of the datapath: updates counters, scans the
    /// ORIGINAL stream (the compare registers see incoming data; corruption
    /// happens downstream in the FIFO) and draws the per-segment LFSR —
    /// but never writes a byte. Any mutations are recorded in the returned
    /// plan for [`FifoInjector::apply_plan`].
    fn plan_packet(&mut self, bytes: &[u8]) -> InjectPlan {
        let segments = bytes.len().div_ceil(4) as u64;
        self.stats.packets += 1;
        self.stats.segments += segments;
        self.stats.cycles += segments * 2;

        let mut plan = InjectPlan::default();

        // Forced injection: one 32-bit segment, the next to pass through.
        if self.inject_now_pending {
            self.inject_now_pending = false;
            plan.forced = true;
            self.stats.forced_injections += 1;
            self.stats.injections += 1;
        }

        // Triggered injection: every match is observed (and counted) even
        // when the match mode keeps it from firing.
        let compare = self.config.compare;
        if compare.compare_mask == 0 {
            // All bits don't-care (the idle/default compare): every 32-bit
            // window matches, so the counts follow from the length alone —
            // no need to slide the window over every byte.
            let windows = bytes.len().saturating_sub(3);
            plan.matches += windows as u64;
            for offset in 0..windows {
                if !self.may_fire() {
                    break;
                }
                plan.fire_offsets.push(offset);
                self.stats.injections += 1;
                if self.config.match_mode == MatchMode::Once {
                    self.armed = false;
                }
            }
        } else {
            compare.scan_each(bytes, |offset| {
                plan.matches += 1;
                if self.may_fire() {
                    plan.fire_offsets.push(offset);
                    self.stats.injections += 1;
                    if self.config.match_mode == MatchMode::Once {
                        self.armed = false;
                    }
                }
            });
        }
        self.stats.matches += plan.matches;

        // Random (SEU) injection: one LFSR draw per 32-bit segment; a hit
        // flips one LFSR-selected bit of that segment.
        if self.config.random.is_some() {
            for seg in 0..segments as usize {
                if let Some(bit) = self.random.draw() {
                    let byte_in_seg = 3 - (bit / 8) as usize; // big-endian
                    let idx = seg * 4 + byte_in_seg;
                    if idx < bytes.len() {
                        plan.random_flips.push(RandomFlip {
                            segment_offset: seg * 4,
                            byte_index: idx,
                            bit_mask: 1 << (bit % 8),
                        });
                        self.stats.random_injections += 1;
                        self.stats.injections += 1;
                    }
                }
            }
        }

        plan
    }

    /// The mutating half of the datapath: applies a non-empty plan.
    fn apply_plan(&mut self, bytes: &mut [u8], plan: &InjectPlan, report: &mut PacketReport) {
        if plan.forced {
            self.config.corrupt.apply_at(bytes, 0);
            report.injected_offsets.push(0);
        }
        for &offset in &plan.fire_offsets {
            self.config.corrupt.apply_at(bytes, offset);
            report.injected_offsets.push(offset);
        }
        for flip in &plan.random_flips {
            bytes[flip.byte_index] ^= flip.bit_mask;
            report.injected_offsets.push(flip.segment_offset);
        }
        if self.config.crc_recompute && bytes.len() >= 2 {
            let last = bytes.len() - 1;
            bytes[last] = crc8::checksum(&bytes[..last]);
            report.crc_fixed = true;
            self.stats.crc_recomputes += 1;
        }
    }

    /// Pushes a control symbol through, returning the (possibly corrupted)
    /// code and whether an injection occurred.
    pub fn process_control(&mut self, code: u8) -> (u8, bool) {
        self.stats.cycles += 2;
        let Some(ctl) = self.config.control else {
            return (code, false);
        };
        if !self.may_fire() || !ctl.compare.matches(code) {
            return (code, false);
        }
        if self.config.match_mode == MatchMode::Once {
            self.armed = false;
        }
        self.stats.control_injections += 1;
        (ctl.corrupt.apply(code), true)
    }

    /// Pushes a packet-terminator control code through (GAPs that travel
    /// with packets). Honours `include_terminators`.
    pub fn process_terminator(&mut self, code: u8) -> (u8, bool) {
        match self.config.control {
            Some(ctl) if ctl.include_terminators => self.process_control(code),
            _ => (code, false),
        }
    }

    /// The device's cut-through latency at a given link rate: the 3-cycle
    /// inject pipeline plus the FIFO slack, in 32-bit segment times.
    ///
    /// At 640 Mb/s a segment is 50 ns, so (3 + 2) × 50 ns = 250 ns — the
    /// paper's footnote-5 estimate.
    pub fn latency(&self, link_rate_bps: u64) -> SimDuration {
        let segment = SimDuration::from_bits(32, link_rate_bps);
        segment * (PIPELINE_CYCLES + FIFO_SLACK_SEGMENTS)
    }
}

/// One cycle-accurate step outcome of the [`FifoPipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineStep {
    /// An odd cycle (Figure 2): data pushed, possibly data pulled.
    Odd {
        /// Segment that left the FIFO toward the output circuitry, if any.
        output: Option<u32>,
    },
    /// An even cycle (Figure 3): compare result applied, possibly an
    /// overwrite in the FIFO.
    Even {
        /// Whether the just-pushed segment was overwritten in the FIFO.
        injected: bool,
    },
}

/// Cycle-accurate model of the two-phase FIFO injector of Figures 2 and 3,
/// at aligned 32-bit segment granularity.
#[derive(Debug, Clone)]
pub struct FifoPipeline {
    /// Dual-port RAM backing the FIFO (paper: "standard RAM architecture
    /// used to provide storage for the FIFO injector elements").
    ram: Vec<u32>,
    head: usize,
    tail: usize,
    len: usize,
    /// Index in RAM of the most recently pushed segment (the compare
    /// operation's subject).
    last_pushed: Option<usize>,
    compare: CompareUnit,
    corrupt: CorruptUnit,
    clock: ClockGenerator,
    slack: usize,
}

impl FifoPipeline {
    /// Creates a pipeline with a RAM of `depth` segments, keeping `slack`
    /// segments buffered before output.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < slack < depth`.
    pub fn new(
        depth: usize,
        slack: usize,
        compare: CompareUnit,
        corrupt: CorruptUnit,
        clock: ClockGenerator,
    ) -> FifoPipeline {
        assert!(slack > 0 && slack < depth, "need 0 < slack < depth");
        FifoPipeline {
            // lint: allow(hot-path-alloc) one-time backing RAM, sized at construction
            ram: vec![0; depth],
            head: 0,
            tail: 0,
            len: 0,
            last_pushed: None,
            compare,
            corrupt,
            clock,
            slack,
        }
    }

    /// Segments currently buffered.
    pub fn occupancy(&self) -> usize {
        self.len
    }

    /// Total cycles ticked.
    pub fn cycles(&self) -> u64 {
        self.clock.cycles()
    }

    /// Runs one odd cycle (Figure 2): pushes `input` (if any) and pulls a
    /// segment for output once more than `slack` segments are buffered.
    ///
    /// # Panics
    ///
    /// Panics if called on an even cycle, or on FIFO overflow.
    pub fn step_odd(&mut self, input: Option<u32>) -> Option<u32> {
        assert_eq!(self.clock.tick(), ClockPhase::Odd, "phase mismatch");
        if let Some(seg) = input {
            assert!(self.len < self.ram.len(), "FIFO overflow");
            self.ram[self.tail] = seg;
            self.last_pushed = Some(self.tail);
            self.tail = (self.tail + 1) % self.ram.len();
            self.len += 1;
        } else {
            self.last_pushed = None;
        }
        if self.len > self.slack {
            let out = self.ram[self.head];
            self.head = (self.head + 1) % self.ram.len();
            self.len -= 1;
            Some(out)
        } else {
            None
        }
    }

    /// Runs one even cycle (Figure 3): "the result of the compare operation
    /// is available, and if any data needs to be corrupted, it will be
    /// overwritten in the FIFO."
    ///
    /// # Panics
    ///
    /// Panics if called on an odd cycle.
    pub fn step_even(&mut self) -> bool {
        assert_eq!(self.clock.tick(), ClockPhase::Even, "phase mismatch");
        let Some(idx) = self.last_pushed else {
            return false;
        };
        if self.compare.matches(self.ram[idx]) {
            self.ram[idx] = self.corrupt.apply(self.ram[idx]);
            true
        } else {
            false
        }
    }

    /// Drains remaining segments (end of stream).
    pub fn flush(&mut self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        while self.len > 0 {
            out.push(self.ram[self.head]);
            self.head = (self.head + 1) % self.ram.len();
            self.len -= 1;
        }
        out
    }

    /// Convenience: runs a whole segment stream through the two-phase
    /// pipeline and returns the output stream.
    pub fn run(&mut self, input: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(input.len());
        for &seg in input {
            out.extend(self.step_odd(Some(seg)));
            self.step_even();
        }
        out.extend(self.flush());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InjectorConfig;
    use crate::trigger::MatchMode;
    use netfi_myrinet::packet::{route_to_host, Packet, PacketType};

    fn sample_wire() -> Vec<u8> {
        Packet::new(
            vec![route_to_host(1)],
            PacketType::DATA,
            vec![0x00, 0x18, 0x18, 0x55, 0x66, 0x77],
        )
        .encode()
    }

    #[test]
    fn passthrough_leaves_bytes_untouched() {
        let mut inj = FifoInjector::new(InjectorConfig::passthrough());
        let mut bytes = sample_wire();
        let orig = bytes.clone();
        let report = inj.process_packet(&mut bytes);
        assert_eq!(bytes, orig);
        assert!(!report.injected());
        assert_eq!(inj.stats().packets, 1);
        assert_eq!(inj.stats().cycles, 2 * (orig.len().div_ceil(4) as u64));
    }

    #[test]
    fn typical_scenario_1818_to_1918() {
        // Paper §3.3: match 0x1818, replace with 0x1918.
        let config = InjectorConfig::builder()
            .match_mode(MatchMode::On)
            .compare(0x1818_0000, 0xFFFF_0000)
            .corrupt_replace(0x1918_0000, 0xFFFF_0000)
            .recompute_crc(true)
            .build();
        let mut inj = FifoInjector::new(config);
        let mut bytes = sample_wire();
        let report = inj.process_packet(&mut bytes);
        assert!(report.injected());
        assert!(report.crc_fixed);
        // The 0x1818 at payload offset became 0x1918, and the CRC still
        // verifies.
        let delivered = Packet::parse_delivered(&bytes).unwrap();
        assert_eq!(&delivered.payload[..4], &[0x00, 0x19, 0x18, 0x55]);
    }

    #[test]
    fn injection_without_crc_fix_breaks_crc() {
        let config = InjectorConfig::builder()
            .match_mode(MatchMode::On)
            .compare(0x1818_0000, 0xFFFF_0000)
            .corrupt_toggle(0x0100_0000)
            .recompute_crc(false)
            .build();
        let mut inj = FifoInjector::new(config);
        let mut bytes = sample_wire();
        let report = inj.process_packet(&mut bytes);
        assert!(report.injected());
        assert!(!report.crc_fixed);
        assert!(Packet::parse_delivered(&bytes).is_err());
    }

    #[test]
    fn once_mode_fires_exactly_once() {
        let config = InjectorConfig::builder()
            .match_mode(MatchMode::Once)
            .compare(0x1818_0000, 0xFFFF_0000)
            .corrupt_toggle(0xFF00_0000)
            .build();
        let mut inj = FifoInjector::new(config);
        let mut first = sample_wire();
        let r1 = inj.process_packet(&mut first);
        assert_eq!(r1.injected_offsets.len(), 1);
        assert!(!inj.is_armed());
        let mut second = sample_wire();
        let r2 = inj.process_packet(&mut second);
        assert!(r2.injected_offsets.is_empty());
        assert_eq!(r2.matches, 1, "matches still observed");
        // Re-arm and it fires again.
        inj.rearm();
        let mut third = sample_wire();
        assert!(inj.process_packet(&mut third).injected());
    }

    #[test]
    fn off_mode_never_fires() {
        let config = InjectorConfig::builder()
            .match_mode(MatchMode::Off)
            .compare(0, 0) // would match everything
            .corrupt_toggle(0xFFFF_FFFF)
            .build();
        let mut inj = FifoInjector::new(config);
        let mut bytes = sample_wire();
        let orig = bytes.clone();
        let report = inj.process_packet(&mut bytes);
        assert!(!report.injected());
        assert_eq!(bytes, orig);
    }

    #[test]
    fn inject_now_corrupts_next_segment() {
        let config = InjectorConfig::builder()
            .corrupt_toggle(0x8000_0000) // flip MSB of the segment
            .build();
        let mut inj = FifoInjector::new(config);
        inj.inject_now();
        let mut bytes = sample_wire();
        let report = inj.process_packet(&mut bytes);
        assert_eq!(report.injected_offsets, vec![0]);
        assert_eq!(inj.stats().forced_injections, 1);
        // Route byte 0x01 became 0x81: MSB set on the final route byte.
        assert_eq!(bytes[0], 0x81);
        // Only once.
        let mut more = sample_wire();
        assert!(!inj.process_packet(&mut more).injected());
    }

    #[test]
    fn control_swap_and_match_modes() {
        let mut inj = FifoInjector::new(InjectorConfig::control_swap(0x0F, 0x0C));
        assert_eq!(inj.process_control(0x0F), (0x0C, true));
        assert_eq!(inj.process_control(0x03), (0x03, false));
        assert_eq!(inj.stats().control_injections, 1);
        // Terminators included by default.
        assert_eq!(inj.process_terminator(0x0F), (0x0C, true));
    }

    #[test]
    fn control_once_mode() {
        let mut config = InjectorConfig::control_swap(0x03, 0x0F);
        config.match_mode = MatchMode::Once;
        let mut inj = FifoInjector::new(config);
        assert_eq!(inj.process_control(0x03), (0x0F, true));
        assert_eq!(inj.process_control(0x03), (0x03, false));
    }

    #[test]
    fn latency_matches_footnote_5() {
        let inj = FifoInjector::new(InjectorConfig::passthrough());
        // "At a data rate of 640 Mb/s, this translates to about a 250-ns
        // latency."
        assert_eq!(inj.latency(640_000_000), SimDuration::from_ns(250));
        // At full SAN speed (1.28 Gb/s) it halves.
        assert_eq!(inj.latency(1_280_000_000), SimDuration::from_ns(125));
    }

    // --- cycle-accurate pipeline (Figures 2/3) ---

    fn pipeline(compare: CompareUnit, corrupt: CorruptUnit) -> FifoPipeline {
        FifoPipeline::new(
            8,
            2,
            compare,
            corrupt,
            ClockGenerator::from_hz(200_000_000),
        )
    }

    #[test]
    fn pipeline_passthrough_preserves_stream() {
        let mut p = pipeline(CompareUnit::new(0, u32::MAX), CorruptUnit::toggle(0));
        let input: Vec<u32> = (0..16).map(|i| i * 0x0101_0101).collect();
        let output = p.run(&input);
        assert_eq!(output, input);
    }

    #[test]
    fn pipeline_delays_output_by_slack() {
        let mut p = pipeline(CompareUnit::new(0, u32::MAX), CorruptUnit::toggle(0));
        // First two odd cycles: nothing comes out (slack = 2).
        assert_eq!(p.step_odd(Some(0xAAAA_AAAA)), None);
        p.step_even();
        assert_eq!(p.step_odd(Some(0xBBBB_BBBB)), None);
        p.step_even();
        // Third push: the first segment emerges.
        assert_eq!(p.step_odd(Some(0xCCCC_CCCC)), Some(0xAAAA_AAAA));
        p.step_even();
        assert_eq!(p.occupancy(), 2);
    }

    #[test]
    fn pipeline_even_cycle_overwrites_matching_segment() {
        // Figure 3: the compare result is available on the even cycle and
        // the segment is overwritten in the FIFO before it is pulled.
        let mut p = pipeline(
            CompareUnit::new(0xDEAD_BEEF, u32::MAX),
            CorruptUnit::replace(0xFEED_FACE, u32::MAX),
        );
        let out = p.run(&[0x1111_1111, 0xDEAD_BEEF, 0x2222_2222]);
        assert_eq!(out, vec![0x1111_1111, 0xFEED_FACE, 0x2222_2222]);
    }

    #[test]
    fn pipeline_phase_discipline_enforced() {
        let mut p = pipeline(CompareUnit::default(), CorruptUnit::default());
        let _ = p.step_odd(None);
        // Calling step_odd again without step_even is a phase error.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = p.step_odd(None);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn pipeline_cycle_accounting() {
        let mut p = pipeline(CompareUnit::new(0, u32::MAX), CorruptUnit::toggle(0));
        let _ = p.run(&[1, 2, 3, 4]);
        // Two cycles per segment.
        assert_eq!(p.cycles(), 8);
    }
}
