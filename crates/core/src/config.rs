//! Injector configuration (the "Injector Control Inputs" of Figure 3).
//!
//! One [`InjectorConfig`] governs one direction of the device — "because
//! the injector is bi-directional, the injector can execute different and
//! independent commands on data traveling in different directions."

use crate::corrupt::{ControlCorrupt, CorruptUnit};
use crate::random::RandomInject;
use crate::trigger::{CompareUnit, ControlCompare, MatchMode};

/// Trigger + corruption for control symbols (GAP / GO / STOP), which travel
/// outside the 32-bit data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlInject {
    /// What to match.
    pub compare: ControlCompare,
    /// How to corrupt it.
    pub corrupt: ControlCorrupt,
    /// Whether the corruption also applies to packet-terminating GAPs (as
    /// opposed to standalone control symbols only).
    pub include_terminators: bool,
}

/// Per-direction injector configuration.
///
/// # Example
///
/// Reproducing the paper's "typical injection scenario": match the data
/// stream `0x1818` and replace it with `0x1918`:
///
/// ```
/// use netfi_core::config::InjectorConfig;
/// use netfi_core::trigger::MatchMode;
///
/// let config = InjectorConfig::builder()
///     .match_mode(MatchMode::On)
///     .compare(0x1818_0000, 0xFFFF_0000)
///     .corrupt_replace(0x1918_0000, 0xFFFF_0000)
///     .recompute_crc(true)
///     .build();
/// assert_eq!(config.match_mode, MatchMode::On);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectorConfig {
    /// Trigger mode: off / on / once.
    pub match_mode: MatchMode,
    /// The 32-bit data-path trigger.
    pub compare: CompareUnit,
    /// The 32-bit corruption unit.
    pub corrupt: CorruptUnit,
    /// Recompute the trailing CRC-8 after injection, "recalculating the
    /// correct CRC value to transmit immediately before the end-of-frame
    /// character" — on for campaigns that must sneak errors past the CRC,
    /// off for campaigns that study CRC-detected corruption.
    pub crc_recompute: bool,
    /// Optional control-symbol injection.
    pub control: Option<ControlInject>,
    /// Optional random (SEU) bit-flip injection — §3.1's "random faults
    /// causing bit flip errors".
    pub random: Option<RandomInject>,
}

impl Default for InjectorConfig {
    fn default() -> Self {
        InjectorConfig {
            match_mode: MatchMode::Off,
            compare: CompareUnit::default(),
            corrupt: CorruptUnit::default(),
            crc_recompute: false,
            control: None,
            random: None,
        }
    }
}

impl InjectorConfig {
    /// A pass-through configuration (trigger off).
    pub fn passthrough() -> InjectorConfig {
        InjectorConfig::default()
    }

    /// Starts building a configuration.
    pub fn builder() -> InjectorConfigBuilder {
        InjectorConfigBuilder::default()
    }

    /// Convenience: a control-symbol swap campaign entry, e.g.
    /// STOP → GAP for Table 4 rows. Matches the exact `from` code and
    /// replaces it with `to`, on every occurrence, including packet
    /// terminators.
    pub fn control_swap(from: u8, to: u8) -> InjectorConfig {
        InjectorConfig {
            match_mode: MatchMode::On,
            control: Some(ControlInject {
                compare: ControlCompare::exact(from),
                corrupt: ControlCorrupt::replace_with(to),
                include_terminators: true,
            }),
            ..InjectorConfig::default()
        }
    }
}

/// Builder for [`InjectorConfig`].
#[derive(Debug, Clone, Default)]
pub struct InjectorConfigBuilder {
    config: InjectorConfig,
}

impl InjectorConfigBuilder {
    /// Sets the match mode.
    pub fn match_mode(mut self, mode: MatchMode) -> Self {
        self.config.match_mode = mode;
        self
    }

    /// Sets the compare data and mask.
    pub fn compare(mut self, data: u32, mask: u32) -> Self {
        self.config.compare = CompareUnit::new(data, mask);
        self
    }

    /// Uses toggle-mode corruption with the given corrupt-data vector.
    pub fn corrupt_toggle(mut self, data: u32) -> Self {
        self.config.corrupt = CorruptUnit::toggle(data);
        self
    }

    /// Uses replace-mode corruption with the given data and mask.
    pub fn corrupt_replace(mut self, data: u32, mask: u32) -> Self {
        self.config.corrupt = CorruptUnit::replace(data, mask);
        self
    }

    /// Enables or disables CRC-8 recomputation after injection.
    pub fn recompute_crc(mut self, on: bool) -> Self {
        self.config.crc_recompute = on;
        self
    }

    /// Adds a control-symbol swap (exact match on `from`, replace with
    /// `to`), including packet terminators.
    pub fn control_swap(mut self, from: u8, to: u8) -> Self {
        self.config.control = Some(ControlInject {
            compare: ControlCompare::exact(from),
            corrupt: ControlCorrupt::replace_with(to),
            include_terminators: true,
        });
        self
    }

    /// Adds a fully specified control-symbol injection.
    pub fn control_inject(mut self, inject: ControlInject) -> Self {
        self.config.control = Some(inject);
        self
    }

    /// Enables random SEU injection with the given per-segment flip
    /// probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn random_seu(mut self, p: f64) -> Self {
        self.config.random = Some(RandomInject::with_probability(p));
        self
    }

    /// Finishes building.
    pub fn build(self) -> InjectorConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corrupt::CorruptMode;

    #[test]
    fn default_is_passthrough() {
        let c = InjectorConfig::default();
        assert_eq!(c.match_mode, MatchMode::Off);
        assert!(c.control.is_none());
        assert!(!c.crc_recompute);
        assert_eq!(c, InjectorConfig::passthrough());
    }

    #[test]
    fn builder_composes() {
        let c = InjectorConfig::builder()
            .match_mode(MatchMode::Once)
            .compare(0xAABB_0000, 0xFFFF_0000)
            .corrupt_toggle(0x0100_0000)
            .recompute_crc(true)
            .build();
        assert_eq!(c.match_mode, MatchMode::Once);
        assert!(c.compare.matches(0xAABB_1234));
        assert_eq!(c.corrupt.mode, CorruptMode::Toggle);
        assert!(c.crc_recompute);
    }

    #[test]
    fn control_swap_config() {
        let c = InjectorConfig::control_swap(0x0F, 0x03); // STOP -> GO
        assert_eq!(c.match_mode, MatchMode::On);
        let ctl = c.control.unwrap();
        assert!(ctl.compare.matches(0x0F));
        assert!(!ctl.compare.matches(0x0C));
        assert_eq!(ctl.corrupt.apply(0x0F), 0x03);
        assert!(ctl.include_terminators);
    }
}
