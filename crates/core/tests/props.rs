//! Property-based tests for the injector core.

use proptest::prelude::*;

use netfi_core::command::{parse_command, render_command, Command, DirSelect};
use netfi_core::config::InjectorConfig;
use netfi_core::corrupt::{CorruptMode, CorruptUnit};
use netfi_core::fifo::{FifoInjector, FifoPipeline};
use netfi_core::trigger::{CompareUnit, MatchMode};
use netfi_myrinet::crc8;
use netfi_phy::clock::ClockGenerator;

fn arb_command() -> impl Strategy<Value = Command> {
    prop_oneof![
        prop_oneof![
            Just(DirSelect::A),
            Just(DirSelect::B),
            Just(DirSelect::Both)
        ]
        .prop_map(Command::SelectDirection),
        prop_oneof![
            Just(MatchMode::Off),
            Just(MatchMode::On),
            Just(MatchMode::Once)
        ]
        .prop_map(Command::MatchMode),
        any::<u32>().prop_map(Command::CompareData),
        any::<u32>().prop_map(Command::CompareMask),
        prop_oneof![Just(CorruptMode::Toggle), Just(CorruptMode::Replace)]
            .prop_map(Command::CorruptMode),
        any::<u32>().prop_map(Command::CorruptData),
        any::<u32>().prop_map(Command::CorruptMask),
        any::<bool>().prop_map(Command::CrcRecompute),
        (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(from, mask, to)| Command::ControlSwap { from, mask, to }),
        Just(Command::ControlOff),
        any::<u32>().prop_map(Command::RandomRate),
        Just(Command::InjectNow),
        Just(Command::Rearm),
        Just(Command::QueryStats),
        Just(Command::ResetStats),
    ]
}

/// Reference implementation of the byte-sliding window scan.
fn naive_scan(compare: CompareUnit, bytes: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 0..bytes.len().saturating_sub(3) {
        let w = u32::from_be_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
        if (w ^ compare.compare_data) & compare.compare_mask == 0 {
            out.push(i);
        }
    }
    out
}

proptest! {
    /// The trigger scan agrees with the naive reference for any pattern,
    /// mask and stream.
    #[test]
    fn scan_matches_reference(
        data in any::<u32>(),
        mask in any::<u32>(),
        stream in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        let cmp = CompareUnit::new(data, mask);
        prop_assert_eq!(cmp.scan(&stream), naive_scan(cmp, &stream));
    }

    /// Toggle corruption is an involution; replace is idempotent.
    #[test]
    fn corruption_algebra(data in any::<u32>(), mask in any::<u32>(), window in any::<u32>()) {
        let toggle = CorruptUnit::toggle(data);
        prop_assert_eq!(toggle.apply(toggle.apply(window)), window);
        let replace = CorruptUnit::replace(data, mask);
        prop_assert_eq!(replace.apply(replace.apply(window)), replace.apply(window));
        // Replace only changes masked bits.
        prop_assert_eq!(replace.apply(window) & !mask, window & !mask);
    }

    /// apply_at never writes outside the window or the buffer.
    #[test]
    fn apply_at_is_contained(
        buf in proptest::collection::vec(any::<u8>(), 1..64),
        offset in any::<usize>(),
        data in any::<u32>()
    ) {
        let unit = CorruptUnit::toggle(data);
        let offset = offset % (buf.len() + 4);
        let mut out = buf.clone();
        unit.apply_at(&mut out, offset);
        for (i, (&a, &b)) in buf.iter().zip(&out).enumerate() {
            if i < offset || i >= offset + 4 {
                prop_assert_eq!(a, b, "byte {} outside the window changed", i);
            }
        }
    }

    /// With CRC recomputation enabled, any triggered corruption still
    /// yields a CRC-valid image ("recalculating the correct CRC value to
    /// transmit immediately before the end-of-frame character").
    #[test]
    fn crc_fix_always_repairs(
        payload in proptest::collection::vec(any::<u8>(), 4..128),
        pattern_at in any::<proptest::sample::Index>(),
        corrupt in any::<u32>()
    ) {
        // Build a wire image with a known CRC, plant a pattern, corrupt it.
        let mut wire = payload;
        let crc = crc8::checksum(&wire);
        wire.push(crc);
        let at = pattern_at.index(wire.len() - 4);
        let window = u32::from_be_bytes([wire[at], wire[at+1], wire[at+2], wire[at+3]]);
        let config = InjectorConfig::builder()
            .match_mode(MatchMode::Once)
            .compare(window, 0xFFFF_FFFF)
            .corrupt_toggle(corrupt)
            .recompute_crc(true)
            .build();
        let mut injector = FifoInjector::new(config);
        let report = injector.process_packet(&mut wire);
        prop_assert!(report.injected());
        prop_assert!(crc8::verify(&wire), "CRC not repaired");
    }

    /// Once mode injects at most one window per arming, across any number
    /// of packets.
    #[test]
    fn once_mode_fires_at_most_once(
        packets in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            1..8
        )
    ) {
        let config = InjectorConfig::builder()
            .match_mode(MatchMode::Once)
            .compare(0, 0) // matches every window
            .corrupt_toggle(0xFF)
            .build();
        let mut injector = FifoInjector::new(config);
        let mut total = 0;
        for mut p in packets {
            total += injector.process_packet(&mut p).injected_offsets.len();
        }
        prop_assert!(total <= 1, "once-mode injected {} times", total);
    }

    /// Off mode never corrupts anything.
    #[test]
    fn off_mode_is_identity(
        stream in proptest::collection::vec(any::<u8>(), 0..128),
        data in any::<u32>(),
        mask in any::<u32>()
    ) {
        let config = InjectorConfig::builder()
            .match_mode(MatchMode::Off)
            .compare(data, mask)
            .corrupt_toggle(0xFFFF_FFFF)
            .build();
        let mut injector = FifoInjector::new(config);
        let mut out = stream.clone();
        let report = injector.process_packet(&mut out);
        prop_assert!(!report.injected());
        prop_assert_eq!(out, stream);
    }

    /// The command language roundtrips: render then parse is identity.
    #[test]
    fn command_render_parse_roundtrip(cmd in arb_command()) {
        prop_assert_eq!(parse_command(&render_command(&cmd)), Ok(cmd));
    }

    /// The cycle-accurate pipeline is a faithful FIFO when nothing
    /// matches: output equals input, in order, for any stream and slack.
    #[test]
    fn pipeline_is_transparent_fifo(
        stream in proptest::collection::vec(any::<u32>(), 0..128),
        slack in 1usize..7
    ) {
        let mut p = FifoPipeline::new(
            8,
            slack,
            CompareUnit::new(0xDEAD_BEEF, u32::MAX),
            CorruptUnit::replace(0, u32::MAX),
            ClockGenerator::from_hz(100_000_000),
        );
        // Ensure the match value never occurs.
        let stream: Vec<u32> = stream.into_iter().map(|x| x ^ 0xDEAD_BEEF).collect();
        let stream: Vec<u32> =
            stream.into_iter().map(|x| if x == 0xDEAD_BEEF { 0 } else { x }).collect();
        let out = p.run(&stream);
        prop_assert_eq!(out, stream);
    }

    /// Latency scales inversely with the link rate and is always the
    /// paper's five segment times.
    #[test]
    fn latency_is_five_segments(rate in 1_000_000u64..10_000_000_000) {
        let injector = FifoInjector::new(InjectorConfig::passthrough());
        let seg = netfi_sim::SimDuration::from_bits(32, rate);
        prop_assert_eq!(injector.latency(rate), seg * 5);
    }
}
