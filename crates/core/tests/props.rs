//! Randomized property tests for the injector core, driven by seeded
//! loops over [`DetRng`] (no external dependencies).

use netfi_core::command::{parse_command, render_command, Command, DirSelect};
use netfi_core::config::InjectorConfig;
use netfi_core::corrupt::{CorruptMode, CorruptUnit};
use netfi_core::fifo::{FifoInjector, FifoPipeline};
use netfi_core::trigger::{CompareUnit, MatchMode};
use netfi_myrinet::crc8;
use netfi_phy::clock::ClockGenerator;
use netfi_sim::DetRng;

const CASES: usize = 256;

fn random_bytes(rng: &mut DetRng, min_len: usize, max_len: usize) -> Vec<u8> {
    let len = min_len + rng.gen_index(max_len - min_len + 1);
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

fn random_command(rng: &mut DetRng) -> Command {
    match rng.gen_index(15) {
        0 => Command::SelectDirection(match rng.gen_index(3) {
            0 => DirSelect::A,
            1 => DirSelect::B,
            _ => DirSelect::Both,
        }),
        1 => Command::MatchMode(match rng.gen_index(3) {
            0 => MatchMode::Off,
            1 => MatchMode::On,
            _ => MatchMode::Once,
        }),
        2 => Command::CompareData(rng.next_u32()),
        3 => Command::CompareMask(rng.next_u32()),
        4 => Command::CorruptMode(if rng.gen_bool(0.5) {
            CorruptMode::Toggle
        } else {
            CorruptMode::Replace
        }),
        5 => Command::CorruptData(rng.next_u32()),
        6 => Command::CorruptMask(rng.next_u32()),
        7 => Command::CrcRecompute(rng.gen_bool(0.5)),
        8 => Command::ControlSwap {
            from: rng.next_u32() as u8,
            mask: rng.next_u32() as u8,
            to: rng.next_u32() as u8,
        },
        9 => Command::ControlOff,
        10 => Command::RandomRate(rng.next_u32()),
        11 => Command::InjectNow,
        12 => Command::Rearm,
        13 => Command::QueryStats,
        _ => Command::ResetStats,
    }
}

/// Reference implementation of the byte-sliding window scan.
fn naive_scan(compare: CompareUnit, bytes: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 0..bytes.len().saturating_sub(3) {
        let w = u32::from_be_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
        if (w ^ compare.compare_data) & compare.compare_mask == 0 {
            out.push(i);
        }
    }
    out
}

/// The trigger scan agrees with the naive reference for any pattern, mask
/// and stream.
#[test]
fn scan_matches_reference() {
    let mut rng = DetRng::new(0xC04E_0001);
    for _ in 0..CASES {
        let data = rng.next_u32();
        let mask = rng.next_u32();
        let stream = random_bytes(&mut rng, 0, 256);
        let cmp = CompareUnit::new(data, mask);
        assert_eq!(cmp.scan(&stream), naive_scan(cmp, &stream));
    }
}

/// Toggle corruption is an involution; replace is idempotent.
#[test]
fn corruption_algebra() {
    let mut rng = DetRng::new(0xC04E_0002);
    for _ in 0..CASES {
        let data = rng.next_u32();
        let mask = rng.next_u32();
        let window = rng.next_u32();
        let toggle = CorruptUnit::toggle(data);
        assert_eq!(toggle.apply(toggle.apply(window)), window);
        let replace = CorruptUnit::replace(data, mask);
        assert_eq!(replace.apply(replace.apply(window)), replace.apply(window));
        // Replace only changes masked bits.
        assert_eq!(replace.apply(window) & !mask, window & !mask);
    }
}

/// apply_at never writes outside the window or the buffer.
#[test]
fn apply_at_is_contained() {
    let mut rng = DetRng::new(0xC04E_0003);
    for _ in 0..CASES {
        let buf = random_bytes(&mut rng, 1, 64);
        let data = rng.next_u32();
        let unit = CorruptUnit::toggle(data);
        let offset = rng.gen_index(buf.len() + 4);
        let mut out = buf.clone();
        unit.apply_at(&mut out, offset);
        for (i, (&a, &b)) in buf.iter().zip(&out).enumerate() {
            if i < offset || i >= offset + 4 {
                assert_eq!(a, b, "byte {i} outside the window changed");
            }
        }
    }
}

/// With CRC recomputation enabled, any triggered corruption still yields
/// a CRC-valid image ("recalculating the correct CRC value to transmit
/// immediately before the end-of-frame character").
#[test]
fn crc_fix_always_repairs() {
    let mut rng = DetRng::new(0xC04E_0004);
    for _ in 0..CASES {
        let mut wire = random_bytes(&mut rng, 4, 128);
        let corrupt = rng.next_u32();
        // Build a wire image with a known CRC, plant a pattern, corrupt it.
        let crc = crc8::checksum(&wire);
        wire.push(crc);
        let at = rng.gen_index(wire.len() - 4);
        let window = u32::from_be_bytes([wire[at], wire[at + 1], wire[at + 2], wire[at + 3]]);
        let config = InjectorConfig::builder()
            .match_mode(MatchMode::Once)
            .compare(window, 0xFFFF_FFFF)
            .corrupt_toggle(corrupt)
            .recompute_crc(true)
            .build();
        let mut injector = FifoInjector::new(config);
        let report = injector.process_packet(&mut wire);
        assert!(report.injected());
        assert!(crc8::verify(&wire), "CRC not repaired");
    }
}

/// Once mode injects at most one window per arming, across any number of
/// packets.
#[test]
fn once_mode_fires_at_most_once() {
    let mut rng = DetRng::new(0xC04E_0005);
    for _ in 0..CASES {
        let config = InjectorConfig::builder()
            .match_mode(MatchMode::Once)
            .compare(0, 0) // matches every window
            .corrupt_toggle(0xFF)
            .build();
        let mut injector = FifoInjector::new(config);
        let mut total = 0;
        for _ in 0..1 + rng.gen_index(7) {
            let mut p = random_bytes(&mut rng, 0, 64);
            total += injector.process_packet(&mut p).injected_offsets.len();
        }
        assert!(total <= 1, "once-mode injected {total} times");
    }
}

/// Off mode never corrupts anything.
#[test]
fn off_mode_is_identity() {
    let mut rng = DetRng::new(0xC04E_0006);
    for _ in 0..CASES {
        let stream = random_bytes(&mut rng, 0, 128);
        let data = rng.next_u32();
        let mask = rng.next_u32();
        let config = InjectorConfig::builder()
            .match_mode(MatchMode::Off)
            .compare(data, mask)
            .corrupt_toggle(0xFFFF_FFFF)
            .build();
        let mut injector = FifoInjector::new(config);
        let mut out = stream.clone();
        let report = injector.process_packet(&mut out);
        assert!(!report.injected());
        assert_eq!(out, stream);
    }
}

/// The command language roundtrips: render then parse is identity.
#[test]
fn command_render_parse_roundtrip() {
    let mut rng = DetRng::new(0xC04E_0007);
    for _ in 0..CASES {
        let cmd = random_command(&mut rng);
        assert_eq!(parse_command(&render_command(&cmd)), Ok(cmd));
    }
}

/// The cycle-accurate pipeline is a faithful FIFO when nothing matches:
/// output equals input, in order, for any stream and slack.
#[test]
fn pipeline_is_transparent_fifo() {
    let mut rng = DetRng::new(0xC04E_0008);
    for _ in 0..CASES {
        let slack = 1 + rng.gen_index(6);
        let len = rng.gen_index(128);
        let mut p = FifoPipeline::new(
            8,
            slack,
            CompareUnit::new(0xDEAD_BEEF, u32::MAX),
            CorruptUnit::replace(0, u32::MAX),
            ClockGenerator::from_hz(100_000_000),
        );
        // Ensure the match value never occurs.
        let stream: Vec<u32> = (0..len)
            .map(|_| match rng.next_u32() {
                0xDEAD_BEEF => 0,
                x => x,
            })
            .collect();
        let out = p.run(&stream);
        assert_eq!(out, stream);
    }
}

/// Latency scales inversely with the link rate and is always the paper's
/// five segment times.
#[test]
fn latency_is_five_segments() {
    let mut rng = DetRng::new(0xC04E_0009);
    for _ in 0..CASES {
        let rate = rng.gen_range(1_000_000..10_000_000_000);
        let injector = FifoInjector::new(InjectorConfig::passthrough());
        let seg = netfi_sim::SimDuration::from_bits(32, rate);
        assert_eq!(injector.latency(rate), seg * 5);
    }
}
