//! The Myrinet packet format (paper Figure 6).
//!
//! A Myrinet packet consists of an arbitrarily long **source route**, a
//! 4-byte **packet type**, an arbitrarily long **payload**, and a single
//! trailing **CRC-8** byte covering everything before it.
//!
//! Routing is *relative*: at each switch the first byte of the header
//! designates the outgoing port and is stripped, and the trailing CRC-8 is
//! recomputed. A route byte with its MSB set means the packet is being
//! routed to another switch; the final route byte (MSB clear) delivers it to
//! a destination interface. In this model the final route byte is consumed
//! by the destination interface itself, which checks the MSB rule — "if the
//! packet reaches a destination interface with the MSB set to one, the
//! packet is consumed and handled as an error" (§4.3.2).

use std::error::Error;
use std::fmt;

use netfi_sim::SharedBytes;

use crate::crc8;

/// The 4-byte packet-type field.
///
/// The paper names two types of interest: `0x0004` (data) and `0x0005`
/// (mapping); most other values are "reserved for relatively obscure
/// protocols".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketType(pub u32);

impl PacketType {
    /// Ordinary data packets.
    pub const DATA: PacketType = PacketType(0x0000_0004);
    /// Network-mapping packets (scouts, replies, route distribution).
    pub const MAPPING: PacketType = PacketType(0x0000_0005);

    /// The wire encoding (big-endian).
    pub fn to_bytes(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Reads a type from the first four bytes of `buf`.
    pub fn from_slice(buf: &[u8]) -> Option<PacketType> {
        let bytes: [u8; 4] = buf.get(..4)?.try_into().ok()?;
        Some(PacketType(u32::from_be_bytes(bytes)))
    }

    /// `true` for the types this stack understands.
    pub fn is_known(self) -> bool {
        self == Self::DATA || self == Self::MAPPING
    }
}

impl fmt::Display for PacketType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::DATA => f.write_str("DATA"),
            Self::MAPPING => f.write_str("MAPPING"),
            PacketType(v) => write!(f, "TYPE({v:#06x})"),
        }
    }
}

/// Mask selecting the port number from a route byte (up to 64 ports).
pub const ROUTE_PORT_MASK: u8 = 0x3F;
/// The MSB flag: set when the hop targets another switch.
pub const ROUTE_SWITCH_FLAG: u8 = 0x80;

/// A route byte addressed to a further switch: MSB set.
///
/// # Panics
///
/// Panics if `port` exceeds [`ROUTE_PORT_MASK`].
pub fn route_to_switch(port: u8) -> u8 {
    assert!(port <= ROUTE_PORT_MASK, "switch port out of range");
    ROUTE_SWITCH_FLAG | port
}

/// The final route byte, delivering to a host interface: MSB clear.
///
/// # Panics
///
/// Panics if `port` exceeds [`ROUTE_PORT_MASK`].
pub fn route_to_host(port: u8) -> u8 {
    assert!(port <= ROUTE_PORT_MASK, "switch port out of range");
    port
}

/// Errors raised while parsing or validating packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// Fewer bytes than the minimum frame.
    TooShort,
    /// The trailing CRC-8 does not verify.
    BadCrc,
    /// A packet reached a destination interface with the route MSB set —
    /// "consumed and handled as an error".
    RouteMsbSet,
    /// No route byte remained when one was expected.
    RouteExhausted,
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::TooShort => f.write_str("packet shorter than minimum frame"),
            PacketError::BadCrc => f.write_str("trailing CRC-8 check failed"),
            PacketError::RouteMsbSet => {
                f.write_str("route MSB set at destination interface")
            }
            PacketError::RouteExhausted => f.write_str("source route exhausted early"),
        }
    }
}

impl Error for PacketError {}

/// A parsed Myrinet packet.
///
/// # Example
///
/// ```
/// use netfi_myrinet::packet::{route_to_host, Packet, PacketType};
/// let pkt = Packet::new(vec![route_to_host(2)], PacketType::DATA, b"hi".to_vec());
/// let wire = pkt.encode();
/// // route(1) + type(4) + payload(2) + crc(1)
/// assert_eq!(wire.len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Remaining source-route bytes (consumed hop by hop).
    pub route: Vec<u8>,
    /// The packet type field.
    pub ptype: PacketType,
    /// The payload (a cheaply-clonable view into the wire image).
    pub payload: SharedBytes,
}

impl Packet {
    /// Assembles a packet.
    pub fn new(
        route: Vec<u8>,
        ptype: PacketType,
        payload: impl Into<SharedBytes>,
    ) -> Packet {
        Packet {
            route,
            ptype,
            payload: payload.into(),
        }
    }

    /// Serializes to wire bytes with a freshly computed CRC.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf =
            Vec::with_capacity(self.route.len() + 4 + self.payload.len() + 1);
        buf.extend_from_slice(&self.route);
        buf.extend_from_slice(&self.ptype.to_bytes());
        buf.extend_from_slice(&self.payload);
        buf.push(crc8::checksum(&buf));
        buf
    }

    /// Parses a packet delivered to a host interface.
    ///
    /// In this model the wire image arriving at an interface is
    /// `[final route byte, type(4), payload…, crc]`. The interface checks
    /// the CRC first (bad CRC ⇒ silent drop, §4.3.3), then the route-MSB
    /// rule (§4.3.2).
    ///
    /// # Errors
    ///
    /// [`PacketError::TooShort`], [`PacketError::BadCrc`] or
    /// [`PacketError::RouteMsbSet`].
    pub fn parse_delivered(wire: &[u8]) -> Result<Packet, PacketError> {
        let (final_route, ptype) = Packet::validate_delivered(wire)?;
        Ok(Packet {
            route: vec![final_route],
            ptype,
            payload: SharedBytes::from(&wire[5..wire.len() - 1]),
        })
    }

    /// Zero-copy variant of [`Packet::parse_delivered`]: the payload is a
    /// [`SharedBytes`] window into `wire`, so no payload bytes move.
    ///
    /// # Errors
    ///
    /// Same as [`Packet::parse_delivered`].
    pub fn parse_delivered_shared(wire: &SharedBytes) -> Result<Packet, PacketError> {
        let (final_route, ptype) = Packet::validate_delivered(wire)?;
        Ok(Packet {
            route: vec![final_route],
            ptype,
            payload: wire.slice(5..wire.len() - 1),
        })
    }

    /// Shared validation for the two delivered-parse entry points.
    fn validate_delivered(wire: &[u8]) -> Result<(u8, PacketType), PacketError> {
        if wire.len() < 1 + 4 + 1 {
            return Err(PacketError::TooShort);
        }
        if !crc8::verify(wire) {
            return Err(PacketError::BadCrc);
        }
        let final_route = wire[0];
        if final_route & ROUTE_SWITCH_FLAG != 0 {
            return Err(PacketError::RouteMsbSet);
        }
        let ptype = PacketType::from_slice(&wire[1..]).ok_or(PacketError::TooShort)?;
        Ok((final_route, ptype))
    }

    /// Parses a packet whose route is fully consumed (zero route bytes) —
    /// used when a switch over-consumed the route after MSB corruption.
    ///
    /// # Errors
    ///
    /// [`PacketError::TooShort`] or [`PacketError::BadCrc`].
    pub fn parse_routeless(wire: &[u8]) -> Result<Packet, PacketError> {
        if wire.len() < 4 + 1 {
            return Err(PacketError::TooShort);
        }
        if !crc8::verify(wire) {
            return Err(PacketError::BadCrc);
        }
        let ptype = PacketType::from_slice(wire).ok_or(PacketError::TooShort)?;
        let payload = SharedBytes::from(&wire[4..wire.len() - 1]);
        Ok(Packet {
            route: Vec::new(),
            ptype,
            payload,
        })
    }
}

/// Switch-side operations on raw wire images.
pub mod wire {
    use super::*;

    /// The first route byte of a wire image, if any.
    pub fn peek_route_byte(wire: &[u8]) -> Option<u8> {
        wire.first().copied()
    }

    /// Strips the leading route byte and recomputes the trailing CRC-8 —
    /// what a switch does when it forwards toward another switch.
    ///
    /// # Errors
    ///
    /// [`PacketError::TooShort`] if nothing remains after the strip.
    pub fn strip_route_byte(wire: &[u8]) -> Result<Vec<u8>, PacketError> {
        if wire.len() < 2 {
            return Err(PacketError::TooShort);
        }
        let mut out = wire[1..].to_vec();
        let last = out.len() - 1;
        out[last] = crc8::checksum(&out[..last]);
        Ok(out)
    }

    /// `true` if the whole image (including trailing CRC) verifies.
    pub fn crc_ok(wire: &[u8]) -> bool {
        crc8::verify(wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet::new(
            vec![route_to_switch(3), route_to_host(1)],
            PacketType::DATA,
            b"hello world".to_vec(),
        )
    }

    #[test]
    fn encode_layout_matches_figure_6() {
        let p = sample();
        let w = p.encode();
        assert_eq!(w[0], 0x83); // switch hop, port 3
        assert_eq!(w[1], 0x01); // host hop, port 1
        assert_eq!(&w[2..6], &[0, 0, 0, 4]); // DATA type
        assert_eq!(&w[6..17], b"hello world");
        assert!(crc8::verify(&w));
    }

    #[test]
    fn strip_then_deliver_roundtrip() {
        let p = sample();
        let w = p.encode();
        let after_switch = wire::strip_route_byte(&w).unwrap();
        assert!(crc8::verify(&after_switch));
        let delivered = Packet::parse_delivered(&after_switch).unwrap();
        assert_eq!(delivered.ptype, PacketType::DATA);
        assert_eq!(delivered.payload, b"hello world");
        assert_eq!(delivered.route, vec![0x01]);
    }

    #[test]
    fn corrupted_byte_fails_crc_at_delivery() {
        let p = sample();
        let w = p.encode();
        let mut after_switch = wire::strip_route_byte(&w).unwrap();
        after_switch[6] ^= 0x10; // corrupt payload without CRC fix
        assert_eq!(
            Packet::parse_delivered(&after_switch),
            Err(PacketError::BadCrc)
        );
    }

    #[test]
    fn msb_set_at_interface_is_an_error() {
        // §4.3.2: set the MSB on the final route byte; interface must treat
        // it as an error (after the CRC is made consistent, as the injector
        // does when recompute is enabled).
        let p = Packet::new(
            vec![route_to_switch(1) /* MSB set on final hop */],
            PacketType::DATA,
            b"x".to_vec(),
        );
        let w = p.encode();
        assert_eq!(Packet::parse_delivered(&w), Err(PacketError::RouteMsbSet));
    }

    #[test]
    fn parse_routeless() {
        let p = Packet::new(vec![], PacketType::MAPPING, b"scout".to_vec());
        let w = p.encode();
        let parsed = Packet::parse_routeless(&w).unwrap();
        assert_eq!(parsed.ptype, PacketType::MAPPING);
        assert_eq!(parsed.payload, b"scout");
        assert!(parsed.route.is_empty());
    }

    #[test]
    fn too_short_rejected() {
        assert_eq!(Packet::parse_delivered(&[1, 2, 3]), Err(PacketError::TooShort));
        assert_eq!(Packet::parse_routeless(&[1, 2]), Err(PacketError::TooShort));
        assert_eq!(wire::strip_route_byte(&[9]), Err(PacketError::TooShort));
    }

    #[test]
    fn ptype_display_and_known() {
        assert_eq!(PacketType::DATA.to_string(), "DATA");
        assert_eq!(PacketType::MAPPING.to_string(), "MAPPING");
        assert_eq!(PacketType(0x29).to_string(), "TYPE(0x0029)");
        assert!(PacketType::DATA.is_known());
        assert!(!PacketType(0x29).is_known());
    }

    #[test]
    fn route_byte_constructors() {
        assert_eq!(route_to_switch(0x3F), 0xBF);
        assert_eq!(route_to_host(0x00), 0x00);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn route_byte_range_checked() {
        let _ = route_to_switch(0x40);
    }

    #[test]
    fn mapping_type_corruption_is_unknown_type() {
        // §4.3.2: 0x0005 corrupted to 0x000x (x random, != 4, 5) is not a
        // known type, so the receiving MCP ignores it.
        for x in [0u32, 1, 2, 3, 6, 7, 0xE] {
            assert!(!PacketType(x).is_known() || x == 4);
        }
    }
}
