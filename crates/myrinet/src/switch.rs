//! The Myrinet crossbar switch.
//!
//! Packets are routed with relative addressing: "at each switch, the first
//! byte of the header designates the outgoing port. Once the packet is
//! routed, the byte used by the current switch is stripped off … after each
//! byte is removed, the trailing CRC-8 is recomputed" (§4.1). A route byte
//! with its MSB set targets another switch and is stripped here; the final
//! route byte (MSB clear) is left for the destination interface to consume.
//!
//! Each input port has a slack buffer (paper Figure 9) that generates
//! STOP/GO flow control toward its upstream sender. Output ports implement
//! wormhole path reclamation: a packet that arrives without its terminating
//! GAP leaves its output path *held* — "the path followed by the packet
//! will remain occupied since it is normally reclaimed with the terminating
//! GAP" — until a GAP arrives on the same input or the long-period timeout
//! (~4 million character periods, ≈50 ms at 80 MB/s) fires and the path is
//! reclaimed (§4.3.1).

use std::any::Any;
use std::collections::VecDeque;

use netfi_obs::{Recorder, Sink};
use netfi_phy::ControlSymbol;
use netfi_sim::{Component, Context, SimDuration};

use crate::egress::{split_timer_kind, timer_class, timer_kind, EgressPort, FlowState};
use crate::event::{Attach, Ev, PortPeer};
use crate::frame::{Frame, PacketFrame};
use crate::packet::{wire, ROUTE_SWITCH_FLAG};
use crate::sbuf::{Accept, SlackBuffer};

/// Configuration for a [`Switch`].
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Slack buffer capacity per input port, bytes.
    pub sbuf_capacity: usize,
    /// High watermark (STOP threshold).
    pub sbuf_high: usize,
    /// Low watermark (GO threshold).
    pub sbuf_low: usize,
    /// Long-period forward-progress timeout for held paths. The paper gives
    /// roughly four million character transmission periods, ~50 ms at
    /// 80 MB/s.
    pub long_timeout: SimDuration,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        // Headroom above the high watermark must absorb frames already in
        // flight when STOP reaches the sender (at frame granularity that is
        // a couple of maximum-size frames).
        SwitchConfig {
            sbuf_capacity: 8192,
            sbuf_high: 4096,
            sbuf_low: 1024,
            long_timeout: SimDuration::from_ms(50),
        }
    }
}

/// Aggregate switch counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets forwarded to an output port.
    pub forwarded: u64,
    /// Packets lost to input slack-buffer overflow.
    pub overflow_drops: u64,
    /// Packets lost to head/tail misinterpretation after a missing GAP.
    pub framing_drops: u64,
    /// Packets truncated by a spurious GAP landing inside them.
    pub truncation_drops: u64,
    /// Packets lost to a route byte naming an unwired port.
    pub misroute_drops: u64,
    /// Packets too short to route.
    pub malformed_drops: u64,
    /// Held paths reclaimed by the long-period timeout.
    pub long_timeout_releases: u64,
    /// Held paths reclaimed by a late GAP.
    pub gap_releases: u64,
    /// Frames discarded at a severed port (fault-grid link deactivation).
    pub severed_drops: u64,
}

#[derive(Debug, Clone)]
struct InputPort {
    sbuf: SlackBuffer,
    queue: VecDeque<PacketFrame>,
    awaiting_gap: bool,
    /// Output port currently held open by an unterminated packet from this
    /// input.
    holding: Option<u8>,
    /// Arrival time of the last standalone GAP character on this input.
    /// Standalone GAPs only arise from corrupted flow symbols or late
    /// terminator retransmissions; one arriving *during* a packet's
    /// serialization window truncates that packet (a GAP inside a packet
    /// ends it early).
    last_standalone_gap: Option<netfi_sim::SimTime>,
}

/// An N-port Myrinet crossbar switch.
#[derive(Debug, Clone)]
pub struct Switch {
    name: String,
    inputs: Vec<InputPort>,
    egress: Vec<EgressPort>,
    hold_gen: Vec<u64>,
    refresh_armed: Vec<bool>,
    /// Ports severed by a fault-grid [`sever_port`](Switch::sever_port):
    /// frames arriving on or routed out of a severed port are discarded,
    /// modelling a cut cable without rewiring the topology.
    severed: Vec<bool>,
    config: SwitchConfig,
    stats: SwitchStats,
    rr_cursor: usize,
    /// Observability recorder (scope `"switch"`). Disarmed by default, so
    /// plain simulations pay a `None` branch per drop and nothing else.
    obs: Recorder,
}

impl Switch {
    /// Creates a switch with `ports` ports (the paper's test bed uses an
    /// 8-port switch).
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero or exceeds 64 (the route-byte port space).
    pub fn new(name: impl Into<String>, ports: usize, config: SwitchConfig) -> Switch {
        assert!(ports > 0 && ports <= 64, "switch ports must be 1..=64");
        Switch {
            name: name.into(),
            inputs: (0..ports)
                .map(|_| InputPort {
                    sbuf: SlackBuffer::new(
                        config.sbuf_capacity,
                        config.sbuf_high,
                        config.sbuf_low,
                    ),
                    queue: VecDeque::new(),
                    awaiting_gap: false,
                    holding: None,
                    last_standalone_gap: None,
                })
                .collect(),
            egress: (0..ports).map(|p| EgressPort::new(p as u8)).collect(),
            hold_gen: vec![0; ports],
            refresh_armed: vec![false; ports],
            severed: vec![false; ports],
            config,
            stats: SwitchStats::default(),
            rr_cursor: 0,
            obs: Recorder::disarmed(),
        }
    }

    /// The switch's observability recorder.
    pub fn obs(&self) -> &Recorder {
        &self.obs
    }

    /// Mutable access to the recorder (arm it before an observed run).
    pub fn obs_mut(&mut self) -> &mut Recorder {
        &mut self.obs
    }

    /// The switch's name (for monitoring output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.egress.len()
    }

    /// Counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Slack-buffer overflow count summed over inputs.
    pub fn total_sbuf_overflows(&self) -> u64 {
        self.inputs.iter().map(|i| i.sbuf.overflows()).sum()
    }

    /// Flow-control symbols generated toward upstream senders.
    pub fn total_stops_generated(&self) -> u64 {
        self.inputs.iter().map(|i| i.sbuf.stops_sent()).sum()
    }

    /// Whether the given output port is currently held.
    pub fn output_held(&self, port: u8) -> bool {
        self.egress[port as usize].is_held()
    }

    /// Severs `port`: every frame arriving on it or routed out of it is
    /// silently discarded from now on, modelling a cut cable. Used by the
    /// fault grid to deactivate links on a forked engine without rewiring.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn sever_port(&mut self, port: u8) {
        self.severed[port as usize] = true;
    }

    /// Whether `port` has been severed.
    pub fn port_severed(&self, port: u8) -> bool {
        self.severed[port as usize]
    }

    /// Per-input `(peak occupancy, overflow count)` of the slack buffers.
    pub fn input_buffer_stats(&self) -> Vec<(usize, u64)> {
        self.inputs
            .iter()
            .map(|i| (i.sbuf.peak(), i.sbuf.overflows()))
            .collect()
    }

    fn on_control(&mut self, ctx: &mut Context<'_, Ev>, port: usize, code: u8) {
        match ControlSymbol::decode_tolerant(code) {
            Some(ControlSymbol::Stop) => self.egress[port].on_flow(ctx, ControlSymbol::Stop),
            Some(ControlSymbol::Go) => {
                self.egress[port].on_flow(ctx, ControlSymbol::Go);
                self.service(ctx);
            }
            Some(ControlSymbol::Gap) => {
                // A late GAP reclaims the path this input was holding and
                // resynchronizes framing. Its arrival time is remembered:
                // if a packet was mid-serialization on this input, the GAP
                // physically landed inside it (see on_packet).
                self.inputs[port].last_standalone_gap = Some(ctx.now());
                self.inputs[port].awaiting_gap = false;
                if let Some(out) = self.inputs[port].holding.take() {
                    self.hold_gen[out as usize] += 1; // cancel pending timeout
                    self.egress[out as usize].release(ctx);
                    self.stats.gap_releases += 1;
                    self.obs.instant(ctx.now(), "switch", "gap_release", u64::from(out));
                }
                self.service(ctx);
            }
            Some(ControlSymbol::Idle) | None => {}
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_, Ev>, port: usize, pf: PacketFrame) {
        let gap_ok = pf.gap_terminated();
        // A standalone GAP that arrived while this packet was still
        // serializing landed *inside* the packet: the characters before it
        // form a truncated packet (bad CRC) and the rest a garbage head.
        // Both are lost.
        if let Some(gap_at) = self.inputs[port].last_standalone_gap {
            let window = self
                .egress
                .get(port)
                .and_then(|e| e.peer())
                .map(|p| p.link.transfer_time(pf.wire_len()))
                .unwrap_or_default();
            if gap_at > ctx.now().saturating_sub_duration(window) {
                self.inputs[port].last_standalone_gap = None;
                self.stats.truncation_drops += 1;
                self.obs.instant(ctx.now(), "switch", "truncation_drop", port as u64);
                return;
            }
        }
        {
            let input = &mut self.inputs[port];
            if input.awaiting_gap {
                // The head of this packet is misinterpreted as the tail of
                // the unterminated predecessor (§4.3.1): it is lost. Its
                // own GAP, if present, resynchronizes the stream.
                self.stats.framing_drops += 1;
                self.obs.instant(ctx.now(), "switch", "framing_drop", port as u64);
                if gap_ok {
                    input.awaiting_gap = false;
                    if let Some(out) = input.holding.take() {
                        self.hold_gen[out as usize] += 1;
                        self.egress[out as usize].release(ctx);
                        self.stats.gap_releases += 1;
                        self.obs.instant(ctx.now(), "switch", "gap_release", u64::from(out));
                    }
                }
                return;
            }
            match input.sbuf.try_accept(pf.wire_len()) {
                Accept::Overflow => {
                    self.stats.overflow_drops += 1;
                    self.obs.instant(ctx.now(), "switch", "overflow_drop", port as u64);
                    return;
                }
                Accept::Stored => {}
            }
            if !gap_ok {
                input.awaiting_gap = true;
            }
            input.queue.push_back(pf);
            if let Some(sym) = input.sbuf.poll_flow() {
                match sym {
                    ControlSymbol::Stop => self.obs.begin(ctx.now(), "switch", "stopped", port as u64),
                    ControlSymbol::Go => self.obs.end(ctx.now(), "switch", "stopped", port as u64),
                    _ => {}
                }
                self.egress[port].enqueue_control(ctx, sym.encode());
            }
        }
        self.arm_stop_refresh(ctx, port);
        self.service(ctx);
    }

    /// While an input's slack buffer holds its sender stopped, the STOP
    /// must be repeated faster than the sender's 16-character timeout —
    /// the frame-level rendering of Myrinet's continuous control-symbol
    /// stream. One refresh timer per input port, re-armed until the buffer
    /// drains below its low watermark.
    fn arm_stop_refresh(&mut self, ctx: &mut Context<'_, Ev>, port: usize) {
        if self.refresh_armed[port] || !self.inputs[port].sbuf.upstream_stopped() {
            return;
        }
        self.refresh_armed[port] = true;
        let period = self.stop_refresh_period(port);
        ctx.send_self(
            period,
            Ev::Timer {
                kind: timer_kind(timer_class::STOP_REFRESH, port as u8),
                gen: 0,
            },
        );
    }

    /// Refresh period: 12 character periods, comfortably inside the
    /// sender's 16-character STOP timeout.
    fn stop_refresh_period(&self, port: usize) -> SimDuration {
        match self.egress[port].peer() {
            Some(peer) => peer.link.char_period() * 12,
            None => SimDuration::from_ns(150),
        }
    }

    /// Moves forwardable packets from input queues to output ports,
    /// round-robin over inputs. After each successful forward the scan
    /// restarts at the next input, so no input can monopolize an output.
    fn service(&mut self, ctx: &mut Context<'_, Ev>) {
        let nports = self.inputs.len();
        let mut progress = true;
        while progress {
            progress = false;
            let start = self.rr_cursor;
            for offset in 0..nports {
                let i = (start + offset) % nports;
                if self.try_forward(ctx, i) {
                    self.rr_cursor = (i + 1) % nports;
                    progress = true;
                    break;
                }
            }
        }
    }

    /// Attempts to forward the head packet of input `i`. Returns `true` on
    /// progress (including drops).
    fn try_forward(&mut self, ctx: &mut Context<'_, Ev>, i: usize) -> bool {
        let Some(head) = self.inputs[i].queue.front() else {
            return false;
        };
        let Some(route_byte) = wire::peek_route_byte(&head.bytes) else {
            let Some(pf) = self.inputs[i].queue.pop_front() else {
                return false;
            };
            self.drain_input(ctx, i, pf.wire_len());
            self.stats.malformed_drops += 1;
            self.obs.instant(ctx.now(), "switch", "malformed_drop", i as u64);
            return true;
        };
        let out = (route_byte & !ROUTE_SWITCH_FLAG) as usize;
        if out < self.severed.len() && self.severed[out] {
            // The outgoing cable is cut: the packet enters the dead link
            // and vanishes.
            let Some(pf) = self.inputs[i].queue.pop_front() else {
                return false;
            };
            self.drain_input(ctx, i, pf.wire_len());
            self.stats.severed_drops += 1;
            self.obs.instant(ctx.now(), "switch", "severed_drop", i as u64);
            return true;
        }
        if out >= self.egress.len() || !self.egress[out].is_attached() {
            // "directing packets to the wrong ports on the switch … resulted
            // in the expected packet losses" (§4.3.2).
            let Some(pf) = self.inputs[i].queue.pop_front() else {
                return false;
            };
            self.drain_input(ctx, i, pf.wire_len());
            self.stats.misroute_drops += 1;
            self.obs.instant(ctx.now(), "switch", "misroute_drop", i as u64);
            return true;
        }
        // Backpressure: forward only when the output is idle, in GO state
        // and not held, so congestion accumulates in the input slack buffer
        // and propagates STOP upstream.
        let eg = &self.egress[out];
        if eg.is_held() || eg.flow_state() != FlowState::Go || eg.queue_len() > 0 {
            return false;
        }
        let Some(pf) = self.inputs[i].queue.pop_front() else {
            return false;
        };
        let chars = pf.wire_len();
        // Strip switch-bound route bytes; leave the final (host) byte.
        let bytes = if route_byte & ROUTE_SWITCH_FLAG != 0 {
            match wire::strip_route_byte(&pf.bytes) {
                Ok(b) => b.into(),
                Err(_) => {
                    self.drain_input(ctx, i, chars);
                    self.stats.malformed_drops += 1;
                    self.obs.instant(ctx.now(), "switch", "malformed_drop", i as u64);
                    return true;
                }
            }
        } else {
            pf.bytes.clone()
        };
        let forwarded = PacketFrame {
            bytes,
            terminator: pf.terminator,
        };
        if !forwarded.gap_terminated() {
            // Hold the wormhole path until a GAP or the long timeout.
            self.egress[out].hold();
            self.inputs[i].holding = Some(out as u8);
            self.hold_gen[out] += 1;
            let gen = self.hold_gen[out];
            ctx.send_self(
                self.config.long_timeout,
                Ev::Timer {
                    kind: timer_kind(timer_class::HOLD_RELEASE, out as u8),
                    gen,
                },
            );
        }
        self.egress[out].enqueue(ctx, Frame::Packet(forwarded));
        self.drain_input(ctx, i, chars);
        self.stats.forwarded += 1;
        true
    }

    fn drain_input(&mut self, ctx: &mut Context<'_, Ev>, i: usize, chars: usize) {
        self.inputs[i].sbuf.drain(chars);
        if let Some(sym) = self.inputs[i].sbuf.poll_flow() {
            match sym {
                ControlSymbol::Stop => self.obs.begin(ctx.now(), "switch", "stopped", i as u64),
                ControlSymbol::Go => self.obs.end(ctx.now(), "switch", "stopped", i as u64),
                _ => {}
            }
            self.egress[i].enqueue_control(ctx, sym.encode());
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Ev>, kind: u32, gen: u64) {
        let (class, port) = split_timer_kind(kind);
        let port = port as usize;
        match class {
            timer_class::TX_DONE => {
                self.egress[port].on_tx_done(ctx);
                self.service(ctx);
            }
            timer_class::STOP_TIMEOUT => {
                self.egress[port].on_stop_timeout(ctx, gen);
                self.service(ctx);
            }
            timer_class::STOP_REFRESH => {
                self.refresh_armed[port] = false;
                if self.inputs[port].sbuf.upstream_stopped() {
                    self.egress[port]
                        .enqueue_control(ctx, ControlSymbol::Stop.encode());
                    self.arm_stop_refresh(ctx, port);
                }
            }
            timer_class::HOLD_RELEASE
                if gen == self.hold_gen[port] && self.egress[port].is_held() => {
                    // "The network will recover from this occurrence with a
                    // long-period timeout" (§4.3.1).
                    self.egress[port].release(ctx);
                    self.stats.long_timeout_releases += 1;
                    self.obs.instant(ctx.now(), "switch", "long_timeout_release", port as u64);
                    for input in &mut self.inputs {
                        if input.holding == Some(port as u8) {
                            input.holding = None;
                            input.awaiting_gap = false;
                        }
                    }
                    self.service(ctx);
                }
            _ => {}
        }
    }
}

impl Attach for Switch {
    fn attach_port(&mut self, port: u8, peer: PortPeer) {
        self.egress[port as usize].attach(peer);
    }
}

impl Component<Ev> for Switch {
    fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
        match ev {
            Ev::Rx { port, frame } => {
                // A severed input is a cut cable: whatever was in flight on
                // it never arrives.
                if self.severed[port as usize] {
                    if matches!(frame, Frame::Packet(_)) {
                        self.stats.severed_drops += 1;
                        self.obs.instant(ctx.now(), "switch", "severed_drop", u64::from(port));
                    }
                    return;
                }
                match frame {
                    Frame::Control(code) => self.on_control(ctx, port as usize, code),
                    Frame::Packet(pf) => self.on_packet(ctx, port as usize, pf),
                }
            }
            Ev::Timer { kind, gen } => self.on_timer(ctx, kind, gen),
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn fork(&self) -> Box<dyn Component<Ev>> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::connect;
    use crate::packet::{route_to_host, route_to_switch, Packet, PacketType};
    use netfi_phy::Link;
    use netfi_sim::{ComponentId, Engine, SimTime};

    /// A host-like endpoint that records everything it receives and can be
    /// told to send packets.
    #[derive(Clone)]
    struct Endpoint {
        egress: EgressPort,
        rx_packets: Vec<PacketFrame>,
        rx_controls: Vec<u8>,
    }

    impl Endpoint {
        fn new() -> Endpoint {
            Endpoint {
                egress: EgressPort::new(0),
                rx_packets: Vec::new(),
                rx_controls: Vec::new(),
            }
        }
    }

    impl Attach for Endpoint {
        fn attach_port(&mut self, port: u8, peer: PortPeer) {
            assert_eq!(port, 0);
            self.egress.attach(peer);
        }
    }

    impl Component<Ev> for Endpoint {
        fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            match ev {
                Ev::Rx { frame, .. } => match frame {
                    Frame::Packet(pf) => self.rx_packets.push(pf),
                    Frame::Control(c) => {
                        if let Some(sym) = ControlSymbol::decode_tolerant(c) {
                            self.egress.on_flow(ctx, sym);
                        }
                        self.rx_controls.push(c);
                    }
                },
                Ev::Timer { kind, gen } => {
                    let (class, _) = split_timer_kind(kind);
                    match class {
                        timer_class::TX_DONE => self.egress.on_tx_done(ctx),
                        timer_class::STOP_TIMEOUT => self.egress.on_stop_timeout(ctx, gen),
                        _ => {}
                    }
                }
                Ev::App(frame) => {
                    if let Ok(f) = frame.downcast::<Frame>() {
                        self.egress.enqueue(ctx, *f);
                    }
                }
                _ => {}
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn fork(&self) -> Box<dyn Component<Ev>> {
            Box::new(self.clone())
        }
    }

    /// Engine with hosts a,b,c on switch ports 0,1,2.
    fn three_host_net() -> (Engine<Ev>, ComponentId, [ComponentId; 3]) {
        let mut engine: Engine<Ev> = Engine::new();
        let sw = engine.add_component(Box::new(Switch::new(
            "sw0",
            8,
            SwitchConfig::default(),
        )));
        let link = Link::myrinet_640(1.0);
        let hosts = [(); 3].map(|_| engine.add_component(Box::new(Endpoint::new())));
        for (i, &h) in hosts.iter().enumerate() {
            connect::<Endpoint, Switch, _>(&mut engine, (h, 0), (sw, i as u8), &link);
        }
        (engine, sw, hosts)
    }

    fn send_from(engine: &mut Engine<Ev>, host: ComponentId, frame: Frame) {
        engine.schedule(engine.now(), host, Ev::App(Box::new(frame)));
    }

    fn data_packet(dest_port: u8, payload: &[u8]) -> Frame {
        let pkt = Packet::new(
            vec![route_to_host(dest_port)],
            PacketType::DATA,
            payload.to_vec(),
        );
        Frame::packet(pkt.encode())
    }

    #[test]
    fn forwards_packet_between_hosts() {
        let (mut engine, sw, hosts) = three_host_net();
        send_from(&mut engine, hosts[0], data_packet(1, b"hello"));
        engine.run();
        let h1 = engine.component_as::<Endpoint>(hosts[1]).unwrap();
        assert_eq!(h1.rx_packets.len(), 1);
        let delivered = Packet::parse_delivered(&h1.rx_packets[0].bytes).unwrap();
        assert_eq!(delivered.payload, b"hello");
        let s = engine.component_as::<Switch>(sw).unwrap();
        assert_eq!(s.stats().forwarded, 1);
    }

    #[test]
    fn final_route_byte_is_not_stripped() {
        let (mut engine, _, hosts) = three_host_net();
        send_from(&mut engine, hosts[0], data_packet(2, b"x"));
        engine.run();
        let h2 = engine.component_as::<Endpoint>(hosts[2]).unwrap();
        // Host sees [route, type(4), payload, crc].
        assert_eq!(h2.rx_packets[0].bytes[0], route_to_host(2));
        assert!(wire::crc_ok(&h2.rx_packets[0].bytes));
    }

    #[test]
    fn switch_bound_byte_stripped_and_crc_recomputed() {
        // Two switches in a row.
        let mut engine: Engine<Ev> = Engine::new();
        let link = Link::myrinet_640(1.0);
        let sw0 = engine.add_component(Box::new(Switch::new("sw0", 4, SwitchConfig::default())));
        let sw1 = engine.add_component(Box::new(Switch::new("sw1", 4, SwitchConfig::default())));
        let src = engine.add_component(Box::new(Endpoint::new()));
        let dst = engine.add_component(Box::new(Endpoint::new()));
        connect::<Endpoint, Switch, _>(&mut engine, (src, 0), (sw0, 0), &link);
        connect::<Switch, Switch, _>(&mut engine, (sw0, 3), (sw1, 3), &link);
        connect::<Endpoint, Switch, _>(&mut engine, (dst, 0), (sw1, 1), &link);
        let pkt = Packet::new(
            vec![route_to_switch(3), route_to_host(1)],
            PacketType::DATA,
            b"across".to_vec(),
        );
        send_from(&mut engine, src, Frame::packet(pkt.encode()));
        engine.run();
        let d = engine.component_as::<Endpoint>(dst).unwrap();
        assert_eq!(d.rx_packets.len(), 1);
        let delivered = Packet::parse_delivered(&d.rx_packets[0].bytes).unwrap();
        assert_eq!(delivered.payload, b"across");
        assert_eq!(delivered.route, vec![route_to_host(1)]);
    }

    #[test]
    fn misrouted_packet_dropped_without_propagation() {
        let (mut engine, sw, hosts) = three_host_net();
        // Port 7 is unwired.
        send_from(&mut engine, hosts[0], data_packet(7, b"lost"));
        engine.run();
        let s = engine.component_as::<Switch>(sw).unwrap();
        assert_eq!(s.stats().misroute_drops, 1);
        assert_eq!(s.stats().forwarded, 0);
        for h in hosts {
            assert!(engine.component_as::<Endpoint>(h).unwrap().rx_packets.is_empty());
        }
    }

    #[test]
    fn unterminated_packet_holds_path_until_long_timeout() {
        let (mut engine, sw, hosts) = three_host_net();
        let mut f = data_packet(1, b"no gap");
        if let Frame::Packet(pf) = &mut f {
            pf.terminator = None;
        }
        send_from(&mut engine, hosts[0], f);
        engine.run_until(SimTime::from_ms(1));
        // Packet delivered but path held.
        assert!(engine.component_as::<Switch>(sw).unwrap().output_held(1));
        // A second packet to the same output is stuck.
        send_from(&mut engine, hosts[2], data_packet(1, b"queued"));
        engine.run_until(SimTime::from_ms(10));
        let h1 = engine.component_as::<Endpoint>(hosts[1]).unwrap();
        assert_eq!(h1.rx_packets.len(), 1, "second packet must be blocked");
        // After the 50 ms long timeout the path is reclaimed.
        engine.run_until(SimTime::from_ms(60));
        let s = engine.component_as::<Switch>(sw).unwrap();
        assert!(!s.output_held(1));
        assert_eq!(s.stats().long_timeout_releases, 1);
        let h1 = engine.component_as::<Endpoint>(hosts[1]).unwrap();
        assert_eq!(h1.rx_packets.len(), 2, "blocked packet flows after reclaim");
    }

    #[test]
    fn late_gap_releases_held_path() {
        let (mut engine, sw, hosts) = three_host_net();
        let mut f = data_packet(1, b"no gap");
        if let Frame::Packet(pf) = &mut f {
            pf.terminator = None;
        }
        send_from(&mut engine, hosts[0], f);
        engine.run_until(SimTime::from_ms(1));
        assert!(engine.component_as::<Switch>(sw).unwrap().output_held(1));
        // The sender eventually transmits the missing GAP.
        send_from(&mut engine, hosts[0], Frame::control(ControlSymbol::Gap));
        engine.run_until(SimTime::from_ms(2));
        let s = engine.component_as::<Switch>(sw).unwrap();
        assert!(!s.output_held(1));
        assert_eq!(s.stats().gap_releases, 1);
        assert_eq!(s.stats().long_timeout_releases, 0);
    }

    #[test]
    fn head_after_missing_gap_is_lost() {
        let (mut engine, sw, hosts) = three_host_net();
        let mut f = data_packet(1, b"no gap");
        if let Frame::Packet(pf) = &mut f {
            pf.terminator = None;
        }
        send_from(&mut engine, hosts[0], f);
        engine.run_until(SimTime::from_us(100));
        // Next packet from the same input: its head is misread as the tail
        // of the previous packet.
        send_from(&mut engine, hosts[0], data_packet(2, b"casualty"));
        engine.run_until(SimTime::from_ms(1));
        let s = engine.component_as::<Switch>(sw).unwrap();
        assert_eq!(s.stats().framing_drops, 1);
        let h2 = engine.component_as::<Endpoint>(hosts[2]).unwrap();
        assert!(h2.rx_packets.is_empty());
        // But its GAP resynchronized the stream: a third packet flows
        // (to an unheld output).
        send_from(&mut engine, hosts[0], data_packet(2, b"survivor"));
        engine.run_until(SimTime::from_ms(2));
        let h2 = engine.component_as::<Endpoint>(hosts[2]).unwrap();
        assert_eq!(h2.rx_packets.len(), 1);
    }

    #[test]
    fn spurious_gap_inside_serialization_window_truncates() {
        let (mut engine, sw, hosts) = three_host_net();
        // A 200-byte packet serializes for ~2.6 µs at 640 Mb/s. A GAP
        // landing mid-window (as an interleaved corrupted flow symbol
        // would) truncates it.
        send_from(&mut engine, hosts[0], data_packet(1, &[0x55; 200]));
        // The control frame interleaves past the packet (sent immediately)
        // so it arrives first — i.e. inside the packet's window.
        send_from(&mut engine, hosts[0], Frame::control(ControlSymbol::Gap));
        engine.run();
        let s = engine.component_as::<Switch>(sw).unwrap();
        assert_eq!(s.stats().truncation_drops, 1);
        let h1 = engine.component_as::<Endpoint>(hosts[1]).unwrap();
        assert!(h1.rx_packets.is_empty(), "truncated packet must be lost");
        // A GAP long before the next packet is harmless.
        send_from(&mut engine, hosts[0], Frame::control(ControlSymbol::Gap));
        engine.run_for(netfi_sim::SimDuration::from_ms(1));
        send_from(&mut engine, hosts[0], data_packet(1, &[0x66; 32]));
        engine.run();
        let s = engine.component_as::<Switch>(sw).unwrap();
        assert_eq!(s.stats().truncation_drops, 1);
        let h1 = engine.component_as::<Endpoint>(hosts[1]).unwrap();
        assert_eq!(h1.rx_packets.len(), 1);
    }

    #[test]
    fn contention_generates_stop_and_go() {
        let (mut engine, sw, hosts) = three_host_net();
        // Hosts 0 and 2 flood host 1 with large packets; the output port
        // saturates and input buffers fill, generating STOPs upstream.
        for round in 0..40 {
            let payload = vec![round as u8; 900];
            send_from(&mut engine, hosts[0], data_packet(1, &payload));
            send_from(&mut engine, hosts[2], data_packet(1, &payload));
        }
        engine.run_until(SimTime::from_ms(5));
        let s = engine.component_as::<Switch>(sw).unwrap();
        assert!(
            s.total_stops_generated() > 0,
            "contention must generate STOP symbols"
        );
        engine.run_until(SimTime::from_ms(100));
        let h1 = engine.component_as::<Endpoint>(hosts[1]).unwrap();
        // With backpressure (and senders honouring STOP) nothing is lost.
        assert_eq!(h1.rx_packets.len(), 80);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn rejects_too_many_ports() {
        let _ = Switch::new("bad", 65, SwitchConfig::default());
    }

    #[test]
    fn severed_port_drops_both_directions() {
        let (mut engine, sw, hosts) = three_host_net();
        engine.component_as_mut::<Switch>(sw).unwrap().sever_port(1);
        // Inbound on the severed port: lost.
        send_from(&mut engine, hosts[1], data_packet(2, b"from cut"));
        // Outbound through the severed port: lost.
        send_from(&mut engine, hosts[0], data_packet(1, b"to cut"));
        // Control traffic between healthy ports still flows.
        send_from(&mut engine, hosts[0], data_packet(2, b"healthy"));
        engine.run();
        let s = engine.component_as::<Switch>(sw).unwrap();
        assert!(s.port_severed(1));
        assert_eq!(s.stats().severed_drops, 2);
        assert_eq!(s.stats().forwarded, 1);
        let h1 = engine.component_as::<Endpoint>(hosts[1]).unwrap();
        assert!(h1.rx_packets.is_empty());
        let h2 = engine.component_as::<Endpoint>(hosts[2]).unwrap();
        assert_eq!(h2.rx_packets.len(), 1);
    }
}
