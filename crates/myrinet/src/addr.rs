//! Addressing.
//!
//! Two address spaces coexist in a Myrinet LAN (paper §4.1 / §4.3.3):
//!
//! - every MCP (Myrinet Control Program, the NIC firmware) carries a unique
//!   **64-bit address** used for mapper election — "the MCP with the highest
//!   address is responsible for mapping the network";
//! - hosts are identified by **48-bit Ethernet-style physical addresses**
//!   "corresponding to individual Myrinet ports", which data packets carry
//!   and which the §4.3.3 corruption campaign targets.

use std::fmt;
use std::str::FromStr;

/// The 64-bit MCP address used for mapper election.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeAddress(pub u64);

impl fmt::Display for NodeAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl From<u64> for NodeAddress {
    fn from(v: u64) -> Self {
        NodeAddress(v)
    }
}

/// A 48-bit Ethernet-style physical address for a Myrinet port.
///
/// # Example
///
/// ```
/// use netfi_myrinet::addr::EthAddr;
/// let a: EthAddr = "00:60:dd:00:00:01".parse()?;
/// assert_eq!(a.to_string(), "00:60:dd:00:00:01");
/// assert_eq!(a.octets()[5], 0x01);
/// # Ok::<(), netfi_myrinet::addr::ParseEthAddrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EthAddr([u8; 6]);

impl EthAddr {
    /// The all-ones broadcast address.
    pub const BROADCAST: EthAddr = EthAddr([0xFF; 6]);

    /// Builds an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> EthAddr {
        EthAddr(octets)
    }

    /// A convenience constructor in the Myricom OUI (`00:60:dd`) with the
    /// host index in the low 24 bits — handy for test fixtures.
    pub const fn myricom(host: u32) -> EthAddr {
        EthAddr([
            0x00,
            0x60,
            0xDD,
            ((host >> 16) & 0xFF) as u8,
            ((host >> 8) & 0xFF) as u8,
            (host & 0xFF) as u8,
        ])
    }

    /// The six octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// Reads an address from the first six bytes of `buf`.
    ///
    /// Returns `None` if `buf` is too short.
    pub fn from_slice(buf: &[u8]) -> Option<EthAddr> {
        let bytes: [u8; 6] = buf.get(..6)?.try_into().ok()?;
        Some(EthAddr(bytes))
    }

    /// `true` for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }
}

impl fmt::Display for EthAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// Error parsing an [`EthAddr`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEthAddrError;

impl fmt::Display for ParseEthAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid ethernet address syntax")
    }
}

impl std::error::Error for ParseEthAddrError {}

impl FromStr for EthAddr {
    type Err = ParseEthAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for octet in octets.iter_mut() {
            let part = parts.next().ok_or(ParseEthAddrError)?;
            if part.len() != 2 {
                return Err(ParseEthAddrError);
            }
            *octet = u8::from_str_radix(part, 16).map_err(|_| ParseEthAddrError)?;
        }
        if parts.next().is_some() {
            return Err(ParseEthAddrError);
        }
        Ok(EthAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_address_orders_for_election() {
        // "the MCP with the highest address is responsible for mapping"
        let addrs = [NodeAddress(3), NodeAddress(17), NodeAddress(5)];
        assert_eq!(addrs.iter().max(), Some(&NodeAddress(17)));
    }

    #[test]
    fn eth_addr_roundtrip_text() {
        let a = EthAddr::new([0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42]);
        let parsed: EthAddr = a.to_string().parse().unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn eth_addr_parse_errors() {
        assert!("".parse::<EthAddr>().is_err());
        assert!("00:11:22:33:44".parse::<EthAddr>().is_err());
        assert!("00:11:22:33:44:55:66".parse::<EthAddr>().is_err());
        assert!("00:11:22:33:44:zz".parse::<EthAddr>().is_err());
        assert!("0:11:22:33:44:55".parse::<EthAddr>().is_err());
    }

    #[test]
    fn myricom_constructor() {
        let a = EthAddr::myricom(0x0001_0203);
        assert_eq!(a.to_string(), "00:60:dd:01:02:03");
    }

    #[test]
    fn from_slice_behaviour() {
        assert_eq!(EthAddr::from_slice(&[1, 2, 3]), None);
        let a = EthAddr::from_slice(&[1, 2, 3, 4, 5, 6, 7]).unwrap();
        assert_eq!(a.octets(), [1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn broadcast() {
        assert!(EthAddr::BROADCAST.is_broadcast());
        assert!(!EthAddr::myricom(1).is_broadcast());
    }
}
