//! Mapping-protocol messages (the payloads of `0x0005` packets).
//!
//! "Network mapping is done by first sending a scout message to all other
//! ports of the switch which the mapping node connects to … done
//! recursively until the entire network is mapped" (§4.1). Three message
//! kinds flow as MAPPING packets:
//!
//! - [`MapMsg::Scout`] — mapper → candidate port: "who is there?". Carries
//!   the reply route so the probed node can answer without routing state.
//! - [`MapMsg::Reply`] — probed node → mapper: its 64-bit MCP address and
//!   48-bit physical address.
//! - [`MapMsg::Routes`] — mapper → every mapped node: that node's routing
//!   table for this epoch.
//!
//! All messages ride in ordinary Myrinet packets, so the fault injector can
//! corrupt them exactly as the paper's campaign does (§4.3.2): a mapping
//! packet whose type field is corrupted is simply not recognized by the
//! receiving MCP, and the node drops out of the map until the next round.

use std::error::Error;
use std::fmt;

use crate::addr::{EthAddr, NodeAddress};
use crate::mapper::Attachment;

/// A mapping-protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapMsg {
    /// Mapper probing one attachment.
    Scout {
        /// Mapping round.
        epoch: u32,
        /// The mapper's MCP address (for election deference).
        mapper: NodeAddress,
        /// The attachment being probed (echoed in the reply).
        target: Attachment,
        /// Source route the probed node should use to answer.
        reply_route: Vec<u8>,
    },
    /// A probed node answering a scout.
    Reply {
        /// Mapping round (echoed).
        epoch: u32,
        /// The probed attachment (echoed).
        target: Attachment,
        /// The responding node's MCP address.
        addr: NodeAddress,
        /// The responding node's physical address.
        eth: EthAddr,
    },
    /// The mapper distributing a node's routing table.
    Routes {
        /// Mapping round.
        epoch: u32,
        /// The mapper's MCP address.
        mapper: NodeAddress,
        /// `(destination, source route)` entries for the receiving node.
        entries: Vec<(EthAddr, Vec<u8>)>,
        /// Physical addresses of every node present in this epoch's map
        /// (for monitoring).
        present: Vec<EthAddr>,
    },
}

/// Error decoding a [`MapMsg`] from packet payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapMsgError;

impl fmt::Display for MapMsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("malformed mapping message")
    }
}

impl Error for MapMsgError {}

const TAG_SCOUT: u8 = 1;
const TAG_REPLY: u8 = 2;
const TAG_ROUTES: u8 = 3;

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], MapMsgError> {
    if buf.len() < n {
        return Err(MapMsgError);
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

fn take_u8(buf: &mut &[u8]) -> Result<u8, MapMsgError> {
    Ok(take(buf, 1)?[0])
}

fn take_u16(buf: &mut &[u8]) -> Result<u16, MapMsgError> {
    let b = take(buf, 2)?;
    Ok(u16::from_be_bytes([b[0], b[1]]))
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, MapMsgError> {
    let b = take(buf, 4)?;
    Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, MapMsgError> {
    let b = take(buf, 8)?;
    let mut arr = [0u8; 8];
    arr.copy_from_slice(b);
    Ok(u64::from_be_bytes(arr))
}

fn take_eth(buf: &mut &[u8]) -> Result<EthAddr, MapMsgError> {
    EthAddr::from_slice(take(buf, 6)?).ok_or(MapMsgError)
}

fn take_route(buf: &mut &[u8]) -> Result<Vec<u8>, MapMsgError> {
    let len = take_u8(buf)? as usize;
    Ok(take(buf, len)?.to_vec())
}

impl MapMsg {
    /// Serializes to packet payload bytes.
    ///
    /// # Panics
    ///
    /// Panics if a route exceeds 255 hops or a map exceeds 65535 entries —
    /// both impossible on a Myrinet fabric (the wire format caps them).
    #[allow(clippy::expect_used)]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            MapMsg::Scout {
                epoch,
                mapper,
                target,
                reply_route,
            } => {
                out.push(TAG_SCOUT);
                out.extend_from_slice(&epoch.to_be_bytes());
                out.extend_from_slice(&mapper.0.to_be_bytes());
                out.push(target.0);
                out.push(target.1);
                // lint: allow(expect) the wire format caps routes at 255 hops
                out.push(u8::try_from(reply_route.len()).expect("route too long"));
                out.extend_from_slice(reply_route);
            }
            MapMsg::Reply {
                epoch,
                target,
                addr,
                eth,
            } => {
                out.push(TAG_REPLY);
                out.extend_from_slice(&epoch.to_be_bytes());
                out.push(target.0);
                out.push(target.1);
                out.extend_from_slice(&addr.0.to_be_bytes());
                out.extend_from_slice(&eth.octets());
            }
            MapMsg::Routes {
                epoch,
                mapper,
                entries,
                present,
            } => {
                out.push(TAG_ROUTES);
                out.extend_from_slice(&epoch.to_be_bytes());
                out.extend_from_slice(&mapper.0.to_be_bytes());
                out.extend_from_slice(
                    &u16::try_from(entries.len())
                        // lint: allow(expect) the wire format caps maps at 65535 entries
                        .expect("too many entries")
                        .to_be_bytes(),
                );
                for (eth, route) in entries {
                    out.extend_from_slice(&eth.octets());
                    // lint: allow(expect) the wire format caps routes at 255 hops
                    out.push(u8::try_from(route.len()).expect("route too long"));
                    out.extend_from_slice(route);
                }
                out.extend_from_slice(
                    &u16::try_from(present.len())
                        // lint: allow(expect) the wire format caps maps at 65535 entries
                        .expect("too many present")
                        .to_be_bytes(),
                );
                for eth in present {
                    out.extend_from_slice(&eth.octets());
                }
            }
        }
        out
    }

    /// Parses packet payload bytes.
    ///
    /// # Errors
    ///
    /// [`MapMsgError`] on any truncation or unknown tag — a corrupted
    /// mapping payload is simply ignored by the receiving MCP.
    pub fn decode(mut buf: &[u8]) -> Result<MapMsg, MapMsgError> {
        let tag = take_u8(&mut buf)?;
        let msg = match tag {
            TAG_SCOUT => MapMsg::Scout {
                epoch: take_u32(&mut buf)?,
                mapper: NodeAddress(take_u64(&mut buf)?),
                target: (take_u8(&mut buf)?, take_u8(&mut buf)?),
                reply_route: take_route(&mut buf)?,
            },
            TAG_REPLY => MapMsg::Reply {
                epoch: take_u32(&mut buf)?,
                target: (take_u8(&mut buf)?, take_u8(&mut buf)?),
                addr: NodeAddress(take_u64(&mut buf)?),
                eth: take_eth(&mut buf)?,
            },
            TAG_ROUTES => {
                let epoch = take_u32(&mut buf)?;
                let mapper = NodeAddress(take_u64(&mut buf)?);
                let n = take_u16(&mut buf)? as usize;
                let mut entries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let eth = take_eth(&mut buf)?;
                    let route = take_route(&mut buf)?;
                    entries.push((eth, route));
                }
                let np = take_u16(&mut buf)? as usize;
                let mut present = Vec::with_capacity(np.min(1024));
                for _ in 0..np {
                    present.push(take_eth(&mut buf)?);
                }
                MapMsg::Routes {
                    epoch,
                    mapper,
                    entries,
                    present,
                }
            }
            _ => return Err(MapMsgError),
        };
        if !buf.is_empty() {
            return Err(MapMsgError);
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: MapMsg) {
        let bytes = msg.encode();
        assert_eq!(MapMsg::decode(&bytes), Ok(msg));
    }

    #[test]
    fn scout_roundtrip() {
        roundtrip(MapMsg::Scout {
            epoch: 42,
            mapper: NodeAddress(0xDEAD_BEEF),
            target: (0, 5),
            reply_route: vec![0x83, 0x01],
        });
    }

    #[test]
    fn scout_empty_route_roundtrip() {
        roundtrip(MapMsg::Scout {
            epoch: 0,
            mapper: NodeAddress(0),
            target: (1, 0),
            reply_route: vec![],
        });
    }

    #[test]
    fn reply_roundtrip() {
        roundtrip(MapMsg::Reply {
            epoch: 7,
            target: (0, 2),
            addr: NodeAddress(u64::MAX),
            eth: EthAddr::myricom(3),
        });
    }

    #[test]
    fn routes_roundtrip() {
        roundtrip(MapMsg::Routes {
            epoch: 9,
            mapper: NodeAddress(100),
            entries: vec![
                (EthAddr::myricom(1), vec![0x02]),
                (EthAddr::myricom(2), vec![0x83, 0x01]),
            ],
            present: vec![EthAddr::myricom(1), EthAddr::myricom(2), EthAddr::myricom(3)],
        });
    }

    #[test]
    fn routes_empty_roundtrip() {
        roundtrip(MapMsg::Routes {
            epoch: 1,
            mapper: NodeAddress(5),
            entries: vec![],
            present: vec![],
        });
    }

    #[test]
    fn truncated_rejected() {
        let msg = MapMsg::Reply {
            epoch: 7,
            target: (0, 2),
            addr: NodeAddress(1),
            eth: EthAddr::myricom(3),
        };
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            assert_eq!(MapMsg::decode(&bytes[..cut]), Err(MapMsgError), "cut {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = MapMsg::Scout {
            epoch: 1,
            mapper: NodeAddress(2),
            target: (0, 0),
            reply_route: vec![],
        }
        .encode();
        bytes.push(0xFF);
        assert_eq!(MapMsg::decode(&bytes), Err(MapMsgError));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(MapMsg::decode(&[9, 0, 0, 0, 0]), Err(MapMsgError));
        assert_eq!(MapMsg::decode(&[]), Err(MapMsgError));
    }
}
