//! The sending side of a link attachment.
//!
//! Every component that transmits on a Myrinet link — host interface,
//! switch output port, the fault injector's retransmit side — owns an
//! [`EgressPort`] per attachment. It serializes frames at link rate,
//! honours STOP/GO flow control, and implements the paper's short-period
//! timeout: "the timeout counter is set to 16 character periods … if the
//! counter times out, the sender transitions itself to the GO stage"
//! (§4.3.1), which is how Myrinet recovers from corrupted GO and STOP
//! symbols.

use std::collections::VecDeque;

use netfi_phy::ControlSymbol;
use netfi_sim::{Context, SimDuration, SimTime};

use crate::event::{Ev, PortPeer};
use crate::frame::Frame;

/// Timer classes used by components in this crate (low 16 bits of the
/// timer `kind`; the owning port number goes in the high 16 bits).
pub mod timer_class {
    /// An egress transmission completed; pump the queue.
    pub const TX_DONE: u32 = 1;
    /// The STOP short-period timeout expired.
    pub const STOP_TIMEOUT: u32 = 2;
    /// A held (blocked) path's long-period timeout expired.
    pub const HOLD_RELEASE: u32 = 3;
    /// Periodic mapping round (host interfaces).
    pub const MAPPING_ROUND: u32 = 4;
    /// End of a scout-collection window (mapper).
    pub const SCOUT_WINDOW: u32 = 5;
    /// Mapper-election takeover timer.
    pub const TAKEOVER: u32 = 6;
    /// Periodic STOP refresh while a slack buffer holds its sender stopped.
    pub const STOP_REFRESH: u32 = 7;
    /// A host interface's receive buffer finished draining one packet.
    pub const RX_DRAIN: u32 = 8;
    /// STOP refresh for a host interface's receive slack buffer.
    pub const RX_STOP_REFRESH: u32 = 9;
    /// First application-defined class; higher layers start here.
    pub const APP_BASE: u32 = 0x100;
}

/// Packs a timer class and port number into a timer `kind`.
pub fn timer_kind(class: u32, port: u8) -> u32 {
    ((port as u32) << 16) | (class & 0xFFFF)
}

/// Unpacks a timer `kind` into `(class, port)`.
pub fn split_timer_kind(kind: u32) -> (u32, u8) {
    (kind & 0xFFFF, (kind >> 16) as u8)
}

/// Number of character periods in the short-period (STOP) timeout.
pub const STOP_TIMEOUT_CHARS: u64 = 16;

/// Flow-control state of a sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowState {
    /// Transmitting normally.
    Go,
    /// Paused by a STOP symbol; a timeout is pending.
    Stopped,
}

/// Counters exposed by an egress port.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EgressStats {
    /// Frames transmitted.
    pub sent_frames: u64,
    /// Characters transmitted (packet bytes + terminators + control).
    pub sent_chars: u64,
    /// STOP symbols acted upon.
    pub stops_received: u64,
    /// GO symbols acted upon.
    pub gos_received: u64,
    /// Recoveries via the 16-character timeout ("acting as if it received
    /// a GO").
    pub timeout_recoveries: u64,
    /// Frames dropped because the port was never wired.
    pub unwired_drops: u64,
}

/// The sending half of one link attachment.
#[derive(Debug, Clone)]
pub struct EgressPort {
    port: u8,
    peer: Option<PortPeer>,
    queue: VecDeque<Frame>,
    queued_chars: usize,
    flow: FlowState,
    held: bool,
    busy_until: SimTime,
    flow_gen: u64,
    stats: EgressStats,
}

impl EgressPort {
    /// Creates an unwired egress port with the given local port number.
    pub fn new(port: u8) -> EgressPort {
        EgressPort {
            port,
            peer: None,
            queue: VecDeque::new(),
            queued_chars: 0,
            flow: FlowState::Go,
            held: false,
            busy_until: SimTime::ZERO,
            flow_gen: 0,
            stats: EgressStats::default(),
        }
    }

    /// Wires the port to its peer.
    pub fn attach(&mut self, peer: PortPeer) {
        self.peer = Some(peer);
    }

    /// `true` once wired.
    pub fn is_attached(&self) -> bool {
        self.peer.is_some()
    }

    /// The peer, if wired.
    pub fn peer(&self) -> Option<&PortPeer> {
        self.peer.as_ref()
    }

    /// Local port number.
    pub fn port(&self) -> u8 {
        self.port
    }

    /// Current flow-control state.
    pub fn flow_state(&self) -> FlowState {
        self.flow
    }

    /// Counters.
    pub fn stats(&self) -> EgressStats {
        self.stats
    }

    /// Frames waiting (not yet on the wire).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Characters waiting in the queue.
    pub fn queued_chars(&self) -> usize {
        self.queued_chars
    }

    /// `true` while the wormhole path through this port is held.
    pub fn is_held(&self) -> bool {
        self.held
    }

    /// Queues a frame for transmission.
    pub fn enqueue(&mut self, ctx: &mut Context<'_, Ev>, frame: Frame) {
        self.queued_chars += frame.wire_len();
        self.queue.push_back(frame);
        self.pump(ctx);
    }

    /// Queues a control symbol at the *front* of the queue. Flow-control
    /// symbols jump ahead of data and are transmitted even while this
    /// sender is itself stopped (control symbols interleave with data on
    /// the real link).
    pub fn enqueue_control(&mut self, ctx: &mut Context<'_, Ev>, code: u8) {
        self.queued_chars += 1;
        self.queue.push_front(Frame::Control(code));
        self.pump(ctx);
    }

    /// Holds the port: the wormhole path is occupied by an unterminated
    /// packet, so the owner must not admit further packets to it (§4.3.1
    /// source blocking). Advisory — frames already queued still drain.
    pub fn hold(&mut self) {
        self.held = true;
    }

    /// Releases a held port (a GAP arrived or the long-period timeout
    /// fired) and resumes pumping.
    pub fn release(&mut self, ctx: &mut Context<'_, Ev>) {
        if self.held {
            self.held = false;
            self.pump(ctx);
        }
    }

    /// Handles a STOP or GO symbol received from the peer.
    pub fn on_flow(&mut self, ctx: &mut Context<'_, Ev>, sym: ControlSymbol) {
        match sym {
            ControlSymbol::Stop => {
                self.stats.stops_received += 1;
                self.flow = FlowState::Stopped;
                self.flow_gen += 1;
                let timeout = self.stop_timeout();
                ctx.send_self(
                    timeout,
                    Ev::Timer {
                        kind: timer_kind(timer_class::STOP_TIMEOUT, self.port),
                        gen: self.flow_gen,
                    },
                );
            }
            ControlSymbol::Go => {
                self.stats.gos_received += 1;
                self.flow = FlowState::Go;
                self.flow_gen += 1; // cancels any pending timeout
                self.pump(ctx);
            }
            _ => {}
        }
    }

    /// Handles the STOP short-period timeout. Stale generations (a GO or a
    /// refreshed STOP arrived since) are ignored.
    pub fn on_stop_timeout(&mut self, ctx: &mut Context<'_, Ev>, gen: u64) {
        if gen != self.flow_gen || self.flow != FlowState::Stopped {
            return;
        }
        // "the sender transitions itself to the GO stage"
        self.flow = FlowState::Go;
        self.stats.timeout_recoveries += 1;
        self.pump(ctx);
    }

    /// Handles the TX_DONE timer: the previous frame has left; send more.
    pub fn on_tx_done(&mut self, ctx: &mut Context<'_, Ev>) {
        self.pump(ctx);
    }

    /// The short-period timeout duration: 16 character periods at this
    /// link's rate (12.5 ns × 16 = 200 ns at 80 MB/s).
    pub fn stop_timeout(&self) -> SimDuration {
        match &self.peer {
            Some(peer) => peer.link.char_period() * STOP_TIMEOUT_CHARS,
            None => SimDuration::from_ns(200),
        }
    }

    /// Transmits as much of the queue as flow control and the wire allow.
    fn pump(&mut self, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        let Some(peer) = self.peer else {
            // Unwired: discard (counts as drops).
            self.stats.unwired_drops += self.queue.len() as u64;
            self.queue.clear();
            self.queued_chars = 0;
            return;
        };
        // Control symbols interleave with data characters on the real wire
        // (paper Figure 8): transmit them immediately, even while a data
        // frame occupies the line — flow control must outrun the sender's
        // 16-character STOP timeout.
        while matches!(self.queue.front(), Some(Frame::Control(_))) {
            let Some(frame) = self.queue.pop_front() else {
                break;
            };
            self.queued_chars -= 1;
            ctx.send(
                peer.dst,
                peer.tx_time(1) + peer.propagation(),
                Ev::Rx {
                    port: peer.dst_port,
                    frame,
                },
            );
            self.stats.sent_frames += 1;
            self.stats.sent_chars += 1;
        }
        if self.busy_until > now {
            return; // TX_DONE will re-enter
        }
        // Decide whether the head frame may go. Note the hold flag does not
        // gate the queue: it marks the wormhole path as occupied so the
        // *owner* stops admitting new packets, while frames already
        // admitted (the unterminated packet itself) drain normally.
        let may_send = match self.queue.front() {
            None => false,
            Some(Frame::Control(_)) => true,
            Some(Frame::Packet(_)) => self.flow == FlowState::Go,
        };
        if !may_send {
            return;
        }
        let Some(frame) = self.queue.pop_front() else {
            return;
        };
        let chars = frame.wire_len();
        self.queued_chars -= chars;
        let tx = peer.tx_time(chars);
        ctx.send(
            peer.dst,
            tx + peer.propagation(),
            Ev::Rx {
                port: peer.dst_port,
                frame,
            },
        );
        self.stats.sent_frames += 1;
        self.stats.sent_chars += chars as u64;
        self.busy_until = now + tx;
        ctx.send_self(
            tx,
            Ev::Timer {
                kind: timer_kind(timer_class::TX_DONE, self.port),
                gen: 0,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfi_phy::Link;
    use netfi_sim::{Component, ComponentId, Engine};
    use std::any::Any;

    /// A component wrapping one egress port, for driving in tests.
    #[derive(Clone)]
    struct Sender {
        egress: EgressPort,
    }

    impl Component<Ev> for Sender {
        fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            match ev {
                Ev::Timer { kind, gen } => {
                    let (class, _port) = split_timer_kind(kind);
                    match class {
                        timer_class::TX_DONE => self.egress.on_tx_done(ctx),
                        timer_class::STOP_TIMEOUT => self.egress.on_stop_timeout(ctx, gen),
                        _ => {}
                    }
                }
                Ev::Rx { frame, .. } => {
                    if let Some(sym) = frame.as_control() {
                        self.egress.on_flow(ctx, sym);
                    }
                }
                Ev::App(cmd) => {
                    // Test harness: App(Frame) means "enqueue this frame",
                    // App(u8) means "enqueue control code".
                    if let Ok(frame) = cmd.downcast::<Frame>() {
                        self.egress.enqueue(ctx, *frame);
                    }
                }
                _ => {}
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn fork(&self) -> Box<dyn Component<Ev>> {
            Box::new(self.clone())
        }
    }

    #[derive(Clone)]
    struct Sink {
        rx: Vec<(SimTime, Frame)>,
    }

    impl Component<Ev> for Sink {
        fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            if let Ev::Rx { frame, .. } = ev {
                self.rx.push((ctx.now(), frame));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn fork(&self) -> Box<dyn Component<Ev>> {
            Box::new(self.clone())
        }
    }

    fn setup() -> (Engine<Ev>, ComponentId, ComponentId) {
        let mut engine: Engine<Ev> = Engine::new();
        let sink = engine.add_component(Box::new(Sink { rx: Vec::new() }));
        let mut egress = EgressPort::new(0);
        egress.attach(PortPeer {
            dst: sink,
            dst_port: 0,
            link: Link::myrinet_640(1.0),
        });
        let sender = engine.add_component(Box::new(Sender { egress }));
        (engine, sender, sink)
    }

    fn push_packet(engine: &mut Engine<Ev>, sender: ComponentId, len: usize) {
        engine.schedule(
            engine.now(),
            sender,
            Ev::App(Box::new(Frame::packet(vec![0u8; len]))),
        );
    }

    #[test]
    fn frames_serialize_back_to_back() {
        let (mut engine, sender, sink) = setup();
        push_packet(&mut engine, sender, 7); // 8 chars with terminator
        push_packet(&mut engine, sender, 7);
        engine.run();
        let sink = engine.component_as::<Sink>(sink).unwrap();
        assert_eq!(sink.rx.len(), 2);
        // char period 12.5ns, 8 chars = 100ns tx, 5ns propagation.
        assert_eq!(sink.rx[0].0, SimTime::from_ns(105));
        assert_eq!(sink.rx[1].0, SimTime::from_ns(205));
    }

    #[test]
    fn stop_pauses_then_timeout_resumes() {
        let (mut engine, sender, sink) = setup();
        // Deliver a STOP first, then try to send.
        engine.schedule(
            SimTime::ZERO,
            sender,
            Ev::Rx {
                port: 0,
                frame: Frame::control(ControlSymbol::Stop),
            },
        );
        push_packet(&mut engine, sender, 7);
        engine.run();
        let s = engine.component_as::<Sender>(sender).unwrap();
        assert_eq!(s.egress.stats().stops_received, 1);
        assert_eq!(s.egress.stats().timeout_recoveries, 1);
        let sink = engine.component_as::<Sink>(sink).unwrap();
        // 16 chars * 12.5 ns = 200 ns stopped, then 100 ns tx + 5 ns prop.
        assert_eq!(sink.rx[0].0, SimTime::from_ns(305));
    }

    #[test]
    fn go_resumes_before_timeout() {
        let (mut engine, sender, sink) = setup();
        engine.schedule(
            SimTime::ZERO,
            sender,
            Ev::Rx {
                port: 0,
                frame: Frame::control(ControlSymbol::Stop),
            },
        );
        push_packet(&mut engine, sender, 7);
        engine.schedule(
            SimTime::from_ns(50),
            sender,
            Ev::Rx {
                port: 0,
                frame: Frame::control(ControlSymbol::Go),
            },
        );
        engine.run();
        let s = engine.component_as::<Sender>(sender).unwrap();
        assert_eq!(s.egress.stats().timeout_recoveries, 0);
        let sink = engine.component_as::<Sink>(sink).unwrap();
        assert_eq!(sink.rx[0].0, SimTime::from_ns(155));
    }

    #[test]
    fn refreshed_stop_extends_pause() {
        let (mut engine, sender, sink) = setup();
        engine.schedule(
            SimTime::ZERO,
            sender,
            Ev::Rx {
                port: 0,
                frame: Frame::control(ControlSymbol::Stop),
            },
        );
        // A second STOP arrives at 150 ns, before the first timeout at 200.
        engine.schedule(
            SimTime::from_ns(150),
            sender,
            Ev::Rx {
                port: 0,
                frame: Frame::control(ControlSymbol::Stop),
            },
        );
        push_packet(&mut engine, sender, 7);
        engine.run();
        let sink = engine.component_as::<Sink>(sink).unwrap();
        // Resumes at 150+200 = 350 ns, arrival 455 ns.
        assert_eq!(sink.rx[0].0, SimTime::from_ns(455));
        let s = engine.component_as::<Sender>(sender).unwrap();
        assert_eq!(s.egress.stats().timeout_recoveries, 1);
        assert_eq!(s.egress.stats().stops_received, 2);
    }

    #[test]
    fn hold_is_advisory_and_release_clears_it() {
        let (mut engine, sender, sink) = setup();
        engine
            .component_as_mut::<Sender>(sender)
            .unwrap()
            .egress
            .hold();
        // A frame already admitted to the queue still drains: the hold only
        // tells the owner to stop admitting new packets.
        push_packet(&mut engine, sender, 7);
        engine.run();
        assert_eq!(engine.component_as::<Sink>(sink).unwrap().rx.len(), 1);
        let s = engine.component_as::<Sender>(sender).unwrap();
        assert!(s.egress.is_held());
        // (Admission gating on the hold flag is exercised in switch tests.)
    }

    #[test]
    fn control_frames_bypass_stop_state() {
        let (mut engine, sender, sink) = setup();
        engine.schedule(
            SimTime::ZERO,
            sender,
            Ev::Rx {
                port: 0,
                frame: Frame::control(ControlSymbol::Stop),
            },
        );
        // Owner wants to emit its own flow symbol upstream while stopped.
        engine.schedule(SimTime::from_ns(10), sender, Ev::App(Box::new(())));
        // enqueue a control frame directly:
        engine
            .component_as_mut::<Sender>(sender)
            .unwrap()
            .egress
            .queue
            .push_back(Frame::control(ControlSymbol::Go));
        engine
            .component_as_mut::<Sender>(sender)
            .unwrap()
            .egress
            .queued_chars += 1;
        // Poke the pump via a TX_DONE timer event.
        engine.schedule(
            SimTime::from_ns(20),
            sender,
            Ev::Timer {
                kind: timer_kind(timer_class::TX_DONE, 0),
                gen: 0,
            },
        );
        engine.run();
        let sink = engine.component_as::<Sink>(sink).unwrap();
        assert_eq!(sink.rx.len(), 1, "control frame must pass while stopped");
    }

    #[test]
    fn unwired_port_drops_and_counts() {
        let mut engine: Engine<Ev> = Engine::new();
        let sender = engine.add_component(Box::new(Sender {
            egress: EgressPort::new(0),
        }));
        push_packet(&mut engine, sender, 3);
        engine.run();
        let s = engine.component_as::<Sender>(sender).unwrap();
        assert_eq!(s.egress.stats().unwired_drops, 1);
        assert_eq!(s.egress.queue_len(), 0);
    }

    #[test]
    fn timer_kind_packing() {
        let k = timer_kind(timer_class::STOP_TIMEOUT, 7);
        assert_eq!(split_timer_kind(k), (timer_class::STOP_TIMEOUT, 7));
        let k2 = timer_kind(timer_class::TX_DONE, 0);
        assert_eq!(split_timer_kind(k2), (timer_class::TX_DONE, 0));
    }

    #[test]
    fn stop_timeout_is_16_character_periods() {
        let (engine, sender, _) = setup();
        let s = engine.component_as::<Sender>(sender).unwrap();
        // 12.5 ns char period at 640 Mb/s × 16 = 200 ns.
        assert_eq!(s.egress.stop_timeout(), SimDuration::from_ns(200));
    }
}
