//! The Myrinet host interface (LANai NIC + MCP firmware).
//!
//! "The Myrinet host interface is connected to the host I/O bus … The
//! interface also contains a 32-bit SRAM chip that holds the Myrinet
//! Control Program (MCP). The MCP is responsible for sending messages
//! between the network and the host" (§4.1). This type models that
//! interface: one link attachment with flow control, reception checks
//! (CRC, route MSB, physical address), a routing table, and the MCP's
//! mapping protocol with highest-address mapper election.
//!
//! It is a plain struct, embedded by a host component (see
//! `netfi-netstack`); the host routes engine events into
//! [`HostInterface::handle_rx`] / [`HostInterface::handle_timer`] and
//! receives app-bound payloads back as [`Delivery`] values.
//!
//! Fault hooks for the §4.3.3 campaigns: [`HostInterface::set_eth_addr`]
//! corrupts the node's physical-address register (sender-address
//! corruption, controller-address collision, non-existent address).

use std::collections::{BTreeMap, VecDeque};
use std::error::Error;
use std::fmt;

use netfi_obs::{Recorder, Sink};
use netfi_phy::ControlSymbol;
use netfi_sim::{Context, DetRng, SimDuration};

use crate::addr::{EthAddr, NodeAddress};
use crate::crc8;
use crate::egress::{timer_class, timer_kind, EgressPort};
use crate::sbuf::{Accept, SlackBuffer};
use crate::event::{Ev, PortPeer};
use crate::frame::{Frame, PacketFrame};
use crate::mapper::{Attachment, NetworkMap, NodeInfo, Topology};
use crate::mcp::MapMsg;
use crate::packet::{Packet, PacketError, PacketType};

/// The Ethernet-style header at the start of every DATA payload: the
/// 48-bit physical destination and source addresses (§4.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthHeader {
    /// Destination physical address.
    pub dest: EthAddr,
    /// Source physical address.
    pub src: EthAddr,
}

impl EthHeader {
    /// Encoded size in bytes.
    pub const LEN: usize = 12;

    /// Serializes to 12 bytes.
    pub fn encode(&self) -> [u8; 12] {
        let mut out = [0u8; 12];
        out[..6].copy_from_slice(&self.dest.octets());
        out[6..].copy_from_slice(&self.src.octets());
        out
    }

    /// Reads a header from the front of `buf`.
    pub fn from_slice(buf: &[u8]) -> Option<EthHeader> {
        Some(EthHeader {
            dest: EthAddr::from_slice(buf)?,
            src: EthAddr::from_slice(buf.get(6..)?)?,
        })
    }
}

/// A DATA payload delivered to the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Source physical address.
    pub src: EthAddr,
    /// Destination physical address (ours, or broadcast).
    pub dest: EthAddr,
    /// Bytes above the Ethernet-style header — a zero-copy window into
    /// the received wire image.
    pub data: netfi_sim::SharedBytes,
}

/// Error returned by [`HostInterface::send_data`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The destination is not in the routing table — the node is currently
    /// "out of the network" (§4.3.2).
    NoRoute(EthAddr),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::NoRoute(a) => write!(f, "no route to {a}"),
        }
    }
}

impl Error for SendError {}

/// Interface counters, in the spirit of the paper's `mmon` registers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterfaceStats {
    /// DATA packets transmitted.
    pub tx_data: u64,
    /// Sends refused for lack of a route.
    pub tx_no_route: u64,
    /// DATA packets delivered to the host.
    pub rx_delivered: u64,
    /// Packets dropped on CRC-8 failure.
    pub rx_crc_drops: u64,
    /// Packets "consumed and handled as an error" for a set route MSB.
    pub rx_route_errors: u64,
    /// DATA packets dropped as misaddressed.
    pub rx_misaddressed: u64,
    /// Packets with unrecognized type fields.
    pub rx_unknown_type: u64,
    /// Truncated/garbled packets.
    pub rx_malformed: u64,
    /// Packets lost to NIC receive-buffer overflow.
    pub rx_overflow_drops: u64,
    /// Packets truncated by a spurious GAP landing inside them.
    pub rx_truncated: u64,
    /// Scout messages answered.
    pub scouts_answered: u64,
    /// Mapping rounds completed as mapper.
    pub maps_built: u64,
    /// Maps that differed from the previous round's map.
    pub inconsistent_maps: u64,
    /// Routing tables installed from Routes messages.
    pub routes_installed: u64,
}

/// Configuration for a [`HostInterface`].
#[derive(Debug, Clone)]
pub struct InterfaceConfig {
    /// The MCP's unique 64-bit address (election key).
    pub addr: NodeAddress,
    /// The factory physical address.
    pub eth: EthAddr,
    /// Where this interface plugs into the fabric.
    pub attachment: Attachment,
    /// The switch fabric (builder-provided; see module docs in
    /// [`crate::mapper`]).
    pub topology: Topology,
    /// Whether this MCP participates in mapper election.
    pub can_map: bool,
    /// Mapping period — "performed once every second".
    pub mapping_interval: SimDuration,
    /// How long the mapper waits for scout replies.
    pub scout_window: SimDuration,
    /// How long a deferring MCP waits before reclaiming the mapper role.
    pub deference_timeout: SimDuration,
    /// Seed for the mapper's confusion behaviour (Figure 11).
    pub seed: u64,
    /// Receive slack-buffer capacity in bytes (the NIC's slack buffer of
    /// paper Figures 7 and 9).
    pub rx_capacity: usize,
    /// Receive-buffer high watermark (STOP threshold).
    pub rx_high: usize,
    /// Receive-buffer low watermark (GO threshold).
    pub rx_low: usize,
    /// Rate at which the host drains the NIC buffer (DMA / host-bus
    /// bandwidth), bits per second. The paper's hosts are slower than the
    /// 640 Mb/s link.
    pub rx_drain_bps: u64,
}

impl InterfaceConfig {
    /// A configuration with the paper's defaults.
    pub fn new(
        addr: NodeAddress,
        eth: EthAddr,
        attachment: Attachment,
        topology: Topology,
    ) -> InterfaceConfig {
        InterfaceConfig {
            addr,
            eth,
            attachment,
            topology,
            can_map: true,
            mapping_interval: SimDuration::from_secs(1),
            scout_window: SimDuration::from_ms(20),
            deference_timeout: SimDuration::from_secs(3),
            seed: addr.0 ^ 0x6e65_7466_695f_6966, // "netfi_if"
            rx_capacity: 8192,
            rx_high: 4096,
            rx_low: 1024,
            rx_drain_bps: 400_000_000,
        }
    }
}

/// The host interface.
#[derive(Debug, Clone)]
pub struct HostInterface {
    config: InterfaceConfig,
    eth_addr: EthAddr,
    egress: EgressPort,
    rx_sbuf: SlackBuffer,
    rx_queue: VecDeque<PacketFrame>,
    rx_draining: bool,
    rx_refresh_armed: bool,
    last_standalone_gap: Option<netfi_sim::SimTime>,
    routing: BTreeMap<EthAddr, Vec<u8>>,
    stats: InterfaceStats,
    /// Observability recorder (scope `"interface"`), disarmed by default.
    obs: Recorder,
    // --- mapper state ---
    mapping_active: bool,
    epoch: u32,
    round_pending: BTreeMap<Attachment, NodeInfo>,
    confused: bool,
    last_map: Option<NetworkMap>,
    rng: DetRng,
    defer_gen: u64,
    window_gen: u64,
    round_gen: u64,
    current_mapper: Option<NodeAddress>,
    last_present: Vec<EthAddr>,
}

impl HostInterface {
    /// Creates an interface (unwired; attach via the owning component).
    pub fn new(config: InterfaceConfig) -> HostInterface {
        let rng = DetRng::new(config.seed);
        HostInterface {
            eth_addr: config.eth,
            egress: EgressPort::new(0),
            rx_sbuf: SlackBuffer::new(config.rx_capacity, config.rx_high, config.rx_low),
            rx_queue: VecDeque::new(),
            rx_draining: false,
            rx_refresh_armed: false,
            last_standalone_gap: None,
            routing: BTreeMap::new(),
            stats: InterfaceStats::default(),
            obs: Recorder::disarmed(),
            mapping_active: config.can_map,
            epoch: 0,
            round_pending: BTreeMap::new(),
            confused: false,
            last_map: None,
            rng,
            defer_gen: 0,
            window_gen: 0,
            round_gen: 0,
            current_mapper: None,
            last_present: Vec::new(),
            config,
        }
    }

    /// Wires the interface's single port.
    pub fn attach(&mut self, peer: PortPeer) {
        self.egress.attach(peer);
    }

    /// Kicks off periodic mapping (call once, at simulation start).
    pub fn start(&mut self, ctx: &mut Context<'_, Ev>) {
        if self.config.can_map {
            self.round_gen += 1;
            ctx.send_self(
                self.config.mapping_interval,
                Ev::Timer {
                    kind: timer_kind(timer_class::MAPPING_ROUND, 0),
                    gen: self.round_gen,
                },
            );
        }
    }

    /// The MCP's 64-bit address.
    pub fn node_addr(&self) -> NodeAddress {
        self.config.addr
    }

    /// The live physical-address register.
    pub fn eth_addr(&self) -> EthAddr {
        self.eth_addr
    }

    /// FAULT HOOK: corrupts the physical-address register (§4.3.3). The
    /// node will now drop incoming packets addressed to its old address —
    /// "since the node doesn't see its own address, it drops all packets as
    /// being misaddressed" — while continuing to answer mapping packets.
    pub fn set_eth_addr(&mut self, eth: EthAddr) {
        self.eth_addr = eth;
    }

    /// Enables or disables this MCP's participation in mapping (call
    /// before the simulation starts). Campaigns that corrupt every frame
    /// from a node run with static routes instead, as mapping cannot
    /// survive total framing loss.
    pub fn set_can_map(&mut self, on: bool) {
        self.config.can_map = on;
        self.mapping_active = on;
    }

    /// Adjusts how long the mapper waits for scout replies (call before
    /// the simulation starts). Campaigns that hold wormhole paths for the
    /// ~50 ms long-period timeout need a window beyond that, or replies
    /// arrive after collection closes and nodes flap out of the map.
    pub fn set_scout_window(&mut self, window: SimDuration) {
        self.config.scout_window = window;
    }

    /// Reconfigures the receive slack buffer and drain rate (call before
    /// the simulation starts).
    ///
    /// # Panics
    ///
    /// Panics on invalid watermark geometry or a zero drain rate.
    pub fn set_rx_params(&mut self, capacity: usize, high: usize, low: usize, drain_bps: u64) {
        assert!(drain_bps > 0, "drain rate must be non-zero");
        self.rx_sbuf = SlackBuffer::new(capacity, high, low);
        self.config.rx_drain_bps = drain_bps;
    }

    /// This interface's attachment point.
    pub fn attachment(&self) -> Attachment {
        self.config.attachment
    }

    /// Counters.
    pub fn stats(&self) -> InterfaceStats {
        self.stats
    }

    /// The interface's observability recorder.
    pub fn obs(&self) -> &Recorder {
        &self.obs
    }

    /// Mutable access to the recorder (arm it before an observed run).
    pub fn obs_mut(&mut self) -> &mut Recorder {
        &mut self.obs
    }

    /// The current routing table.
    pub fn routing_table(&self) -> &BTreeMap<EthAddr, Vec<u8>> {
        &self.routing
    }

    /// Installs a static route (for tests and for running without mapping).
    pub fn install_route(&mut self, dest: EthAddr, route: Vec<u8>) {
        self.routing.insert(dest, route);
    }

    /// The most recent map this node built (mappers only).
    pub fn last_map(&self) -> Option<&NetworkMap> {
        self.last_map.as_ref()
    }

    /// Whether this MCP currently holds the mapper role.
    pub fn is_mapper(&self) -> bool {
        self.mapping_active
    }

    /// The mapper this node currently defers to (from Scout/Routes
    /// traffic).
    pub fn known_mapper(&self) -> Option<NodeAddress> {
        self.current_mapper
    }

    /// Physical addresses present in the last Routes message received.
    pub fn present_nodes(&self) -> &[EthAddr] {
        &self.last_present
    }

    /// Egress statistics (flow-control behaviour).
    pub fn egress_stats(&self) -> crate::egress::EgressStats {
        self.egress.stats()
    }

    /// Sends `data` to `dest` as a DATA packet.
    ///
    /// # Errors
    ///
    /// [`SendError::NoRoute`] if the routing table has no entry for `dest`.
    pub fn send_data(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        dest: EthAddr,
        data: &[u8],
    ) -> Result<(), SendError> {
        self.send_data_parts(ctx, dest, &[data])
    }

    /// Sends the concatenation of `parts` to `dest` as a DATA packet.
    ///
    /// Equivalent to [`send_data`](HostInterface::send_data) on the
    /// concatenated bytes, but lets a caller with a scattered payload
    /// (e.g. a protocol header plus a shared payload buffer) skip
    /// assembling an intermediate buffer: the full wire image — route,
    /// type, Ethernet-style header, data, CRC — is built in one
    /// allocation, and every later hop shares it.
    ///
    /// # Errors
    ///
    /// [`SendError::NoRoute`] if the routing table has no entry for `dest`.
    pub fn send_data_parts(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        dest: EthAddr,
        parts: &[&[u8]],
    ) -> Result<(), SendError> {
        let Some(route) = self.routing.get(&dest) else {
            self.stats.tx_no_route += 1;
            return Err(SendError::NoRoute(dest));
        };
        let header = EthHeader {
            dest,
            src: self.eth_addr,
        };
        let data_len: usize = parts.iter().map(|p| p.len()).sum();
        let mut wire =
            Vec::with_capacity(route.len() + 4 + EthHeader::LEN + data_len + 1);
        wire.extend_from_slice(route);
        wire.extend_from_slice(&PacketType::DATA.to_bytes());
        wire.extend_from_slice(&header.encode());
        for part in parts {
            wire.extend_from_slice(part);
        }
        wire.push(crc8::checksum(&wire));
        self.egress.enqueue(ctx, Frame::packet(wire));
        self.stats.tx_data += 1;
        Ok(())
    }

    /// Transmits a pre-built packet (tests and experiment harnesses).
    pub fn send_raw(&mut self, ctx: &mut Context<'_, Ev>, frame: Frame) {
        self.egress.enqueue(ctx, frame);
    }

    /// Handles a frame arriving from the link.
    ///
    /// Packets enter the NIC's receive slack buffer (Figures 7/9) and are
    /// drained at the host-bus rate; a [`Delivery`] for a completed packet
    /// is returned from [`HostInterface::handle_timer`] when its drain finishes.
    pub fn handle_rx(&mut self, ctx: &mut Context<'_, Ev>, frame: Frame) -> Option<Delivery> {
        match frame {
            Frame::Control(code) => {
                match ControlSymbol::decode_tolerant(code) {
                    Some(sym @ (ControlSymbol::Stop | ControlSymbol::Go)) => {
                        self.egress.on_flow(ctx, sym);
                    }
                    Some(ControlSymbol::Gap) => {
                        // Remembered: a standalone GAP arriving during a
                        // packet's serialization window truncated it.
                        self.last_standalone_gap = Some(ctx.now());
                    }
                    _ => {}
                }
                None
            }
            Frame::Packet(pf) => {
                if let Some(gap_at) = self.last_standalone_gap {
                    let window = self
                        .egress
                        .peer()
                        .map(|p| p.link.transfer_time(pf.wire_len()))
                        .unwrap_or_default();
                    if gap_at > ctx.now().saturating_sub_duration(window) {
                        self.last_standalone_gap = None;
                        self.stats.rx_truncated += 1;
                        return None;
                    }
                }
                match self.rx_sbuf.try_accept(pf.wire_len()) {
                    Accept::Overflow => {
                        self.stats.rx_overflow_drops += 1;
                        return None;
                    }
                    Accept::Stored => {}
                }
                if let Some(sym) = self.rx_sbuf.poll_flow() {
                    self.egress.enqueue_control(ctx, sym.encode());
                }
                self.arm_rx_refresh(ctx);
                self.rx_queue.push_back(pf);
                self.start_drain(ctx);
                None
            }
        }
    }

    /// Time to move `chars` characters across the host bus.
    fn drain_time(&self, chars: usize) -> netfi_sim::SimDuration {
        netfi_sim::SimDuration::from_bits(chars as u64 * 8, self.config.rx_drain_bps)
    }

    fn start_drain(&mut self, ctx: &mut Context<'_, Ev>) {
        if self.rx_draining {
            return;
        }
        let Some(front) = self.rx_queue.front() else {
            return;
        };
        self.rx_draining = true;
        let dt = self.drain_time(front.wire_len());
        ctx.send_self(
            dt,
            Ev::Timer {
                kind: timer_kind(timer_class::RX_DRAIN, 1),
                gen: 0,
            },
        );
    }

    /// While the receive buffer holds the switch stopped, STOP must be
    /// refreshed inside the sender's 16-character timeout.
    fn arm_rx_refresh(&mut self, ctx: &mut Context<'_, Ev>) {
        if self.rx_refresh_armed || !self.rx_sbuf.upstream_stopped() {
            return;
        }
        self.rx_refresh_armed = true;
        let period = self
            .egress
            .peer()
            .map(|p| p.link.char_period() * 12)
            .unwrap_or(netfi_sim::SimDuration::from_ns(150));
        ctx.send_self(
            period,
            Ev::Timer {
                kind: timer_kind(timer_class::RX_STOP_REFRESH, 1),
                gen: 0,
            },
        );
    }

    fn handle_packet(&mut self, ctx: &mut Context<'_, Ev>, pf: PacketFrame) -> Option<Delivery> {
        let pkt = match Packet::parse_delivered_shared(&pf.bytes) {
            Ok(p) => p,
            Err(PacketError::BadCrc) => {
                self.stats.rx_crc_drops += 1;
                self.obs.instant(ctx.now(), "interface", "crc_drop", pf.wire_len() as u64);
                return None;
            }
            Err(PacketError::RouteMsbSet) => {
                // "consumed and handled as an error" — dropped "without
                // incident, and without causing delays or other errors".
                self.stats.rx_route_errors += 1;
                return None;
            }
            Err(_) => {
                self.stats.rx_malformed += 1;
                return None;
            }
        };
        match pkt.ptype {
            PacketType::DATA => {
                let Some(header) = EthHeader::from_slice(&pkt.payload) else {
                    self.stats.rx_malformed += 1;
                    return None;
                };
                if header.dest != self.eth_addr && !header.dest.is_broadcast() {
                    // "the node drops incoming packets that are
                    // misaddressed" (§4.3.3).
                    self.stats.rx_misaddressed += 1;
                    self.obs.instant(ctx.now(), "interface", "misaddressed", 0);
                    return None;
                }
                self.stats.rx_delivered += 1;
                Some(Delivery {
                    src: header.src,
                    dest: header.dest,
                    data: pkt.payload.slice(EthHeader::LEN..),
                })
            }
            PacketType::MAPPING => {
                match MapMsg::decode(&pkt.payload) {
                    Ok(msg) => self.handle_map_msg(ctx, msg),
                    Err(_) => self.stats.rx_malformed += 1,
                }
                None
            }
            _ => {
                // §4.3.2: corrupted-type packets are "dropped by the
                // receiving node and not recognized"; internal structures
                // remain unchanged.
                self.stats.rx_unknown_type += 1;
                None
            }
        }
    }

    /// Handles one of this component's timers (route by class).
    ///
    /// Returns a [`Delivery`] when the receive buffer finished draining a
    /// DATA packet addressed to this node.
    pub fn handle_timer(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        kind: u32,
        gen: u64,
    ) -> Option<Delivery> {
        let (class, _port) = crate::egress::split_timer_kind(kind);
        match class {
            timer_class::TX_DONE => self.egress.on_tx_done(ctx),
            timer_class::STOP_TIMEOUT => self.egress.on_stop_timeout(ctx, gen),
            timer_class::RX_DRAIN => {
                self.rx_draining = false;
                if let Some(pf) = self.rx_queue.pop_front() {
                    self.rx_sbuf.drain(pf.wire_len());
                    if let Some(sym) = self.rx_sbuf.poll_flow() {
                        self.egress.enqueue_control(ctx, sym.encode());
                    }
                    let delivery = self.handle_packet(ctx, pf);
                    self.start_drain(ctx);
                    return delivery;
                }
            }
            timer_class::RX_STOP_REFRESH => {
                self.rx_refresh_armed = false;
                if self.rx_sbuf.upstream_stopped() {
                    self.egress
                        .enqueue_control(ctx, ControlSymbol::Stop.encode());
                    self.arm_rx_refresh(ctx);
                }
            }
            timer_class::MAPPING_ROUND => {
                if gen != self.round_gen {
                    return None;
                }
                if self.mapping_active {
                    self.start_round(ctx);
                }
                ctx.send_self(
                    self.config.mapping_interval,
                    Ev::Timer {
                        kind: timer_kind(timer_class::MAPPING_ROUND, 0),
                        gen: self.round_gen,
                    },
                );
            }
            timer_class::SCOUT_WINDOW
                if gen == self.window_gen && self.mapping_active => {
                    self.finish_round(ctx);
                }
            timer_class::TAKEOVER
                if gen == self.defer_gen && self.config.can_map && !self.mapping_active => {
                    // The higher-addressed mapper went quiet: reclaim.
                    self.mapping_active = true;
                    self.round_gen += 1;
                    self.start_round(ctx);
                    ctx.send_self(
                        self.config.mapping_interval,
                        Ev::Timer {
                            kind: timer_kind(timer_class::MAPPING_ROUND, 0),
                            gen: self.round_gen,
                        },
                    );
                }
            _ => {}
        }
        None
    }

    // --- mapping protocol ---

    fn send_mapping(&mut self, ctx: &mut Context<'_, Ev>, route: Vec<u8>, msg: &MapMsg) {
        let payload = msg.encode();
        let mut wire = Vec::with_capacity(route.len() + 4 + payload.len() + 1);
        wire.extend_from_slice(&route);
        wire.extend_from_slice(&PacketType::MAPPING.to_bytes());
        wire.extend_from_slice(&payload);
        wire.push(crc8::checksum(&wire));
        self.egress.enqueue(ctx, Frame::packet(wire));
    }

    fn start_round(&mut self, ctx: &mut Context<'_, Ev>) {
        self.epoch += 1;
        self.round_pending.clear();
        self.confused = false;
        let own = self.config.attachment;
        let targets = self.config.topology.host_ports();
        for target in targets {
            if target == own {
                continue;
            }
            let Some(route) = self.config.topology.route_between(own, target) else {
                continue;
            };
            let Some(reply_route) = self.config.topology.route_between(target, own) else {
                continue;
            };
            let msg = MapMsg::Scout {
                epoch: self.epoch,
                mapper: self.config.addr,
                target,
                reply_route,
            };
            self.send_mapping(ctx, route, &msg);
        }
        self.window_gen += 1;
        ctx.send_self(
            self.config.scout_window,
            Ev::Timer {
                kind: timer_kind(timer_class::SCOUT_WINDOW, 0),
                gen: self.window_gen,
            },
        );
    }

    fn defer_to(&mut self, ctx: &mut Context<'_, Ev>, mapper: NodeAddress) {
        self.current_mapper = Some(mapper);
        if mapper > self.config.addr {
            // "the MCP with the highest address is responsible": stand down
            // and watch for the higher mapper to disappear.
            self.mapping_active = false;
            self.defer_gen += 1;
            if self.config.can_map {
                ctx.send_self(
                    self.config.deference_timeout,
                    Ev::Timer {
                        kind: timer_kind(timer_class::TAKEOVER, 0),
                        gen: self.defer_gen,
                    },
                );
            }
        }
    }

    fn handle_map_msg(&mut self, ctx: &mut Context<'_, Ev>, msg: MapMsg) {
        match msg {
            MapMsg::Scout {
                epoch,
                mapper,
                target,
                reply_route,
            } => {
                self.defer_to(ctx, mapper);
                self.stats.scouts_answered += 1;
                let reply = MapMsg::Reply {
                    epoch,
                    target,
                    addr: self.config.addr,
                    // The *live* register: a corrupted address register
                    // propagates into the map (§4.3.3).
                    eth: self.eth_addr,
                };
                self.send_mapping(ctx, reply_route, &reply);
            }
            MapMsg::Reply {
                epoch,
                target,
                addr,
                eth,
            } => {
                if !self.mapping_active || epoch != self.epoch {
                    return;
                }
                // A corrupted-but-CRC-valid reply can advertise an
                // attachment outside the fabric; the mapper ignores it.
                if !self.config.topology.contains(target)
                    || self.config.topology.is_trunk_port(target)
                {
                    self.stats.rx_malformed += 1;
                    return;
                }
                if addr == self.config.addr || eth == self.eth_addr {
                    // "The controller is confused by the appearance of what
                    // it believes is another controller" (§4.3.3).
                    self.confused = true;
                }
                self.round_pending.insert(target, NodeInfo { addr, eth });
            }
            MapMsg::Routes {
                epoch: _,
                mapper,
                entries,
                present,
            } => {
                self.defer_to(ctx, mapper);
                self.routing = entries.into_iter().collect();
                self.last_present = present;
                self.stats.routes_installed += 1;
            }
        }
    }

    fn finish_round(&mut self, ctx: &mut Context<'_, Ev>) {
        let mut map = NetworkMap::new(self.epoch);
        map.nodes.insert(
            self.config.attachment,
            NodeInfo {
                addr: self.config.addr,
                eth: self.eth_addr,
            },
        );
        for (&at, &info) in &self.round_pending {
            map.nodes.insert(at, info);
        }
        if self.confused {
            self.damage_map(&mut map);
        }
        self.stats.maps_built += 1;
        self.obs.instant(ctx.now(), "interface", "mapping_round", self.stats.maps_built);
        if let Some(prev) = &self.last_map {
            if !prev.consistent_with(&map) {
                self.stats.inconsistent_maps += 1;
            }
        }
        // Distribute per-node routing tables.
        let nodes: Vec<(Attachment, NodeInfo)> =
            map.nodes.iter().map(|(&a, &i)| (a, i)).collect();
        let present: Vec<EthAddr> = nodes.iter().map(|(_, i)| i.eth).collect();
        for (at, _info) in &nodes {
            let entries: Vec<(EthAddr, Vec<u8>)> = nodes
                .iter()
                .filter(|(other_at, _)| other_at != at)
                .filter_map(|(other_at, other)| {
                    self.config
                        .topology
                        .route_between(*at, *other_at)
                        .map(|r| (other.eth, r))
                })
                .collect();
            if *at == self.config.attachment {
                self.routing = entries.into_iter().collect();
                self.last_present = present.clone();
                self.stats.routes_installed += 1;
            } else {
                let Some(route) = self
                    .config
                    .topology
                    .route_between(self.config.attachment, *at)
                else {
                    continue;
                };
                let msg = MapMsg::Routes {
                    epoch: self.epoch,
                    mapper: self.config.addr,
                    entries,
                    present: present.clone(),
                };
                self.send_mapping(ctx, route, &msg);
            }
        }
        self.current_mapper = Some(self.config.addr);
        self.last_map = Some(map);
    }

    /// When another node claims the controller's identity, the mapper
    /// "is unable to generate a consistent map. Each attempt to resolve the
    /// network fails in an apparently random fashion … each subsequent
    /// mapping attempt resulted in a similarly damaged map" (§4.3.3).
    fn damage_map(&mut self, map: &mut NetworkMap) {
        let own = self.config.attachment;
        let victims: Vec<Attachment> = map
            .nodes
            .keys()
            .copied()
            .filter(|&at| at != own)
            .collect();
        for at in victims {
            let roll = self.rng.gen_f64();
            if roll < 0.4 {
                map.nodes.remove(&at);
            } else if roll < 0.65 {
                // Re-home the node to a random (possibly wrong) port.
                if let Some(info) = map.nodes.remove(&at) {
                    let candidates = self.config.topology.host_ports();
                    let slot = candidates[self.rng.gen_index(candidates.len())];
                    map.nodes.entry(slot).or_insert(info);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::egress::split_timer_kind;
    use crate::event::{connect, Attach};
    use crate::switch::{Switch, SwitchConfig};
    use netfi_phy::Link;
    use netfi_sim::{Component, ComponentId, Engine, SimTime};
    use std::any::Any;

    /// Minimal host wrapping a HostInterface (netfi-netstack provides the
    /// full-featured version).
    #[derive(Clone)]
    struct TestHost {
        nic: HostInterface,
        delivered: Vec<Delivery>,
    }

    #[derive(Clone)]
    enum Cmd {
        Start,
        Send(EthAddr, Vec<u8>),
    }

    impl Attach for TestHost {
        fn attach_port(&mut self, port: u8, peer: PortPeer) {
            assert_eq!(port, 0);
            self.nic.attach(peer);
        }
    }

    impl Component<Ev> for TestHost {
        fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            match ev {
                Ev::Rx { frame, .. } => {
                    if let Some(d) = self.nic.handle_rx(ctx, frame) {
                        self.delivered.push(d);
                    }
                }
                Ev::Timer { kind, gen } => {
                    if let Some(d) = self.nic.handle_timer(ctx, kind, gen) {
                        self.delivered.push(d);
                    }
                }
                Ev::App(cmd) => match *cmd.downcast::<Cmd>().expect("test cmd") {
                    Cmd::Start => self.nic.start(ctx),
                    Cmd::Send(dest, ref data) => {
                        let _ = self.nic.send_data(ctx, dest, data);
                    }
                },
                _ => {}
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn fork(&self) -> Box<dyn Component<Ev>> {
            Box::new(self.clone())
        }
    }

    fn build_net(n: usize) -> (Engine<Ev>, ComponentId, Vec<ComponentId>) {
        let mut engine: Engine<Ev> = Engine::new();
        let topo = Topology::single_switch(8);
        let sw = engine.add_component(Box::new(Switch::new("sw0", 8, SwitchConfig::default())));
        let link = Link::myrinet_640(1.0);
        let mut hosts = Vec::new();
        for i in 0..n {
            let cfg = InterfaceConfig::new(
                NodeAddress(100 + i as u64),
                EthAddr::myricom(i as u32 + 1),
                (0, i as u8),
                topo.clone(),
            );
            let h = engine.add_component(Box::new(TestHost {
                nic: HostInterface::new(cfg),
                delivered: Vec::new(),
            }));
            connect::<TestHost, Switch, _>(&mut engine, (h, 0), (sw, i as u8), &link);
            engine.schedule(SimTime::ZERO, h, Ev::App(Box::new(Cmd::Start)));
            hosts.push(h);
        }
        (engine, sw, hosts)
    }

    fn nic(engine: &Engine<Ev>, h: ComponentId) -> &HostInterface {
        &engine.component_as::<TestHost>(h).unwrap().nic
    }

    #[test]
    fn mapping_converges_to_highest_address() {
        let (mut engine, _, hosts) = build_net(3);
        engine.run_until(SimTime::from_secs(3));
        // Host 2 has the highest address (102) and must be the mapper.
        assert!(nic(&engine, hosts[2]).is_mapper());
        assert!(!nic(&engine, hosts[0]).is_mapper());
        assert!(!nic(&engine, hosts[1]).is_mapper());
        // Everyone has routes to everyone.
        for (i, &h) in hosts.iter().enumerate() {
            let table = nic(&engine, h).routing_table();
            assert_eq!(table.len(), 2, "host {i} table: {table:?}");
        }
        // And the mapper's map holds all three nodes.
        let map = nic(&engine, hosts[2]).last_map().unwrap();
        assert_eq!(map.node_count(), 3);
    }

    #[test]
    fn data_flows_after_mapping() {
        let (mut engine, _, hosts) = build_net(3);
        engine.run_until(SimTime::from_secs(2));
        engine.schedule(
            engine.now(),
            hosts[0],
            Ev::App(Box::new(Cmd::Send(EthAddr::myricom(2), b"ping".to_vec()))),
        );
        engine.run_until(SimTime::from_secs(2) + SimDuration::from_ms(1));
        let h1 = engine.component_as::<TestHost>(hosts[1]).unwrap();
        assert_eq!(h1.delivered.len(), 1);
        assert_eq!(h1.delivered[0].data, b"ping");
        assert_eq!(h1.delivered[0].src, EthAddr::myricom(1));
    }

    #[test]
    fn send_without_route_fails() {
        let (mut engine, _, hosts) = build_net(2);
        // Before any mapping round, tables are empty.
        engine.schedule(
            SimTime::from_ms(1),
            hosts[0],
            Ev::App(Box::new(Cmd::Send(EthAddr::myricom(2), b"x".to_vec()))),
        );
        engine.run_until(SimTime::from_ms(2));
        assert_eq!(nic(&engine, hosts[0]).stats().tx_no_route, 1);
    }

    #[test]
    fn misaddressed_packets_dropped() {
        let (mut engine, _, hosts) = build_net(3);
        engine.run_until(SimTime::from_secs(2));
        // Corrupt host 1's address register: it no longer sees its address.
        engine
            .component_as_mut::<TestHost>(hosts[1])
            .unwrap()
            .nic
            .set_eth_addr(EthAddr::myricom(99));
        engine.schedule(
            engine.now(),
            hosts[0],
            Ev::App(Box::new(Cmd::Send(EthAddr::myricom(2), b"lost".to_vec()))),
        );
        engine.run_until(engine.now() + SimDuration::from_ms(5));
        let h1 = engine.component_as::<TestHost>(hosts[1]).unwrap();
        assert!(h1.delivered.is_empty());
        assert_eq!(h1.nic.stats().rx_misaddressed, 1);
    }

    #[test]
    fn corrupted_node_still_answers_mapping() {
        // §4.3.3: "the node still responds correctly to mapping packets".
        let (mut engine, _, hosts) = build_net(3);
        engine.run_until(SimTime::from_secs(2));
        engine
            .component_as_mut::<TestHost>(hosts[0])
            .unwrap()
            .nic
            .set_eth_addr(EthAddr::myricom(0x50));
        engine.run_until(SimTime::from_secs(4));
        // The mapper's newest map carries the *corrupted* address at the
        // same attachment.
        let map = nic(&engine, hosts[2]).last_map().unwrap();
        assert_eq!(map.nodes[&(0, 0)].eth, EthAddr::myricom(0x50));
    }

    #[test]
    fn controller_address_collision_corrupts_maps() {
        let (mut engine, _, hosts) = build_net(3);
        engine.run_until(SimTime::from_secs(3));
        let healthy = nic(&engine, hosts[2]).last_map().unwrap().clone();
        assert_eq!(healthy.node_count(), 3);
        // Host 0 claims the controller's physical address.
        let controller_eth = nic(&engine, hosts[2]).eth_addr();
        engine
            .component_as_mut::<TestHost>(hosts[0])
            .unwrap()
            .nic
            .set_eth_addr(controller_eth);
        engine.run_until(SimTime::from_secs(8));
        let mapper = nic(&engine, hosts[2]);
        let damaged = mapper.last_map().unwrap();
        // Maps become inconsistent across rounds.
        assert!(
            mapper.stats().inconsistent_maps >= 2,
            "inconsistent_maps = {}",
            mapper.stats().inconsistent_maps
        );
        // And the damaged map does not match the healthy one.
        assert!(!damaged.consistent_with(&healthy) || damaged.node_count() < 3);
    }

    #[test]
    fn unknown_packet_type_counted_and_tables_unchanged() {
        let (mut engine, _, hosts) = build_net(2);
        engine.run_until(SimTime::from_secs(2));
        let table_before = nic(&engine, hosts[0]).routing_table().clone();
        // Hand-deliver a packet with a corrupted type (0x0005 -> 0x0009).
        let pkt = Packet::new(
            vec![crate::packet::route_to_host(0)],
            PacketType(0x0009),
            b"garbage".to_vec(),
        );
        engine.schedule(
            engine.now(),
            hosts[0],
            Ev::Rx {
                port: 0,
                frame: Frame::packet(pkt.encode()),
            },
        );
        engine.run_until(engine.now() + SimDuration::from_ms(1));
        let n = nic(&engine, hosts[0]);
        assert_eq!(n.stats().rx_unknown_type, 1);
        assert_eq!(n.routing_table(), &table_before);
    }

    #[test]
    fn route_msb_error_consumed_quietly() {
        let (mut engine, _, hosts) = build_net(2);
        let pkt = Packet::new(
            vec![crate::packet::route_to_switch(0)], // MSB set on final byte
            PacketType::DATA,
            vec![0u8; 16],
        );
        engine.schedule(
            SimTime::from_ms(1),
            hosts[0],
            Ev::Rx {
                port: 0,
                frame: Frame::packet(pkt.encode()),
            },
        );
        engine.run_until(SimTime::from_ms(2));
        let n = nic(&engine, hosts[0]);
        assert_eq!(n.stats().rx_route_errors, 1);
        assert_eq!(n.stats().rx_delivered, 0);
    }

    #[test]
    fn mapper_failover_to_next_highest_address() {
        let (mut engine, _, hosts) = build_net(3);
        engine.run_until(SimTime::from_secs(3));
        assert!(nic(&engine, hosts[2]).is_mapper());
        assert!(!nic(&engine, hosts[1]).is_mapper());
        // The mapper "dies" (stops mapping). After the deference timeout
        // (3 s) the next-highest address reclaims the role.
        engine
            .component_as_mut::<TestHost>(hosts[2])
            .unwrap()
            .nic
            .set_can_map(false);
        engine.run_until(SimTime::from_secs(9));
        assert!(
            nic(&engine, hosts[1]).is_mapper(),
            "host 1 must take over mapping"
        );
        assert!(!nic(&engine, hosts[0]).is_mapper());
        // And the network keeps working: fresh maps exist.
        let map = nic(&engine, hosts[1]).last_map().unwrap();
        assert_eq!(map.node_count(), 3);
    }

    #[test]
    fn nic_rx_buffer_overflows_without_flow_control() {
        // Bypass the network: deliver packets directly, faster than the
        // drain rate, with a tiny buffer and no STOP path (unwired egress
        // drops the flow symbols) — the receive buffer must overflow.
        let cfg = InterfaceConfig::new(
            NodeAddress(1),
            EthAddr::myricom(1),
            (0, 0),
            Topology::single_switch(4),
        );
        let mut engine: Engine<Ev> = Engine::new();
        let h = engine.add_component(Box::new(TestHost {
            nic: {
                let mut n = HostInterface::new(cfg);
                n.set_rx_params(2048, 1536, 512, 100_000_000);
                n
            },
            delivered: Vec::new(),
        }));
        let payload = {
            let header = EthHeader {
                dest: EthAddr::myricom(1),
                src: EthAddr::myricom(2),
            };
            let mut p = header.encode().to_vec();
            p.extend_from_slice(&[0u8; 500]);
            p
        };
        let pkt = Packet::new(vec![crate::packet::route_to_host(0)], PacketType::DATA, payload);
        for k in 0..8u64 {
            engine.schedule(
                SimTime::from_us(k), // 8 packets in 8 µs >> drain rate
                h,
                Ev::Rx {
                    port: 0,
                    frame: Frame::packet(pkt.encode()),
                },
            );
        }
        engine.run_until(SimTime::from_ms(2));
        let n = nic(&engine, h);
        assert!(n.stats().rx_overflow_drops > 0, "{:?}", n.stats());
        // Everything not overflowed was eventually delivered.
        let h_ref = engine.component_as::<TestHost>(h).unwrap();
        assert_eq!(
            h_ref.delivered.len() as u64 + n.stats().rx_overflow_drops,
            8
        );
    }

    #[test]
    fn spurious_gap_truncates_packet_at_nic() {
        let (mut engine, _, hosts) = build_net(2);
        engine.run_until(SimTime::from_secs(2));
        // Deliver a GAP, then a packet whose serialization window covers
        // the GAP's arrival time.
        let t = engine.now();
        engine.schedule(
            t + SimDuration::from_ns(100),
            hosts[0],
            Ev::Rx {
                port: 0,
                frame: Frame::control(netfi_phy::ControlSymbol::Gap),
            },
        );
        let pkt = Packet::new(
            vec![crate::packet::route_to_host(0)],
            PacketType::DATA,
            {
                let header = EthHeader {
                    dest: EthAddr::myricom(1),
                    src: EthAddr::myricom(2),
                };
                let mut p = header.encode().to_vec();
                p.extend_from_slice(&[0u8; 400]); // ~5 µs window at 640 Mb/s
                p
            },
        );
        engine.schedule(
            t + SimDuration::from_us(2),
            hosts[0],
            Ev::Rx {
                port: 0,
                frame: Frame::packet(pkt.encode()),
            },
        );
        engine.run_until(t + SimDuration::from_ms(1));
        let n = nic(&engine, hosts[0]);
        assert_eq!(n.stats().rx_truncated, 1, "{:?}", n.stats());
        assert_eq!(n.stats().rx_delivered, 0);
    }

    #[test]
    fn eth_header_roundtrip() {
        let h = EthHeader {
            dest: EthAddr::myricom(1),
            src: EthAddr::myricom(2),
        };
        let enc = h.encode();
        assert_eq!(EthHeader::from_slice(&enc), Some(h));
        assert_eq!(EthHeader::from_slice(&enc[..11]), None);
    }

    #[test]
    fn timer_routing_ignores_stale_generations() {
        let (mut engine, _, hosts) = build_net(2);
        engine.run_until(SimTime::from_secs(2));
        let built_before = nic(&engine, hosts[1]).stats().maps_built;
        // A stale SCOUT_WINDOW timer must not rebuild the map.
        engine.schedule(
            engine.now(),
            hosts[1],
            Ev::Timer {
                kind: timer_kind(timer_class::SCOUT_WINDOW, 0),
                gen: 0,
            },
        );
        engine.run_until(engine.now() + SimDuration::from_ms(1));
        assert_eq!(nic(&engine, hosts[1]).stats().maps_built, built_before);
        // sanity: kinds split correctly
        assert_eq!(
            split_timer_kind(timer_kind(timer_class::SCOUT_WINDOW, 0)),
            (timer_class::SCOUT_WINDOW, 0)
        );
    }
}
