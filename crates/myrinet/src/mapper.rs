//! Network maps and route computation.
//!
//! "Each MCP on a network is given a unique 64-bit address, and the MCP
//! with the highest address is responsible for mapping the network, a
//! process which is performed once every second" (§4.1). The mapper probes
//! switch ports with scout packets, collects replies, and builds a
//! [`NetworkMap`]; routes are then computed over the switch fabric and
//! distributed. Figure 11 of the paper contrasts a healthy map with the
//! corrupted maps produced when a node's address collides with the
//! controller's — [`NetworkMap::render`] reproduces that view.
//!
//! A modelling note: real Myrinet mappers discover switch adjacency by
//! recursive scouting; here the static switch fabric (a [`Topology`]) is
//! given to the mapper by the network builder, while *host* discovery still
//! happens with real scout/reply packets that the fault injector can
//! corrupt. This preserves every §4.3.2/§4.3.3 behaviour the paper
//! exercises.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use crate::addr::{EthAddr, NodeAddress};
use crate::packet::{route_to_host, route_to_switch};

/// A host attachment point: `(switch index, port)`.
pub type Attachment = (u8, u8);

/// Static description of the switch fabric.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// Ports per switch, indexed by switch id.
    pub switch_ports: Vec<u8>,
    /// Inter-switch cables: pairs of attachments.
    pub trunks: Vec<(Attachment, Attachment)>,
}

impl Topology {
    /// A single switch with `ports` ports — the paper's test bed (Fig 10).
    pub fn single_switch(ports: u8) -> Topology {
        Topology {
            switch_ports: vec![ports],
            trunks: Vec::new(),
        }
    }

    /// Two switches joined by one trunk.
    pub fn dual_switch(ports: u8, trunk_a: u8, trunk_b: u8) -> Topology {
        Topology {
            switch_ports: vec![ports, ports],
            trunks: vec![((0, trunk_a), (1, trunk_b))],
        }
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switch_ports.len()
    }

    /// `true` if `(switch, port)` is one end of an inter-switch trunk.
    pub fn is_trunk_port(&self, at: Attachment) -> bool {
        self.trunks.iter().any(|&(a, b)| a == at || b == at)
    }

    /// `true` if `(switch, port)` exists in this fabric.
    pub fn contains(&self, at: Attachment) -> bool {
        self.switch_ports
            .get(at.0 as usize)
            .is_some_and(|&ports| at.1 < ports)
    }

    /// Every `(switch, port)` that could hold a host (non-trunk ports).
    pub fn host_ports(&self) -> Vec<Attachment> {
        let mut out = Vec::new();
        for (s, &nports) in self.switch_ports.iter().enumerate() {
            for p in 0..nports {
                let at = (s as u8, p);
                if !self.is_trunk_port(at) {
                    out.push(at);
                }
            }
        }
        out
    }

    /// The port sequence (per switch) from switch `from` to switch `to`,
    /// found by breadth-first search over trunks. Empty when `from == to`;
    /// `None` when unreachable.
    fn switch_path(&self, from: u8, to: u8) -> Option<Vec<u8>> {
        if from == to {
            return Some(Vec::new());
        }
        let n = self.switch_count();
        let mut prev: Vec<Option<(u8, u8)>> = vec![None; n]; // (prev switch, exit port)
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[from as usize] = true;
        queue.push_back(from);
        while let Some(s) = queue.pop_front() {
            for &((sa, pa), (sb, pb)) in &self.trunks {
                for ((s1, p1), (s2, _)) in [((sa, pa), (sb, pb)), ((sb, pb), (sa, pa))] {
                    if s1 == s && !seen[s2 as usize] {
                        seen[s2 as usize] = true;
                        prev[s2 as usize] = Some((s, p1));
                        queue.push_back(s2);
                    }
                }
            }
        }
        if !seen[to as usize] {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = to;
        while cur != from {
            let (p, exit) = prev[cur as usize]?;
            path.push(exit);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Computes the source route from a host at `from` to a host at `to`.
    ///
    /// The result is the byte sequence placed at the head of a packet:
    /// switch-bound bytes (MSB set) for each inter-switch hop, then the
    /// final host byte (MSB clear).
    ///
    /// Returns `None` if the switches are not connected or `from == to`.
    pub fn route_between(&self, from: Attachment, to: Attachment) -> Option<Vec<u8>> {
        if from == to {
            return None;
        }
        // Defensive: corrupted mapping traffic can advertise attachments
        // outside the fabric; those are unroutable, not panics.
        if !self.contains(from) || !self.contains(to) {
            return None;
        }
        let hops = self.switch_path(from.0, to.0)?;
        let mut route: Vec<u8> = hops.into_iter().map(route_to_switch).collect();
        route.push(route_to_host(to.1));
        Some(route)
    }
}

/// What the mapper learned about one attachment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeInfo {
    /// The node's 64-bit MCP address.
    pub addr: NodeAddress,
    /// The node's 48-bit physical address.
    pub eth: EthAddr,
}

/// One generation of the network map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkMap {
    /// Mapping round that produced this map.
    pub epoch: u32,
    /// Nodes by attachment. Keyed by port, not by address — "the network
    /// map is developed using relative destination ports, instead of unique
    /// addresses" (§4.3.3).
    pub nodes: BTreeMap<Attachment, NodeInfo>,
}

impl NetworkMap {
    /// Creates an empty map for `epoch`.
    pub fn new(epoch: u32) -> NetworkMap {
        NetworkMap {
            epoch,
            nodes: BTreeMap::new(),
        }
    }

    /// Number of mapped nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Finds the attachment advertising `eth`, if any.
    pub fn find_eth(&self, eth: EthAddr) -> Option<Attachment> {
        self.nodes
            .iter()
            .find_map(|(&at, info)| (info.eth == eth).then_some(at))
    }

    /// `true` when both maps contain the same nodes at the same
    /// attachments (epochs may differ) — the consistency check used to
    /// reproduce Figure 11's "unable to generate a consistent map".
    pub fn consistent_with(&self, other: &NetworkMap) -> bool {
        self.nodes == other.nodes
    }

    /// Renders the map in the style of Figure 11.
    pub fn render(&self, topology: &Topology) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "network map (epoch {})", self.epoch);
        for (s, &nports) in topology.switch_ports.iter().enumerate() {
            let _ = write!(out, "  sw{s}:");
            for p in 0..nports {
                let at = (s as u8, p);
                if topology.is_trunk_port(at) {
                    let _ = write!(out, " p{p}=<trunk>");
                } else if let Some(info) = self.nodes.get(&at) {
                    let _ = write!(out, " p{p}={}", info.eth);
                } else {
                    let _ = write!(out, " p{p}=-");
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

impl fmt::Display for NetworkMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "map[epoch={} nodes={}]", self.epoch, self.nodes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(n: u64) -> NodeInfo {
        NodeInfo {
            addr: NodeAddress(n),
            eth: EthAddr::myricom(n as u32),
        }
    }

    #[test]
    fn single_switch_routes() {
        let topo = Topology::single_switch(8);
        let route = topo.route_between((0, 0), (0, 3)).unwrap();
        assert_eq!(route, vec![route_to_host(3)]);
        assert_eq!(topo.route_between((0, 2), (0, 2)), None);
    }

    #[test]
    fn dual_switch_routes_cross_trunk() {
        let topo = Topology::dual_switch(8, 7, 7);
        // host at (0,0) to host at (1,2): exit sw0 via port 7, then host 2.
        let route = topo.route_between((0, 0), (1, 2)).unwrap();
        assert_eq!(route, vec![route_to_switch(7), route_to_host(2)]);
        // same-switch stays local.
        let local = topo.route_between((1, 0), (1, 1)).unwrap();
        assert_eq!(local, vec![route_to_host(1)]);
    }

    #[test]
    fn disconnected_switches_unroutable() {
        let topo = Topology {
            switch_ports: vec![4, 4],
            trunks: Vec::new(),
        };
        assert_eq!(topo.route_between((0, 0), (1, 0)), None);
    }

    #[test]
    fn host_ports_exclude_trunks() {
        let topo = Topology::dual_switch(4, 3, 0);
        let ports = topo.host_ports();
        assert!(!ports.contains(&(0, 3)));
        assert!(!ports.contains(&(1, 0)));
        assert_eq!(ports.len(), 6);
    }

    #[test]
    fn map_find_and_consistency() {
        let mut a = NetworkMap::new(1);
        a.nodes.insert((0, 0), info(1));
        a.nodes.insert((0, 1), info(2));
        let mut b = NetworkMap::new(2);
        b.nodes.insert((0, 0), info(1));
        b.nodes.insert((0, 1), info(2));
        assert!(a.consistent_with(&b)); // epoch ignored
        assert_eq!(a.find_eth(EthAddr::myricom(2)), Some((0, 1)));
        assert_eq!(a.find_eth(EthAddr::myricom(9)), None);
        b.nodes.remove(&(0, 1));
        assert!(!a.consistent_with(&b));
    }

    #[test]
    fn render_shows_nodes_and_gaps() {
        let topo = Topology::single_switch(4);
        let mut m = NetworkMap::new(7);
        m.nodes.insert((0, 1), info(5));
        let s = m.render(&topo);
        assert!(s.contains("epoch 7"));
        assert!(s.contains("p1=00:60:dd:00:00:05"));
        assert!(s.contains("p0=-"));
    }

    #[test]
    fn render_marks_trunks() {
        let topo = Topology::dual_switch(2, 1, 1);
        let m = NetworkMap::new(0);
        let s = m.render(&topo);
        assert!(s.contains("p1=<trunk>"));
        assert!(s.contains("sw1:"));
    }

    #[test]
    fn three_switch_chain_routes() {
        let topo = Topology {
            switch_ports: vec![4, 4, 4],
            trunks: vec![((0, 3), (1, 0)), ((1, 3), (2, 0))],
        };
        let route = topo.route_between((0, 0), (2, 2)).unwrap();
        assert_eq!(
            route,
            vec![route_to_switch(3), route_to_switch(3), route_to_host(2)]
        );
    }
}
