//! `netfi-myrinet` — a discrete-event Myrinet network simulator.
//!
//! The paper demonstrates its fault injector on a Myrinet LAN (one 8-port
//! switch, three hosts); since no Myrinet hardware exists here, this crate
//! implements the network itself, from the paper's own description of the
//! technology (§4.1, after \[Bod95\]):
//!
//! - [`packet`]: the packet format (source route / 4-byte type / payload /
//!   trailing CRC-8) and relative source routing with per-hop route-byte
//!   stripping and CRC recomputation.
//! - [`crc8`]: the trailing CRC-8 (ATM-HEC polynomial).
//! - [`addr`]: 64-bit MCP addresses (mapper election) and 48-bit physical
//!   addresses (§4.3.3).
//! - [`frame`] / [`event`]: link transmission units and the component/port
//!   wiring vocabulary on top of `netfi-sim`.
//! - [`sbuf`]: the slack buffer with high/low watermarks generating
//!   STOP/GO (Figure 9).
//! - [`egress`]: the sender-side flow-control state machine with the
//!   16-character-period short timeout.
//! - [`switch`]: the crossbar switch with wormhole path holding and the
//!   ~50 ms long-period reclamation timeout.
//! - [`interface`]: the host interface (LANai + MCP): reception checks,
//!   routing tables, counters.
//! - [`mcp`]: mapping-protocol messages (scouts, replies, route
//!   distribution) and the mapper state machine — "the MCP with the highest
//!   address is responsible for mapping the network, … performed once every
//!   second".
//! - [`mapper`]: the network map structure and route computation, including
//!   the rendering used to reproduce Figure 11.
//! - [`monitor`]: `mmon`-style status snapshots.
//!
//! # Modelling notes (deviations recorded in DESIGN.md)
//!
//! - Links carry *frames* (a whole packet plus its terminating control
//!   symbol, or a standalone control symbol) rather than individual 9-bit
//!   characters; the injector device remains segment-accurate internally.
//! - The final route byte is consumed by the destination interface rather
//!   than the last switch, which preserves the §4.3.2 observable behaviour
//!   (route-MSB errors are "consumed and handled as an error" at the
//!   interface).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod addr;
pub mod crc8;
pub mod egress;
pub mod event;
pub mod frame;
pub mod interface;
pub mod mapper;
pub mod mcp;
pub mod monitor;
pub mod packet;
pub mod sbuf;
pub mod switch;

pub use addr::{EthAddr, NodeAddress};
pub use event::{connect, Attach, Ev, PortPeer};
pub use frame::{Frame, PacketFrame};
pub use interface::HostInterface;
pub use packet::{Packet, PacketType};
pub use switch::{Switch, SwitchConfig};
