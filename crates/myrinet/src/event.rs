//! The event vocabulary shared by every component in a Myrinet simulation.
//!
//! The engine is instantiated as `Engine<Ev>`; switches, host interfaces,
//! the fault injector and traffic generators all exchange [`Ev`] values.
//! Wiring is by *ports*: each component numbers its link attachment points,
//! and [`connect`] ties two ports together over a [`Link`], after which the
//! sender schedules `Ev::Rx` events at the peer with serialization plus
//! propagation delay.

use std::any::Any;
use std::fmt;

use netfi_phy::Link;
use netfi_sim::{ComponentId, Engine, Fork, Probe, SharedBytes, SimDuration};

use crate::addr::EthAddr;
use crate::frame::Frame;

/// A type-erased application message carried by [`Ev::App`].
///
/// Blanket-implemented for every `Any + Send + Clone` type, so call sites
/// construct messages exactly as they would a `Box<dyn Any>`:
/// `Ev::App(Box::new(value))`. The extra [`fork_app`](AppMsg::fork_app)
/// method is the type-erased seam that lets [`Ev`] implement
/// [`netfi_sim::Fork`]: an engine snapshot must deep-copy pending app
/// events without knowing their concrete types.
pub trait AppMsg: Any + Send {
    /// Deep, deterministic copy of the message (see [`netfi_sim::Fork`]).
    fn fork_app(&self) -> Box<dyn AppMsg>;
    /// Converts the box into `Box<dyn Any>` for downcasting.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<T: Any + Send + Clone> AppMsg for T {
    fn fork_app(&self) -> Box<dyn AppMsg> {
        Box::new(self.clone())
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl dyn AppMsg {
    /// Downcasts the boxed message to a concrete type, mirroring
    /// `Box<dyn Any>::downcast` so receiver call sites keep their shape.
    ///
    /// # Errors
    ///
    /// Returns the message back (as `Box<dyn Any>`) if it is not a `T`.
    pub fn downcast<T: Any>(self: Box<Self>) -> Result<Box<T>, Box<dyn Any>> {
        self.into_any().downcast()
    }
}

/// An event delivered to a component.
pub enum Ev {
    /// A frame arriving on one of the component's input ports.
    Rx {
        /// The receiving port on the destination component.
        port: u8,
        /// The arriving frame.
        frame: Frame,
    },
    /// A timer the component scheduled for itself. `kind` namespaces the
    /// timer, `gen` is a generation counter for cancellation-by-staleness.
    Timer {
        /// Component-defined timer class.
        kind: u32,
        /// Generation at scheduling time; stale generations are ignored.
        gen: u64,
    },
    /// A received payload crossing from the NIC to the host's application
    /// layer (scheduled after the receive overhead). The hot receive path:
    /// carried inline, no boxing.
    Deliver {
        /// Source physical address.
        src: EthAddr,
        /// Bytes above the link header — a window into the wire image.
        data: SharedBytes,
    },
    /// A transmit request crossing from the host's application layer to
    /// the NIC (scheduled after the send overhead). The hot send path:
    /// carried inline, no boxing. `tag` is opaque application context
    /// (netstack packs the UDP port pair into it).
    Send {
        /// Destination physical address.
        dest: EthAddr,
        /// Application-defined context carried alongside the payload.
        tag: u32,
        /// Payload bytes to transmit.
        payload: SharedBytes,
    },
    /// A byte arriving on a serial (RS-232) configuration line.
    Serial(u8),
    /// An application-level event; hosts downcast to their own types.
    /// Control-plane only (workload start, harness commands) — the
    /// per-packet paths use [`Ev::Deliver`] and [`Ev::Send`]. [`AppMsg`]
    /// is `Send` (so the vocabulary crosses shard-worker boundaries) and
    /// forkable (so pending app events survive an engine snapshot).
    App(Box<dyn AppMsg>),
}

impl Fork for Ev {
    fn fork(&self) -> Self {
        match self {
            Ev::Rx { port, frame } => Ev::Rx {
                port: *port,
                frame: frame.clone(),
            },
            Ev::Timer { kind, gen } => Ev::Timer {
                kind: *kind,
                gen: *gen,
            },
            // SharedBytes is copy-on-write: the refcount bump is a correct
            // deep copy (writers copy first), so forks stay independent.
            Ev::Deliver { src, data } => Ev::Deliver {
                src: *src,
                data: data.fork(),
            },
            Ev::Send { dest, tag, payload } => Ev::Send {
                dest: *dest,
                tag: *tag,
                payload: payload.fork(),
            },
            Ev::Serial(b) => Ev::Serial(*b),
            Ev::App(msg) => Ev::App(msg.fork_app()),
        }
    }
}

impl fmt::Debug for Ev {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ev::Rx { port, frame } => f.debug_struct("Rx").field("port", port).field("frame", frame).finish(),
            Ev::Timer { kind, gen } => f.debug_struct("Timer").field("kind", kind).field("gen", gen).finish(),
            Ev::Deliver { src, data } => f
                .debug_struct("Deliver")
                .field("src", src)
                .field("len", &data.len())
                .finish(),
            Ev::Send { dest, tag, payload } => f
                .debug_struct("Send")
                .field("dest", dest)
                .field("tag", tag)
                .field("len", &payload.len())
                .finish(),
            Ev::Serial(b) => f.debug_tuple("Serial").field(b).finish(),
            Ev::App(_) => f.write_str("App(..)"),
        }
    }
}

/// The far side of a wired port.
#[derive(Debug, Clone, Copy)]
pub struct PortPeer {
    /// Component on the other end of the link.
    pub dst: ComponentId,
    /// The peer's port number.
    pub dst_port: u8,
    /// The link's physical parameters (bandwidth, propagation, BER).
    pub link: Link,
}

impl PortPeer {
    /// Serialization time for `chars` characters on this link.
    pub fn tx_time(&self, chars: usize) -> SimDuration {
        self.link.transfer_time(chars)
    }

    /// One-way propagation delay of the link.
    pub fn propagation(&self) -> SimDuration {
        self.link.propagation_delay()
    }
}

/// Implemented by every component that exposes wirable ports.
pub trait Attach: 'static {
    /// Installs the peer for `port`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `port` is out of range for the component.
    fn attach_port(&mut self, port: u8, peer: PortPeer);
}

/// Error from [`connect`]: a component id did not resolve to the expected
/// concrete type (stale id, or the wrong type parameter at the call site).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectError {
    /// The offending component id.
    pub id: ComponentId,
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "component {} is not the expected type", self.id)
    }
}

impl std::error::Error for ConnectError {}

/// Wires `a.port_a` to `b.port_b` over `link`, in both directions.
///
/// # Errors
///
/// Returns [`ConnectError`] if either component id does not refer to a
/// component of the given concrete type. The first endpoint may already be
/// attached when the second one fails.
pub fn connect<A: Attach, B: Attach, P: Probe>(
    engine: &mut Engine<Ev, P>,
    (a, port_a): (ComponentId, u8),
    (b, port_b): (ComponentId, u8),
    link: &Link,
) -> Result<(), ConnectError> {
    let ca = engine
        .component_as_mut::<A>(a)
        .ok_or(ConnectError { id: a })?;
    ca.attach_port(
        port_a,
        PortPeer {
            dst: b,
            dst_port: port_b,
            link: *link,
        },
    );
    let cb = engine
        .component_as_mut::<B>(b)
        .ok_or(ConnectError { id: b })?;
    cb.attach_port(
        port_b,
        PortPeer {
            dst: a,
            dst_port: port_a,
            link: *link,
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfi_phy::ControlSymbol;
    use netfi_sim::{Component, Context};

    #[derive(Clone)]
    struct Probe {
        ports: Vec<Option<PortPeer>>,
        rx: Vec<(u8, Frame)>,
    }

    impl Probe {
        fn new(nports: usize) -> Probe {
            Probe {
                ports: vec![None; nports],
                rx: Vec::new(),
            }
        }
    }

    impl Attach for Probe {
        fn attach_port(&mut self, port: u8, peer: PortPeer) {
            self.ports[port as usize] = Some(peer);
        }
    }

    impl Component<Ev> for Probe {
        fn on_event(&mut self, _ctx: &mut Context<'_, Ev>, ev: Ev) {
            if let Ev::Rx { port, frame } = ev {
                self.rx.push((port, frame));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn fork(&self) -> Box<dyn Component<Ev>> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn connect_wires_both_directions() {
        let mut engine: Engine<Ev> = Engine::new();
        let a = engine.add_component(Box::new(Probe::new(2)));
        let b = engine.add_component(Box::new(Probe::new(1)));
        let link = Link::myrinet_san(3.0);
        connect::<Probe, Probe, _>(&mut engine, (a, 1), (b, 0), &link).unwrap();

        let pa = engine.component_as::<Probe>(a).unwrap();
        let peer = pa.ports[1].as_ref().unwrap();
        assert_eq!(peer.dst, b);
        assert_eq!(peer.dst_port, 0);

        let pb = engine.component_as::<Probe>(b).unwrap();
        let peer = pb.ports[0].as_ref().unwrap();
        assert_eq!(peer.dst, a);
        assert_eq!(peer.dst_port, 1);
    }

    struct NotAProbe;

    impl Component<Ev> for NotAProbe {
        fn on_event(&mut self, _ctx: &mut Context<'_, Ev>, _ev: Ev) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn fork(&self) -> Box<dyn Component<Ev>> {
            Box::new(NotAProbe)
        }
    }

    #[test]
    fn connect_reports_wrong_type() {
        let mut engine: Engine<Ev> = Engine::new();
        let a = engine.add_component(Box::new(Probe::new(1)));
        let b = engine.add_component(Box::new(NotAProbe));
        let link = Link::myrinet_san(1.0);
        let err = connect::<Probe, Probe, _>(&mut engine, (a, 0), (b, 0), &link).unwrap_err();
        assert_eq!(err.id, b);
        assert!(err.to_string().contains("not the expected type"));
    }

    #[test]
    fn port_peer_timing() {
        let peer = PortPeer {
            dst: {
                let mut e: Engine<Ev> = Engine::new();
                e.add_component(Box::new(Probe::new(1)))
            },
            dst_port: 0,
            link: Link::myrinet_san(2.0),
        };
        assert_eq!(peer.propagation().as_ps(), 10_000);
        assert_eq!(peer.tx_time(16).as_ps(), 100_000);
    }

    #[test]
    fn rx_event_delivery() {
        let mut engine: Engine<Ev> = Engine::new();
        let a = engine.add_component(Box::new(Probe::new(1)));
        engine.schedule(
            netfi_sim::SimTime::ZERO,
            a,
            Ev::Rx {
                port: 0,
                frame: Frame::control(ControlSymbol::Go),
            },
        );
        engine.run();
        let p = engine.component_as::<Probe>(a).unwrap();
        assert_eq!(p.rx.len(), 1);
        assert_eq!(p.rx[0].0, 0);
        assert_eq!(p.rx[0].1.as_control(), Some(ControlSymbol::Go));
    }

    #[test]
    fn ev_debug_representations() {
        let s = format!("{:?}", Ev::Serial(0x41));
        assert!(s.contains("Serial"));
        let t = format!("{:?}", Ev::Timer { kind: 3, gen: 9 });
        assert!(t.contains("Timer"));
        let a = format!("{:?}", Ev::App(Box::new(5u32)));
        assert!(a.contains("App"));
    }

    #[test]
    fn ev_fork_preserves_every_variant() {
        let rx = Ev::Rx {
            port: 2,
            frame: Frame::control(ControlSymbol::Go),
        };
        match rx.fork() {
            Ev::Rx { port, frame } => {
                assert_eq!(port, 2);
                assert_eq!(frame.as_control(), Some(ControlSymbol::Go));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let app = Ev::App(Box::new(42u32));
        match app.fork() {
            Ev::App(msg) => assert_eq!(*msg.downcast::<u32>().unwrap(), 42),
            other => panic!("wrong variant: {other:?}"),
        }
        // The original is still intact after the fork.
        match app {
            Ev::App(msg) => assert_eq!(*msg.downcast::<u32>().unwrap(), 42),
            other => panic!("wrong variant: {other:?}"),
        }
        let send = Ev::Send {
            dest: EthAddr::myricom(7),
            tag: 9,
            payload: SharedBytes::from(vec![1, 2, 3]),
        };
        match send.fork() {
            Ev::Send { dest, tag, payload } => {
                assert_eq!(dest, EthAddr::myricom(7));
                assert_eq!(tag, 9);
                assert_eq!(&*payload, &[1, 2, 3]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
