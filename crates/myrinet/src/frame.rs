//! Link transmission units.
//!
//! At frame granularity a Myrinet link carries two kinds of unit (paper
//! Figure 8): data packets — each normally terminated by a GAP control
//! symbol — and standalone control symbols (STOP / GO / IDLE) interleaved
//! with the packet stream by the flow-control hardware.
//!
//! The terminator travels *with* the packet frame here, as a raw control
//! code, so the fault injector can corrupt it exactly as the hardware
//! device corrupts the GAP character on the wire: a packet whose
//! terminator no longer decodes as GAP leaves its wormhole path occupied
//! (§4.3.1, "source blocking").

use netfi_phy::ControlSymbol;
use netfi_sim::SharedBytes;

/// A packet as it travels a link: its raw wire image plus the control
/// symbol that terminates it.
///
/// The wire image is a [`SharedBytes`], so cloning a frame (switch
/// fan-out, capture snapshots, retransmission queues) bumps a reference
/// count instead of copying the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketFrame {
    /// The wire image: route bytes, type, payload, trailing CRC.
    pub bytes: SharedBytes,
    /// Raw code of the terminating control symbol, if one was transmitted.
    /// Normally `Some(0x0C)` (GAP); the injector may corrupt or swallow it.
    pub terminator: Option<u8>,
}

impl PacketFrame {
    /// A packet frame with the normal GAP terminator.
    pub fn new(bytes: impl Into<SharedBytes>) -> PacketFrame {
        PacketFrame {
            bytes: bytes.into(),
            terminator: Some(ControlSymbol::Gap.encode()),
        }
    }

    /// `true` if the terminator still decodes (tolerantly) as GAP.
    pub fn gap_terminated(&self) -> bool {
        self.terminator
            .and_then(ControlSymbol::decode_tolerant)
            == Some(ControlSymbol::Gap)
    }

    /// Wire length in characters: packet bytes plus the terminator.
    pub fn wire_len(&self) -> usize {
        self.bytes.len() + usize::from(self.terminator.is_some())
    }
}

/// One unit on a link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A data packet (with its terminator).
    Packet(PacketFrame),
    /// A standalone control symbol, as a raw 8-bit code.
    Control(u8),
}

impl Frame {
    /// A standalone control-symbol frame with the canonical encoding.
    pub fn control(sym: ControlSymbol) -> Frame {
        Frame::Control(sym.encode())
    }

    /// A GAP-terminated packet frame.
    pub fn packet(bytes: impl Into<SharedBytes>) -> Frame {
        Frame::Packet(PacketFrame::new(bytes))
    }

    /// Wire length in characters.
    pub fn wire_len(&self) -> usize {
        match self {
            Frame::Packet(p) => p.wire_len(),
            Frame::Control(_) => 1,
        }
    }

    /// Decodes a standalone control frame (tolerantly).
    pub fn as_control(&self) -> Option<ControlSymbol> {
        match self {
            Frame::Control(code) => ControlSymbol::decode_tolerant(*code),
            Frame::Packet(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_frame_defaults_to_gap() {
        let f = PacketFrame::new(vec![1, 2, 3]);
        assert!(f.gap_terminated());
        assert_eq!(f.wire_len(), 4);
    }

    #[test]
    fn corrupted_terminator_not_gap() {
        let mut f = PacketFrame::new(vec![1, 2, 3]);
        f.terminator = Some(ControlSymbol::Stop.encode());
        assert!(!f.gap_terminated());
        // A tolerated single 1->0 fault on GAP still reads as GAP.
        f.terminator = Some(0x04); // one bit from GAP (0x0C)
        assert!(f.gap_terminated());
    }

    #[test]
    fn swallowed_terminator() {
        let mut f = PacketFrame::new(vec![1, 2, 3]);
        f.terminator = None;
        assert!(!f.gap_terminated());
        assert_eq!(f.wire_len(), 3);
    }

    #[test]
    fn control_frame_decoding() {
        assert_eq!(
            Frame::control(ControlSymbol::Stop).as_control(),
            Some(ControlSymbol::Stop)
        );
        assert_eq!(Frame::Control(0xAA).as_control(), None);
        assert_eq!(Frame::packet(vec![1]).as_control(), None);
    }

    #[test]
    fn wire_lengths() {
        assert_eq!(Frame::control(ControlSymbol::Go).wire_len(), 1);
        assert_eq!(Frame::packet(vec![0; 10]).wire_len(), 11);
    }
}
