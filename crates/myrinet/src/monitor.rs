//! `mmon`-style monitoring.
//!
//! The paper's campaign watched "the status of the network and the
//! associated information (like routing tables and control registers) …
//! with the Myrinet monitoring program mmon" (§4.1). This module defines
//! the snapshot structures that experiment harnesses fill from live
//! components and render for inspection.

use std::collections::BTreeMap;
use std::fmt;

use crate::addr::{EthAddr, NodeAddress};
use crate::interface::{HostInterface, InterfaceStats};
use crate::mapper::NetworkMap;
use crate::switch::{Switch, SwitchStats};

/// Snapshot of one host interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceSnapshot {
    /// The MCP address.
    pub addr: NodeAddress,
    /// Current physical-address register.
    pub eth: EthAddr,
    /// Whether this node currently holds the mapper role.
    pub is_mapper: bool,
    /// Routing table contents.
    pub routes: BTreeMap<EthAddr, Vec<u8>>,
    /// Interface counters.
    pub stats: InterfaceStats,
    /// Nodes present per the last Routes broadcast.
    pub present: Vec<EthAddr>,
}

impl InterfaceSnapshot {
    /// Captures a snapshot from a live interface.
    pub fn capture(nic: &HostInterface) -> InterfaceSnapshot {
        InterfaceSnapshot {
            addr: nic.node_addr(),
            eth: nic.eth_addr(),
            is_mapper: nic.is_mapper(),
            routes: nic.routing_table().clone(),
            stats: nic.stats(),
            present: nic.present_nodes().to_vec(),
        }
    }
}

impl fmt::Display for InterfaceSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "node {} eth={}{}",
            self.addr,
            self.eth,
            if self.is_mapper { " [mapper]" } else { "" }
        )?;
        writeln!(
            f,
            "  rx: delivered={} crc_drops={} misaddr={} route_err={} unknown_type={}",
            self.stats.rx_delivered,
            self.stats.rx_crc_drops,
            self.stats.rx_misaddressed,
            self.stats.rx_route_errors,
            self.stats.rx_unknown_type
        )?;
        writeln!(
            f,
            "  tx: data={} no_route={}",
            self.stats.tx_data, self.stats.tx_no_route
        )?;
        for (dest, route) in &self.routes {
            let hops: Vec<String> = route.iter().map(|b| format!("{b:02x}")).collect();
            writeln!(f, "  route {dest} via [{}]", hops.join(" "))?;
        }
        Ok(())
    }
}

/// Snapshot of one switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchSnapshot {
    /// Switch name.
    pub name: String,
    /// Aggregate counters.
    pub stats: SwitchStats,
    /// Slack-buffer overflow total.
    pub sbuf_overflows: u64,
    /// STOP symbols generated toward senders.
    pub stops_generated: u64,
}

impl SwitchSnapshot {
    /// Captures a snapshot from a live switch.
    pub fn capture(sw: &Switch) -> SwitchSnapshot {
        SwitchSnapshot {
            name: sw.name().to_string(),
            stats: sw.stats(),
            sbuf_overflows: sw.total_sbuf_overflows(),
            stops_generated: sw.total_stops_generated(),
        }
    }
}

impl fmt::Display for SwitchSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "switch {}: forwarded={} overflow={} framing={} misroute={} long_timeouts={}",
            self.name,
            self.stats.forwarded,
            self.stats.overflow_drops,
            self.stats.framing_drops,
            self.stats.misroute_drops,
            self.stats.long_timeout_releases
        )
    }
}

/// A full `mmon`-style view: all interfaces, all switches, plus the
/// mapper's network map if one exists.
#[derive(Debug, Clone, Default)]
pub struct MmonReport {
    /// Per-interface snapshots.
    pub interfaces: Vec<InterfaceSnapshot>,
    /// Per-switch snapshots.
    pub switches: Vec<SwitchSnapshot>,
    /// The mapper's latest map.
    pub map: Option<NetworkMap>,
}

impl MmonReport {
    /// Folds every snapshot's counters into an obs [`Registry`], keyed
    /// `interface.<counter>` / `switch.<counter>`, summed across
    /// components. Gauges record fabric-wide state: node count, mapper
    /// presence, and the map epoch when a map is attached.
    ///
    /// [`Registry`]: netfi_obs::Registry
    pub fn to_registry(&self) -> netfi_obs::Registry {
        let mut reg = netfi_obs::Registry::new();
        for nic in &self.interfaces {
            let s = &nic.stats;
            reg.add("interface.tx_data", s.tx_data);
            reg.add("interface.tx_no_route", s.tx_no_route);
            reg.add("interface.rx_delivered", s.rx_delivered);
            reg.add("interface.rx_crc_drops", s.rx_crc_drops);
            reg.add("interface.rx_route_errors", s.rx_route_errors);
            reg.add("interface.rx_misaddressed", s.rx_misaddressed);
            reg.add("interface.rx_unknown_type", s.rx_unknown_type);
            reg.add("interface.rx_malformed", s.rx_malformed);
            reg.add("interface.rx_overflow_drops", s.rx_overflow_drops);
            reg.add("interface.rx_truncated", s.rx_truncated);
            reg.add("interface.scouts_answered", s.scouts_answered);
            reg.add("interface.maps_built", s.maps_built);
            reg.add("interface.inconsistent_maps", s.inconsistent_maps);
            reg.add("interface.routes_installed", s.routes_installed);
        }
        for sw in &self.switches {
            let s = &sw.stats;
            reg.add("switch.forwarded", s.forwarded);
            reg.add("switch.overflow_drops", s.overflow_drops);
            reg.add("switch.framing_drops", s.framing_drops);
            reg.add("switch.truncation_drops", s.truncation_drops);
            reg.add("switch.misroute_drops", s.misroute_drops);
            reg.add("switch.malformed_drops", s.malformed_drops);
            reg.add("switch.long_timeout_releases", s.long_timeout_releases);
            reg.add("switch.gap_releases", s.gap_releases);
            reg.add("switch.sbuf_overflows", sw.sbuf_overflows);
            reg.add("switch.stops_generated", sw.stops_generated);
        }
        reg.set_gauge("net.interfaces", self.interfaces.len() as i64);
        reg.set_gauge("net.switches", self.switches.len() as i64);
        reg.set_gauge(
            "net.mappers",
            self.interfaces.iter().filter(|n| n.is_mapper).count() as i64,
        );
        if let Some(map) = &self.map {
            reg.set_gauge("net.map_epoch", i64::from(map.epoch));
            reg.set_gauge("net.map_nodes", map.nodes.len() as i64);
        }
        reg
    }
}

impl fmt::Display for MmonReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== mmon report ===")?;
        for nic in &self.interfaces {
            write!(f, "{nic}")?;
        }
        for sw in &self.switches {
            write!(f, "{sw}")?;
        }
        if let Some(map) = &self.map {
            writeln!(f, "{map}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::InterfaceConfig;
    use crate::mapper::Topology;
    use crate::switch::SwitchConfig;

    #[test]
    fn interface_snapshot_captures_registers() {
        let nic = HostInterface::new(InterfaceConfig::new(
            NodeAddress(7),
            EthAddr::myricom(1),
            (0, 0),
            Topology::single_switch(8),
        ));
        let snap = InterfaceSnapshot::capture(&nic);
        assert_eq!(snap.addr, NodeAddress(7));
        assert_eq!(snap.eth, EthAddr::myricom(1));
        assert!(snap.is_mapper); // can_map defaults to true
        assert!(snap.routes.is_empty());
        let text = snap.to_string();
        assert!(text.contains("eth=00:60:dd:00:00:01"));
        assert!(text.contains("[mapper]"));
    }

    #[test]
    fn switch_snapshot_captures_counters() {
        let sw = Switch::new("swX", 4, SwitchConfig::default());
        let snap = SwitchSnapshot::capture(&sw);
        assert_eq!(snap.name, "swX");
        assert_eq!(snap.stats.forwarded, 0);
        assert!(snap.to_string().contains("switch swX"));
    }

    #[test]
    fn report_renders_all_sections() {
        let sw = Switch::new("s", 4, SwitchConfig::default());
        let nic = HostInterface::new(InterfaceConfig::new(
            NodeAddress(1),
            EthAddr::myricom(2),
            (0, 1),
            Topology::single_switch(4),
        ));
        let report = MmonReport {
            interfaces: vec![InterfaceSnapshot::capture(&nic)],
            switches: vec![SwitchSnapshot::capture(&sw)],
            map: Some(NetworkMap::new(3)),
        };
        let text = report.to_string();
        assert!(text.contains("mmon report"));
        assert!(text.contains("switch s"));
        assert!(text.contains("epoch=3") || text.contains("epoch 3") || text.contains("map[epoch=3"));
    }

    #[test]
    fn registry_sums_counters_across_components() {
        let sw = Switch::new("s", 4, SwitchConfig::default());
        let mk = |a: u64, n: u32| {
            let mut snap = InterfaceSnapshot::capture(&HostInterface::new(InterfaceConfig::new(
                NodeAddress(a),
                EthAddr::myricom(n),
                (0, n as u8),
                Topology::single_switch(4),
            )));
            snap.stats.rx_delivered = 10;
            snap.stats.rx_crc_drops = u64::from(n);
            snap
        };
        let report = MmonReport {
            interfaces: vec![mk(1, 1), mk(2, 2)],
            switches: vec![SwitchSnapshot::capture(&sw)],
            map: Some(NetworkMap::new(5)),
        };
        let reg = report.to_registry();
        assert_eq!(reg.counter("interface.rx_delivered"), 20);
        assert_eq!(reg.counter("interface.rx_crc_drops"), 3);
        assert_eq!(reg.counter("switch.forwarded"), 0);
        assert_eq!(reg.gauge("net.interfaces"), Some(2));
        assert_eq!(reg.gauge("net.map_epoch"), Some(5));
    }
}
