//! The Myrinet trailing CRC-8.
//!
//! Every Myrinet packet ends with a single CRC byte covering the whole
//! packet (source route, packet type and payload). Because switches strip
//! one route byte per hop, "after each byte is removed, the trailing CRC-8
//! is recomputed" (paper §4.1) — so this module provides both one-shot and
//! streaming computation. The polynomial is the CCITT ATM-HEC polynomial
//! x⁸ + x² + x + 1 (`0x07`), the code Myrinet uses.

/// The CRC-8 generator polynomial, x⁸ + x² + x + 1.
pub const POLYNOMIAL: u8 = 0x07;

/// Slice-by-8 lookup tables, built at compile time. `TABLES[0]` is the
/// classic byte-at-a-time table (the effect of one byte on the register);
/// `TABLES[k]` is that effect propagated through `k` further zero bytes,
/// so eight input bytes fold into the register with eight independent
/// lookups per iteration instead of a serial dependency chain.
const TABLES: [[u8; 256]; 8] = build_tables();

const fn build_tables() -> [[u8; 256]; 8] {
    let mut tables = [[0u8; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ POLYNOMIAL
            } else {
                crc << 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            tables[k][i] = tables[0][tables[k - 1][i] as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// Folds `data` into the running register value, eight bytes at a time.
///
/// The CRC update is linear over GF(2), so the register after eight bytes
/// is the XOR of each byte's contribution shifted to its position — one
/// table per position.
fn update(mut crc: u8, data: &[u8]) -> u8 {
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        crc = TABLES[7][(crc ^ c[0]) as usize]
            ^ TABLES[6][c[1] as usize]
            ^ TABLES[5][c[2] as usize]
            ^ TABLES[4][c[3] as usize]
            ^ TABLES[3][c[4] as usize]
            ^ TABLES[2][c[5] as usize]
            ^ TABLES[1][c[6] as usize]
            ^ TABLES[0][c[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = TABLES[0][(crc ^ b) as usize];
    }
    crc
}

/// Computes the CRC-8 of `data` (initial value 0).
///
/// # Example
///
/// ```
/// use netfi_myrinet::crc8;
/// let crc = crc8::checksum(b"123456789");
/// assert_eq!(crc, 0xF4); // the CRC-8/ATM check value
/// ```
pub fn checksum(data: &[u8]) -> u8 {
    update(0, data)
}

/// Verifies a buffer whose final byte is its CRC.
///
/// A property of this CRC: appending the correct CRC byte drives the
/// register to zero.
pub fn verify(data_with_crc: &[u8]) -> bool {
    !data_with_crc.is_empty() && checksum(data_with_crc) == 0
}

/// A streaming CRC-8 accumulator.
///
/// # Example
///
/// ```
/// use netfi_myrinet::crc8::{self, Crc8};
/// let mut acc = Crc8::new();
/// acc.update(b"1234");
/// acc.update(b"56789");
/// assert_eq!(acc.finish(), crc8::checksum(b"123456789"));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Crc8 {
    crc: u8,
}

impl Crc8 {
    /// Creates an accumulator at the initial state.
    pub fn new() -> Crc8 {
        Crc8 { crc: 0 }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.crc = update(self.crc, data);
    }

    /// The CRC of everything fed so far.
    pub fn finish(self) -> u8 {
        self.crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original bit-serial implementation, kept as the reference the
    /// slice-by-8 path is checked bit-identical against.
    fn checksum_bitwise(data: &[u8]) -> u8 {
        let mut crc = 0u8;
        for &b in data {
            crc ^= b;
            for _ in 0..8 {
                crc = if crc & 0x80 != 0 {
                    (crc << 1) ^ POLYNOMIAL
                } else {
                    crc << 1
                };
            }
        }
        crc
    }

    #[test]
    fn slice_by_8_matches_reference_on_random_inputs() {
        let mut rng = netfi_sim::DetRng::new(0xC8C8_0001);
        for len in 0..64usize {
            for _ in 0..8 {
                let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
                assert_eq!(checksum(&data), checksum_bitwise(&data), "len {len}");
            }
        }
        // Longer, unaligned lengths crossing several 8-byte chunks.
        for len in [65usize, 127, 128, 129, 1000, 1023] {
            let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            assert_eq!(checksum(&data), checksum_bitwise(&data), "len {len}");
        }
    }

    #[test]
    fn slice_by_8_matches_reference_on_boundary_inputs() {
        for pattern in [0x00u8, 0xFF, 0xAA, 0x55, 0x80, 0x01] {
            for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33] {
                let data = vec![pattern; len];
                assert_eq!(
                    checksum(&data),
                    checksum_bitwise(&data),
                    "pattern {pattern:02x} len {len}"
                );
            }
        }
    }

    #[test]
    fn known_check_value() {
        // CRC-8 (poly 0x07, init 0, no reflection, no xor-out) of
        // "123456789" is 0xF4.
        assert_eq!(checksum(b"123456789"), 0xF4);
    }

    #[test]
    fn empty_input() {
        assert_eq!(checksum(&[]), 0);
    }

    #[test]
    fn appended_crc_verifies() {
        let mut buf = b"hello myrinet".to_vec();
        let crc = checksum(&buf);
        buf.push(crc);
        assert!(verify(&buf));
    }

    #[test]
    fn verify_rejects_empty() {
        assert!(!verify(&[]));
    }

    #[test]
    fn single_bit_errors_always_detected() {
        // CRC-8 detects all single-bit errors.
        let mut buf = b"some packet payload data".to_vec();
        let crc = checksum(&buf);
        buf.push(crc);
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut corrupted = buf.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(!verify(&corrupted), "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn burst_errors_up_to_8_bits_detected() {
        // CRC-8 detects all burst errors of length <= 8.
        let mut buf = vec![0xA5; 32];
        let crc = checksum(&buf);
        buf.push(crc);
        for start in 0..(buf.len() * 8 - 8) {
            // an 8-bit burst with both endpoints flipped
            let mut corrupted = buf.clone();
            for offset in [0usize, 3, 7] {
                let bit = start + offset;
                corrupted[bit / 8] ^= 1 << (bit % 8);
            }
            assert!(!verify(&corrupted), "missed burst at {start}");
        }
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255).collect();
        for split in [0usize, 1, 17, 128, 255, 256] {
            let mut acc = Crc8::new();
            acc.update(&data[..split]);
            acc.update(&data[split..]);
            assert_eq!(acc.finish(), checksum(&data));
        }
    }

    #[test]
    fn route_byte_strip_recompute() {
        // The switch behaviour: strip the leading byte, recompute.
        let packet = b"\x81\x00\x00\x00\x04payload".to_vec();
        let crc_full = checksum(&packet);
        let stripped = &packet[1..];
        let crc_stripped = checksum(stripped);
        // Both are valid CRCs of their respective contents.
        let mut full = packet.clone();
        full.push(crc_full);
        assert!(verify(&full));
        let mut short = stripped.to_vec();
        short.push(crc_stripped);
        assert!(verify(&short));
        assert_ne!(crc_full, crc_stripped);
    }
}
