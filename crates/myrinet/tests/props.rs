//! Property-based tests for the Myrinet substrate.

use proptest::prelude::*;

use netfi_myrinet::addr::{EthAddr, NodeAddress};
use netfi_myrinet::crc8;
use netfi_myrinet::frame::{Frame, PacketFrame};
use netfi_myrinet::mapper::Topology;
use netfi_myrinet::mcp::MapMsg;
use netfi_myrinet::packet::{
    route_to_host, route_to_switch, wire, Packet, PacketError, PacketType,
};
use netfi_myrinet::sbuf::{Accept, SlackBuffer};

fn arb_eth() -> impl Strategy<Value = EthAddr> {
    any::<[u8; 6]>().prop_map(EthAddr::new)
}

fn arb_route() -> impl Strategy<Value = Vec<u8>> {
    (proptest::collection::vec(0u8..0x3F, 0..4), 0u8..0x3F).prop_map(|(hops, last)| {
        let mut route: Vec<u8> = hops.into_iter().map(route_to_switch).collect();
        route.push(route_to_host(last));
        route
    })
}

proptest! {
    /// CRC-8 detects any single bit flip anywhere in a packet.
    #[test]
    fn crc8_detects_any_single_flip(
        data in proptest::collection::vec(any::<u8>(), 1..128),
        bit in any::<usize>()
    ) {
        let mut buf = data;
        let crc = crc8::checksum(&buf);
        buf.push(crc);
        let bit = bit % (buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(!crc8::verify(&buf));
    }

    /// Streaming CRC equals one-shot CRC for any split.
    #[test]
    fn crc8_streaming_equivalence(
        data in proptest::collection::vec(any::<u8>(), 0..256),
        split in any::<proptest::sample::Index>()
    ) {
        let cut = if data.is_empty() { 0 } else { split.index(data.len()) };
        let mut acc = crc8::Crc8::new();
        acc.update(&data[..cut]);
        acc.update(&data[cut..]);
        prop_assert_eq!(acc.finish(), crc8::checksum(&data));
    }

    /// Any packet encodes to a CRC-valid wire image, and after stripping
    /// every switch-bound route byte the destination interface parses it
    /// back with the original type and payload.
    #[test]
    fn packet_route_consumption_roundtrip(
        route in arb_route(),
        ptype in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        let hops = route.len() - 1;
        let pkt = Packet::new(route.clone(), PacketType(ptype), payload.clone());
        let mut w = pkt.encode();
        prop_assert!(wire::crc_ok(&w));
        for _ in 0..hops {
            w = wire::strip_route_byte(&w).unwrap();
            prop_assert!(wire::crc_ok(&w));
        }
        let delivered = Packet::parse_delivered(&w).unwrap();
        prop_assert_eq!(delivered.ptype, PacketType(ptype));
        prop_assert_eq!(delivered.payload, payload);
        prop_assert_eq!(delivered.route, vec![*route.last().unwrap()]);
    }

    /// A corrupted byte anywhere in the delivered image is rejected
    /// (BadCrc), unless it is the route byte's MSB region where the MSB
    /// rule fires first — either way, never silently accepted.
    #[test]
    fn corrupted_delivery_never_accepted(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        byte in any::<proptest::sample::Index>(),
        bit in 0u8..8
    ) {
        let pkt = Packet::new(vec![route_to_host(1)], PacketType::DATA, payload);
        let mut w = pkt.encode();
        let idx = byte.index(w.len());
        w[idx] ^= 1 << bit;
        match Packet::parse_delivered(&w) {
            Err(PacketError::BadCrc) | Err(PacketError::RouteMsbSet) => {}
            Ok(_) => prop_assert!(false, "corruption accepted"),
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    /// Mapping messages roundtrip for arbitrary field values.
    #[test]
    fn mapmsg_scout_roundtrip(
        epoch in any::<u32>(),
        mapper in any::<u64>(),
        target in (any::<u8>(), any::<u8>()),
        reply_route in proptest::collection::vec(any::<u8>(), 0..16)
    ) {
        let msg = MapMsg::Scout {
            epoch,
            mapper: NodeAddress(mapper),
            target,
            reply_route,
        };
        prop_assert_eq!(MapMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn mapmsg_routes_roundtrip(
        epoch in any::<u32>(),
        mapper in any::<u64>(),
        entries in proptest::collection::vec(
            (arb_eth(), proptest::collection::vec(any::<u8>(), 0..8)),
            0..8
        ),
        present in proptest::collection::vec(arb_eth(), 0..8)
    ) {
        let msg = MapMsg::Routes {
            epoch,
            mapper: NodeAddress(mapper),
            entries,
            present,
        };
        prop_assert_eq!(MapMsg::decode(&msg.encode()).unwrap(), msg);
    }

    /// Truncating any mapping message is always detected.
    #[test]
    fn mapmsg_truncation_detected(
        epoch in any::<u32>(),
        addr in any::<u64>(),
        eth in arb_eth(),
        cut in any::<proptest::sample::Index>()
    ) {
        let msg = MapMsg::Reply {
            epoch,
            target: (0, 1),
            addr: NodeAddress(addr),
            eth,
        };
        let bytes = msg.encode();
        let cut = cut.index(bytes.len());
        prop_assert!(MapMsg::decode(&bytes[..cut]).is_err());
    }

    /// Slack-buffer invariants: occupancy never exceeds capacity, STOP is
    /// pending whenever an accept leaves occupancy at/above the high
    /// watermark, GO whenever a drain reaches the low watermark from a
    /// stopped state.
    #[test]
    fn sbuf_invariants(ops in proptest::collection::vec((any::<bool>(), 1usize..512), 1..200)) {
        let mut buf = SlackBuffer::new(4096, 3072, 1024);
        let mut modeled = 0usize;
        for (is_accept, size) in ops {
            if is_accept {
                match buf.try_accept(size) {
                    Accept::Stored => {
                        modeled += size;
                        if modeled >= 3072 {
                            prop_assert_eq!(
                                buf.poll_flow(),
                                Some(netfi_phy::ControlSymbol::Stop)
                            );
                        }
                    }
                    Accept::Overflow => {
                        prop_assert!(modeled + size > 4096, "spurious overflow");
                    }
                }
            } else {
                let drain = size.min(buf.occupancy());
                let was_stopped = buf.upstream_stopped();
                if drain > 0 {
                    buf.drain(drain);
                    modeled -= drain;
                    if was_stopped && modeled <= 1024 {
                        prop_assert_eq!(
                            buf.poll_flow(),
                            Some(netfi_phy::ControlSymbol::Go)
                        );
                    }
                }
            }
            prop_assert_eq!(buf.occupancy(), modeled);
            prop_assert!(buf.occupancy() <= buf.capacity());
        }
    }

    /// Route computation: any two distinct attachments on a connected
    /// topology produce a route ending with a host byte (MSB clear) whose
    /// switch hops all carry the MSB.
    #[test]
    fn topology_routes_well_formed(
        from_port in 0u8..6,
        to_port in 0u8..6,
        from_sw in 0u8..2,
        to_sw in 0u8..2
    ) {
        let topo = Topology::dual_switch(8, 7, 7);
        let from = (from_sw, from_port);
        let to = (to_sw, to_port);
        match topo.route_between(from, to) {
            None => prop_assert_eq!(from, to),
            Some(route) => {
                prop_assert!(!route.is_empty());
                let (last, hops) = route.split_last().unwrap();
                prop_assert_eq!(last & 0x80, 0, "final byte targets a host");
                for h in hops {
                    prop_assert_eq!(h & 0x80, 0x80, "intermediate hops target switches");
                }
                prop_assert_eq!(last & 0x3F, to.1);
            }
        }
    }

    /// Frame wire length equals packet bytes plus terminator presence.
    #[test]
    fn frame_wire_len(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        term in proptest::option::of(any::<u8>())
    ) {
        let pf = PacketFrame { bytes: bytes.clone(), terminator: term };
        prop_assert_eq!(pf.wire_len(), bytes.len() + usize::from(term.is_some()));
        prop_assert_eq!(Frame::Packet(pf).wire_len(), bytes.len() + usize::from(term.is_some()));
    }
}
