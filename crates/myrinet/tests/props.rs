//! Randomized property tests for the Myrinet substrate, driven by seeded
//! loops over [`DetRng`] (no external dependencies).

use netfi_myrinet::addr::{EthAddr, NodeAddress};
use netfi_myrinet::crc8;
use netfi_myrinet::frame::{Frame, PacketFrame};
use netfi_myrinet::mapper::Topology;
use netfi_myrinet::mcp::MapMsg;
use netfi_myrinet::packet::{
    route_to_host, route_to_switch, wire, Packet, PacketError, PacketType,
};
use netfi_myrinet::sbuf::{Accept, SlackBuffer};
use netfi_sim::DetRng;

const CASES: usize = 256;

fn random_bytes(rng: &mut DetRng, min_len: usize, max_len: usize) -> Vec<u8> {
    let len = min_len + rng.gen_index(max_len - min_len + 1);
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

fn random_eth(rng: &mut DetRng) -> EthAddr {
    let mut b = [0u8; 6];
    rng.fill_bytes(&mut b);
    EthAddr::new(b)
}

fn random_route(rng: &mut DetRng) -> Vec<u8> {
    let hops = rng.gen_index(4);
    let mut route: Vec<u8> = (0..hops)
        .map(|_| route_to_switch(rng.gen_range(0..0x3F) as u8))
        .collect();
    route.push(route_to_host(rng.gen_range(0..0x3F) as u8));
    route
}

/// CRC-8 detects any single bit flip anywhere in a packet.
#[test]
fn crc8_detects_any_single_flip() {
    let mut rng = DetRng::new(0xC8C8_0001);
    for _ in 0..CASES {
        let mut buf = random_bytes(&mut rng, 1, 128);
        let crc = crc8::checksum(&buf);
        buf.push(crc);
        let bit = rng.gen_index(buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        assert!(!crc8::verify(&buf));
    }
}

/// Streaming CRC equals one-shot CRC for any split.
#[test]
fn crc8_streaming_equivalence() {
    let mut rng = DetRng::new(0xC8C8_0002);
    for _ in 0..CASES {
        let data = random_bytes(&mut rng, 0, 256);
        let cut = if data.is_empty() {
            0
        } else {
            rng.gen_index(data.len())
        };
        let mut acc = crc8::Crc8::new();
        acc.update(&data[..cut]);
        acc.update(&data[cut..]);
        assert_eq!(acc.finish(), crc8::checksum(&data));
    }
}

/// Any packet encodes to a CRC-valid wire image, and after stripping
/// every switch-bound route byte the destination interface parses it back
/// with the original type and payload.
#[test]
fn packet_route_consumption_roundtrip() {
    let mut rng = DetRng::new(0xC8C8_0003);
    for _ in 0..CASES {
        let route = random_route(&mut rng);
        let ptype = rng.next_u32();
        let payload = random_bytes(&mut rng, 0, 256);
        let hops = route.len() - 1;
        let pkt = Packet::new(route.clone(), PacketType(ptype), payload.clone());
        let mut w = pkt.encode();
        assert!(wire::crc_ok(&w));
        for _ in 0..hops {
            w = wire::strip_route_byte(&w).unwrap();
            assert!(wire::crc_ok(&w));
        }
        let delivered = Packet::parse_delivered(&w).unwrap();
        assert_eq!(delivered.ptype, PacketType(ptype));
        assert_eq!(delivered.payload, payload);
        assert_eq!(delivered.route, vec![*route.last().unwrap()]);
    }
}

/// A corrupted byte anywhere in the delivered image is rejected (BadCrc),
/// unless it is the route byte's MSB region where the MSB rule fires
/// first — either way, never silently accepted.
#[test]
fn corrupted_delivery_never_accepted() {
    let mut rng = DetRng::new(0xC8C8_0004);
    for _ in 0..CASES {
        let payload = random_bytes(&mut rng, 1, 64);
        let pkt = Packet::new(vec![route_to_host(1)], PacketType::DATA, payload);
        let mut w = pkt.encode();
        let idx = rng.gen_index(w.len());
        let bit = rng.gen_index(8);
        w[idx] ^= 1 << bit;
        match Packet::parse_delivered(&w) {
            Err(PacketError::BadCrc) | Err(PacketError::RouteMsbSet) => {}
            Ok(_) => panic!("corruption accepted"),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
}

/// Mapping messages roundtrip for arbitrary field values.
#[test]
fn mapmsg_scout_roundtrip() {
    let mut rng = DetRng::new(0xC8C8_0005);
    for _ in 0..CASES {
        let msg = MapMsg::Scout {
            epoch: rng.next_u32(),
            mapper: NodeAddress(rng.next_u64()),
            target: (rng.next_u32() as u8, rng.next_u32() as u8),
            reply_route: random_bytes(&mut rng, 0, 16),
        };
        assert_eq!(MapMsg::decode(&msg.encode()).unwrap(), msg);
    }
}

#[test]
fn mapmsg_routes_roundtrip() {
    let mut rng = DetRng::new(0xC8C8_0006);
    for _ in 0..CASES {
        let entries: Vec<(EthAddr, Vec<u8>)> = (0..rng.gen_index(8))
            .map(|_| {
                let eth = random_eth(&mut rng);
                let route = random_bytes(&mut rng, 0, 8);
                (eth, route)
            })
            .collect();
        let present: Vec<EthAddr> = (0..rng.gen_index(8))
            .map(|_| random_eth(&mut rng))
            .collect();
        let msg = MapMsg::Routes {
            epoch: rng.next_u32(),
            mapper: NodeAddress(rng.next_u64()),
            entries,
            present,
        };
        assert_eq!(MapMsg::decode(&msg.encode()).unwrap(), msg);
    }
}

/// Truncating any mapping message is always detected.
#[test]
fn mapmsg_truncation_detected() {
    let mut rng = DetRng::new(0xC8C8_0007);
    for _ in 0..CASES {
        let msg = MapMsg::Reply {
            epoch: rng.next_u32(),
            target: (0, 1),
            addr: NodeAddress(rng.next_u64()),
            eth: random_eth(&mut rng),
        };
        let bytes = msg.encode();
        let cut = rng.gen_index(bytes.len());
        assert!(MapMsg::decode(&bytes[..cut]).is_err());
    }
}

/// Slack-buffer invariants: occupancy never exceeds capacity, STOP is
/// pending whenever an accept leaves occupancy at/above the high
/// watermark, GO whenever a drain reaches the low watermark from a
/// stopped state.
#[test]
fn sbuf_invariants() {
    let mut rng = DetRng::new(0xC8C8_0008);
    for _ in 0..CASES {
        let ops = 1 + rng.gen_index(199);
        let mut buf = SlackBuffer::new(4096, 3072, 1024);
        let mut modeled = 0usize;
        for _ in 0..ops {
            let is_accept = rng.gen_bool(0.5);
            let size = 1 + rng.gen_index(511);
            if is_accept {
                match buf.try_accept(size) {
                    Accept::Stored => {
                        modeled += size;
                        if modeled >= 3072 {
                            assert_eq!(buf.poll_flow(), Some(netfi_phy::ControlSymbol::Stop));
                        }
                    }
                    Accept::Overflow => {
                        assert!(modeled + size > 4096, "spurious overflow");
                    }
                }
            } else {
                let drain = size.min(buf.occupancy());
                let was_stopped = buf.upstream_stopped();
                if drain > 0 {
                    buf.drain(drain);
                    modeled -= drain;
                    if was_stopped && modeled <= 1024 {
                        assert_eq!(buf.poll_flow(), Some(netfi_phy::ControlSymbol::Go));
                    }
                }
            }
            assert_eq!(buf.occupancy(), modeled);
            assert!(buf.occupancy() <= buf.capacity());
        }
    }
}

/// Route computation: any two distinct attachments on a connected
/// topology produce a route ending with a host byte (MSB clear) whose
/// switch hops all carry the MSB.
#[test]
fn topology_routes_well_formed() {
    let topo = Topology::dual_switch(8, 7, 7);
    for from_sw in 0u8..2 {
        for to_sw in 0u8..2 {
            for from_port in 0u8..6 {
                for to_port in 0u8..6 {
                    let from = (from_sw, from_port);
                    let to = (to_sw, to_port);
                    match topo.route_between(from, to) {
                        None => assert_eq!(from, to),
                        Some(route) => {
                            assert!(!route.is_empty());
                            let (last, hops) = route.split_last().unwrap();
                            assert_eq!(last & 0x80, 0, "final byte targets a host");
                            for h in hops {
                                assert_eq!(h & 0x80, 0x80, "intermediate hops target switches");
                            }
                            assert_eq!(last & 0x3F, to.1);
                        }
                    }
                }
            }
        }
    }
}

/// Frame wire length equals packet bytes plus terminator presence.
#[test]
fn frame_wire_len() {
    let mut rng = DetRng::new(0xC8C8_0009);
    for _ in 0..CASES {
        let bytes = random_bytes(&mut rng, 0, 64);
        let term = if rng.gen_bool(0.5) {
            Some(rng.next_u32() as u8)
        } else {
            None
        };
        let pf = PacketFrame {
            bytes: bytes.clone().into(),
            terminator: term,
        };
        assert_eq!(pf.wire_len(), bytes.len() + usize::from(term.is_some()));
        assert_eq!(
            Frame::Packet(pf).wire_len(),
            bytes.len() + usize::from(term.is_some())
        );
    }
}
