//! `netfi-detect` — the failure *analysis* layer of the reproduction.
//!
//! The source paper's title promises monitoring **and failure analysis**;
//! the rest of the workspace builds the injection, capture and sampling
//! machinery. This crate closes the loop with two deterministic analyses:
//!
//! - [`accrual`] — a φ-accrual failure detector (after Satzger et al.'s
//!   adaptive accrual algorithm): per-peer inter-arrival histograms over a
//!   sliding window, suspicion computed in pure `SimTime` fixed-point
//!   arithmetic — no floats in any ordering, no wall clock — so detection
//!   output is byte-identical across worker counts.
//! - [`topo`] — graph analytics over generated fabrics: articulation-point
//!   SPOF detection (iterative Tarjan, no recursion), per-node
//!   disconnection-fraction risk levels, redundancy factor (edge-disjoint
//!   path count) and diameter, emitted as a deterministic report.
//! - [`heartbeat`] — the [`heartbeat::Heartbeater`] app component that
//!   drives periodic datagrams through the real host/netstack/Myrinet
//!   datapath, giving the accrual detectors a live arrival stream.
//!
//! The detection *campaign* — injecting faults into forks of a warm fabric
//! and measuring detection latency per threshold — lives in
//! `nftape::detection`, which depends on this crate.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod accrual;
pub mod heartbeat;
pub mod topo;

pub use accrual::{AccrualDetector, Phi, SuspicionEvent, SuspicionMonitor};
pub use heartbeat::{HeartbeatCmd, HeartbeatPlan, Heartbeater, HEARTBEAT_PORT};
pub use topo::{analyze, NodeKind, Risk, TopoGraph, TopoReport};
