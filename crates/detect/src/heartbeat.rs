//! Heartbeat generation over the simulated datapath.
//!
//! The accrual detectors in [`crate::accrual`] judge *arrival streams*;
//! this module produces them. A [`Heartbeater`] is a simulation component
//! that commands each monitored host to send a small UDP datagram to its
//! peer every `interval` — the datagram rides the real host → NIC → leaf →
//! spine → leaf datapath, so link severs, power-offs and injector
//! corruption all silence it exactly the way they would silence real
//! traffic. Receivers need no new code: the host stack already counts and
//! flight-records every checksum-valid datagram, and the campaign's poll
//! loop reads those rings.
//!
//! The payload is 16 bytes: big-endian pair index and sequence number,
//! round-tripped by [`heartbeat_payload`] / [`decode_heartbeat`].

use netfi_myrinet::addr::EthAddr;
use netfi_myrinet::egress::timer_class;
use netfi_myrinet::event::Ev;
use netfi_netstack::{HostCmd, UdpDatagram};
use netfi_sim::{Component, ComponentId, Context, SimDuration};

use std::any::Any;

/// Destination UDP port heartbeats are addressed to. Unclaimed by the
/// host stack's services (echo, ping, sink), so arrivals are counted and
/// flight-recorded but never answered.
pub const HEARTBEAT_PORT: u16 = 4747;

/// Source port stamped on every heartbeat.
pub const HEARTBEAT_SRC_PORT: u16 = 4748;

/// Encoded heartbeat payload length.
pub const HEARTBEAT_LEN: usize = 16;

/// Timer kind the heartbeater schedules for itself: an app-defined class
/// with a zero port byte (the `timer_kind(class, 0)` encoding, spelled
/// out because `timer_kind` is not `const`).
const HEARTBEAT_TIMER: u32 = timer_class::APP_BASE + 3;

/// Encodes a heartbeat payload: big-endian pair index then sequence.
pub fn heartbeat_payload(pair: u64, seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEARTBEAT_LEN);
    out.extend_from_slice(&pair.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out
}

/// Decodes a heartbeat payload back into `(pair, seq)`.
///
/// Returns `None` unless the payload is exactly [`HEARTBEAT_LEN`] bytes —
/// a corrupted-but-checksum-valid delivery of some other datagram must
/// not masquerade as a heartbeat.
pub fn decode_heartbeat(payload: &[u8]) -> Option<(u64, u64)> {
    if payload.len() != HEARTBEAT_LEN {
        return None;
    }
    let mut pair = [0u8; 8];
    let mut seq = [0u8; 8];
    pair.copy_from_slice(&payload[..8]);
    seq.copy_from_slice(&payload[8..]);
    Some((u64::from_be_bytes(pair), u64::from_be_bytes(seq)))
}

/// Control-plane commands for a [`Heartbeater`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatCmd {
    /// Begin the heartbeat schedule.
    Start,
}

/// What a [`Heartbeater`] drives: one entry per monitored pair.
#[derive(Debug, Clone)]
pub struct HeartbeatPlan {
    /// `(sending host component, destination MAC)` per pair; the pair
    /// index in this list is the index carried in the payload.
    pub pairs: Vec<(ComponentId, EthAddr)>,
    /// Beat period per pair.
    pub interval: SimDuration,
    /// Per-pair phase offset: pair `i` first beats at
    /// `start + i × stagger + interval`, so beats never synchronize into
    /// a burst.
    pub stagger: SimDuration,
}

/// A simulation component that periodically commands hosts to emit
/// heartbeat datagrams.
///
/// One heartbeater drives every pair in its [`HeartbeatPlan`]; each beat
/// is an [`HostCmd::SendUdp`] sent to the pair's source host, which
/// transmits through its own configured route (the campaign uses the
/// stride peer, whose route the fabric generator already installed). A
/// powered-off host ignores the command — its heartbeats stop, which is
/// the point.
///
/// State is plain owned data, so `fork` is `Box::new(self.clone())` and a
/// snapshot taken mid-schedule resumes bit-identically.
#[derive(Debug, Clone)]
pub struct Heartbeater {
    plan: HeartbeatPlan,
    /// Next sequence number per pair.
    seq: Vec<u64>,
}

impl Heartbeater {
    /// Creates a heartbeater for `plan`. Send it
    /// [`HeartbeatCmd::Start`] (wrapped in [`Ev::App`]) to begin.
    pub fn new(plan: HeartbeatPlan) -> Heartbeater {
        let pairs = plan.pairs.len();
        Heartbeater {
            plan,
            seq: vec![0; pairs],
        }
    }

    /// Sequence number the next beat of `pair` will carry.
    pub fn next_seq(&self, pair: usize) -> u64 {
        self.seq[pair]
    }

    fn beat(&mut self, ctx: &mut Context<'_, Ev>, pair: usize) {
        let (host, dest) = self.plan.pairs[pair];
        let datagram = UdpDatagram::new(
            HEARTBEAT_SRC_PORT,
            HEARTBEAT_PORT,
            heartbeat_payload(pair as u64, self.seq[pair]),
        );
        self.seq[pair] += 1;
        ctx.send_now(host, Ev::App(Box::new(HostCmd::SendUdp { dest, datagram })));
        ctx.send_self(
            self.plan.interval,
            Ev::Timer {
                kind: HEARTBEAT_TIMER,
                gen: pair as u64,
            },
        );
    }
}

impl Component<Ev> for Heartbeater {
    fn on_event(&mut self, ctx: &mut Context<'_, Ev>, payload: Ev) {
        match payload {
            Ev::App(msg) => {
                if let Ok(cmd) = msg.downcast::<HeartbeatCmd>() {
                    match *cmd {
                        HeartbeatCmd::Start => {
                            for pair in 0..self.plan.pairs.len() {
                                let phase = self
                                    .plan
                                    .stagger
                                    .checked_mul(pair as u64)
                                    .unwrap_or(SimDuration::from_ps(0));
                                ctx.send_self(
                                    self.plan.interval + phase,
                                    Ev::Timer {
                                        kind: HEARTBEAT_TIMER,
                                        gen: pair as u64,
                                    },
                                );
                            }
                        }
                    }
                }
            }
            Ev::Timer { kind, gen } if kind == HEARTBEAT_TIMER => {
                let pair = gen as usize;
                if pair < self.plan.pairs.len() {
                    self.beat(ctx, pair);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn fork(&self) -> Box<dyn Component<Ev>> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        for (pair, seq) in [(0u64, 0u64), (7, 1), (99, u64::MAX), (u64::MAX, 42)] {
            let p = heartbeat_payload(pair, seq);
            assert_eq!(p.len(), HEARTBEAT_LEN);
            assert_eq!(decode_heartbeat(&p), Some((pair, seq)));
        }
    }

    #[test]
    fn wrong_length_is_rejected() {
        assert_eq!(decode_heartbeat(&[0u8; 15]), None);
        assert_eq!(decode_heartbeat(&[0u8; 17]), None);
        assert_eq!(decode_heartbeat(&[]), None);
    }

    #[test]
    fn heartbeat_datagram_survives_udp_encoding() {
        let d = UdpDatagram::new(
            HEARTBEAT_SRC_PORT,
            HEARTBEAT_PORT,
            heartbeat_payload(3, 12),
        );
        let wire = d.encode();
        let back = UdpDatagram::decode(&wire).expect("valid datagram");
        assert_eq!(back.dst_port, HEARTBEAT_PORT);
        assert_eq!(decode_heartbeat(&back.payload), Some((3, 12)));
    }
}
