//! Topology analytics: SPOF detection, risk grading, redundancy, diameter.
//!
//! [`analyze`] takes an undirected [`TopoGraph`] — hosts and switches as
//! nodes, links as edges — and produces a deterministic [`TopoReport`]:
//!
//! - **SPOFs**: articulation points found by an *iterative* Tarjan
//!   depth-first search (an explicit frame stack — the determinism scope
//!   also means "no stack overflow on a 1,000-host fabric").
//! - **Risk levels**: for each SPOF, the fraction of the remaining nodes
//!   disconnected by its removal, graded Critical / High / Medium / Low.
//! - **Redundancy factor**: the mean edge-disjoint path count between
//!   switch pairs (unit-capacity max-flow), in thousandths.
//! - **Diameter**: the longest shortest path, in hops.
//! - **Health score**: 0–100, starting at 100 and deducting per SPOF by
//!   risk grade.
//!
//! Everything is integer arithmetic over sorted adjacency, so the same
//! graph always renders the same report bytes.
//!
//! ```
//! use netfi_detect::topo::{analyze, NodeKind, TopoGraph};
//!
//! // Two hosts hanging off one switch: the switch is the only SPOF.
//! let mut g = TopoGraph::new();
//! let h0 = g.add_node("h0", NodeKind::Host);
//! let sw = g.add_node("sw", NodeKind::Switch);
//! let h1 = g.add_node("h1", NodeKind::Host);
//! g.add_edge(h0, sw);
//! g.add_edge(sw, h1);
//!
//! let report = analyze(&g);
//! assert_eq!(report.spofs.len(), 1);
//! assert_eq!(report.spofs[0].name, "sw");
//! assert_eq!(report.diameter, 2);
//! ```

use std::fmt;

/// What a graph node models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NodeKind {
    /// An end host (leaf of the fabric).
    Host,
    /// A switch (interior node).
    Switch,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Host => f.write_str("host"),
            NodeKind::Switch => f.write_str("switch"),
        }
    }
}

/// An undirected multigraph of named hosts and switches.
///
/// Node indices are assigned in insertion order; adjacency preserves edge
/// insertion order. Parallel edges are allowed and counted (a dual-homed
/// trunk is real redundancy).
#[derive(Debug, Clone, Default)]
pub struct TopoGraph {
    names: Vec<String>,
    kinds: Vec<NodeKind>,
    adj: Vec<Vec<usize>>,
    edges: usize,
}

impl TopoGraph {
    /// An empty graph.
    pub fn new() -> TopoGraph {
        TopoGraph::default()
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> usize {
        self.names.push(name.into());
        self.kinds.push(kind);
        self.adj.push(Vec::new());
        self.names.len() - 1
    }

    /// Adds an undirected edge between existing nodes `a` and `b`.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a < self.adj.len() && b < self.adj.len(), "edge endpoints must exist");
        assert_ne!(a, b, "self-loops model nothing in a fabric");
        self.adj[a].push(b);
        self.adj[b].push(a);
        self.edges += 1;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of undirected edges (parallel edges counted).
    pub fn edges(&self) -> usize {
        self.edges
    }

    /// The name of node `id`.
    pub fn name(&self, id: usize) -> &str {
        &self.names[id]
    }

    /// The kind of node `id`.
    pub fn kind(&self, id: usize) -> NodeKind {
        self.kinds[id]
    }

    /// Degree of node `id` (parallel edges counted).
    pub fn degree(&self, id: usize) -> usize {
        self.adj[id].len()
    }
}

/// Severity of a single point of failure, by disconnection fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Risk {
    /// Removal disconnects ≤ 10% of the remaining nodes.
    Low,
    /// Removal disconnects 10–25%.
    Medium,
    /// Removal disconnects 25–50%.
    High,
    /// Removal disconnects more than half the remaining nodes.
    Critical,
}

impl Risk {
    /// Grades a disconnection fraction given in thousandths.
    pub fn from_permille(permille: u32) -> Risk {
        if permille > 500 {
            Risk::Critical
        } else if permille > 250 {
            Risk::High
        } else if permille > 100 {
            Risk::Medium
        } else {
            Risk::Low
        }
    }

    /// Health-score deduction for one SPOF of this grade.
    pub fn deduction(self) -> u32 {
        match self {
            Risk::Critical => 30,
            Risk::High => 20,
            Risk::Medium => 10,
            Risk::Low => 5,
        }
    }
}

impl fmt::Display for Risk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Risk::Critical => f.write_str("CRITICAL"),
            Risk::High => f.write_str("HIGH"),
            Risk::Medium => f.write_str("MEDIUM"),
            Risk::Low => f.write_str("LOW"),
        }
    }
}

/// One single point of failure: an articulation point and the damage its
/// removal does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spof {
    /// Node index in the analyzed graph.
    pub node: usize,
    /// Node name.
    pub name: String,
    /// Node kind.
    pub kind: NodeKind,
    /// Nodes cut off from the largest surviving component when this node
    /// is removed.
    pub disconnected: usize,
    /// `disconnected` as thousandths of the other `n - 1` nodes.
    pub disconnect_permille: u32,
    /// Graded severity.
    pub risk: Risk,
}

/// The deterministic output of [`analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoReport {
    /// Node count.
    pub nodes: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Whether the whole graph is one connected component.
    pub connected: bool,
    /// Single points of failure, worst first (ties by node index).
    pub spofs: Vec<Spof>,
    /// Longest shortest path between reachable pairs, in hops.
    pub diameter: u32,
    /// Mean edge-disjoint path count between switch pairs, ×1000.
    /// Zero when the graph has fewer than two switches.
    pub redundancy_milli: u32,
    /// 0–100 health score (100 minus per-SPOF deductions; 0 if the graph
    /// is already disconnected).
    pub health: u32,
}

impl TopoReport {
    /// Renders the report as a byte-stable text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== topology analysis ==\n");
        out.push_str(&format!(
            "nodes {}  edges {}  connected {}  diameter {} hops\n",
            self.nodes, self.edges, self.connected, self.diameter
        ));
        out.push_str(&format!(
            "redundancy factor {}.{:03} edge-disjoint paths (switch pairs)\n",
            self.redundancy_milli / 1000,
            self.redundancy_milli % 1000
        ));
        out.push_str(&format!(
            "health {}/100  spofs {}\n",
            self.health,
            self.spofs.len()
        ));
        for s in &self.spofs {
            out.push_str(&format!(
                "  SPOF {:<10} {:<6} disconnects {:>4} nodes ({:>2}.{:01}%) risk {}\n",
                s.name,
                s.kind.to_string(),
                s.disconnected,
                s.disconnect_permille / 10,
                s.disconnect_permille % 10,
                s.risk
            ));
        }
        out
    }
}

/// Marks articulation points with an iterative Tarjan DFS.
///
/// Returns one flag per node. Parallel edges are handled correctly: only
/// the first edge back to the DFS parent is skipped, so a doubled link is
/// (rightly) not a cut vertex generator.
fn articulation_points(adj: &[Vec<usize>]) -> Vec<bool> {
    let n = adj.len();
    let mut disc = vec![0usize; n];
    let mut low = vec![0usize; n];
    let mut visited = vec![false; n];
    let mut is_ap = vec![false; n];
    let mut timer = 1usize;
    // Frame: (node, parent, next adjacency index, parent edge skipped).
    let mut stack: Vec<(usize, usize, usize, bool)> = Vec::new();
    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        disc[start] = timer;
        low[start] = timer;
        timer += 1;
        stack.clear();
        stack.push((start, usize::MAX, 0, false));
        let mut root_children = 0usize;
        while let Some(top) = stack.len().checked_sub(1) {
            let (u, parent, idx, skipped) = stack[top];
            if idx < adj[u].len() {
                let v = adj[u][idx];
                stack[top].2 = idx + 1;
                if v == parent && !skipped {
                    // Skip exactly one edge to the parent; a second,
                    // parallel edge is a genuine back edge.
                    stack[top].3 = true;
                    continue;
                }
                if visited[v] {
                    low[u] = low[u].min(disc[v]);
                } else {
                    visited[v] = true;
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    if u == start {
                        root_children += 1;
                    }
                    stack.push((v, u, 0, false));
                }
            } else {
                stack.pop();
                if let Some(&(p, _, _, _)) = stack.last() {
                    low[p] = low[p].min(low[u]);
                    if p != start && low[u] >= disc[p] {
                        is_ap[p] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_ap[start] = true;
        }
    }
    is_ap
}

/// BFS component sizes with node `skip` removed (`usize::MAX` = none).
/// Returns (size of the largest component, count of reachable nodes).
fn largest_component_without(adj: &[Vec<usize>], skip: usize) -> (usize, usize) {
    let n = adj.len();
    let mut seen = vec![false; n];
    let mut queue = Vec::with_capacity(n);
    let mut largest = 0usize;
    let mut total = 0usize;
    for start in 0..n {
        if start == skip || seen[start] {
            continue;
        }
        seen[start] = true;
        queue.clear();
        queue.push(start);
        let mut head = 0usize;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in &adj[u] {
                if v != skip && !seen[v] {
                    seen[v] = true;
                    queue.push(v);
                }
            }
        }
        largest = largest.max(queue.len());
        total += queue.len();
    }
    (largest, total)
}

/// Eccentricity of `start` in hops (longest BFS distance to a reachable
/// node).
fn eccentricity(adj: &[Vec<usize>], start: usize, dist: &mut [u32], queue: &mut Vec<usize>) -> u32 {
    dist.iter_mut().for_each(|d| *d = u32::MAX);
    dist[start] = 0;
    queue.clear();
    queue.push(start);
    let mut head = 0usize;
    let mut ecc = 0u32;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for &v in &adj[u] {
            if dist[v] == u32::MAX {
                dist[v] = dist[u] + 1;
                ecc = ecc.max(dist[v]);
                queue.push(v);
            }
        }
    }
    ecc
}

/// Edge-disjoint path count between `s` and `t`: unit-capacity max-flow
/// over paired directed arcs, BFS augmenting paths.
fn edge_disjoint_paths(adj: &[Vec<usize>], s: usize, t: usize) -> u32 {
    let n = adj.len();
    // Build paired arcs once per call: arc i and i^1 are the two
    // directions of one undirected edge.
    let mut head: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut to: Vec<usize> = Vec::new();
    let mut cap: Vec<u8> = Vec::new();
    for (u, nbrs) in adj.iter().enumerate() {
        for &v in nbrs {
            if u < v {
                head[u].push(to.len());
                to.push(v);
                cap.push(1);
                head[v].push(to.len());
                to.push(u);
                cap.push(1);
            }
        }
    }
    let mut flow = 0u32;
    let mut prev_arc = vec![usize::MAX; n];
    let mut queue = Vec::with_capacity(n);
    loop {
        prev_arc.iter_mut().for_each(|p| *p = usize::MAX);
        queue.clear();
        queue.push(s);
        let mut qh = 0usize;
        let mut reached = false;
        'bfs: while qh < queue.len() {
            let u = queue[qh];
            qh += 1;
            for &a in &head[u] {
                let v = to[a];
                if cap[a] > 0 && prev_arc[v] == usize::MAX && v != s {
                    prev_arc[v] = a;
                    if v == t {
                        reached = true;
                        break 'bfs;
                    }
                    queue.push(v);
                }
            }
        }
        if !reached {
            return flow;
        }
        // Walk the path backwards, flipping capacities.
        let mut v = t;
        while v != s {
            let a = prev_arc[v];
            cap[a] -= 1;
            cap[a ^ 1] += 1;
            v = to[a ^ 1];
        }
        flow += 1;
    }
}

/// Analyzes a fabric graph into a deterministic [`TopoReport`].
pub fn analyze(graph: &TopoGraph) -> TopoReport {
    let n = graph.len();
    if n == 0 {
        return TopoReport {
            nodes: 0,
            edges: 0,
            connected: true,
            spofs: Vec::new(),
            diameter: 0,
            redundancy_milli: 0,
            health: 100,
        };
    }
    let adj = &graph.adj;
    let (whole, _) = largest_component_without(adj, usize::MAX);
    let connected = whole == n;

    // SPOFs: articulation points graded by disconnection fraction.
    let is_ap = articulation_points(adj);
    let mut spofs = Vec::new();
    for (node, &ap) in is_ap.iter().enumerate() {
        if !ap {
            continue;
        }
        let (largest, total) = largest_component_without(adj, node);
        let disconnected = total - largest;
        let others = (n - 1).max(1);
        let permille = (disconnected * 1000 / others) as u32;
        spofs.push(Spof {
            node,
            name: graph.names[node].clone(),
            kind: graph.kinds[node],
            disconnected,
            disconnect_permille: permille,
            risk: Risk::from_permille(permille),
        });
    }
    spofs.sort_by(|a, b| b.disconnected.cmp(&a.disconnected).then(a.node.cmp(&b.node)));

    // Diameter over reachable pairs.
    let mut dist = vec![u32::MAX; n];
    let mut queue = Vec::with_capacity(n);
    let mut diameter = 0u32;
    for start in 0..n {
        diameter = diameter.max(eccentricity(adj, start, &mut dist, &mut queue));
    }

    // Redundancy: mean edge-disjoint paths over switch pairs.
    let switches: Vec<usize> = (0..n).filter(|&i| graph.kinds[i] == NodeKind::Switch).collect();
    let redundancy_milli = if switches.len() >= 2 {
        let mut sum = 0u64;
        let mut pairs = 0u64;
        for (i, &a) in switches.iter().enumerate() {
            for &b in &switches[i + 1..] {
                sum += u64::from(edge_disjoint_paths(adj, a, b));
                pairs += 1;
            }
        }
        (sum * 1000 / pairs) as u32
    } else {
        0
    };

    let health = if !connected {
        0
    } else {
        spofs
            .iter()
            .fold(100u32, |h, s| h.saturating_sub(s.risk.deduction()))
    };

    TopoReport {
        nodes: n,
        edges: graph.edges,
        connected,
        spofs,
        diameter,
        redundancy_milli,
        health,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A leaf–spine miniature: 2 spines, 2 leaves, 2 hosts per leaf.
    fn mini_fabric() -> TopoGraph {
        let mut g = TopoGraph::new();
        let s0 = g.add_node("spine0", NodeKind::Switch);
        let s1 = g.add_node("spine1", NodeKind::Switch);
        let l0 = g.add_node("leaf0", NodeKind::Switch);
        let l1 = g.add_node("leaf1", NodeKind::Switch);
        for &l in &[l0, l1] {
            g.add_edge(l, s0);
            g.add_edge(l, s1);
        }
        for (i, &l) in [l0, l0, l1, l1].iter().enumerate() {
            let h = g.add_node(format!("h{i}"), NodeKind::Host);
            g.add_edge(h, l);
        }
        g
    }

    #[test]
    fn leaf_spine_spofs_are_the_leaves() {
        let g = mini_fabric();
        let r = analyze(&g);
        assert!(r.connected);
        // Each leaf strands its two hosts; the spines are redundant.
        let names: Vec<&str> = r.spofs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["leaf0", "leaf1"]);
        for s in &r.spofs {
            assert_eq!(s.disconnected, 2);
            assert_eq!(s.disconnect_permille, 2 * 1000 / 7);
            assert_eq!(s.risk, Risk::High);
        }
        // host -> leaf -> spine -> leaf -> host = 4 hops.
        assert_eq!(r.diameter, 4);
        // Leaf-leaf and leaf-spine pairs have 2 edge-disjoint paths;
        // spine-spine also 2 (via either leaf).
        assert_eq!(r.redundancy_milli, 2000);
        assert_eq!(r.health, 100 - 2 * 20);
    }

    #[test]
    fn chain_interior_nodes_are_articulation_points() {
        let mut g = TopoGraph::new();
        let ids: Vec<usize> = (0..5)
            .map(|i| g.add_node(format!("n{i}"), NodeKind::Switch))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let r = analyze(&g);
        let spof_nodes: Vec<usize> = r.spofs.iter().map(|s| s.node).collect();
        assert_eq!(spof_nodes, vec![2, 1, 3], "middle node strands the most");
        assert_eq!(r.spofs[0].disconnected, 2);
        assert_eq!(r.diameter, 4);
        assert_eq!(r.redundancy_milli, 1000, "a chain is 1-connected");
        assert!(!r.spofs.is_empty());
    }

    #[test]
    fn cycle_has_no_spofs() {
        let mut g = TopoGraph::new();
        let ids: Vec<usize> = (0..6)
            .map(|i| g.add_node(format!("n{i}"), NodeKind::Switch))
            .collect();
        for i in 0..6 {
            g.add_edge(ids[i], ids[(i + 1) % 6]);
        }
        let r = analyze(&g);
        assert!(r.spofs.is_empty());
        assert_eq!(r.diameter, 3);
        assert_eq!(r.redundancy_milli, 2000);
        assert_eq!(r.health, 100);
    }

    #[test]
    fn parallel_edges_are_not_cut_edges() {
        // a = b with a doubled link, plus a host on each side: neither
        // switch's removal... wait, each switch still strands its host —
        // but the doubled trunk itself must not make the far switch an AP
        // for the near side. Compare against a single-link version.
        let build = |trunks: usize| {
            let mut g = TopoGraph::new();
            let a = g.add_node("a", NodeKind::Switch);
            let b = g.add_node("b", NodeKind::Switch);
            for _ in 0..trunks {
                g.add_edge(a, b);
            }
            (g, a, b)
        };
        let (g1, a1, b1) = build(1);
        let (g2, a2, b2) = build(2);
        assert_eq!(edge_disjoint_paths(&g1.adj, a1, b1), 1);
        assert_eq!(edge_disjoint_paths(&g2.adj, a2, b2), 2);
        // Two bare switches: neither is an articulation point in either
        // graph (removing one leaves a single node, still connected).
        assert!(analyze(&g1).spofs.is_empty());
        assert!(analyze(&g2).spofs.is_empty());
        assert_eq!(analyze(&g2).redundancy_milli, 2000);
    }

    #[test]
    fn disconnected_graph_scores_zero_health() {
        let mut g = TopoGraph::new();
        g.add_node("a", NodeKind::Host);
        g.add_node("b", NodeKind::Host);
        let r = analyze(&g);
        assert!(!r.connected);
        assert_eq!(r.health, 0);
    }

    #[test]
    fn empty_graph_is_trivially_healthy() {
        let r = analyze(&TopoGraph::new());
        assert!(r.connected);
        assert_eq!(r.health, 100);
        assert!(r.spofs.is_empty());
    }

    #[test]
    fn render_is_stable() {
        let g = mini_fabric();
        let a = analyze(&g).render();
        let b = analyze(&g).render();
        assert_eq!(a, b);
        assert!(a.contains("SPOF leaf0"));
        assert!(a.contains("risk HIGH"));
        assert!(a.contains("health 60/100"));
    }
}
