//! φ-accrual failure detection in pure fixed-point arithmetic.
//!
//! An accrual detector does not answer "has this peer failed?" with a
//! boolean; it outputs a continuously rising *suspicion level* φ and lets
//! each consumer pick its own threshold (Hayashibara et al.; the adaptive
//! empirical-histogram variant follows Satzger et al.). This module keeps
//! the whole computation in integers so suspicion is a pure function of
//! the deterministic heartbeat arrival stream:
//!
//! - inter-arrival samples are raw picosecond counts in a sliding window;
//! - the survival estimate is the Satzger counting estimator
//!   `P(elapsed exceeded) = (n_greater + 1) / (n + 1)`;
//! - φ = log₂(1/P), computed by [`log2_fp`] in 16.16 fixed point — never
//!   a float, so thresholds compare exactly on every platform and every
//!   worker count.
//!
//! When the elapsed silence exceeds *every* windowed sample the counting
//! estimator saturates, so φ grows by a tail extension:
//! `log₂(n + 1) + log₂(elapsed / max_sample)` — suspicion keeps rising
//! smoothly with silence instead of plateauing, which is what separates a
//! θ = 2 threshold from a θ = 8 one in detection latency.
//!
//! ```
//! use netfi_detect::accrual::{AccrualDetector, Phi};
//! use netfi_sim::SimTime;
//!
//! // Eight 10 ms heartbeats fill the window...
//! let mut d = AccrualDetector::new(8);
//! for beat in 0..9u64 {
//!     d.observe(SimTime::from_ms(10 * beat));
//! }
//! // ...5 ms after the last beat suspicion is still below φ = 1,
//! // but after 400 ms of silence it has climbed past φ = 8.
//! assert!(d.suspicion(SimTime::from_ms(85)) < Phi::from_int(1));
//! assert!(d.suspicion(SimTime::from_ms(400)) > Phi::from_int(8));
//! ```

use std::fmt;

use netfi_obs::Registry;
use netfi_sim::SimTime;

/// Fractional bits of the fixed-point suspicion scale.
pub const PHI_FRAC_BITS: u32 = 16;

/// One in 16.16 fixed point.
const ONE_FP: u64 = 1 << PHI_FRAC_BITS;

/// A suspicion level in 16.16 fixed point.
///
/// Stored as a raw `u32` so comparisons are exact integer comparisons —
/// the determinism scope bans floats from anything that orders or gates
/// behaviour. `Phi::from_int(8)` is the fixed-point rendering of φ = 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Phi(u32);

impl Phi {
    /// Zero suspicion.
    pub const ZERO: Phi = Phi(0);

    /// A whole-number suspicion level.
    pub const fn from_int(v: u16) -> Phi {
        Phi((v as u32) << PHI_FRAC_BITS)
    }

    /// The raw 16.16 fixed-point value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Builds a suspicion level from a raw 16.16 fixed-point value.
    pub const fn from_raw(raw: u32) -> Phi {
        Phi(raw)
    }
}

impl fmt::Display for Phi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Milli-phi, rendered as a fixed three-decimal value so reports
        // are byte-stable.
        let milli = (u64::from(self.0) * 1000) >> PHI_FRAC_BITS;
        write!(f, "{}.{:03}", milli / 1000, milli % 1000)
    }
}

/// log₂ of a 16.16 fixed-point value, in 16.16 fixed point.
///
/// Inputs below one return zero (the detector never needs negative
/// logarithms: ratios are ≥ 1 by construction). The fractional part is
/// computed by sixteen shift-and-square iterations — pure integer
/// arithmetic, exact to the last fixed-point bit for the integer part and
/// within one ULP for the fraction.
pub fn log2_fp(x: u64) -> u32 {
    if x <= ONE_FP {
        return 0;
    }
    // Position of the leading bit relative to the 16.16 "one" bit.
    let int = 63 - x.leading_zeros() - PHI_FRAC_BITS;
    // Normalize the mantissa into [1, 2) in 16.16.
    let mut mant = x >> int;
    let mut frac: u32 = 0;
    for i in (0..PHI_FRAC_BITS).rev() {
        mant = (mant * mant) >> PHI_FRAC_BITS;
        if mant >= 2 * ONE_FP {
            frac |= 1 << i;
            mant >>= 1;
        }
    }
    (int << PHI_FRAC_BITS) | frac
}

/// An adaptive accrual failure detector for one peer.
///
/// Feed it heartbeat arrival times with [`observe`](Self::observe); ask it
/// how suspicious the current silence is with
/// [`suspicion`](Self::suspicion). The window holds the most recent
/// `window` inter-arrival samples; until two arrivals have been seen the
/// detector reports zero suspicion (it has no distribution to judge
/// against).
#[derive(Debug, Clone)]
pub struct AccrualDetector {
    /// Ring of inter-arrival samples, picoseconds.
    window: Vec<u64>,
    /// Next slot to overwrite.
    cursor: usize,
    /// Number of live samples (≤ window capacity).
    filled: usize,
    /// Most recent arrival.
    last: Option<SimTime>,
}

impl AccrualDetector {
    /// Creates a detector with a sliding window of `window` samples.
    pub fn new(window: usize) -> AccrualDetector {
        assert!(window > 0, "accrual window must hold at least one sample");
        AccrualDetector {
            window: vec![0; window],
            cursor: 0,
            filled: 0,
            last: None,
        }
    }

    /// Records a heartbeat arrival at `at`.
    ///
    /// Out-of-order arrivals (`at` not after the previous one) update
    /// nothing but the last-seen time — the simulated poll loop delivers
    /// arrivals in time order, so this is a guard, not a code path.
    pub fn observe(&mut self, at: SimTime) {
        if let Some(last) = self.last {
            let sample = at.as_ps().saturating_sub(last.as_ps());
            if sample > 0 {
                self.window[self.cursor] = sample;
                self.cursor = (self.cursor + 1) % self.window.len();
                self.filled = (self.filled + 1).min(self.window.len());
            }
        }
        self.last = Some(at);
    }

    /// Number of inter-arrival samples currently in the window.
    pub fn samples(&self) -> usize {
        self.filled
    }

    /// The suspicion level φ at `now`.
    ///
    /// φ = log₂(1/P) where P is the Satzger counting estimator of the
    /// probability that a healthy peer's inter-arrival gap exceeds the
    /// current silence. Once the silence exceeds every windowed sample,
    /// φ keeps growing as `log₂(n + 1) + log₂(elapsed / max_sample)`.
    pub fn suspicion(&self, now: SimTime) -> Phi {
        let Some(last) = self.last else {
            return Phi::ZERO;
        };
        if self.filled == 0 || now <= last {
            return Phi::ZERO;
        }
        let elapsed = now.as_ps() - last.as_ps();
        let n = self.filled as u64;
        let live = &self.window[..self.filled.min(self.window.len())];
        let n_greater = live.iter().filter(|&&s| s > elapsed).count() as u64;
        if n_greater > 0 {
            // P = (n_greater + 1) / (n + 1); φ = log2(1/P).
            let ratio_fp = ((n + 1) << PHI_FRAC_BITS) / (n_greater + 1);
            return Phi(log2_fp(ratio_fp));
        }
        // Tail extension: the empirical estimator bottoms out at
        // P = 1/(n+1); extend with the overshoot past the largest sample.
        let base = log2_fp((n + 1) << PHI_FRAC_BITS);
        let s_max = live.iter().copied().max().unwrap_or(1).max(1);
        // Clamp so `elapsed << 16` cannot overflow (a silence this long —
        // ~2.5 simulated hours — is maximal suspicion anyway).
        let clamped = elapsed.min(u64::MAX >> (PHI_FRAC_BITS + 1));
        let overshoot_fp = (clamped << PHI_FRAC_BITS) / s_max;
        let ext = log2_fp(overshoot_fp.max(ONE_FP));
        Phi(base.saturating_add(ext))
    }
}

/// A suspicion-threshold crossing (or recovery) observed by a
/// [`SuspicionMonitor`] poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuspicionEvent {
    /// Poll time at which the crossing was observed.
    pub time: SimTime,
    /// Monitored pair index.
    pub pair: u32,
    /// Index into the monitor's threshold list.
    pub threshold: u32,
    /// The suspicion level at the poll.
    pub phi: Phi,
    /// `true` = crossed above the threshold, `false` = recovered below it.
    pub suspected: bool,
}

/// A bank of per-pair accrual detectors polled against a ladder of
/// suspicion thresholds.
///
/// The monitor owns one [`AccrualDetector`] per heartbeat pair plus the
/// per-`(threshold, pair)` suspected/cleared state machine; every state
/// flip is recorded as a [`SuspicionEvent`]. Arrivals are deduplicated by
/// sequence number, so feeding it overlapping reads of a flight-recorder
/// ring is safe. `Clone` is cheap and deep: a detection campaign warms one
/// monitor alongside the donor engine and forks both per scenario.
#[derive(Debug, Clone)]
pub struct SuspicionMonitor {
    thresholds: Vec<Phi>,
    detectors: Vec<AccrualDetector>,
    /// Highest heartbeat sequence number seen per pair.
    last_seq: Vec<Option<u64>>,
    /// Suspected flags, `threshold-major`: `[t * pairs + pair]`.
    suspected: Vec<bool>,
    /// Most recent polled φ per pair.
    last_phi: Vec<Phi>,
    /// Peak polled φ per pair.
    peak_phi: Vec<Phi>,
    events: Vec<SuspicionEvent>,
}

impl SuspicionMonitor {
    /// Creates a monitor for `pairs` heartbeat pairs, each judged by an
    /// accrual window of `window` samples against every threshold in
    /// `thresholds` (kept in the given order; indices into it appear in
    /// the emitted events).
    pub fn new(pairs: usize, window: usize, thresholds: &[Phi]) -> SuspicionMonitor {
        SuspicionMonitor {
            thresholds: thresholds.to_vec(),
            detectors: vec![AccrualDetector::new(window); pairs],
            last_seq: vec![None; pairs],
            suspected: vec![false; thresholds.len() * pairs],
            last_phi: vec![Phi::ZERO; pairs],
            peak_phi: vec![Phi::ZERO; pairs],
            events: Vec::new(),
        }
    }

    /// The threshold ladder.
    pub fn thresholds(&self) -> &[Phi] {
        &self.thresholds
    }

    /// Number of monitored pairs.
    pub fn pairs(&self) -> usize {
        self.detectors.len()
    }

    /// Feeds one heartbeat arrival for `pair`. Returns `true` if the
    /// sequence number was fresh (later than anything seen for the pair)
    /// and the detector observed it.
    pub fn arrival(&mut self, pair: usize, seq: u64, at: SimTime) -> bool {
        if let Some(prev) = self.last_seq[pair] {
            if seq <= prev {
                return false;
            }
        }
        self.last_seq[pair] = Some(seq);
        self.detectors[pair].observe(at);
        true
    }

    /// Polls every pair at `now`, flipping suspected/cleared states and
    /// recording a [`SuspicionEvent`] per flip.
    pub fn poll(&mut self, now: SimTime) {
        let pairs = self.detectors.len();
        for pair in 0..pairs {
            let phi = self.detectors[pair].suspicion(now);
            self.last_phi[pair] = phi;
            self.peak_phi[pair] = self.peak_phi[pair].max(phi);
            for (t, &threshold) in self.thresholds.iter().enumerate() {
                let slot = t * pairs + pair;
                let is = phi >= threshold;
                if is != self.suspected[slot] {
                    self.suspected[slot] = is;
                    self.events.push(SuspicionEvent {
                        time: now,
                        pair: pair as u32,
                        threshold: t as u32,
                        phi,
                        suspected: is,
                    });
                }
            }
        }
    }

    /// All state-flip events, in poll order.
    pub fn events(&self) -> &[SuspicionEvent] {
        &self.events
    }

    /// Pairs currently suspected at threshold index `t`, ascending.
    pub fn suspected_pairs(&self, t: usize) -> Vec<u32> {
        let pairs = self.detectors.len();
        (0..pairs)
            .filter(|&pair| self.suspected[t * pairs + pair])
            .map(|pair| pair as u32)
            .collect()
    }

    /// The first time `pair` crossed threshold index `t`, if it ever did.
    pub fn first_crossing(&self, pair: u32, t: u32) -> Option<SimTime> {
        self.events
            .iter()
            .find(|e| e.pair == pair && e.threshold == t && e.suspected)
            .map(|e| e.time)
    }

    /// φ for `pair` at the most recent poll.
    pub fn phi(&self, pair: usize) -> Phi {
        self.last_phi[pair]
    }

    /// Peak polled φ for `pair`.
    pub fn peak(&self, pair: usize) -> Phi {
        self.peak_phi[pair]
    }

    /// Exports per-pair suspicion gauges and crossing counters into an
    /// observability registry. `pair_name` renders the pair label used in
    /// the gauge names (e.g. `h003->h007`).
    pub fn export_to(&self, registry: &mut Registry, pair_name: impl Fn(usize) -> String) {
        for pair in 0..self.detectors.len() {
            let name = pair_name(pair);
            registry.set_gauge(
                &format!("detect.phi.{name}"),
                i64::from(self.last_phi[pair].raw()),
            );
            registry.set_gauge(
                &format!("detect.phi_peak.{name}"),
                i64::from(self.peak_phi[pair].raw()),
            );
        }
        registry.add(
            "detect.suspect_events",
            self.events.iter().filter(|e| e.suspected).count() as u64,
        );
        registry.add(
            "detect.recovery_events",
            self.events.iter().filter(|e| !e.suspected).count() as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation in floating point, for tolerance checks
    /// only — the production path never touches a float.
    fn log2_f64(x: f64) -> f64 {
        x.log2()
    }

    #[test]
    fn log2_fp_matches_float_reference() {
        for &x in &[
            1u64 << 16,
            (1 << 16) + 1,
            3 << 15, // 1.5
            2 << 16,
            17 << 16,
            1000 << 16,
            u64::from(u32::MAX),
            1 << 40,
        ] {
            let got = f64::from(log2_fp(x)) / f64::from(1u32 << 16);
            let want = log2_f64(x as f64 / f64::from(1u32 << 16));
            assert!(
                (got - want).abs() < 1e-4,
                "log2_fp({x}) = {got}, reference {want}"
            );
        }
    }

    #[test]
    fn log2_fp_below_one_clamps_to_zero() {
        assert_eq!(log2_fp(0), 0);
        assert_eq!(log2_fp(1), 0);
        assert_eq!(log2_fp(1 << 16), 0);
    }

    #[test]
    fn exact_powers_of_two_are_exact() {
        for k in 1..32u32 {
            assert_eq!(log2_fp(1u64 << (16 + k)), k << 16, "log2(2^{k})");
        }
    }

    #[test]
    fn suspicion_is_zero_without_history() {
        let d = AccrualDetector::new(8);
        assert_eq!(d.suspicion(SimTime::from_ms(50)), Phi::ZERO);
        let mut d = AccrualDetector::new(8);
        d.observe(SimTime::from_ms(1));
        // One arrival = no inter-arrival sample yet.
        assert_eq!(d.suspicion(SimTime::from_ms(50)), Phi::ZERO);
    }

    #[test]
    fn suspicion_rises_monotonically_with_silence() {
        let mut d = AccrualDetector::new(16);
        for beat in 0..17u64 {
            d.observe(SimTime::from_ms(10 * beat));
        }
        let mut prev = Phi::ZERO;
        for probe in [165u64, 175, 200, 300, 500, 1000, 5000] {
            let phi = d.suspicion(SimTime::from_ms(probe));
            assert!(phi >= prev, "phi fell from {prev} to {phi} at {probe} ms");
            prev = phi;
        }
        assert!(prev > Phi::from_int(10), "long silence stayed at {prev}");
    }

    #[test]
    fn jittered_window_tolerates_its_own_spread() {
        // Samples between 8 and 14 ms: a 13 ms silence is within the
        // observed spread, so suspicion stays modest.
        let mut d = AccrualDetector::new(8);
        let mut t = 0u64;
        for (i, gap) in [8u64, 14, 9, 13, 10, 12, 11, 8].iter().enumerate() {
            let _ = i;
            d.observe(SimTime::from_us(t * 1000));
            t += gap;
        }
        d.observe(SimTime::from_us(t * 1000));
        let within = d.suspicion(SimTime::from_us((t + 13) * 1000));
        let beyond = d.suspicion(SimTime::from_us((t + 140) * 1000));
        assert!(within < Phi::from_int(4), "within-spread phi {within}");
        assert!(beyond > Phi::from_int(5), "beyond-spread phi {beyond}");
    }

    #[test]
    fn monitor_emits_crossing_and_recovery() {
        let thresholds = [Phi::from_int(2), Phi::from_int(8)];
        let mut m = SuspicionMonitor::new(2, 4, &thresholds);
        // Pair 0 beats every 10 ms; pair 1 beats then goes silent.
        for beat in 0..6u64 {
            let at = SimTime::from_ms(10 * beat);
            assert!(m.arrival(0, beat, at));
            if beat < 5 {
                assert!(m.arrival(1, beat, at));
            }
        }
        // Duplicate sequence numbers are ignored.
        assert!(!m.arrival(0, 3, SimTime::from_ms(60)));
        for poll in 6..80u64 {
            let now = SimTime::from_ms(10 * poll);
            if poll < 30 {
                m.arrival(0, poll, now);
            }
            m.poll(now);
        }
        // Pair 1 crossed both thresholds; pair 0 crossed once it went
        // silent at 300 ms, later than pair 1.
        let t0_cross_p1 = m.first_crossing(1, 0).expect("pair 1 crossing");
        let t0_cross_p0 = m.first_crossing(0, 0).expect("pair 0 crossing");
        assert!(t0_cross_p1 < t0_cross_p0);
        assert!(m.first_crossing(1, 1).is_some());
        assert_eq!(m.suspected_pairs(0), vec![0, 1]);
        assert!(m.events().iter().all(|e| e.suspected), "no recoveries yet");

        // A fresh arrival for pair 1 recovers it at the next poll.
        m.arrival(1, 99, SimTime::from_ms(800));
        m.arrival(1, 100, SimTime::from_ms(801));
        m.poll(SimTime::from_ms(802));
        assert!(
            m.events().iter().any(|e| e.pair == 1 && !e.suspected),
            "recovery event missing"
        );
        assert_eq!(m.suspected_pairs(0), vec![0]);
    }

    #[test]
    fn monitor_clone_is_independent() {
        let mut a = SuspicionMonitor::new(1, 4, &[Phi::from_int(2)]);
        for beat in 0..5u64 {
            a.arrival(0, beat, SimTime::from_ms(10 * beat));
        }
        let mut b = a.clone();
        b.poll(SimTime::from_ms(500));
        assert!(a.events().is_empty());
        assert_eq!(b.events().len(), 1);
    }

    #[test]
    fn export_writes_gauges_and_counters() {
        let mut m = SuspicionMonitor::new(1, 4, &[Phi::from_int(1)]);
        for beat in 0..5u64 {
            m.arrival(0, beat, SimTime::from_ms(10 * beat));
        }
        m.poll(SimTime::from_ms(300));
        let mut reg = Registry::new();
        m.export_to(&mut reg, |p| format!("pair{p}"));
        assert!(reg.gauge("detect.phi.pair0").unwrap_or(0) > 0);
        assert_eq!(reg.counter("detect.suspect_events"), 1);
    }
}
