//! FC-PH frames and ordered sets.
//!
//! Fibre Channel (\[ANS94\]) frames a payload with an SOF (start-of-frame)
//! ordered set, a 24-byte frame header, the payload, a CRC-32, and an EOF
//! ordered set. Ordered sets are four transmission characters beginning
//! with the comma K28.5. The injector's FC interface sees this stream after
//! 8b/10b decoding; [`FcFrame::to_line`] / [`decode_line`] run the full
//! path through the `netfi-phy` codec.

use std::error::Error;
use std::fmt;

use netfi_phy::b8b10::{Byte8, Decoder, Encoder};
use netfi_sim::SharedBytes;

use crate::crc32;

/// A 24-bit Fibre Channel port address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FcAddress(pub u32);

impl FcAddress {
    /// Builds an address, masking to 24 bits.
    pub const fn new(v: u32) -> FcAddress {
        FcAddress(v & 0x00FF_FFFF)
    }
}

impl fmt::Display for FcAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:06x}", self.0)
    }
}

/// Start-of-frame delimiters (a useful subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sof {
    /// Class-3 frame, initiating a sequence.
    Initiate3,
    /// Class-3 frame, continuing a sequence.
    Normal3,
}

/// End-of-frame delimiters (a useful subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eof {
    /// Normal end.
    Normal,
    /// Sequence-terminating end.
    Terminate,
}

/// Primitive signals relevant to the injector campaigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primitive {
    /// Link filler.
    Idle,
    /// Buffer-to-buffer credit return — FC's flow-control symbol, the
    /// analogue of Myrinet's GO.
    RReady,
}

/// The second-to-fourth characters of each ordered set (after K28.5).
/// Encodings follow FC-PH's D-character patterns.
fn ordered_set_tail(kind: OrderedSet) -> [u8; 3] {
    match kind {
        OrderedSet::Sof(Sof::Initiate3) => [0x56, 0x55, 0x55],  // SOFi3
        OrderedSet::Sof(Sof::Normal3) => [0x36, 0x36, 0x36],    // SOFn3
        OrderedSet::Eof(Eof::Normal) => [0xD5, 0xD6, 0xD6],     // EOFn
        OrderedSet::Eof(Eof::Terminate) => [0xD5, 0xD5, 0xD5],  // EOFt
        OrderedSet::Primitive(Primitive::Idle) => [0x95, 0xB5, 0xB5],
        OrderedSet::Primitive(Primitive::RReady) => [0x95, 0xD5, 0x65],
    }
}

/// Any four-character ordered set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderedSet {
    /// A start-of-frame delimiter.
    Sof(Sof),
    /// An end-of-frame delimiter.
    Eof(Eof),
    /// A primitive signal.
    Primitive(Primitive),
}

impl OrderedSet {
    /// All ordered sets this stack understands.
    pub const ALL: [OrderedSet; 6] = [
        OrderedSet::Sof(Sof::Initiate3),
        OrderedSet::Sof(Sof::Normal3),
        OrderedSet::Eof(Eof::Normal),
        OrderedSet::Eof(Eof::Terminate),
        OrderedSet::Primitive(Primitive::Idle),
        OrderedSet::Primitive(Primitive::RReady),
    ];

    /// The four characters (K28.5 + three data characters).
    pub fn chars(self) -> [Byte8; 4] {
        let tail = ordered_set_tail(self);
        [
            netfi_phy::b8b10::K28_5,
            Byte8::Data(tail[0]),
            Byte8::Data(tail[1]),
            Byte8::Data(tail[2]),
        ]
    }

    /// Recognizes an ordered set from its three data characters.
    pub fn from_tail(tail: [u8; 3]) -> Option<OrderedSet> {
        Self::ALL
            .into_iter()
            .find(|&os| ordered_set_tail(os) == tail)
    }
}

/// The 24-byte FC frame header (word-oriented fields this stack uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FcHeader {
    /// Routing control.
    pub r_ctl: u8,
    /// Destination port address.
    pub d_id: FcAddress,
    /// Source port address.
    pub s_id: FcAddress,
    /// Data structure type.
    pub type_field: u8,
    /// Sequence id.
    pub seq_id: u8,
    /// Sequence count.
    pub seq_cnt: u16,
    /// Originator exchange id.
    pub ox_id: u16,
    /// Responder exchange id.
    pub rx_id: u16,
}

impl FcHeader {
    /// Encoded length.
    pub const LEN: usize = 24;

    /// Serializes to the 24-byte wire layout.
    pub fn encode(&self) -> [u8; 24] {
        let mut out = [0u8; 24];
        out[0] = self.r_ctl;
        out[1..4].copy_from_slice(&self.d_id.0.to_be_bytes()[1..]);
        out[5..8].copy_from_slice(&self.s_id.0.to_be_bytes()[1..]);
        out[8] = self.type_field;
        // bytes 9..12: F_CTL (zero in this stack)
        out[12] = self.seq_id;
        // byte 13: DF_CTL
        out[14..16].copy_from_slice(&self.seq_cnt.to_be_bytes());
        out[16..18].copy_from_slice(&self.ox_id.to_be_bytes());
        out[18..20].copy_from_slice(&self.rx_id.to_be_bytes());
        // bytes 20..24: parameter
        out
    }

    /// Parses the 24-byte wire layout.
    pub fn decode(buf: &[u8; 24]) -> FcHeader {
        FcHeader {
            r_ctl: buf[0],
            d_id: FcAddress(u32::from_be_bytes([0, buf[1], buf[2], buf[3]])),
            s_id: FcAddress(u32::from_be_bytes([0, buf[5], buf[6], buf[7]])),
            type_field: buf[8],
            seq_id: buf[12],
            seq_cnt: u16::from_be_bytes([buf[14], buf[15]]),
            ox_id: u16::from_be_bytes([buf[16], buf[17]]),
            rx_id: u16::from_be_bytes([buf[18], buf[19]]),
        }
    }
}

/// A complete Fibre Channel frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FcFrame {
    /// Start delimiter.
    pub sof: Sof,
    /// Frame header.
    pub header: FcHeader,
    /// Payload (0–2112 bytes in FC-PH), cheaply clonable.
    pub payload: SharedBytes,
    /// End delimiter.
    pub eof: Eof,
}

/// Frame decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FcError {
    /// Line decoding failed (invalid 10-bit code or disparity).
    LineCode,
    /// Stream structure violated (missing/unknown delimiters).
    Framing,
    /// CRC-32 check failed.
    BadCrc,
    /// Payload exceeds the FC-PH maximum of 2112 bytes.
    PayloadTooLong,
}

impl fmt::Display for FcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FcError::LineCode => f.write_str("8b/10b line-code error"),
            FcError::Framing => f.write_str("frame delimiter structure violated"),
            FcError::BadCrc => f.write_str("frame CRC-32 failed"),
            FcError::PayloadTooLong => f.write_str("payload exceeds 2112 bytes"),
        }
    }
}

impl Error for FcError {}

impl FcFrame {
    /// Builds a class-3 data frame.
    pub fn data(
        d_id: FcAddress,
        s_id: FcAddress,
        seq_cnt: u16,
        payload: impl Into<SharedBytes>,
    ) -> FcFrame {
        FcFrame {
            sof: if seq_cnt == 0 { Sof::Initiate3 } else { Sof::Normal3 },
            header: FcHeader {
                r_ctl: 0x01,
                d_id,
                s_id,
                type_field: 0x08, // SCSI-FCP, a typical payload type
                seq_id: 0,
                seq_cnt,
                ox_id: 0,
                rx_id: 0xFFFF,
            },
            payload: payload.into(),
            eof: Eof::Normal,
        }
    }

    /// The frame content between delimiters: header, payload, CRC-32.
    pub fn body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FcHeader::LEN + self.payload.len() + 4);
        out.extend_from_slice(&self.header.encode());
        out.extend_from_slice(&self.payload);
        let crc = crc32::checksum(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Encodes the whole frame — SOF, body, EOF — through 8b/10b into
    /// 10-bit transmission characters, using (and advancing) `encoder`'s
    /// running disparity.
    ///
    /// # Errors
    ///
    /// [`FcError::PayloadTooLong`] beyond the 2112-byte FC-PH limit.
    pub fn to_line(&self, encoder: &mut Encoder) -> Result<Vec<u16>, FcError> {
        if self.payload.len() > 2112 {
            return Err(FcError::PayloadTooLong);
        }
        let mut chars: Vec<Byte8> = Vec::new();
        chars.extend(OrderedSet::Sof(self.sof).chars());
        for b in self.body() {
            chars.push(Byte8::Data(b));
        }
        chars.extend(OrderedSet::Eof(self.eof).chars());
        chars
            .into_iter()
            .map(|c| encoder.push(c).map_err(|_| FcError::LineCode))
            .collect()
    }
}

/// Decodes one frame from a 10-bit character stream (which must begin at
/// the SOF comma), returning the frame and the number of line characters
/// consumed.
///
/// # Errors
///
/// [`FcError`] on line-code, framing or CRC violations — each of which a
/// monitoring device distinguishes when classifying injected faults.
pub fn decode_line(line: &[u16], decoder: &mut Decoder) -> Result<(FcFrame, usize), FcError> {
    let mut bytes: Vec<(usize, Byte8)> = Vec::with_capacity(line.len());
    // Decode up front; stop at the second K28.5 group (EOF).
    let mut commas = Vec::new();
    for (i, &code) in line.iter().enumerate() {
        let byte = decoder.push(code).map_err(|_| FcError::LineCode)?;
        if byte == netfi_phy::b8b10::K28_5 {
            commas.push(i);
        }
        bytes.push((i, byte));
        if commas.len() == 2 && i >= commas[1] + 3 {
            break;
        }
    }
    if commas.len() < 2 {
        return Err(FcError::Framing);
    }
    let (sof_at, eof_at) = (commas[0], commas[1]);
    if sof_at != 0 || eof_at + 3 > bytes.len() {
        return Err(FcError::Framing);
    }
    let tail3 = |start: usize| -> Result<[u8; 3], FcError> {
        let mut out = [0u8; 3];
        for (k, slot) in out.iter_mut().enumerate() {
            match bytes.get(start + 1 + k).map(|&(_, b)| b) {
                Some(Byte8::Data(d)) => *slot = d,
                _ => return Err(FcError::Framing),
            }
        }
        Ok(out)
    };
    let Some(OrderedSet::Sof(sof)) = OrderedSet::from_tail(tail3(sof_at)?) else {
        return Err(FcError::Framing);
    };
    let Some(OrderedSet::Eof(eof)) = OrderedSet::from_tail(tail3(eof_at)?) else {
        return Err(FcError::Framing);
    };
    let mut body = Vec::with_capacity(eof_at - 4);
    for &(_, b) in &bytes[4..eof_at] {
        match b {
            Byte8::Data(d) => body.push(d),
            Byte8::Special(_) => return Err(FcError::Framing),
        }
    }
    if body.len() < FcHeader::LEN + 4 {
        return Err(FcError::Framing);
    }
    if !crc32::verify(&body) {
        return Err(FcError::BadCrc);
    }
    let header_bytes: [u8; 24] = body[..24].try_into().map_err(|_| FcError::Framing)?;
    let header = FcHeader::decode(&header_bytes);
    let payload = SharedBytes::from(&body[24..body.len() - 4]);
    Ok((
        FcFrame {
            sof,
            header,
            payload,
            eof,
        },
        eof_at + 4,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FcFrame {
        FcFrame::data(
            FcAddress::new(0x010203),
            FcAddress::new(0x0A0B0C),
            0,
            b"fibre channel payload".to_vec(),
        )
    }

    #[test]
    fn header_roundtrip() {
        let h = FcHeader {
            r_ctl: 0x22,
            d_id: FcAddress::new(0xABCDEF),
            s_id: FcAddress::new(0x123456),
            type_field: 0x08,
            seq_id: 9,
            seq_cnt: 1234,
            ox_id: 0xBEEF,
            rx_id: 0xCAFE,
        };
        assert_eq!(FcHeader::decode(&h.encode()), h);
    }

    #[test]
    fn frame_line_roundtrip() {
        let frame = sample();
        let mut enc = Encoder::new();
        let line = frame.to_line(&mut enc).unwrap();
        let mut dec = Decoder::new();
        let (decoded, consumed) = decode_line(&line, &mut dec).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(consumed, line.len());
    }

    #[test]
    fn multiple_frames_share_disparity() {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        for i in 0..5u16 {
            let frame = FcFrame::data(
                FcAddress::new(1),
                FcAddress::new(2),
                i,
                vec![i as u8; 17 + i as usize],
            );
            let line = frame.to_line(&mut enc).unwrap();
            let (decoded, _) = decode_line(&line, &mut dec).unwrap();
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn corrupted_body_byte_is_crc_error() {
        let frame = sample();
        let mut enc = Encoder::new();
        // Corrupt a payload byte under the original CRC: build the line
        // manually from a tampered body.
        let mut chars: Vec<Byte8> = Vec::new();
        chars.extend(OrderedSet::Sof(frame.sof).chars());
        let mut body = frame.body();
        body[24 + 3] ^= 0x01; // payload corruption without CRC fix
        for b in body {
            chars.push(Byte8::Data(b));
        }
        chars.extend(OrderedSet::Eof(frame.eof).chars());
        let line: Vec<u16> = chars.into_iter().map(|c| enc.push(c).unwrap()).collect();
        let mut dec = Decoder::new();
        assert_eq!(decode_line(&line, &mut dec), Err(FcError::BadCrc));
    }

    #[test]
    fn corrupted_line_code_detected() {
        let frame = sample();
        let mut enc = Encoder::new();
        let mut line = frame.to_line(&mut enc).unwrap();
        line[10] = 0x3FF; // never a valid code
        let mut dec = Decoder::new();
        assert_eq!(decode_line(&line, &mut dec), Err(FcError::LineCode));
    }

    #[test]
    fn missing_eof_is_framing_error() {
        let frame = sample();
        let mut enc = Encoder::new();
        let line = frame.to_line(&mut enc).unwrap();
        let mut dec = Decoder::new();
        assert_eq!(
            decode_line(&line[..line.len() - 4], &mut dec),
            Err(FcError::Framing)
        );
    }

    #[test]
    fn payload_limit_enforced() {
        let mut frame = sample();
        frame.payload = vec![0; 2113].into();
        let mut enc = Encoder::new();
        assert_eq!(frame.to_line(&mut enc), Err(FcError::PayloadTooLong));
    }

    #[test]
    fn ordered_sets_distinct_and_recognizable() {
        for os in OrderedSet::ALL {
            let chars = os.chars();
            assert_eq!(chars[0], netfi_phy::b8b10::K28_5);
            let tail = [
                match chars[1] { Byte8::Data(d) => d, _ => panic!() },
                match chars[2] { Byte8::Data(d) => d, _ => panic!() },
                match chars[3] { Byte8::Data(d) => d, _ => panic!() },
            ];
            assert_eq!(OrderedSet::from_tail(tail), Some(os));
        }
    }

    #[test]
    fn sof_choice_tracks_sequence_position() {
        assert_eq!(FcFrame::data(FcAddress(1), FcAddress(2), 0, vec![]).sof, Sof::Initiate3);
        assert_eq!(FcFrame::data(FcAddress(1), FcAddress(2), 3, vec![]).sof, Sof::Normal3);
    }
}
