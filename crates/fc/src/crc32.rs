//! CRC-32 (IEEE 802.3 / FC-PH), the frame check sequence of Fibre Channel.
//!
//! Reflected algorithm, polynomial `0x04C11DB7`, initial value and final
//! XOR of all-ones — the exact CRC Fibre Channel frames carry between
//! header and EOF.

const POLY_REFLECTED: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY_REFLECTED
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 of `data`.
///
/// # Example
///
/// ```
/// use netfi_fc::crc32::checksum;
/// assert_eq!(checksum(b"123456789"), 0xCBF4_3926); // the standard check value
/// ```
pub fn checksum(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Verifies `data` whose last four bytes are its little-endian CRC-32.
pub fn verify(data_with_crc: &[u8]) -> bool {
    if data_with_crc.len() < 4 {
        return false;
    }
    let (body, crc_bytes) = data_with_crc.split_at(data_with_crc.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    checksum(body) == stored
}

/// A streaming CRC-32 accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    crc: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates an accumulator at the initial state.
    pub fn new() -> Crc32 {
        Crc32 { crc: 0xFFFF_FFFF }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.crc = (self.crc >> 8) ^ TABLE[((self.crc ^ b as u32) & 0xFF) as usize];
        }
    }

    /// The CRC of everything fed so far.
    pub fn finish(self) -> u32 {
        self.crc ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(checksum(&[]), 0);
    }

    #[test]
    fn verify_roundtrip() {
        let mut buf = b"fibre channel frame".to_vec();
        let crc = checksum(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        assert!(verify(&buf));
        buf[3] ^= 0x80;
        assert!(!verify(&buf));
    }

    #[test]
    fn verify_rejects_short() {
        assert!(!verify(&[1, 2, 3]));
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..200).collect();
        for split in [0usize, 1, 99, 200] {
            let mut acc = Crc32::new();
            acc.update(&data[..split]);
            acc.update(&data[split..]);
            assert_eq!(acc.finish(), checksum(&data));
        }
    }

    #[test]
    fn all_single_bit_errors_detected() {
        let mut buf = vec![0x5Au8; 64];
        let crc = checksum(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut corrupted = buf.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(!verify(&corrupted), "missed {byte}:{bit}");
            }
        }
    }
}
