//! CRC-32 (IEEE 802.3 / FC-PH), the frame check sequence of Fibre Channel.
//!
//! Reflected algorithm, polynomial `0x04C11DB7`, initial value and final
//! XOR of all-ones — the exact CRC Fibre Channel frames carry between
//! header and EOF.

const POLY_REFLECTED: u32 = 0xEDB8_8320;

/// Slice-by-8 lookup tables, built at compile time. `TABLES[0]` is the
/// classic byte-at-a-time (Sarwate) table; `TABLES[k]` propagates that
/// byte's effect through `k` further zero bytes, so each iteration folds
/// eight input bytes with eight independent lookups instead of a serial
/// byte-by-byte dependency chain.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY_REFLECTED
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// Folds `data` into the running (pre-inversion) register value, eight
/// bytes at a time.
fn update(mut crc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][c[4] as usize]
            ^ TABLES[2][c[5] as usize]
            ^ TABLES[1][c[6] as usize]
            ^ TABLES[0][c[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Computes the CRC-32 of `data`.
///
/// # Example
///
/// ```
/// use netfi_fc::crc32::checksum;
/// assert_eq!(checksum(b"123456789"), 0xCBF4_3926); // the standard check value
/// ```
pub fn checksum(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Verifies `data` whose last four bytes are its little-endian CRC-32.
pub fn verify(data_with_crc: &[u8]) -> bool {
    if data_with_crc.len() < 4 {
        return false;
    }
    let (body, crc_bytes) = data_with_crc.split_at(data_with_crc.len() - 4);
    let Ok(arr) = <[u8; 4]>::try_from(crc_bytes) else {
        return false;
    };
    checksum(body) == u32::from_le_bytes(arr)
}

/// A streaming CRC-32 accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    crc: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates an accumulator at the initial state.
    pub fn new() -> Crc32 {
        Crc32 { crc: 0xFFFF_FFFF }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.crc = update(self.crc, data);
    }

    /// The CRC of everything fed so far.
    pub fn finish(self) -> u32 {
        self.crc ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original bit-serial implementation, kept as the reference the
    /// slice-by-8 path is checked bit-identical against.
    fn checksum_bitwise(data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY_REFLECTED
                } else {
                    crc >> 1
                };
            }
        }
        crc ^ 0xFFFF_FFFF
    }

    #[test]
    fn slice_by_8_matches_reference_on_random_inputs() {
        let mut rng = netfi_sim::DetRng::new(0x32C3_2C32);
        for len in 0..64usize {
            for _ in 0..8 {
                let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
                assert_eq!(checksum(&data), checksum_bitwise(&data), "len {len}");
            }
        }
        for len in [65usize, 127, 128, 129, 2112, 2116] {
            let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            assert_eq!(checksum(&data), checksum_bitwise(&data), "len {len}");
        }
    }

    #[test]
    fn slice_by_8_matches_reference_on_boundary_inputs() {
        for pattern in [0x00u8, 0xFF, 0xAA, 0x55, 0x80, 0x01] {
            for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33] {
                let data = vec![pattern; len];
                assert_eq!(
                    checksum(&data),
                    checksum_bitwise(&data),
                    "pattern {pattern:02x} len {len}"
                );
            }
        }
    }

    #[test]
    fn standard_check_value() {
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(checksum(&[]), 0);
    }

    #[test]
    fn verify_roundtrip() {
        let mut buf = b"fibre channel frame".to_vec();
        let crc = checksum(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        assert!(verify(&buf));
        buf[3] ^= 0x80;
        assert!(!verify(&buf));
    }

    #[test]
    fn verify_rejects_short() {
        assert!(!verify(&[1, 2, 3]));
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..200).collect();
        for split in [0usize, 1, 99, 200] {
            let mut acc = Crc32::new();
            acc.update(&data[..split]);
            acc.update(&data[split..]);
            assert_eq!(acc.finish(), checksum(&data));
        }
    }

    #[test]
    fn all_single_bit_errors_detected() {
        let mut buf = vec![0x5Au8; 64];
        let crc = checksum(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut corrupted = buf.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(!verify(&corrupted), "missed {byte}:{bit}");
            }
        }
    }
}
