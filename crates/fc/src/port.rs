//! N_Port pairs with buffer-to-buffer credit flow control.
//!
//! Fibre Channel class-3 flow control: a sender may transmit one frame per
//! buffer-to-buffer credit; the receiver returns an `R_RDY` primitive for
//! each buffer it frees. This is FC's analogue of Myrinet's STOP/GO slack
//! buffer, and gives the injector's FC interface a second flow-control
//! protocol to observe and corrupt.

use std::collections::VecDeque;

use crate::frame::FcFrame;

/// Counters for one port.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Frames transmitted.
    pub tx_frames: u64,
    /// Frames accepted into receive buffers.
    pub rx_frames: u64,
    /// Frames discarded because no receive buffer was free (class 3 has
    /// no retransmission — the frame is simply lost).
    pub rx_discards: u64,
    /// R_RDY primitives emitted.
    pub r_rdy_sent: u64,
    /// R_RDY primitives consumed (credits returned).
    pub r_rdy_received: u64,
}

/// One end of a Fibre Channel link.
#[derive(Debug, Clone)]
pub struct NPort {
    /// Credits currently available for transmission.
    credits: u32,
    /// Configured login credit (BB_Credit).
    bb_credit: u32,
    /// Frames waiting for credit.
    tx_queue: VecDeque<FcFrame>,
    /// Receive buffers: frames awaiting the host.
    rx_buffers: VecDeque<FcFrame>,
    /// Number of receive buffers advertised.
    rx_capacity: usize,
    stats: PortStats,
}

impl NPort {
    /// Creates a port with the given login credit / buffer count.
    ///
    /// # Panics
    ///
    /// Panics if `bb_credit` is zero.
    pub fn new(bb_credit: u32) -> NPort {
        assert!(bb_credit > 0, "BB_Credit must be at least 1");
        NPort {
            credits: bb_credit,
            bb_credit,
            tx_queue: VecDeque::new(),
            rx_buffers: VecDeque::new(),
            rx_capacity: bb_credit as usize,
            stats: PortStats::default(),
        }
    }

    /// Available transmit credits.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// The configured login credit.
    pub fn bb_credit(&self) -> u32 {
        self.bb_credit
    }

    /// Counters.
    pub fn stats(&self) -> PortStats {
        self.stats
    }

    /// Frames waiting for credit.
    pub fn tx_backlog(&self) -> usize {
        self.tx_queue.len()
    }

    /// Queues a frame and returns every frame that may be transmitted now
    /// (the queued one and/or earlier backlog, credit permitting).
    pub fn send(&mut self, frame: FcFrame) -> Vec<FcFrame> {
        self.tx_queue.push_back(frame);
        self.drain_tx()
    }

    /// Consumes one received `R_RDY`, returning newly transmittable
    /// frames.
    pub fn on_r_rdy(&mut self) -> Vec<FcFrame> {
        self.stats.r_rdy_received += 1;
        // Credits never exceed the login value.
        if self.credits < self.bb_credit {
            self.credits += 1;
        }
        self.drain_tx()
    }

    /// Handles an arriving frame. Returns `true` and records an `R_RDY`
    /// obligation if a buffer was free; `false` (frame lost) otherwise.
    pub fn receive(&mut self, frame: FcFrame) -> bool {
        if self.rx_buffers.len() >= self.rx_capacity {
            self.stats.rx_discards += 1;
            return false;
        }
        self.rx_buffers.push_back(frame);
        self.stats.rx_frames += 1;
        true
    }

    /// The host drains one received frame, freeing a buffer; the freed
    /// buffer generates an `R_RDY` to send back (counted here).
    pub fn deliver(&mut self) -> Option<FcFrame> {
        let frame = self.rx_buffers.pop_front()?;
        self.stats.r_rdy_sent += 1;
        Some(frame)
    }

    fn drain_tx(&mut self) -> Vec<FcFrame> {
        let mut out = Vec::new();
        while self.credits > 0 {
            let Some(frame) = self.tx_queue.pop_front() else {
                break;
            };
            self.credits -= 1;
            self.stats.tx_frames += 1;
            out.push(frame);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FcAddress;

    fn frame(n: u16) -> FcFrame {
        FcFrame::data(FcAddress::new(1), FcAddress::new(2), n, vec![n as u8; 8])
    }

    #[test]
    fn credit_limits_in_flight_frames() {
        let mut port = NPort::new(2);
        let sent: usize = (0..5).map(|i| port.send(frame(i)).len()).sum();
        assert_eq!(sent, 2, "only BB_Credit frames may fly");
        assert_eq!(port.tx_backlog(), 3);
        assert_eq!(port.credits(), 0);
    }

    #[test]
    fn r_rdy_releases_backlog() {
        let mut port = NPort::new(1);
        assert_eq!(port.send(frame(0)).len(), 1);
        assert_eq!(port.send(frame(1)).len(), 0);
        let released = port.on_r_rdy();
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].header.seq_cnt, 1);
    }

    #[test]
    fn credits_capped_at_login_value() {
        let mut port = NPort::new(2);
        // Spurious extra R_RDYs (e.g. injected by the device) must not
        // inflate credit beyond the login value.
        for _ in 0..10 {
            let _ = port.on_r_rdy();
        }
        assert_eq!(port.credits(), 2);
    }

    #[test]
    fn receive_discards_when_buffers_full() {
        let mut port = NPort::new(2);
        assert!(port.receive(frame(0)));
        assert!(port.receive(frame(1)));
        assert!(!port.receive(frame(2)), "no buffer, class-3 discard");
        assert_eq!(port.stats().rx_discards, 1);
        // Draining frees buffers and owes an R_RDY.
        assert!(port.deliver().is_some());
        assert_eq!(port.stats().r_rdy_sent, 1);
        assert!(port.receive(frame(3)));
    }

    #[test]
    fn lost_r_rdy_starves_the_sender() {
        // The FC analogue of a corrupted GO symbol: if the device eats
        // R_RDYs, the sender eventually cannot transmit at all.
        let mut sender = NPort::new(2);
        let mut flying = 0;
        for i in 0..4 {
            flying += sender.send(frame(i)).len();
        }
        assert_eq!(flying, 2);
        // No R_RDY ever arrives: backlog never drains.
        assert_eq!(sender.tx_backlog(), 2);
        assert_eq!(sender.credits(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_credit_rejected() {
        let _ = NPort::new(0);
    }
}
