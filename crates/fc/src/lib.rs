//! `netfi-fc` — the Fibre Channel (FC-PH, \[ANS94\]) substrate.
//!
//! The paper's board carries interfaces for *two* media — "the current
//! board has interfaces for Myrinet and FibreChannel" — with the injector
//! logic itself media-agnostic ("the injection logic is general and not
//! customized to any one network"). This crate provides the Fibre Channel
//! side:
//!
//! - [`crc32`]: the FC frame check sequence (IEEE CRC-32).
//! - [`frame`]: FC-PH frames (SOF / 24-byte header / payload / CRC-32 /
//!   EOF), ordered sets (K28.5-led), and full encode/decode through the
//!   8b/10b codec in `netfi-phy`.
//! - [`port`]: N_Ports with buffer-to-buffer credit (R_RDY) flow control —
//!   FC's analogue of the Myrinet slack buffer.
//!
//! The `fc_monitor` example demonstrates the injector core corrupting an
//! FC frame stream, the paper's dual-media claim.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod crc32;
pub mod frame;
pub mod port;

pub use frame::{decode_line, FcAddress, FcError, FcFrame, FcHeader, OrderedSet};
pub use port::NPort;
