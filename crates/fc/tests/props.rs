//! Randomized property tests for the Fibre Channel substrate, driven by
//! seeded loops over [`DetRng`] (no external dependencies).

use netfi_fc::crc32;
use netfi_fc::frame::{decode_line, FcAddress, FcError, FcFrame, FcHeader};
use netfi_fc::NPort;
use netfi_phy::b8b10::{Decoder, Encoder};
use netfi_sim::DetRng;

const CASES: usize = 256;

fn random_bytes(rng: &mut DetRng, min_len: usize, max_len: usize) -> Vec<u8> {
    let len = min_len + rng.gen_index(max_len - min_len + 1);
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

fn random_header(rng: &mut DetRng) -> FcHeader {
    FcHeader {
        r_ctl: rng.next_u32() as u8,
        d_id: FcAddress::new(rng.next_u32()),
        s_id: FcAddress::new(rng.next_u32()),
        type_field: rng.next_u32() as u8,
        seq_id: rng.next_u32() as u8,
        seq_cnt: rng.next_u32() as u16,
        ox_id: rng.next_u32() as u16,
        rx_id: rng.next_u32() as u16,
    }
}

/// CRC-32 detects any single bit flip.
#[test]
fn crc32_detects_single_flip() {
    let mut rng = DetRng::new(0xFC32_0001);
    for _ in 0..CASES {
        let mut buf = random_bytes(&mut rng, 1, 256);
        let crc = crc32::checksum(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        let bit = rng.gen_index(buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        assert!(!crc32::verify(&buf));
    }
}

/// Streaming CRC-32 equals one-shot for any split.
#[test]
fn crc32_streaming_equivalence() {
    let mut rng = DetRng::new(0xFC32_0002);
    for _ in 0..CASES {
        let data = random_bytes(&mut rng, 0, 512);
        let cut = if data.is_empty() {
            0
        } else {
            rng.gen_index(data.len())
        };
        let mut acc = crc32::Crc32::new();
        acc.update(&data[..cut]);
        acc.update(&data[cut..]);
        assert_eq!(acc.finish(), crc32::checksum(&data));
    }
}

/// Headers roundtrip for arbitrary field values (addresses masked to 24
/// bits by construction).
#[test]
fn header_roundtrip() {
    let mut rng = DetRng::new(0xFC32_0003);
    for _ in 0..CASES {
        let h = random_header(&mut rng);
        assert_eq!(FcHeader::decode(&h.encode()), h);
    }
}

/// Whole frames survive the full 8b/10b line roundtrip for arbitrary
/// headers and payloads, including back-to-back frames sharing one
/// running disparity.
#[test]
fn frame_line_roundtrip() {
    let mut rng = DetRng::new(0xFC32_0004);
    for _ in 0..CASES {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        for _ in 0..1 + rng.gen_index(3) {
            let header = random_header(&mut rng);
            let payload = random_bytes(&mut rng, 0, 128);
            let frame = FcFrame {
                sof: netfi_fc::frame::Sof::Normal3,
                header,
                payload: payload.into(),
                eof: netfi_fc::frame::Eof::Normal,
            };
            let line = frame.to_line(&mut enc).unwrap();
            let (decoded, consumed) = decode_line(&line, &mut dec).unwrap();
            assert_eq!(decoded, frame);
            assert_eq!(consumed, line.len());
        }
    }
}

/// Corrupting any body byte (without fixing the CRC) is detected.
#[test]
fn frame_body_corruption_detected() {
    let mut rng = DetRng::new(0xFC32_0005);
    for _ in 0..CASES {
        let payload = random_bytes(&mut rng, 1, 128);
        let flip = 1 + rng.gen_index(255) as u8;
        let frame = FcFrame::data(FcAddress::new(1), FcAddress::new(2), 0, payload);
        let mut body = frame.body();
        let idx = rng.gen_index(body.len());
        body[idx] ^= flip;
        let mut enc = Encoder::new();
        let mut chars: Vec<netfi_phy::b8b10::Byte8> = Vec::new();
        chars.extend(netfi_fc::OrderedSet::Sof(frame.sof).chars());
        chars.extend(body.iter().map(|&b| netfi_phy::b8b10::Byte8::Data(b)));
        chars.extend(netfi_fc::OrderedSet::Eof(frame.eof).chars());
        let line: Vec<u16> = chars.into_iter().map(|c| enc.push(c).unwrap()).collect();
        let mut dec = Decoder::new();
        assert_eq!(decode_line(&line, &mut dec), Err(FcError::BadCrc));
    }
}

/// Credit conservation: frames in flight never exceed BB_Credit, and
/// every credit returned is eventually usable.
#[test]
fn bb_credit_conservation() {
    let mut rng = DetRng::new(0xFC32_0006);
    for _ in 0..CASES {
        let credit = 1 + rng.gen_range(0..7) as u32;
        let ops = 1 + rng.gen_index(99);
        let mut port = NPort::new(credit);
        let mut in_flight: u32 = 0;
        let mut seq = 0u16;
        for _ in 0..ops {
            if rng.gen_bool(0.5) {
                let released = port.send(FcFrame::data(
                    FcAddress::new(1),
                    FcAddress::new(2),
                    seq,
                    vec![],
                ));
                seq = seq.wrapping_add(1);
                in_flight += released.len() as u32;
            } else if in_flight > 0 {
                in_flight -= 1;
                in_flight += port.on_r_rdy().len() as u32;
            } else {
                let _ = port.on_r_rdy();
            }
            assert!(in_flight <= credit, "in flight {in_flight} > credit {credit}");
            assert!(port.credits() <= credit);
        }
    }
}
