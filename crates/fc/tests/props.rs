//! Property-based tests for the Fibre Channel substrate.

use proptest::prelude::*;

use netfi_fc::crc32;
use netfi_fc::frame::{decode_line, FcAddress, FcError, FcFrame, FcHeader};
use netfi_fc::NPort;
use netfi_phy::b8b10::{Decoder, Encoder};

fn arb_header() -> impl Strategy<Value = FcHeader> {
    (
        any::<u8>(),
        any::<u32>(),
        any::<u32>(),
        any::<u8>(),
        any::<u8>(),
        any::<u16>(),
        any::<u16>(),
        any::<u16>(),
    )
        .prop_map(|(r_ctl, d, s, ty, seq_id, seq_cnt, ox, rx)| FcHeader {
            r_ctl,
            d_id: FcAddress::new(d),
            s_id: FcAddress::new(s),
            type_field: ty,
            seq_id,
            seq_cnt,
            ox_id: ox,
            rx_id: rx,
        })
}

proptest! {
    /// CRC-32 detects any single bit flip.
    #[test]
    fn crc32_detects_single_flip(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        bit in any::<usize>()
    ) {
        let mut buf = data;
        let crc = crc32::checksum(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        let bit = bit % (buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(!crc32::verify(&buf));
    }

    /// Streaming CRC-32 equals one-shot for any split.
    #[test]
    fn crc32_streaming_equivalence(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in any::<proptest::sample::Index>()
    ) {
        let cut = if data.is_empty() { 0 } else { split.index(data.len()) };
        let mut acc = crc32::Crc32::new();
        acc.update(&data[..cut]);
        acc.update(&data[cut..]);
        prop_assert_eq!(acc.finish(), crc32::checksum(&data));
    }

    /// Headers roundtrip for arbitrary field values (addresses masked to
    /// 24 bits by construction).
    #[test]
    fn header_roundtrip(h in arb_header()) {
        prop_assert_eq!(FcHeader::decode(&h.encode()), h);
    }

    /// Whole frames survive the full 8b/10b line roundtrip for arbitrary
    /// headers and payloads, including back-to-back frames sharing one
    /// running disparity.
    #[test]
    fn frame_line_roundtrip(
        frames in proptest::collection::vec(
            (arb_header(), proptest::collection::vec(any::<u8>(), 0..128)),
            1..4
        )
    ) {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        for (header, payload) in frames {
            let frame = FcFrame {
                sof: netfi_fc::frame::Sof::Normal3,
                header,
                payload,
                eof: netfi_fc::frame::Eof::Normal,
            };
            let line = frame.to_line(&mut enc).unwrap();
            let (decoded, consumed) = decode_line(&line, &mut dec).unwrap();
            prop_assert_eq!(decoded, frame);
            prop_assert_eq!(consumed, line.len());
        }
    }

    /// Corrupting any body byte (without fixing the CRC) is detected.
    #[test]
    fn frame_body_corruption_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        at in any::<proptest::sample::Index>(),
        flip in 1u8..=255
    ) {
        let frame = FcFrame::data(FcAddress::new(1), FcAddress::new(2), 0, payload);
        let mut body = frame.body();
        let idx = at.index(body.len());
        body[idx] ^= flip;
        let mut enc = Encoder::new();
        let mut chars: Vec<netfi_phy::b8b10::Byte8> = Vec::new();
        chars.extend(netfi_fc::OrderedSet::Sof(frame.sof).chars());
        chars.extend(body.iter().map(|&b| netfi_phy::b8b10::Byte8::Data(b)));
        chars.extend(netfi_fc::OrderedSet::Eof(frame.eof).chars());
        let line: Vec<u16> = chars.into_iter().map(|c| enc.push(c).unwrap()).collect();
        let mut dec = Decoder::new();
        prop_assert_eq!(decode_line(&line, &mut dec), Err(FcError::BadCrc));
    }

    /// Credit conservation: frames in flight never exceed BB_Credit, and
    /// every credit returned is eventually usable.
    #[test]
    fn bb_credit_conservation(
        credit in 1u32..8,
        ops in proptest::collection::vec(any::<bool>(), 1..100)
    ) {
        let mut port = NPort::new(credit);
        let mut in_flight: u32 = 0;
        let mut seq = 0u16;
        for send in ops {
            if send {
                let released = port.send(FcFrame::data(
                    FcAddress::new(1),
                    FcAddress::new(2),
                    seq,
                    vec![],
                ));
                seq = seq.wrapping_add(1);
                in_flight += released.len() as u32;
            } else if in_flight > 0 {
                in_flight -= 1;
                in_flight += port.on_r_rdy().len() as u32;
            } else {
                let _ = port.on_r_rdy();
            }
            prop_assert!(in_flight <= credit, "in flight {} > credit {}", in_flight, credit);
            prop_assert!(port.credits() <= credit);
        }
    }
}
