//! The engine dispatch probe.
//!
//! [`DispatchProbe`] plugs into the engine's static-dispatch observation
//! seam (`netfi_sim::engine::Probe`) and records, per component: how many
//! events it handled and how many it emitted, plus a bounded flight trace
//! of recent dispatches. Because the probe is a type parameter of the
//! engine, a simulation built without one (`NullProbe`) pays nothing —
//! the hooks inline to empty bodies.

use netfi_sim::engine::Probe;
use netfi_sim::{ComponentId, SimTime};

use crate::event::{ObsEvent, Stamped};
use crate::flight::FlightRecorder;

/// Counts per-component dispatches and keeps a bounded dispatch trace.
///
/// `Clone` is the probe's snapshot seam: `Engine::snapshot` clones the
/// installed probe, so a forked engine resumes with identical counters
/// and trace state.
#[derive(Debug, Clone)]
pub struct DispatchProbe {
    dispatches: Vec<u64>,
    emitted: Vec<u64>,
    total: u64,
    first: Option<SimTime>,
    last: SimTime,
    ring: FlightRecorder<ObsEvent>,
    /// Evictions inherited from the probes a [`DispatchProbe::merged`]
    /// probe was folded from; zero on a directly-installed probe.
    carried_dropped: u64,
}

impl DispatchProbe {
    /// A probe whose dispatch trace keeps the last `ring_capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `ring_capacity` is zero.
    pub fn new(ring_capacity: usize) -> DispatchProbe {
        DispatchProbe {
            dispatches: Vec::new(),
            emitted: Vec::new(),
            total: 0,
            first: None,
            last: SimTime::ZERO,
            ring: FlightRecorder::new(ring_capacity),
            carried_dropped: 0,
        }
    }

    /// Folds per-shard probes into one whole-engine export.
    ///
    /// A `ShardedEngine` (see `netfi_sim::shard`) installs one probe per
    /// affinity shard; this constructor sums their counters elementwise,
    /// takes the earliest first-dispatch and latest last-dispatch, merges
    /// the dispatch traces by time (ties keep shard order — the traces are
    /// diagnostic, not part of any pinned export), and carries the parts'
    /// eviction counts forward into [`DispatchProbe::trace_dropped`].
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a DispatchProbe>) -> DispatchProbe {
        let mut dispatches: Vec<u64> = Vec::new();
        let mut emitted: Vec<u64> = Vec::new();
        let mut total = 0;
        let mut first: Option<SimTime> = None;
        let mut last = SimTime::ZERO;
        let mut carried_dropped = 0;
        let mut trace: Vec<Stamped<ObsEvent>> = Vec::new();
        for part in parts {
            if dispatches.len() < part.dispatches.len() {
                dispatches.resize(part.dispatches.len(), 0);
            }
            for (sum, n) in dispatches.iter_mut().zip(&part.dispatches) {
                *sum += n;
            }
            if emitted.len() < part.emitted.len() {
                emitted.resize(part.emitted.len(), 0);
            }
            for (sum, n) in emitted.iter_mut().zip(&part.emitted) {
                *sum += n;
            }
            total += part.total;
            first = match (first, part.first) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            last = last.max(part.last);
            carried_dropped += part.ring.dropped() + part.carried_dropped;
            trace.extend(part.ring.iter().copied());
        }
        trace.sort_by_key(|e| e.time);
        let mut ring = FlightRecorder::new(trace.len().max(1));
        for event in &trace {
            ring.push(event.time, event.value);
        }
        DispatchProbe {
            dispatches,
            emitted,
            total,
            first,
            last,
            ring,
            carried_dropped,
        }
    }

    /// Total events dispatched while this probe was installed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events dispatched to one component.
    pub fn dispatches_for(&self, id: ComponentId) -> u64 {
        self.dispatches.get(id.index()).copied().unwrap_or(0)
    }

    /// Events emitted (scheduled) by one component while handling its own.
    pub fn emitted_by(&self, id: ComponentId) -> u64 {
        self.emitted.get(id.index()).copied().unwrap_or(0)
    }

    /// Per-component dispatch counts, indexed by [`ComponentId::index`].
    pub fn dispatch_counts(&self) -> &[u64] {
        &self.dispatches
    }

    /// Time of the first observed dispatch, if any.
    pub fn first_dispatch(&self) -> Option<SimTime> {
        self.first
    }

    /// Time of the most recent observed dispatch.
    pub fn last_dispatch(&self) -> SimTime {
        self.last
    }

    /// The bounded dispatch trace, oldest first. Each event's `value` is
    /// the destination component's index.
    pub fn trace(&self) -> impl Iterator<Item = &Stamped<ObsEvent>> {
        self.ring.iter()
    }

    /// Dispatches evicted from the bounded trace (including, for a
    /// [`DispatchProbe::merged`] probe, evictions in the folded parts).
    pub fn trace_dropped(&self) -> u64 {
        self.ring.dropped() + self.carried_dropped
    }
}

fn bump(counts: &mut Vec<u64>, index: usize) {
    if counts.len() <= index {
        counts.resize(index + 1, 0);
    }
    if let Some(slot) = counts.get_mut(index) {
        *slot += 1;
    }
}

impl Probe for DispatchProbe {
    #[inline]
    fn on_dispatch(&mut self, now: SimTime, dst: ComponentId, _events_processed: u64) {
        bump(&mut self.dispatches, dst.index());
        self.total += 1;
        if self.first.is_none() {
            self.first = Some(now);
        }
        self.last = now;
        self.ring.push(
            now,
            ObsEvent::instant("engine", "dispatch", dst.index() as u64),
        );
    }

    #[inline]
    fn on_deliver(&mut self, _now: SimTime, dst: ComponentId, emitted: usize) {
        let index = dst.index();
        if self.emitted.len() <= index {
            self.emitted.resize(index + 1, 0);
        }
        if let Some(slot) = self.emitted.get_mut(index) {
            *slot += emitted as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(engine: &mut netfi_sim::Engine<u32, DispatchProbe>) -> ComponentId {
        struct Nop;
        impl netfi_sim::Component<u32> for Nop {
            fn on_event(&mut self, ctx: &mut netfi_sim::Context<'_, u32>, payload: u32) {
                if payload > 0 {
                    ctx.send_self(netfi_sim::SimDuration::from_ns(1), payload - 1);
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
            fn fork(&self) -> Box<dyn netfi_sim::Component<u32>> {
                Box::new(Nop)
            }
        }
        engine.add_component(Box::new(Nop))
    }

    #[test]
    fn probe_counts_dispatches_and_emissions() {
        let mut engine = netfi_sim::Engine::with_probe(DispatchProbe::new(8));
        let c = id(&mut engine);
        engine.schedule(SimTime::ZERO, c, 3);
        engine.run();
        let probe = engine.probe();
        assert_eq!(probe.total(), 4);
        assert_eq!(probe.dispatches_for(c), 4);
        assert_eq!(probe.emitted_by(c), 3);
        assert_eq!(probe.first_dispatch(), Some(SimTime::ZERO));
        assert_eq!(probe.last_dispatch(), SimTime::from_ns(3));
        assert_eq!(probe.trace().count(), 4);
        assert_eq!(probe.trace_dropped(), 0);
        assert_eq!(probe.dispatch_counts(), &[4]);
    }

    #[test]
    fn merged_probe_folds_parts() {
        let mut a = netfi_sim::Engine::with_probe(DispatchProbe::new(2));
        let ca = id(&mut a);
        a.schedule(SimTime::ZERO, ca, 4);
        a.run();
        let mut b = netfi_sim::Engine::with_probe(DispatchProbe::new(8));
        let cb = id(&mut b);
        b.schedule(SimTime::from_ns(10), cb, 1);
        b.run();
        let merged = DispatchProbe::merged([a.probe(), b.probe()]);
        assert_eq!(merged.total(), a.probe().total() + b.probe().total());
        assert_eq!(merged.dispatches_for(ca), 7);
        assert_eq!(merged.emitted_by(ca), 5);
        assert_eq!(merged.first_dispatch(), Some(SimTime::ZERO));
        assert_eq!(merged.last_dispatch(), SimTime::from_ns(11));
        // a's ring of 2 evicted 3 of its 5 dispatches; the merged trace
        // keeps everything that survived, in time order.
        assert_eq!(merged.trace_dropped(), 3);
        assert_eq!(merged.trace().count(), 4);
        let times: Vec<_> = merged.trace().map(|e| e.time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn merged_of_nothing_is_empty() {
        let merged = DispatchProbe::merged([]);
        assert_eq!(merged.total(), 0);
        assert_eq!(merged.first_dispatch(), None);
        assert_eq!(merged.trace().count(), 0);
        assert_eq!(merged.trace_dropped(), 0);
    }

    #[test]
    fn trace_is_bounded() {
        let mut engine = netfi_sim::Engine::with_probe(DispatchProbe::new(2));
        let c = id(&mut engine);
        engine.schedule(SimTime::ZERO, c, 9);
        engine.run();
        let probe = engine.probe();
        assert_eq!(probe.trace().count(), 2);
        assert_eq!(probe.trace_dropped(), 8);
    }
}
