//! Static-dispatch emission: the [`Sink`] trait and the no-op sink.
//!
//! Instrumented code is written generic over `S: Sink` and monomorphized
//! per sink type. With [`NullSink`] every emission is an empty inlined
//! call, so the disabled configuration compiles to nothing measurable on
//! the hot path — the same contract the engine's `Probe` hook makes one
//! layer down.

use netfi_sim::SimTime;

use crate::event::ObsEvent;

/// Receives observations. All provided helpers funnel into [`Sink::emit`],
/// so implementors write one method.
pub trait Sink {
    /// Accepts one observation at simulated time `time`.
    fn emit(&mut self, time: SimTime, event: ObsEvent);

    /// `false` when emissions are discarded; emit sites may skip building
    /// expensive values when disabled.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Emits a point observation.
    #[inline]
    fn instant(&mut self, time: SimTime, scope: &'static str, name: &'static str, value: u64) {
        self.emit(time, ObsEvent::instant(scope, name, value));
    }

    /// Emits a span-opening edge.
    #[inline]
    fn begin(&mut self, time: SimTime, scope: &'static str, name: &'static str, value: u64) {
        self.emit(time, ObsEvent::begin(scope, name, value));
    }

    /// Emits a span-closing edge.
    #[inline]
    fn end(&mut self, time: SimTime, scope: &'static str, name: &'static str, value: u64) {
        self.emit(time, ObsEvent::end(scope, name, value));
    }

    /// Emits a sampled value.
    #[inline]
    fn sample(&mut self, time: SimTime, scope: &'static str, name: &'static str, value: u64) {
        self.emit(time, ObsEvent::sample(scope, name, value));
    }
}

/// The disabled sink: every method is an empty `#[inline(always)]` body,
/// so instrumentation generic over it vanishes at compile time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl Sink for NullSink {
    #[inline(always)]
    fn emit(&mut self, _time: SimTime, _event: ObsEvent) {}

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// A sink that appends into a plain vector — unbounded, for tests and
/// offline analysis (the bounded in-simulation sink is
/// [`crate::record::Recorder`]).
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// The collected observations, in emission order.
    pub events: Vec<crate::event::Stamped<ObsEvent>>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> VecSink {
        VecSink { events: Vec::new() }
    }
}

impl Sink for VecSink {
    fn emit(&mut self, time: SimTime, event: ObsEvent) {
        self.events.push(crate::event::Stamped { time, value: event });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_reports_disabled_and_discards() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.instant(SimTime::ZERO, "a", "b", 1);
        s.begin(SimTime::ZERO, "a", "b", 1);
        s.end(SimTime::ZERO, "a", "b", 1);
        s.sample(SimTime::ZERO, "a", "b", 1);
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut s = VecSink::new();
        s.instant(SimTime::from_ns(1), "a", "x", 7);
        s.sample(SimTime::from_ns(2), "a", "y", 9);
        assert!(s.enabled());
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].value.name, "x");
        assert_eq!(s.events[1].value.value, 9);
    }
}
