//! The flight recorder: a bounded, allocation-free ring of stamped records.
//!
//! This is the software generalization of the paper's SDRAM capture
//! memory — "the FPGA can be programmed to keep the bytes surrounding the
//! fault injection event" (§3.2) — applied to every layer: the ring keeps
//! the most recent `capacity` records, so when an injection trigger fires
//! the recorder holds the events around it. Storage is reserved once at
//! construction; a steady-state `push` writes in place and never touches
//! the allocator, which is why this file opts into the allocation lint.

// netfi-lint: deny(hot-path-alloc)
//
// `push` runs on instrumented hot paths (per-frame, per-drop). The only
// allocation is the one-time slot reservation in the constructor.

use std::fmt;

use netfi_sim::SimTime;

use crate::event::Stamped;

/// A bounded ring of timestamped records, oldest evicted first.
///
/// # Example
///
/// ```
/// use netfi_obs::FlightRecorder;
/// use netfi_sim::SimTime;
///
/// let mut ring = FlightRecorder::new(2);
/// ring.push(SimTime::from_ns(1), "a");
/// ring.push(SimTime::from_ns(2), "b");
/// ring.push(SimTime::from_ns(3), "c"); // evicts "a"
/// let values: Vec<_> = ring.iter().map(|r| r.value).collect();
/// assert_eq!(values, ["b", "c"]);
/// assert_eq!(ring.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FlightRecorder<T> {
    slots: Vec<Stamped<T>>,
    capacity: usize,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl<T> FlightRecorder<T> {
    /// Creates a recorder holding at most `capacity` records. The slot
    /// storage is reserved up front; `push` never reallocates.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> FlightRecorder<T> {
        assert!(capacity > 0, "flight recorder capacity must be non-zero");
        FlightRecorder {
            // One-time slot reservation; `Vec::with_capacity` is the
            // sanctioned construction-time allocation under the lint.
            slots: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest if the ring is full.
    pub fn push(&mut self, time: SimTime, value: T) {
        let record = Stamped { time, value };
        if self.slots.len() < self.capacity {
            self.slots.push(record);
        } else if let Some(slot) = self.slots.get_mut(self.head) {
            *slot = record;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if no records are held.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Maximum number of records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates oldest-to-newest.
    pub fn iter(&self) -> impl Iterator<Item = &Stamped<T>> {
        let (tail, front) = (
            self.slots.get(self.head..).unwrap_or_default(),
            self.slots.get(..self.head).unwrap_or_default(),
        );
        tail.iter().chain(front.iter())
    }

    /// The most recent record, if any.
    pub fn last(&self) -> Option<&Stamped<T>> {
        if self.slots.len() < self.capacity {
            self.slots.last()
        } else {
            let newest = (self.head + self.capacity - 1) % self.capacity;
            self.slots.get(newest)
        }
    }

    /// Removes all records; the eviction counter is preserved.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.head = 0;
    }
}

impl<T: fmt::Display> FlightRecorder<T> {
    /// Renders the ring as one `[time] value` line per record, oldest
    /// first (the format the old trace buffer used, kept for reports).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for r in self.iter() {
            let _ = writeln!(out, "[{}] {}", r.time, r.value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent_in_order() {
        let mut ring = FlightRecorder::new(3);
        for i in 0..5u32 {
            ring.push(SimTime::from_ns(u64::from(i)), i);
        }
        let vals: Vec<u32> = ring.iter().map(|r| r.value).collect();
        assert_eq!(vals, vec![2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.last().unwrap().value, 4);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn partial_fill_iterates_in_push_order() {
        let mut ring = FlightRecorder::new(8);
        ring.push(SimTime::from_ns(1), "x");
        ring.push(SimTime::from_ns(2), "y");
        let vals: Vec<&str> = ring.iter().map(|r| r.value).collect();
        assert_eq!(vals, vec!["x", "y"]);
        assert_eq!(ring.last().unwrap().value, "y");
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = FlightRecorder::<u8>::new(0);
    }

    #[test]
    fn clear_preserves_dropped_counter() {
        let mut ring = FlightRecorder::new(1);
        ring.push(SimTime::ZERO, 1);
        ring.push(SimTime::ZERO, 2);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
        // And the ring still works after a clear.
        ring.push(SimTime::from_ns(9), 3);
        assert_eq!(ring.last().unwrap().value, 3);
    }

    #[test]
    fn push_never_reallocates() {
        let mut ring = FlightRecorder::new(4);
        let cap_before = ring.slots.capacity();
        for i in 0..100u64 {
            ring.push(SimTime::from_ns(i), i);
        }
        assert_eq!(ring.slots.capacity(), cap_before);
        assert_eq!(ring.dropped(), 96);
    }

    #[test]
    fn render_includes_timestamps() {
        let mut ring = FlightRecorder::new(4);
        ring.push(SimTime::from_ns(1), "hello");
        let s = ring.render();
        assert!(s.contains("1.000ns"));
        assert!(s.contains("hello"));
    }
}
