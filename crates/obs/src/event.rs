//! The observation vocabulary: timestamped events with static labels.
//!
//! Labels are `&'static str` by design: emitting an observation must not
//! allocate, and the fixed label set keeps exports deterministic. The
//! `value` field carries whatever scalar the site finds useful — a port
//! number, a byte offset, a latency in nanoseconds — and the exporters
//! surface it verbatim.

use std::fmt;

use netfi_sim::SimTime;

/// What an [`ObsEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A point observation (a drop, a trigger fire, a checksum reject).
    Instant,
    /// The opening edge of a span (a STOP interval, a mapping round, a
    /// campaign phase).
    Begin,
    /// The closing edge of a span opened with [`EventKind::Begin`].
    End,
    /// A sampled value; `value` is the sample (e.g. a latency in ns).
    Sample,
}

impl EventKind {
    /// Short stable tag used by the text renderings.
    pub fn tag(self) -> &'static str {
        match self {
            EventKind::Instant => "i",
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Sample => "S",
        }
    }
}

/// One observation emitted by an instrumented layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsEvent {
    /// The emitting layer ("engine", "switch", "injector", "udp", …).
    /// Becomes the Chrome trace thread.
    pub scope: &'static str,
    /// The event name within the scope ("overflow_drop", "inject", …).
    pub name: &'static str,
    /// Instant, span edge or sample.
    pub kind: EventKind,
    /// Site-defined scalar payload.
    pub value: u64,
}

impl ObsEvent {
    /// A point observation.
    pub fn instant(scope: &'static str, name: &'static str, value: u64) -> ObsEvent {
        ObsEvent {
            scope,
            name,
            kind: EventKind::Instant,
            value,
        }
    }

    /// A span-opening edge.
    pub fn begin(scope: &'static str, name: &'static str, value: u64) -> ObsEvent {
        ObsEvent {
            scope,
            name,
            kind: EventKind::Begin,
            value,
        }
    }

    /// A span-closing edge.
    pub fn end(scope: &'static str, name: &'static str, value: u64) -> ObsEvent {
        ObsEvent {
            scope,
            name,
            kind: EventKind::End,
            value,
        }
    }

    /// A sampled value (e.g. a latency in nanoseconds).
    pub fn sample(scope: &'static str, name: &'static str, value: u64) -> ObsEvent {
        ObsEvent {
            scope,
            name,
            kind: EventKind::Sample,
            value,
        }
    }
}

impl fmt::Display for ObsEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.scope,
            self.name,
            self.kind.tag(),
            self.value
        )
    }
}

/// A value stamped with the simulated time it was observed at.
///
/// Field-compatible with the record type the old `netfi-sim` trace buffer
/// used, so harness code reads `rec.time` / `rec.value` unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped<T> {
    /// When the observation was made (simulated time, never wall time).
    pub time: SimTime,
    /// The observed value.
    pub value: T,
}

/// Sorts a merged event bundle into the deterministic export order:
/// by time, then scope, name, kind and value so that records collected
/// from different recorders interleave identically on every run.
pub fn sort_bundle(events: &mut [Stamped<ObsEvent>]) {
    events.sort_by(|a, b| {
        (a.time, a.value.scope, a.value.name, a.value.kind, a.value.value).cmp(&(
            b.time,
            b.value.scope,
            b.value.name,
            b.value.kind,
            b.value.value,
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(ObsEvent::instant("s", "n", 1).kind, EventKind::Instant);
        assert_eq!(ObsEvent::begin("s", "n", 1).kind, EventKind::Begin);
        assert_eq!(ObsEvent::end("s", "n", 1).kind, EventKind::End);
        assert_eq!(ObsEvent::sample("s", "n", 1).kind, EventKind::Sample);
    }

    #[test]
    fn display_is_compact() {
        let ev = ObsEvent::instant("switch", "overflow_drop", 3);
        assert_eq!(ev.to_string(), "switch:overflow_drop i 3");
    }

    #[test]
    fn bundle_sort_is_total_and_deterministic() {
        let mut a = vec![
            Stamped {
                time: SimTime::from_ns(5),
                value: ObsEvent::instant("b", "x", 0),
            },
            Stamped {
                time: SimTime::from_ns(5),
                value: ObsEvent::instant("a", "x", 0),
            },
            Stamped {
                time: SimTime::from_ns(1),
                value: ObsEvent::instant("z", "x", 0),
            },
        ];
        let mut b = a.clone();
        b.reverse();
        sort_bundle(&mut a);
        sort_bundle(&mut b);
        assert_eq!(a, b);
        assert_eq!(a[0].value.scope, "z");
        assert_eq!(a[1].value.scope, "a");
    }
}
