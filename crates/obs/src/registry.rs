//! The metrics registry: named counters, gauges and histograms.
//!
//! The registry is a *collection-time* structure: harnesses fill it from
//! component statistics after (or between phases of) a run, then hand it
//! to the exporters. Keys are sorted (`BTreeMap`), so iteration — and
//! therefore every export — is deterministic. Nothing here runs on the
//! simulation hot path; in-run observation goes through
//! [`crate::record::Recorder`] and [`crate::hist::LogHistogram`] owned by
//! the components themselves.

use std::collections::BTreeMap;

use crate::hist::LogHistogram;

/// Named counters, gauges and log-bucketed histograms.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to the named counter (created at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Sets the named gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one sample into the named histogram (created empty).
    pub fn record(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = LogHistogram::new();
            h.record(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Merges a whole histogram into the named slot.
    pub fn merge_histogram(&mut self, name: &str, hist: &LogHistogram) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.merge(hist);
        } else {
            self.histograms.insert(name.to_string(), hist.clone());
        }
    }

    /// The named counter's value (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Counters in sorted name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Gauges in sorted name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Histograms in sorted name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LogHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// `true` when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one (counters add, gauges are
    /// overwritten by `other`, histograms merge).
    pub fn merge(&mut self, other: &Registry) {
        for (name, value) in &other.counters {
            self.add(name, *value);
        }
        for (name, value) in &other.gauges {
            self.set_gauge(name, *value);
        }
        for (name, hist) in &other.histograms {
            self.merge_histogram(name, hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        r.add("switch.drops", 2);
        r.add("switch.drops", 3);
        assert_eq!(r.counter("switch.drops"), 5);
        assert_eq!(r.counter("never"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::new();
        r.set_gauge("sbuf.occupancy", 10);
        r.set_gauge("sbuf.occupancy", -3);
        assert_eq!(r.gauge("sbuf.occupancy"), Some(-3));
        assert_eq!(r.gauge("never"), None);
    }

    #[test]
    fn histograms_record_and_extract() {
        let mut r = Registry::new();
        for v in 1..=100u64 {
            r.record("rtt_ns", v);
        }
        let h = r.histogram("rtt_ns").unwrap();
        assert_eq!(h.quantile(0.95), 95);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut r = Registry::new();
        r.add("zeta", 1);
        r.add("alpha", 1);
        r.add("mid", 1);
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn merge_folds_everything() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.add("c", 1);
        b.add("c", 2);
        b.set_gauge("g", 7);
        b.record("h", 10);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(7));
        assert_eq!(a.histogram("h").unwrap().count(), 1);
        assert!(!a.is_empty());
    }
}
