//! Log₂-bucketed histograms with percentile extraction.
//!
//! Latencies in the simulated network span six orders of magnitude (a
//! 12.5 ns character period to ~235 µs host round trips), so fixed-width
//! bins either blur the small end or explode in count. A [`LogHistogram`]
//! buckets by the value's bit length — 65 buckets cover all of `u64` — and
//! keeps per-bucket count/min/max/sum, which makes nearest-rank quantile
//! extraction *exact* whenever the values inside the rank's bucket are a
//! single point or consecutive evenly spaced integers, and a tight
//! interpolation otherwise.

use std::fmt;

/// Per-bucket accounting.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    count: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Bucket {
    const EMPTY: Bucket = Bucket {
        count: 0,
        min: 0,
        max: 0,
        sum: 0,
    };
}

/// Number of buckets: value 0, plus one per bit length 1..=64.
const BUCKETS: usize = 65;

/// The standard percentile triple campaign reports quote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Percentiles {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl fmt::Display for Percentiles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p50={} p95={} p99={}", self.p50, self.p95, self.p99)
    }
}

/// Exact nearest-rank percentiles over a raw sample set (sorts in place).
///
/// The log-bucketed [`LogHistogram`] is compact but interpolates between a
/// bucket's extremes; when the full sample set is small enough to hold —
/// per-threshold detection latencies, for example — sorting and indexing
/// is both exact and pure integer arithmetic, so reports built from it are
/// byte-stable with no rounding mode in sight.
pub fn exact_percentiles(samples: &mut [u64]) -> Percentiles {
    if samples.is_empty() {
        return Percentiles::default();
    }
    samples.sort_unstable();
    let n = samples.len();
    let pick = |p: usize| samples[(n * p).div_ceil(100).clamp(1, n) - 1];
    Percentiles {
        p50: pick(50),
        p95: pick(95),
        p99: pick(99),
    }
}

/// A log₂-bucketed histogram of `u64` samples.
///
/// # Example
///
/// ```
/// use netfi_obs::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// // Consecutive integers interpolate exactly.
/// assert_eq!(h.quantile(0.50), 50);
/// assert_eq!(h.quantile(0.95), 95);
/// assert_eq!(h.quantile(0.99), 99);
/// ```
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [Bucket; BUCKETS],
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index: 0 for the value 0, otherwise the value's bit length.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: [Bucket::EMPTY; BUCKETS],
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = &mut self.buckets[bucket_index(value)];
        if bucket.count == 0 {
            bucket.min = value;
            bucket.max = value;
        } else {
            bucket.min = bucket.min.min(value);
            bucket.max = bucket.max.max(value);
        }
        bucket.count += 1;
        bucket.sum += u128::from(value);
        self.total += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.buckets
            .iter()
            .find(|b| b.count > 0)
            .map_or(0, |b| b.min)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rev()
            .find(|b| b.count > 0)
            .map_or(0, |b| b.max)
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u128 = self.buckets.iter().map(|b| b.sum).sum();
        sum as f64 / self.total as f64
    }

    /// Nearest-rank quantile with in-bucket linear interpolation.
    ///
    /// The rank `ceil(q · n)` is located in its bucket; if the bucket holds
    /// a single distinct value that value is returned exactly, otherwise
    /// the result interpolates linearly between the bucket's recorded min
    /// and max by rank position — exact for consecutive evenly spaced
    /// integers, a tight bound otherwise.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let clamped = q.clamp(0.0, 1.0);
        let rank = ((clamped * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cumulative = 0u64;
        for bucket in &self.buckets {
            if bucket.count == 0 {
                continue;
            }
            if rank <= cumulative + bucket.count {
                if bucket.min == bucket.max || bucket.count == 1 {
                    return bucket.min;
                }
                let position = rank - cumulative; // 1..=bucket.count
                let fraction = (position - 1) as f64 / (bucket.count - 1) as f64;
                let spread = (bucket.max - bucket.min) as f64;
                return bucket.min + (fraction * spread + 0.5) as u64;
            }
            cumulative += bucket.count;
        }
        self.max()
    }

    /// The p50/p95/p99 triple.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            if theirs.count == 0 {
                continue;
            }
            if mine.count == 0 {
                mine.min = theirs.min;
                mine.max = theirs.max;
            } else {
                mine.min = mine.min.min(theirs.min);
                mine.max = mine.max.max(theirs.max);
            }
            mine.count += theirs.count;
            mine.sum += theirs.sum;
        }
        self.total += other.total;
    }

    /// Non-empty buckets as `(bit_length, count)` pairs, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.count > 0)
            .map(|(i, b)| (i, b.count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn percentiles_exact_on_consecutive_integers() {
        // 1..=1000: every bucket holds a run of consecutive integers, so
        // the in-bucket interpolation reproduces nearest-rank exactly.
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.50, 500), (0.95, 950), (0.99, 990), (1.0, 1000)] {
            assert_eq!(h.quantile(q), expect, "q={q}");
        }
        assert_eq!(h.quantile(0.001), 1);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn percentiles_exact_on_point_masses() {
        // 90 samples of 100 ns, 9 of 1000 ns, 1 of 10_000 ns: each bucket
        // is a single point, so every quantile is exact.
        let mut h = LogHistogram::new();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(1_000);
        }
        h.record(10_000);
        let p = h.percentiles();
        assert_eq!(p, Percentiles { p50: 100, p95: 1_000, p99: 1_000 });
        assert_eq!(h.quantile(1.0), 10_000);
        assert_eq!(h.quantile(0.999), 10_000);
    }

    #[test]
    fn exact_on_evenly_spaced_values_within_a_bucket() {
        // 40, 44, 48, … 60 all share bucket 6 and are evenly spaced: the
        // interpolation lands on the recorded values exactly.
        let mut h = LogHistogram::new();
        for v in (40..=60u64).step_by(4) {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 48);
        assert_eq!(h.quantile(1.0), 60);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.percentiles(), Percentiles::default());
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn zero_values_have_their_own_bucket() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(0);
        h.record(8);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 8);
        let buckets: Vec<(usize, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(0, 2), (4, 1)]);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in 1..=50u64 {
            a.record(v);
        }
        for v in 51..=100u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.quantile(0.95), 95);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 100);
    }

    #[test]
    fn mean_matches_sum() {
        let mut h = LogHistogram::new();
        for v in [2u64, 4, 6] {
            h.record(v);
        }
        assert_eq!(h.mean(), 4.0);
    }

    #[test]
    fn exact_percentiles_are_nearest_rank() {
        let mut samples: Vec<u64> = (1..=100).rev().collect();
        let p = exact_percentiles(&mut samples);
        assert_eq!(p, Percentiles { p50: 50, p95: 95, p99: 99 });
        // Sorted in place.
        assert_eq!(samples[0], 1);
        // Small sets: nearest rank, never out of bounds.
        let mut one = [7u64];
        assert_eq!(
            exact_percentiles(&mut one),
            Percentiles { p50: 7, p95: 7, p99: 7 }
        );
        let mut two = [10u64, 20];
        let p = exact_percentiles(&mut two);
        assert_eq!(p, Percentiles { p50: 10, p95: 20, p99: 20 });
        assert_eq!(exact_percentiles(&mut []), Percentiles::default());
    }

    #[test]
    fn display_of_percentiles() {
        let p = Percentiles { p50: 1, p95: 2, p99: 3 };
        assert_eq!(p.to_string(), "p50=1 p95=2 p99=3");
    }
}
