//! `netfi-obs` — deterministic observability: spans, metrics, flight
//! recording and failure-analysis exports.
//!
//! The paper's device is as much a *monitor* as an injector: it keeps "the
//! bytes surrounding the fault injection event" in SDRAM, counts packets
//! per identifier pair, and the campaign watches the network with `mmon`.
//! This crate generalizes that discipline to every layer of the simulated
//! stack, with the same constraint the hardware had: observation must not
//! perturb the observed system.
//!
//! Everything here is stamped exclusively with [`netfi_sim::SimTime`] — no wall
//! clocks — so enabling observation never changes simulation behaviour,
//! and two runs of the same seed export byte-identical artifacts.
//!
//! - [`event::ObsEvent`]: one observation — an instant, a span edge or a
//!   sampled value — tagged with a static scope (the layer that emitted
//!   it) and name.
//! - [`sink::Sink`]: the static-dispatch emission trait. Instrumented code
//!   is generic over its sink; with [`sink::NullSink`] every call inlines
//!   to nothing, so the disabled path costs nothing measurable.
//! - [`record::Recorder`]: a runtime-armable sink components embed. It is
//!   disarmed by default (a `None` branch, no storage) and arms into a
//!   bounded [`flight::FlightRecorder`].
//! - [`flight::FlightRecorder`]: the bounded, allocation-free ring that
//!   plays the SDRAM capture memory's role — it keeps the last N records
//!   around an injection trigger and is subject to
//!   `netfi-lint: deny(hot-path-alloc)`.
//! - [`hist::LogHistogram`]: log₂-bucketed latency histograms with
//!   p50/p95/p99 extraction, exact on per-bucket-uniform distributions.
//! - [`registry::Registry`]: named counters, gauges and histograms with
//!   deterministic (sorted) iteration, filled from component stats at
//!   collection time.
//! - [`export`]: the Chrome `trace_event` JSON exporter and the
//!   deterministic text-table exporter campaign reports embed.
//! - [`probe::DispatchProbe`]: an engine probe (see
//!   `netfi_sim::engine::Probe`) that counts event dispatches per
//!   component and keeps a bounded dispatch trace.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod event;
pub mod export;
pub mod flight;
pub mod hist;
pub mod probe;
pub mod record;
pub mod registry;
pub mod sink;

pub use event::{EventKind, ObsEvent, Stamped};
pub use flight::FlightRecorder;
pub use hist::{exact_percentiles, LogHistogram, Percentiles};
pub use probe::DispatchProbe;
pub use record::Recorder;
pub use registry::Registry;
pub use sink::{NullSink, Sink};
