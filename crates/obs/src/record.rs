//! The armable recorder components embed.
//!
//! A [`Recorder`] is the deployment vehicle for the flight recorder: a
//! component owns one, constructed disarmed (no storage, a single `None`
//! branch per emission — nothing on the allocator, nothing in cache), and
//! a harness arms it before a run it wants to observe. This mirrors how
//! the paper's device idles transparently until NFTAPE programs it over
//! the serial line.

use netfi_sim::SimTime;

use crate::event::{ObsEvent, Stamped};
use crate::flight::FlightRecorder;
use crate::sink::Sink;

/// A runtime-armable bounded event sink.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    ring: Option<FlightRecorder<ObsEvent>>,
}

impl Recorder {
    /// A disarmed recorder: no storage, emissions are discarded.
    pub const fn disarmed() -> Recorder {
        Recorder { ring: None }
    }

    /// Arms the recorder with a ring of `capacity` events. Re-arming
    /// replaces the ring (previous contents are discarded).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn arm(&mut self, capacity: usize) {
        self.ring = Some(FlightRecorder::new(capacity));
    }

    /// Disarms and drops any captured events.
    pub fn disarm(&mut self) {
        self.ring = None;
    }

    /// `true` while emissions are being captured.
    pub fn is_armed(&self) -> bool {
        self.ring.is_some()
    }

    /// Captured events, oldest first (empty when disarmed).
    pub fn events(&self) -> impl Iterator<Item = &Stamped<ObsEvent>> {
        self.ring.iter().flat_map(|r| r.iter())
    }

    /// Number of captured events currently held.
    pub fn len(&self) -> usize {
        self.ring.as_ref().map_or(0, |r| r.len())
    }

    /// `true` when nothing is captured (also when disarmed).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from the ring since arming.
    pub fn dropped(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.dropped())
    }
}

impl Sink for Recorder {
    #[inline]
    fn emit(&mut self, time: SimTime, event: ObsEvent) {
        if let Some(ring) = &mut self.ring {
            ring.push(time, event);
        }
    }

    #[inline]
    fn enabled(&self) -> bool {
        self.ring.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_discards_everything() {
        let mut r = Recorder::disarmed();
        assert!(!r.enabled());
        r.instant(SimTime::ZERO, "a", "b", 1);
        assert!(r.is_empty());
        assert_eq!(r.events().count(), 0);
    }

    #[test]
    fn armed_captures_bounded() {
        let mut r = Recorder::default();
        r.arm(2);
        assert!(r.is_armed() && r.enabled());
        for i in 0..3u64 {
            r.instant(SimTime::from_ns(i), "s", "n", i);
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        let values: Vec<u64> = r.events().map(|e| e.value.value).collect();
        assert_eq!(values, vec![1, 2]);
    }

    #[test]
    fn disarm_drops_capture() {
        let mut r = Recorder::disarmed();
        r.arm(4);
        r.instant(SimTime::ZERO, "s", "n", 1);
        r.disarm();
        assert!(!r.is_armed());
        assert!(r.is_empty());
    }
}
