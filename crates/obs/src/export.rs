//! Deterministic exporters: Chrome `trace_event` JSON and text tables.
//!
//! Both exporters are pure functions of their input — no wall clocks, no
//! map-order dependence, no locale-dependent float formatting — so the
//! same campaign exports byte-identical artifacts on every run. That is a
//! load-bearing property: the determinism suite pins golden hashes over
//! these strings.
//!
//! The JSON exporter targets the Chrome `trace_event` format (load the
//! output in `chrome://tracing` or Perfetto). Each distinct scope becomes
//! a track (`tid`); span edges map to `"B"`/`"E"`, instants to `"i"`, and
//! samples to counter (`"C"`) events.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::event::{EventKind, ObsEvent, Stamped};
use crate::registry::Registry;

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats picoseconds as the microsecond timestamp Chrome expects,
/// without going through floating point: `ps = 1_234_567` → `"1.234567"`.
fn ts_us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

/// Renders events as a Chrome `trace_event` JSON document.
///
/// Events should be sorted first (see [`crate::event::sort_bundle`]);
/// the exporter preserves input order. Each unique scope is assigned a
/// thread id by sorted order, so track layout is stable across runs.
pub fn chrome_trace(events: &[Stamped<ObsEvent>]) -> String {
    let mut tids: BTreeMap<&str, usize> = BTreeMap::new();
    for e in events {
        let next = tids.len();
        tids.entry(e.value.scope).or_insert(next);
    }
    // BTreeMap iteration is sorted by scope, not insertion order; reassign
    // ids so tid 0 is the lexicographically first scope.
    for (i, (_, tid)) in tids.iter_mut().enumerate() {
        *tid = i;
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    // Thread-name metadata records label each track.
    for (i, (scope, tid)) in tids.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\""
        );
        escape_json(scope, &mut out);
        out.push_str("\"}}");
    }
    for e in events {
        let tid = e.value.tid(&tids);
        if !out.ends_with('[') {
            out.push_str(",\n");
        }
        let _ = write!(out, "{{\"ph\":\"{}\",\"pid\":1,\"tid\":{tid},\"ts\":\"{}\",\"name\":\"", e.value.kind.chrome_ph(), ts_us(e.time.as_ps()));
        escape_json(e.value.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape_json(e.value.scope, &mut out);
        out.push('"');
        match e.value.kind {
            EventKind::Instant => {
                // Thread-scoped instant marker.
                let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"value\":{}}}", e.value.value);
            }
            EventKind::Sample => {
                let _ = write!(out, ",\"args\":{{\"value\":{}}}", e.value.value);
            }
            EventKind::Begin | EventKind::End => {
                if e.value.value != 0 {
                    let _ = write!(out, ",\"args\":{{\"value\":{}}}", e.value.value);
                }
            }
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

impl ObsEvent {
    fn tid(&self, tids: &BTreeMap<&str, usize>) -> usize {
        tids.get(self.scope).copied().unwrap_or(0)
    }
}

impl EventKind {
    /// The Chrome `trace_event` phase character for this kind.
    pub fn chrome_ph(self) -> char {
        match self {
            EventKind::Instant => 'i',
            EventKind::Begin => 'B',
            EventKind::End => 'E',
            EventKind::Sample => 'C',
        }
    }
}

fn rule(out: &mut String, width: usize) {
    for _ in 0..width {
        out.push('-');
    }
    out.push('\n');
}

/// Renders a registry as a deterministic fixed-width text table.
///
/// Counters, gauges and histogram percentile rows, each section sorted by
/// name. The output is byte-stable: identical registries render identical
/// strings, which lets reports embed it and tests hash it.
pub fn text_table(title: &str, registry: &Registry) -> String {
    const NAME_W: usize = 40;
    const VAL_W: usize = 12;
    let mut out = String::new();
    let total_w = NAME_W + 4 * (VAL_W + 1);
    let _ = writeln!(out, "== {title} ==");

    let counters: Vec<(&str, u64)> = registry.counters().collect();
    if !counters.is_empty() {
        let _ = writeln!(out, "{:<NAME_W$} {:>VAL_W$}", "counter", "value");
        rule(&mut out, NAME_W + 1 + VAL_W);
        for (name, value) in counters {
            let _ = writeln!(out, "{name:<NAME_W$} {value:>VAL_W$}");
        }
    }

    let gauges: Vec<(&str, i64)> = registry.gauges().collect();
    if !gauges.is_empty() {
        let _ = writeln!(out, "{:<NAME_W$} {:>VAL_W$}", "gauge", "value");
        rule(&mut out, NAME_W + 1 + VAL_W);
        for (name, value) in gauges {
            let _ = writeln!(out, "{name:<NAME_W$} {value:>VAL_W$}");
        }
    }

    let hists: Vec<(&str, &crate::hist::LogHistogram)> = registry.histograms().collect();
    if !hists.is_empty() {
        let _ = writeln!(
            out,
            "{:<NAME_W$} {:>VAL_W$} {:>VAL_W$} {:>VAL_W$} {:>VAL_W$}",
            "histogram", "count", "p50", "p95", "p99"
        );
        rule(&mut out, total_w);
        for (name, h) in hists {
            let p = h.percentiles();
            let _ = writeln!(
                out,
                "{:<NAME_W$} {:>VAL_W$} {:>VAL_W$} {:>VAL_W$} {:>VAL_W$}",
                name,
                h.count(),
                p.p50,
                p.p95,
                p.p99
            );
        }
    }

    if registry.is_empty() {
        out.push_str("(empty)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfi_sim::SimTime;

    fn bundle() -> Vec<Stamped<ObsEvent>> {
        vec![
            Stamped {
                time: SimTime::from_ns(1),
                value: ObsEvent::begin("campaign", "measure", 0),
            },
            Stamped {
                time: SimTime::from_ns(2),
                value: ObsEvent::instant("switch", "overflow_drop", 3),
            },
            Stamped {
                time: SimTime::from_ns(3),
                value: ObsEvent::sample("host", "rtt_ns", 125),
            },
            Stamped {
                time: SimTime::from_ns(4),
                value: ObsEvent::end("campaign", "measure", 7),
            },
        ]
    }

    #[test]
    fn chrome_trace_shape() {
        let json = chrome_trace(&bundle());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}\n"));
        // Scopes sorted: campaign=0, host=1, switch=2.
        assert!(json.contains("\"tid\":2,\"ts\":\"0.002000\",\"name\":\"overflow_drop\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"args\":{\"value\":125}"));
        // Track labels present.
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn chrome_trace_is_reproducible() {
        let a = chrome_trace(&bundle());
        let b = chrome_trace(&bundle());
        assert_eq!(a, b);
    }

    #[test]
    fn chrome_trace_empty() {
        let json = chrome_trace(&[]);
        assert_eq!(json, "{\"traceEvents\":[\n\n]}\n");
    }

    #[test]
    fn timestamps_are_exact_microseconds() {
        assert_eq!(ts_us(0), "0.000000");
        assert_eq!(ts_us(1_234_567), "1.234567");
        assert_eq!(ts_us(12_500), "0.012500");
    }

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn text_table_sections() {
        let mut r = Registry::new();
        r.add("switch.overflow_drops", 4);
        r.set_gauge("sbuf.peak", 96);
        for v in 1..=100u64 {
            r.record("host.rtt_ns", v);
        }
        let table = text_table("campaign", &r);
        assert!(table.starts_with("== campaign ==\n"));
        assert!(table.contains("switch.overflow_drops"));
        assert!(table.contains("sbuf.peak"));
        assert!(table.contains("host.rtt_ns"));
        // Reproducible.
        assert_eq!(table, text_table("campaign", &r));
    }

    #[test]
    fn text_table_empty() {
        let table = text_table("nothing", &Registry::new());
        assert_eq!(table, "== nothing ==\n(empty)\n");
    }
}
