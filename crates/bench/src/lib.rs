//! `netfi-bench` — experiment regenerators and micro-benchmarks.
//!
//! Benchmarks run on the dependency-free [`harness`] (monotonic clock,
//! warmup, median-of-N); `cargo bench -p netfi-bench` runs them all, and
//! `cargo run -p netfi-bench --release --bin bench_engine` emits
//! `BENCH_engine.json` for perf-trend tracking.
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index); `cargo run -p netfi-bench --bin <name> --release`:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1_synthesis` | Table 1 — FPGA synthesis results |
//! | `table2_latency` | Table 2 — pass-through latency |
//! | `table4_control_symbols` | Table 4 — control-symbol corruption |
//! | `exp_stop_throughput` | §4.3.1 — faulty-STOP throughput collapse |
//! | `exp_gap_timeout` | §4.3.1 — GAP loss / long-period timeout |
//! | `exp_packet_type` | §4.3.2 — packet-type & route corruption |
//! | `exp_address` | §4.3.3 — physical-address corruption |
//! | `exp_udp_checksum` | §4.3.4 — UDP checksum aliasing |
//! | `fig8_stream` | Figure 8 — packet stream with control symbols |
//! | `fig9_slack` | Figure 9 — slack-buffer watermark behaviour |
//! | `fig11_maps` | Figure 11 — network map before/after corruption |
//! | `exp_passthrough` | §3.5 — pass-through transparency |
//! | `all_experiments` | run everything, emit EXPERIMENTS data |

#![warn(missing_docs)]

pub mod harness;

/// Parses a `--key value`-style argument from `std::env::args`.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Pulls `"key": <number>` out of a flat JSON object — enough to read a
/// committed `BENCH_*.json` artifact back without a JSON parser.
pub fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
