//! Dependency-free micro-benchmark harness.
//!
//! Criterion is unavailable in the registry-less environments this
//! repository builds in, and the statistics we actually need are modest:
//! a monotonic clock, a warmup phase so caches/branch predictors settle,
//! and a median over an odd number of samples so one scheduling hiccup
//! cannot skew a run. That is exactly what this module provides, plus a
//! tiny JSON writer so benchmark binaries can emit machine-readable
//! `BENCH_*.json` artifacts for trend tracking.
//!
//! ```
//! use netfi_bench::harness::Bench;
//! let m = Bench::new("add").iters(1000).run(|| std::hint::black_box(2u64 + 2));
//! assert!(m.median_ns_per_iter() >= 0.0);
//! ```

use std::fmt::Write as _;
use std::time::Instant;

/// One benchmark: a name, a warmup policy, and a sampling policy.
#[derive(Debug, Clone)]
pub struct Bench {
    name: String,
    warmup_iters: u64,
    samples: u32,
    iters_per_sample: u64,
}

impl Bench {
    /// Creates a benchmark with the default policy: 3 warmup iterations,
    /// 11 samples (median-of-11), one iteration per sample. Macro
    /// benchmarks (whole simulation runs) use this as-is; micro
    /// benchmarks should raise [`Bench::iters`].
    pub fn new(name: impl Into<String>) -> Bench {
        Bench {
            name: name.into(),
            warmup_iters: 3,
            samples: 11,
            iters_per_sample: 1,
        }
    }

    /// Sets how many iterations each timed sample aggregates. Use a
    /// count large enough that one sample takes at least a few
    /// microseconds, or clock granularity dominates.
    pub fn iters(mut self, iters_per_sample: u64) -> Bench {
        self.iters_per_sample = iters_per_sample.max(1);
        self
    }

    /// Sets the number of timed samples (the median is reported). Even
    /// counts are rounded up so the median is a real sample.
    pub fn samples(mut self, samples: u32) -> Bench {
        self.samples = samples.max(1) | 1;
        self
    }

    /// Sets the number of untimed warmup iterations.
    pub fn warmup(mut self, warmup_iters: u64) -> Bench {
        self.warmup_iters = warmup_iters;
        self
    }

    /// Runs the benchmark: warmup, then `samples` timed samples of
    /// `iters_per_sample` calls each, on the monotonic clock.
    pub fn run<T>(&self, mut f: impl FnMut() -> T) -> Measurement {
        for _ in 0..self.warmup_iters {
            std::hint::black_box(f());
        }
        let mut samples_ns = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            samples_ns.push(start.elapsed().as_nanos() as u64);
        }
        Measurement {
            name: self.name.clone(),
            iters_per_sample: self.iters_per_sample,
            samples_ns,
        }
    }
}

/// The timed samples of one benchmark run.
#[derive(Debug, Clone)]
pub struct Measurement {
    name: String,
    iters_per_sample: u64,
    samples_ns: Vec<u64>,
}

impl Measurement {
    /// The benchmark's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Raw per-sample wall times in nanoseconds (one entry per sample,
    /// each covering `iters_per_sample` iterations).
    pub fn samples_ns(&self) -> &[u64] {
        &self.samples_ns
    }

    /// The median sample wall time in nanoseconds.
    pub fn median_sample_ns(&self) -> u64 {
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }

    /// The fastest sample wall time in nanoseconds.
    pub fn min_sample_ns(&self) -> u64 {
        self.samples_ns.iter().copied().min().unwrap_or(0)
    }

    /// Median nanoseconds per iteration.
    pub fn median_ns_per_iter(&self) -> f64 {
        self.median_sample_ns() as f64 / self.iters_per_sample as f64
    }

    /// Iterations per second at the median sample time.
    pub fn iters_per_sec(&self) -> f64 {
        let ns = self.median_ns_per_iter();
        if ns <= 0.0 {
            f64::INFINITY
        } else {
            1e9 / ns
        }
    }

    /// A one-line human-readable report.
    pub fn report(&self) -> String {
        format!(
            "{:<40} {:>14.1} ns/iter {:>14.0} iters/s (median of {}, min {} ns)",
            self.name,
            self.median_ns_per_iter(),
            self.iters_per_sec(),
            self.samples_ns.len(),
            self.min_sample_ns(),
        )
    }
}

/// Minimal JSON object writer for `BENCH_*.json` artifacts.
///
/// Field order is insertion order; values are numbers, strings, or
/// pre-rendered nested JSON. No external dependencies.
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    /// Adds a numeric field (non-finite values render as `null`).
    pub fn num(mut self, key: &str, value: f64) -> JsonObject {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> JsonObject {
        self.fields.push((key.to_string(), format!("{value}")));
        self
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> JsonObject {
        let mut escaped = String::with_capacity(value.len() + 2);
        escaped.push('"');
        for c in value.chars() {
            match c {
                '"' => escaped.push_str("\\\""),
                '\\' => escaped.push_str("\\\\"),
                '\n' => escaped.push_str("\\n"),
                '\r' => escaped.push_str("\\r"),
                '\t' => escaped.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(escaped, "\\u{:04x}", c as u32);
                }
                c => escaped.push(c),
            }
        }
        escaped.push('"');
        self.fields.push((key.to_string(), escaped));
        self
    }

    /// Adds a nested object (or any pre-rendered JSON value).
    pub fn raw(mut self, key: &str, rendered_json: String) -> JsonObject {
        self.fields.push((key.to_string(), rendered_json));
        self
    }

    /// Renders the object, pretty-printed with two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            let _ = write!(out, "  \"{k}\": {}", v.replace('\n', "\n  "));
            if i + 1 < self.fields.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_a_real_sample() {
        let m = Measurement {
            name: "m".into(),
            iters_per_sample: 1,
            samples_ns: vec![5, 1, 9, 3, 7],
        };
        assert_eq!(m.median_sample_ns(), 5);
        assert_eq!(m.min_sample_ns(), 1);
        assert!((m.median_ns_per_iter() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn per_iter_scales_by_iter_count() {
        let m = Measurement {
            name: "m".into(),
            iters_per_sample: 100,
            samples_ns: vec![1_000, 2_000, 3_000],
        };
        assert!((m.median_ns_per_iter() - 20.0).abs() < 1e-12);
        assert!((m.iters_per_sec() - 50_000_000.0).abs() < 1.0);
    }

    #[test]
    fn bench_runs_and_counts_samples() {
        let mut calls = 0u64;
        let m = Bench::new("count")
            .warmup(2)
            .samples(5)
            .iters(3)
            .run(|| calls += 1);
        assert_eq!(m.samples_ns().len(), 5);
        assert_eq!(calls, 2 + 5 * 3);
    }

    #[test]
    fn even_sample_counts_round_up() {
        let m = Bench::new("odd").samples(4).iters(1).run(|| ());
        assert_eq!(m.samples_ns().len(), 5);
    }

    #[test]
    fn json_object_renders_escaped() {
        let json = JsonObject::new()
            .str("name", "a\"b")
            .int("n", 3)
            .num("x", 1.5)
            .raw("nested", JsonObject::new().int("y", 1).render())
            .render();
        assert!(json.contains("\"name\": \"a\\\"b\""));
        assert!(json.contains("\"n\": 3"));
        assert!(json.contains("\"x\": 1.5"));
        assert!(json.contains("\"y\": 1"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
