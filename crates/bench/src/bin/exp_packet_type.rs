//! §4.3.2: Myrinet packet-type and source-route corruption.

use netfi_nftape::scenarios::ptype::{
    data_packet_corruption, mapping_packet_corruption, route_misroute, route_msb_corruption,
};
use netfi_nftape::Table;

fn main() {
    eprintln!("running packet-type corruption campaigns …");
    let mapping = mapping_packet_corruption(0x70747970).unwrap();
    let data = data_packet_corruption(0x70747970).unwrap();
    let msb = route_msb_corruption(0x70747970).unwrap();
    let misroute = route_misroute(0x70747970).unwrap();

    let mut table = Table::new(
        "Packet-type / route corruption outcomes",
        &["Campaign", "Observed", "Paper says"],
    );
    table.row(&[
        mapping.name.clone(),
        format!(
            "node removed={} restored next round={} ({} sends failed meanwhile)",
            mapping.extra("removed").unwrap_or(0.0) == 1.0,
            mapping.extra("restored").unwrap_or(0.0) == 1.0,
            mapping.extra("lost_no_route").unwrap_or(0.0),
        ),
        "node removed from network until the next mapping packet".to_string(),
    ]);
    table.row(&[
        data.name.clone(),
        format!(
            "{} sent, {} delivered, {} unrecognized, routing table unchanged={}",
            data.sent,
            data.received,
            data.extra("rx_unknown_type").unwrap_or(0.0),
            data.extra("routing_table_unchanged").unwrap_or(0.0) == 1.0,
        ),
        "dropped by the receiving node; internal structures unchanged".to_string(),
    ]);
    table.row(&[
        msb.name.clone(),
        format!(
            "{} route errors, {} delivered during fault, {} delivered after disarm",
            msb.extra("route_errors").unwrap_or(0.0),
            msb.received,
            msb.extra("recovered_rx").unwrap_or(0.0),
        ),
        "consumed and handled as an error, without incident".to_string(),
    ]);
    table.row(&[
        misroute.name.clone(),
        format!(
            "{} sent, {} misroute drops, {} accepted by wrong nodes",
            misroute.sent,
            misroute.extra("misroute_drops").unwrap_or(0.0),
            misroute.extra("accepted_by_wrong_node").unwrap_or(0.0),
        ),
        "expected packet losses; none accepted by incorrect nodes".to_string(),
    ]);
    println!("{table}");
}
