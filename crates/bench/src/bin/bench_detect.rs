//! Detection-latency study: φ-accrual detectors vs injected faults.
//!
//! Runs the `netfi-nftape` detection campaign — heartbeats over a
//! generated leaf–spine fabric, faults (power-offs, link and trunk
//! severs, injector corruption) applied to forks of one warm donor — at
//! several worker counts, asserting the campaign result is byte-identical
//! across all of them. Reports detection latency percentiles per
//! suspicion threshold, false-positive counts (with the healthy baseline
//! broken out), the fabric's static SPOF analysis, and the mean
//! prediction-vs-outcome agreement the SPOF model earns.
//!
//! Emits `BENCH_detect.json`, which `scripts/check.sh` gates against the
//! committed baseline (exact fingerprint match — the campaign is fully
//! deterministic, so any drift is a real behavior change).
//!
//! ```text
//! cargo run -p netfi-bench --release --bin bench_detect -- \
//!     [--hosts 100] [--workers N] [--out BENCH_detect.json]
//! ```

use netfi_bench::arg;
use netfi_bench::harness::JsonObject;
use netfi_detect::analyze;
use netfi_nftape::detection::{detect_specs, fabric_graph, run_detection, DetectOptions};
use netfi_nftape::runner::worker_count;
use netfi_obs::exact_percentiles;
use std::time::Instant;

fn main() {
    let out_path: String = arg("--out", "BENCH_detect.json".to_string());
    let hosts: usize = arg("--hosts", 100);
    let requested: usize = arg("--workers", 0);
    let widest = worker_count((requested > 0).then_some(requested));

    let options = DetectOptions::sized(hosts);
    let specs = detect_specs(&options);

    // Worker sweep: 1/2/4 pin the invariance contract, plus the
    // requested width. The headline wall time is the best pass.
    let mut sweep = vec![1usize, 2, 4, widest];
    sweep.sort_unstable();
    sweep.dedup();

    let mut results = Vec::new();
    let mut best_secs = f64::MAX;
    for &workers in &sweep {
        let start = Instant::now();
        let result = run_detection(&options, &specs, workers).expect("detection campaign");
        let secs = start.elapsed().as_secs_f64();
        println!(
            "detection campaign ({} scenarios, {hosts} hosts), {workers} workers: {secs:.2} s, fingerprint {:#018x}",
            specs.len(),
            result.fingerprint()
        );
        best_secs = best_secs.min(secs);
        results.push(result);
    }
    let first = &results[0];
    for (result, &workers) in results.iter().zip(&sweep).skip(1) {
        assert_eq!(
            result.fingerprint(),
            first.fingerprint(),
            "worker count {workers} changed the campaign fingerprint"
        );
        assert_eq!(
            result.render(),
            first.render(),
            "worker count {workers} changed the report bytes"
        );
        assert_eq!(result, first, "worker count {workers} changed a run");
    }
    println!("{}", first.render());

    let report = analyze(&fabric_graph(&options.topo));
    let mut json = JsonObject::new()
        .str("bench", "detect")
        .int(
            "cores",
            std::thread::available_parallelism().map_or(1, usize::from) as u64,
        )
        .int("workers", widest as u64)
        .int("hosts", hosts as u64)
        .int("scenarios", specs.len() as u64)
        .num("wall_secs", best_secs)
        .str("fingerprint", &format!("{:#018x}", first.fingerprint()));
    for (t, threshold) in first.thresholds.iter().enumerate() {
        let theta = u64::from(threshold.raw()) >> 16;
        let mut samples = first.latency_samples(t);
        let p = exact_percentiles(&mut samples);
        let baseline_fp = first
            .runs
            .iter()
            .find(|r| r.spec == "healthy")
            .and_then(|r| r.outcomes.get(t))
            .map_or(0, |o| o.false_alarm_pairs.len() as u64);
        json = json
            .int(&format!("theta{theta}_samples"), samples.len() as u64)
            .int(&format!("theta{theta}_p50_us"), p.p50)
            .int(&format!("theta{theta}_p95_us"), p.p95)
            .int(&format!("theta{theta}_p99_us"), p.p99)
            .int(&format!("theta{theta}_missed"), first.missed_total(t))
            .int(
                &format!("theta{theta}_false_alarms"),
                first.false_alarm_total(t),
            )
            .int(&format!("theta{theta}_baseline_false_alarms"), baseline_fp);
    }
    json = json
        .int("agreement_permille", first.mean_agreement_permille())
        .int("spof_count", report.spofs.len() as u64)
        .int("diameter", u64::from(report.diameter))
        .int("redundancy_milli", u64::from(report.redundancy_milli))
        .int("health", u64::from(report.health));

    let rendered = json.render();
    std::fs::write(&out_path, format!("{rendered}\n")).expect("write BENCH json");
    println!(
        "wrote {out_path} (agreement {} permille)",
        first.mean_agreement_permille()
    );
}
