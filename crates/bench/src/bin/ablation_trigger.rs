//! Ablation (DESIGN.md §5): trigger window width versus false-trigger
//! rate on random payloads.
//!
//! The compare mask selects "any arbitrary number of bits between 0 and
//! 32" (§3.3). Narrow masks fire spuriously on random traffic; this sweep
//! measures the empirical false-match rate per byte position against the
//! analytic 2⁻ᵏ.

use netfi_core::trigger::CompareUnit;
use netfi_nftape::Table;
use netfi_sim::DetRng;

fn main() {
    let mut rng = DetRng::new(0x74726967);
    let mut stream = vec![0u8; 1 << 20];
    rng.fill_bytes(&mut stream);
    let windows = (stream.len() - 3) as f64;

    let mut table = Table::new(
        "Trigger mask width vs. false-trigger rate on 1 MiB of random traffic",
        &["Mask bits", "Matches", "Rate/window", "Analytic 2^-k"],
    );
    for k in [4u32, 8, 12, 16, 20, 24, 28, 32] {
        let mask = if k == 32 { u32::MAX } else { ((1u64 << k) - 1) as u32 } << (32 - k);
        let cmp = CompareUnit::new(0x1818_1818 & mask, mask);
        let matches = cmp.scan(&stream).len();
        let rate = matches as f64 / windows;
        let analytic = 2f64.powi(-(k as i32));
        table.row(&[
            k.to_string(),
            matches.to_string(),
            format!("{rate:.2e}"),
            format!("{analytic:.2e}"),
        ]);
    }
    println!("{table}");
    println!(
        "a campaign that wants exactly one victim pattern needs >= ~24 mask\n\
         bits on gigabit traffic; the paper's 16-bit 0x1818 example relies on\n\
         payload control (its messages avoided the victim bytes)."
    );
}
