//! §3.5: pass-through transparency.
//!
//! "The fault injector caused no observable impact on the data transfer
//! rate. Data passed through the fault injector at the same rate it would
//! have if the fault injector had not been in the data path." Also:
//! "routes are correctly mapped through in both directions" — the mapping
//! protocol works across the device.

use netfi_bench::arg;
use netfi_myrinet::addr::EthAddr;
use netfi_netstack::{build_testbed, Host, TestbedOptions, Workload, SINK_PORT};
use netfi_nftape::Table;
use netfi_sim::{SimDuration, SimTime};

fn run(with_injector: bool, window_secs: u64) -> (u64, u64, bool) {
    let mut tb = build_testbed(
        TestbedOptions {
            hosts: 2,
            intercept_host: with_injector.then_some(1),
            ..TestbedOptions::default()
        },
        |i, host: &mut Host| {
            if i == 0 {
                // Saturating sender: large back-to-back bursts.
                host.add_workload(Workload::Sender {
                    dest: EthAddr::myricom(2),
                    interval: SimDuration::from_ms(10),
                    payload_len: 1024,
                    forbidden: vec![],
                    burst: 32,
                });
            }
        },
    ).unwrap();
    tb.engine.run_until(SimTime::from_secs(2) + SimDuration::from_secs(window_secs));
    let h1 = tb.engine.component_as::<Host>(tb.hosts[1]).unwrap();
    let received = h1.rx_count(SINK_PORT);
    let mapped = h1.nic().is_mapper(); // host 1 (highest address) must map
    let h0 = tb.engine.component_as::<Host>(tb.hosts[0]).unwrap();
    let sent = h0.sender_sent() - h0.nic().stats().tx_no_route;
    (sent, received, mapped)
}

fn main() {
    let window = arg("--window", 5u64);
    eprintln!("running saturating transfer with and without the device …");
    let (sent_direct, recv_direct, mapped_direct) = run(false, window);
    let (sent_dev, recv_dev, mapped_dev) = run(true, window);

    let mut table = Table::new(
        "Pass-through transparency (saturating 4 KiB bursts)",
        &["Path", "Sent", "Received", "Rate", "Mapping works"],
    );
    table.row(&[
        "direct link".into(),
        sent_direct.to_string(),
        recv_direct.to_string(),
        "100%".into(),
        mapped_direct.to_string(),
    ]);
    table.row(&[
        "through injector".into(),
        sent_dev.to_string(),
        recv_dev.to_string(),
        format!("{:.2}%", recv_dev as f64 / recv_direct.max(1) as f64 * 100.0),
        mapped_dev.to_string(),
    ]);
    println!("{table}");
    println!(
        "paper: no observable impact on the data transfer rate; routes map\n\
         through in both directions."
    );
}
