//! Regenerates Table 1: synthesis results of the FPGA code.
//!
//! Vendor synthesis is unavailable, so the model column comes from the
//! structural resource estimator over the emulated entities (see
//! `netfi_core::synth`).

use netfi_core::synth::{render_table1, table1};
use netfi_nftape::Table;

fn main() {
    println!("{}", render_table1());

    let mut table = Table::new(
        "Table 1 (detail): per-column relative error of the structural model",
        &["Entity", "Gates", "FGs", "Mux", "DFF"],
    );
    for row in table1() {
        let err = |paper: u32, model: u32| -> String {
            if paper == 0 && model == 0 {
                "exact".to_string()
            } else {
                let p = paper.max(1) as f64;
                format!("{:+.1}%", (model as f64 - paper as f64) / p * 100.0)
            }
        };
        table.row(&[
            row.name.to_string(),
            err(row.paper.gates, row.model.gates),
            err(row.paper.function_generators, row.model.function_generators),
            err(row.paper.multiplexors, row.model.multiplexors),
            err(row.paper.dffs, row.model.dffs),
        ]);
    }
    println!("{table}");
}
