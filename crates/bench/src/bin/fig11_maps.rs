//! Figure 11: the network map before and after a node's address is
//! corrupted to match the controller's.

use netfi_nftape::scenarios::address::controller_address_collision;

fn main() {
    eprintln!("running controller-address collision …");
    let out = controller_address_collision(0x0066_6967_3131).unwrap();
    println!("--- network before address corruption ---");
    println!("{}", out.healthy_map);
    println!("--- network after address corruption ---");
    println!("{}", out.damaged_map);
    println!(
        "damaged map holds {} node(s); {} of the following rounds produced a\n\
         *different* damaged map — \"although the faulty map was not static,\n\
         each subsequent mapping attempt resulted in a similarly damaged map\"",
        out.damaged_nodes, out.inconsistent_rounds
    );
}
