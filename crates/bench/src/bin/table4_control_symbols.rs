//! Regenerates Table 4: the control-symbol corruption campaign.
//!
//! Usage: `table4_control_symbols [--window <secs>] [--duty-on <ms>]`

use netfi_bench::arg;
use netfi_nftape::scenarios::control::{
    control_symbol_table, table4_paper_loss, table4_rows, ControlCampaignOptions,
};
use netfi_nftape::Table;
use netfi_sim::SimDuration;

fn main() {
    let window = arg("--window", 20u64);
    let duty_on = arg("--duty-on", 400u64);
    let opts = ControlCampaignOptions {
        window: SimDuration::from_secs(window),
        duty_on: SimDuration::from_ms(duty_on),
        ..ControlCampaignOptions::default()
    };
    eprintln!(
        "running 9 campaign rows, {window}s window, {duty_on}ms/1s duty …"
    );
    let results = control_symbol_table(&opts).unwrap();
    let mut table = Table::new(
        "Table 4: results of control symbol corruption campaign (model vs paper loss)",
        &[
            "Mask",
            "Replacement",
            "Sent",
            "Received",
            "Loss",
            "Paper loss",
            "Overflow",
            "Framing",
            "LongTO",
        ],
    );
    for ((row, (mask, replacement)), (p_sent, p_recv)) in results
        .iter()
        .zip(table4_rows())
        .zip(table4_paper_loss())
    {
        let paper_loss = 1.0 - p_recv as f64 / p_sent as f64;
        table.row(&[
            mask.to_string(),
            replacement.to_string(),
            row.sent.to_string(),
            row.received.to_string(),
            format!("{:.1}%", row.loss_rate() * 100.0),
            format!("{:.1}%", paper_loss * 100.0),
            format!("{:.0}", row.extra("overflow_drops").unwrap_or(0.0)),
            format!("{:.0}", row.extra("framing_drops").unwrap_or(0.0)),
            format!("{:.0}", row.extra("long_timeout_releases").unwrap_or(0.0)),
        ]);
    }
    println!("{table}");
}
