//! §4.3.3: physical-address corruption campaigns.

use netfi_nftape::scenarios::address::{
    controller_address_collision, destination_corruption, nonexistent_address,
    sender_address_corruption,
};
use netfi_nftape::Table;

fn main() {
    eprintln!("running address-corruption campaigns …");
    let dest = destination_corruption(0x61646472, false).unwrap();
    let dest_fixed = destination_corruption(0x61646472, true).unwrap();
    let own = sender_address_corruption(0x61646472).unwrap();
    let nonexist = nonexistent_address(0x61646472).unwrap();

    let mut table = Table::new(
        "Physical-address corruption outcomes",
        &["Campaign", "Observed", "Paper says"],
    );
    table.row(&[
        dest.name.clone(),
        format!(
            "{} sent, {} to intended, {} to wrong node, {} CRC drops",
            dest.sent,
            dest.received,
            dest.extra("received_by_wrong_node").unwrap_or(0.0),
            dest.extra("crc_drops").unwrap_or(0.0),
        ),
        "dropped; received by neither node — a result of the incorrect CRC-8".to_string(),
    ]);
    table.row(&[
        dest_fixed.name.clone(),
        format!(
            "{} to intended, {} misaddressed drops (ablation: CRC recomputed)",
            dest_fixed.received,
            dest_fixed.extra("misaddressed_drops").unwrap_or(0.0),
        ),
        "(beyond paper: the address filter is the second line of defence)".to_string(),
    ]);
    table.row(&[
        own.name.clone(),
        format!(
            "{} delivered, {} misaddressed drops, scouts answered={}, still in map={}",
            own.received,
            own.extra("misaddressed_drops").unwrap_or(0.0),
            own.extra("scouts_still_answered").unwrap_or(0.0),
            own.extra("still_in_map").unwrap_or(0.0) == 1.0,
        ),
        "unreachable, but still answers mapping; routing info unchanged".to_string(),
    ]);
    table.row(&[
        nonexist.name.clone(),
        format!(
            "old address routable={}, new address routable={}, {} sends dropped",
            nonexist.extra("old_address_routable").unwrap_or(0.0) == 1.0,
            nonexist.extra("new_address_routable").unwrap_or(0.0) == 1.0,
            nonexist.extra("packets_dropped_no_route").unwrap_or(0.0),
        ),
        "packets dropped; table updated — like replacing the computer".to_string(),
    ]);
    println!("{table}");

    println!("\n--- controller-address collision (see also fig11_maps) ---");
    let out = controller_address_collision(0x61646472).unwrap();
    println!(
        "inconsistent mapping rounds: {} (paper: \"unable to generate a consistent map\")",
        out.inconsistent_rounds
    );
}
