//! §4.3.4: UDP checksum aliasing.

use netfi_nftape::scenarios::udpcheck::{aliasing_corruption, baseline, detected_corruption};
use netfi_nftape::Table;

fn main() {
    eprintln!("running UDP checksum campaigns …");
    let base = baseline(0x756470).unwrap();
    let alias = aliasing_corruption(0x756470).unwrap();
    let detected = detected_corruption(0x756470).unwrap();

    let mut table = Table::new(
        "UDP address/payload corruption ('Have a lot of fun!')",
        &["Corruption", "Sent", "Delivered", "Checksum drops"],
    );
    for r in [&base, &alias, &detected] {
        table.row(&[
            r.name.clone(),
            r.sent.to_string(),
            r.received.to_string(),
            format!("{:.0}", r.extra("checksum_drops").unwrap_or(0.0)),
        ]);
    }
    println!("{table}");
    println!(
        "paper: the 16-bit-aligned word swap ('Have' -> 'veHa') satisfies the\n\
         one's-complement checksum and reaches the application; other\n\
         corruptions are detected and dropped."
    );
}
