//! §4.3.1: message throughput under faulty STOP conditions.
//!
//! "In one test run, the test program received 5038 messages in a one
//! minute period, a decrease of almost 90% from the 48000 messages
//! received under normal conditions."
//!
//! Usage: `exp_stop_throughput [--window <secs>]`

use netfi_bench::arg;
use netfi_nftape::scenarios::control::stop_throughput;
use netfi_nftape::Table;
use netfi_sim::SimDuration;

fn main() {
    let window = SimDuration::from_secs(arg("--window", 10u64));
    eprintln!("running normal and faulty-STOP arms ({window} window) …");
    let normal = stop_throughput(false, window, 0x73746f70).unwrap();
    let faulty = stop_throughput(true, window, 0x73746f70).unwrap();

    let mut table = Table::new(
        "Faulty STOP conditions: request/response message rate",
        &["Condition", "Completed", "Lost", "Msgs/min", "Relative"],
    );
    for r in [&normal, &faulty] {
        table.row(&[
            r.name.clone(),
            r.received.to_string(),
            r.lost().to_string(),
            format!("{:.0}", r.extra("messages_per_minute").unwrap_or(0.0)),
            format!(
                "{:.1}%",
                r.throughput() / normal.throughput().max(1e-9) * 100.0
            ),
        ]);
    }
    println!("{table}");
    println!(
        "paper: 5038 vs 48000 messages/minute = 10.5% of normal (≈90% decrease)"
    );
}
