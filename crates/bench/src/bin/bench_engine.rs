//! Engine throughput benchmark: how many simulated events per second does
//! the kernel sustain on the saturated three-node testbed, how does that
//! scale on generated leaf–spine fabrics from 10 to 1,000 hosts, and how
//! long does the paper's full campaign list take wall-clock?
//!
//! Emits `BENCH_engine.json` (events/sec, ns/event, the per-size fabric
//! scaling curve with its determinism digests, campaign wall time, serial
//! and parallel) so the perf trajectory is tracked from PR 1 on.
//! Throughput is min-of-samples (see the comment in `main`); the median
//! rides along in the JSON. If a previously committed
//! `BENCH_engine.baseline.json` exists next to the output, the report
//! includes the speedup against it.
//!
//! ```text
//! cargo run -p netfi-bench --release --bin bench_engine -- \
//!     [--out BENCH_engine.json] [--sim-ms 2000] [--samples 5] [--campaigns 1] \
//!     [--fabric-sim-ms 0] [--fabric-samples 5]
//! ```

use netfi_bench::harness::{Bench, JsonObject};
use netfi_bench::{arg, extract_number};
use netfi_myrinet::addr::EthAddr;
use netfi_netstack::{build_testbed, Host, Testbed, TestbedOptions, Workload};
use netfi_nftape::campaign::{paper_campaigns, run_campaigns_with_workers};
use netfi_nftape::runner::default_workers;
use netfi_nftape::{build_fabric, fabric_digest, TopoOptions};
use netfi_sim::{NullProbe, ShardSpec, ShardedEngine, SimDuration, SimTime, Simulation};
use std::hint::black_box;
use std::time::Instant;

/// The saturated three-node testbed: host 0 bursts 256-byte datagrams at
/// host 2 while host 2 floods ping-pong traffic back at host 1, with the
/// injector device intercepting host 1's link — the same topology the
/// determinism suite pins down, driven hard enough that the event queue
/// never drains.
fn saturated_options(seed: u64) -> TestbedOptions {
    TestbedOptions {
        intercept_host: Some(1),
        seed,
        paper_era_hosts: true,
        ..TestbedOptions::default()
    }
}

fn saturated_workloads(i: usize, host: &mut Host) {
    if i == 0 {
        host.add_workload(Workload::Sender {
            dest: EthAddr::myricom(2),
            interval: SimDuration::from_ms(3),
            payload_len: 256,
            forbidden: vec![],
            burst: 2,
        });
    }
    if i == 2 {
        host.add_workload(Workload::Flood {
            peer: EthAddr::myricom(1),
            payload_len: 64,
            timeout: SimDuration::from_ms(10),
        });
    }
}

fn run_saturated_testbed(sim_ms: u64, seed: u64) -> u64 {
    let mut tb = build_testbed(saturated_options(seed), saturated_workloads).unwrap();
    tb.engine.run_until(SimTime::from_ms(sim_ms));
    tb.engine.events_processed()
}

/// The same saturated testbed executed by the conservative-window sharded
/// engine (`netfi_sim::shard`): switch on shard 0, one shard per host, the
/// injector riding in its intercepted host's shard. Byte-identical output
/// is pinned by `tests/determinism.rs`; here we only time it.
fn run_saturated_testbed_sharded(sim_ms: u64, seed: u64, workers: usize) -> (u64, u64, u64) {
    let options = saturated_options(seed);
    let lookahead = options.link.propagation_delay();
    let tb = build_testbed(options, saturated_workloads).unwrap();
    let device = tb.injector.expect("intercept_host wires an injector");
    let mut affinity = vec![0u16; tb.engine.component_count()];
    for (i, h) in tb.hosts.iter().enumerate() {
        affinity[h.index()] = i as u16 + 1;
    }
    affinity[device.index()] = affinity[tb.hosts[1].index()];
    let Testbed { engine, .. } = tb;
    let spec = ShardSpec {
        affinity,
        lookahead,
        workers,
    };
    let mut sim: ShardedEngine<_, NullProbe> =
        ShardedEngine::from_engine(engine, spec, |_| NullProbe);
    sim.run_until(SimTime::from_ms(sim_ms));
    (sim.events_processed(), sim.rounds(), sim.cross_events())
}

/// The fabric scaling curve's sizes, each with a default simulated span
/// chosen so every size does comparable wall-clock work (event volume
/// grows roughly linearly with host count at fixed span).
const FABRIC_SIZES: [(usize, u64); 3] = [(10, 400), (100, 100), (1_000, 20)];

/// One row of the fabric scaling curve, accumulated for the JSON report.
struct FabricRow {
    hosts: usize,
    components: usize,
    shards: usize,
    sim_ms: u64,
    events: u64,
    digest: u64,
    events_per_sec: f64,
    ns_per_event: f64,
    sharded_w1_events_per_sec: f64,
    sharded_workers: usize,
    sharded_events_per_sec: f64,
    sharded_rounds: u64,
    sharded_cross_events: u64,
}

/// Builds the sized fabric, runs it serially to `sim_ms`, and returns
/// `(events_processed, fabric_digest)`.
fn run_fabric_serial(hosts: usize, sim_ms: u64) -> (u64, u64) {
    let options = TopoOptions::sized(hosts);
    let mut fab = build_fabric(&options, |_, _| {}).unwrap();
    fab.engine.run_until(SimTime::from_ms(sim_ms));
    let switches: Vec<_> = fab.leaves.iter().chain(&fab.spines).copied().collect();
    let digest = fabric_digest(&fab.engine, &fab.hosts, &switches);
    (fab.engine.events_processed(), digest)
}

/// The same sized fabric under the sharded executor (affinity groups from
/// the topology: one shard per leaf plus a spine shard). Returns
/// `(events, digest, rounds, cross_shard_events)`.
fn run_fabric_sharded(hosts: usize, sim_ms: u64, workers: usize) -> (u64, u64, u64, u64) {
    let options = TopoOptions::sized(hosts);
    let fab = build_fabric(&options, |_, _| {}).unwrap();
    let spec = fab.shard_spec(workers);
    let switches: Vec<_> = fab.leaves.iter().chain(&fab.spines).copied().collect();
    let host_ids = fab.hosts;
    let mut sim: ShardedEngine<_, NullProbe> =
        ShardedEngine::from_engine(fab.engine, spec, |_| NullProbe);
    sim.run_until(SimTime::from_ms(sim_ms));
    let digest = fabric_digest(&sim, &host_ids, &switches);
    (sim.events_processed(), digest, sim.rounds(), sim.cross_events())
}

fn main() {
    let out_path: String = arg("--out", "BENCH_engine.json".to_string());
    let sim_ms: u64 = arg("--sim-ms", 2_000);
    let samples: u32 = arg("--samples", 15);
    let campaigns: u32 = arg("--campaigns", 1);
    let fabric_sim_ms: u64 = arg("--fabric-sim-ms", 0); // 0 = per-size defaults
    let fabric_samples: u32 = arg("--fabric-samples", 5);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    // --- engine throughput on the saturated testbed ---
    //
    // Throughput is computed from the *fastest* sample, not the median:
    // the workload is single-threaded and deterministic, so every sample
    // does identical work and differences between them are pure scheduler
    // interference. On a shared (or single-core) box the min is the
    // least-interfered measurement; the median is kept in the JSON so the
    // noise level itself stays visible.
    let events = run_saturated_testbed(sim_ms, 12345);
    let m = Bench::new(format!("engine/saturated_testbed_{sim_ms}ms"))
        .samples(samples)
        .warmup(1)
        .run(|| black_box(run_saturated_testbed(sim_ms, 12345)));
    println!("{}", m.report());
    let wall_ns = m.min_sample_ns() as f64;
    let events_per_sec = events as f64 / (wall_ns / 1e9);
    let ns_per_event = wall_ns / events as f64;
    println!(
        "engine: {events} events in {:.1} ms -> {:.0} events/s, {:.1} ns/event",
        wall_ns / 1e6,
        events_per_sec,
        ns_per_event
    );

    // --- sharded engine throughput on the same testbed ---
    //
    // The conservative-window sharded executor, same workload and seed.
    // The serial `events_per_sec` above stays the ratchet input; this
    // number tracks what the window/mailbox machinery costs (on a
    // single-core runner it is expected to be *slower* than serial — the
    // rounds are pure overhead until there are cores to spread them on).
    let shard_workers = default_workers();
    let (sharded_events, shard_rounds, shard_cross) =
        run_saturated_testbed_sharded(sim_ms, 12345, shard_workers);
    assert_eq!(
        sharded_events, events,
        "sharded run must process the identical event stream"
    );
    let ms = Bench::new(format!("engine/sharded_testbed_{sim_ms}ms_w{shard_workers}"))
        .samples(samples)
        .warmup(1)
        .run(|| black_box(run_saturated_testbed_sharded(sim_ms, 12345, shard_workers)));
    println!("{}", ms.report());
    let sharded_wall_ns = ms.min_sample_ns() as f64;
    let sharded_events_per_sec = sharded_events as f64 / (sharded_wall_ns / 1e9);
    println!(
        "sharded: {sharded_events} events, {shard_rounds} rounds, {shard_cross} cross-shard \
         -> {:.0} events/s ({shard_workers} workers, {:.2}x serial)",
        sharded_events_per_sec,
        sharded_events_per_sec / events_per_sec
    );

    // --- fabric scaling curve: 10 / 100 / 1,000 generated hosts ---
    //
    // Each size builds a leaf–spine fabric from `TopoOptions::sized`,
    // runs the deterministic stride traffic serially, then re-runs it
    // under the sharded executor at 1 worker and at min(cores, 4)
    // workers. The fabric digest is the determinism oracle: serial and
    // every sharded configuration must agree on all 64 bits, in-run, at
    // every size — a silent divergence fails the bench before any number
    // is reported. Timing stays min-of-samples, same argument as above.
    let fabric_workers = cores.clamp(1, 4);
    let mut fabric_rows: Vec<FabricRow> = Vec::new();
    for &(n_hosts, default_ms) in &FABRIC_SIZES {
        let fms = if fabric_sim_ms > 0 { fabric_sim_ms } else { default_ms };
        let options = TopoOptions::sized(n_hosts);
        let meta = build_fabric(&options, |_, _| {}).unwrap();
        let components = meta.engine.component_count();
        let shards = meta.shard_count();
        drop(meta);

        let (events, digest) = run_fabric_serial(n_hosts, fms);
        let m = Bench::new(format!("engine/fabric_{n_hosts}h_{fms}ms"))
            .samples(fabric_samples)
            .warmup(1)
            .run(|| black_box(run_fabric_serial(n_hosts, fms)));
        println!("{}", m.report());
        let wall_ns = m.min_sample_ns() as f64;
        let events_per_sec = events as f64 / (wall_ns / 1e9);
        let ns_per_event = wall_ns / events as f64;

        let (ev1, dg1, rounds, cross) = run_fabric_sharded(n_hosts, fms, 1);
        assert_eq!(
            ev1, events,
            "sharded (1 worker) event count diverged at {n_hosts} hosts"
        );
        assert_eq!(
            dg1, digest,
            "sharded (1 worker) digest diverged at {n_hosts} hosts"
        );
        let m1 = Bench::new(format!("engine/fabric_{n_hosts}h_{fms}ms_sharded_w1"))
            .samples(fabric_samples)
            .warmup(1)
            .run(|| black_box(run_fabric_sharded(n_hosts, fms, 1)));
        println!("{}", m1.report());
        let w1_events_per_sec = events as f64 / (m1.min_sample_ns() as f64 / 1e9);

        let sharded_events_per_sec = if fabric_workers > 1 {
            let (evm, dgm, _, _) = run_fabric_sharded(n_hosts, fms, fabric_workers);
            assert_eq!(
                evm, events,
                "sharded ({fabric_workers} workers) event count diverged at {n_hosts} hosts"
            );
            assert_eq!(
                dgm, digest,
                "sharded ({fabric_workers} workers) digest diverged at {n_hosts} hosts"
            );
            let mw = Bench::new(format!(
                "engine/fabric_{n_hosts}h_{fms}ms_sharded_w{fabric_workers}"
            ))
            .samples(fabric_samples)
            .warmup(1)
            .run(|| black_box(run_fabric_sharded(n_hosts, fms, fabric_workers)));
            println!("{}", mw.report());
            events as f64 / (mw.min_sample_ns() as f64 / 1e9)
        } else {
            w1_events_per_sec
        };

        println!(
            "fabric {n_hosts} hosts ({components} components, {shards} shards, {fms} ms): \
             {events} events -> {events_per_sec:.0} ev/s serial, \
             {w1_events_per_sec:.0} ev/s sharded w1, \
             {sharded_events_per_sec:.0} ev/s sharded w{fabric_workers} \
             ({:.2}x serial; digest {digest:016x})",
            sharded_events_per_sec / events_per_sec
        );

        fabric_rows.push(FabricRow {
            hosts: n_hosts,
            components,
            shards,
            sim_ms: fms,
            events,
            digest,
            events_per_sec,
            ns_per_event,
            sharded_w1_events_per_sec: w1_events_per_sec,
            sharded_workers: fabric_workers,
            sharded_events_per_sec,
            sharded_rounds: rounds,
            sharded_cross_events: cross,
        });
    }

    // --- campaign wall time (the paper's whole evaluation) ---
    //
    // Timed twice: serial (one worker) and fanned out one worker per
    // core, so the JSON records both the work and the parallel speedup.
    // On a single-core runner the two are expected to match.
    let workers = default_workers();
    let (campaign_secs, campaign_serial_secs) = if campaigns > 0 {
        let specs = paper_campaigns(1);
        let start = Instant::now();
        let serial = run_campaigns_with_workers(&specs, 1).unwrap();
        let serial_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let results = run_campaigns_with_workers(&specs, workers).unwrap();
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(results, serial, "worker count changed campaign results");
        let rows: usize = results.iter().map(Vec::len).sum();
        println!(
            "campaigns: {} specs, {rows} rows in {secs:.2} s ({workers} workers; serial {serial_secs:.2} s)",
            specs.len()
        );
        (secs, serial_secs)
    } else {
        (0.0, 0.0)
    };

    let mut json = JsonObject::new()
        .str("bench", "engine")
        .int("cores", cores as u64)
        .str("workload", "saturated_3node_testbed")
        .int("sim_ms", sim_ms)
        .int("events", events)
        .num("wall_ms_min", wall_ns / 1e6)
        .num("wall_ms_median", m.median_sample_ns() as f64 / 1e6)
        .num("events_per_sec", events_per_sec)
        .num("ns_per_event", ns_per_event)
        .int("sharded_workers", shard_workers as u64)
        .num("sharded_events_per_sec", sharded_events_per_sec)
        .int("sharded_rounds", shard_rounds)
        .int("sharded_cross_events", shard_cross)
        .int("campaign_workers", workers as u64)
        .num("campaign_wall_secs", campaign_secs)
        .num("campaign_serial_wall_secs", campaign_serial_secs);

    // The scaling curve, one flat key block per size so shell tooling
    // (scripts/check.sh's awk extractor) reads rows without a JSON
    // parser. Digests are hex strings: u64 does not fit a JSON number.
    for row in &fabric_rows {
        let n = row.hosts;
        json = json
            .int(&format!("fabric_{n}_hosts"), n as u64)
            .int(&format!("fabric_{n}_components"), row.components as u64)
            .int(&format!("fabric_{n}_shards"), row.shards as u64)
            .int(&format!("fabric_{n}_sim_ms"), row.sim_ms)
            .int(&format!("fabric_{n}_events"), row.events)
            .num(&format!("fabric_{n}_events_per_sec"), row.events_per_sec)
            .num(&format!("fabric_{n}_ns_per_event"), row.ns_per_event)
            .str(&format!("fabric_{n}_digest"), &format!("{:016x}", row.digest))
            .num(
                &format!("fabric_{n}_sharded_w1_events_per_sec"),
                row.sharded_w1_events_per_sec,
            )
            .int(
                &format!("fabric_{n}_sharded_workers"),
                row.sharded_workers as u64,
            )
            .num(
                &format!("fabric_{n}_sharded_events_per_sec"),
                row.sharded_events_per_sec,
            )
            .int(&format!("fabric_{n}_sharded_rounds"), row.sharded_rounds)
            .int(
                &format!("fabric_{n}_sharded_cross_events"),
                row.sharded_cross_events,
            );
    }

    // Compare against a committed baseline, if one is present.
    let baseline_path = std::path::Path::new(&out_path)
        .with_file_name("BENCH_engine.baseline.json");
    if let Ok(baseline) = std::fs::read_to_string(&baseline_path) {
        if let Some(base_eps) = extract_number(&baseline, "events_per_sec") {
            let speedup = events_per_sec / base_eps;
            println!(
                "baseline: {base_eps:.0} events/s -> speedup {speedup:.2}x ({})",
                baseline_path.display()
            );
            json = json
                .num("baseline_events_per_sec", base_eps)
                .num("speedup_vs_baseline", speedup);
        }
    }

    let rendered = json.render();
    std::fs::write(&out_path, format!("{rendered}\n")).expect("write BENCH json");
    println!("wrote {out_path}");
}

