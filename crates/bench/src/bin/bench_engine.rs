//! Engine throughput benchmark: how many simulated events per second does
//! the kernel sustain on the saturated three-node testbed, and how long
//! does the paper's full campaign list take wall-clock?
//!
//! Emits `BENCH_engine.json` (events/sec, ns/event, campaign wall time,
//! serial and parallel) so the perf trajectory is tracked from PR 1 on.
//! Throughput is min-of-samples (see the comment in `main`); the median
//! rides along in the JSON. If a previously committed
//! `BENCH_engine.baseline.json` exists next to the output, the report
//! includes the speedup against it.
//!
//! ```text
//! cargo run -p netfi-bench --release --bin bench_engine -- \
//!     [--out BENCH_engine.json] [--sim-ms 2000] [--samples 5] [--campaigns 1]
//! ```

use netfi_bench::harness::{Bench, JsonObject};
use netfi_bench::{arg, extract_number};
use netfi_myrinet::addr::EthAddr;
use netfi_netstack::{build_testbed, Host, Testbed, TestbedOptions, Workload};
use netfi_nftape::campaign::{paper_campaigns, run_campaigns_with_workers};
use netfi_nftape::runner::default_workers;
use netfi_sim::{NullProbe, ShardSpec, ShardedEngine, SimDuration, SimTime, Simulation};
use std::hint::black_box;
use std::time::Instant;

/// The saturated three-node testbed: host 0 bursts 256-byte datagrams at
/// host 2 while host 2 floods ping-pong traffic back at host 1, with the
/// injector device intercepting host 1's link — the same topology the
/// determinism suite pins down, driven hard enough that the event queue
/// never drains.
fn saturated_options(seed: u64) -> TestbedOptions {
    TestbedOptions {
        intercept_host: Some(1),
        seed,
        paper_era_hosts: true,
        ..TestbedOptions::default()
    }
}

fn saturated_workloads(i: usize, host: &mut Host) {
    if i == 0 {
        host.add_workload(Workload::Sender {
            dest: EthAddr::myricom(2),
            interval: SimDuration::from_ms(3),
            payload_len: 256,
            forbidden: vec![],
            burst: 2,
        });
    }
    if i == 2 {
        host.add_workload(Workload::Flood {
            peer: EthAddr::myricom(1),
            payload_len: 64,
            timeout: SimDuration::from_ms(10),
        });
    }
}

fn run_saturated_testbed(sim_ms: u64, seed: u64) -> u64 {
    let mut tb = build_testbed(saturated_options(seed), saturated_workloads).unwrap();
    tb.engine.run_until(SimTime::from_ms(sim_ms));
    tb.engine.events_processed()
}

/// The same saturated testbed executed by the conservative-window sharded
/// engine (`netfi_sim::shard`): switch on shard 0, one shard per host, the
/// injector riding in its intercepted host's shard. Byte-identical output
/// is pinned by `tests/determinism.rs`; here we only time it.
fn run_saturated_testbed_sharded(sim_ms: u64, seed: u64, workers: usize) -> (u64, u64, u64) {
    let options = saturated_options(seed);
    let lookahead = options.link.propagation_delay();
    let tb = build_testbed(options, saturated_workloads).unwrap();
    let device = tb.injector.expect("intercept_host wires an injector");
    let mut affinity = vec![0u16; tb.engine.component_count()];
    for (i, h) in tb.hosts.iter().enumerate() {
        affinity[h.index()] = i as u16 + 1;
    }
    affinity[device.index()] = affinity[tb.hosts[1].index()];
    let Testbed { engine, .. } = tb;
    let spec = ShardSpec {
        affinity,
        lookahead,
        workers,
    };
    let mut sim: ShardedEngine<_, NullProbe> =
        ShardedEngine::from_engine(engine, spec, |_| NullProbe);
    sim.run_until(SimTime::from_ms(sim_ms));
    (sim.events_processed(), sim.rounds(), sim.cross_events())
}

fn main() {
    let out_path: String = arg("--out", "BENCH_engine.json".to_string());
    let sim_ms: u64 = arg("--sim-ms", 2_000);
    let samples: u32 = arg("--samples", 15);
    let campaigns: u32 = arg("--campaigns", 1);

    // --- engine throughput on the saturated testbed ---
    //
    // Throughput is computed from the *fastest* sample, not the median:
    // the workload is single-threaded and deterministic, so every sample
    // does identical work and differences between them are pure scheduler
    // interference. On a shared (or single-core) box the min is the
    // least-interfered measurement; the median is kept in the JSON so the
    // noise level itself stays visible.
    let events = run_saturated_testbed(sim_ms, 12345);
    let m = Bench::new(format!("engine/saturated_testbed_{sim_ms}ms"))
        .samples(samples)
        .warmup(1)
        .run(|| black_box(run_saturated_testbed(sim_ms, 12345)));
    println!("{}", m.report());
    let wall_ns = m.min_sample_ns() as f64;
    let events_per_sec = events as f64 / (wall_ns / 1e9);
    let ns_per_event = wall_ns / events as f64;
    println!(
        "engine: {events} events in {:.1} ms -> {:.0} events/s, {:.1} ns/event",
        wall_ns / 1e6,
        events_per_sec,
        ns_per_event
    );

    // --- sharded engine throughput on the same testbed ---
    //
    // The conservative-window sharded executor, same workload and seed.
    // The serial `events_per_sec` above stays the ratchet input; this
    // number tracks what the window/mailbox machinery costs (on a
    // single-core runner it is expected to be *slower* than serial — the
    // rounds are pure overhead until there are cores to spread them on).
    let shard_workers = default_workers();
    let (sharded_events, shard_rounds, shard_cross) =
        run_saturated_testbed_sharded(sim_ms, 12345, shard_workers);
    assert_eq!(
        sharded_events, events,
        "sharded run must process the identical event stream"
    );
    let ms = Bench::new(format!("engine/sharded_testbed_{sim_ms}ms_w{shard_workers}"))
        .samples(samples)
        .warmup(1)
        .run(|| black_box(run_saturated_testbed_sharded(sim_ms, 12345, shard_workers)));
    println!("{}", ms.report());
    let sharded_wall_ns = ms.min_sample_ns() as f64;
    let sharded_events_per_sec = sharded_events as f64 / (sharded_wall_ns / 1e9);
    println!(
        "sharded: {sharded_events} events, {shard_rounds} rounds, {shard_cross} cross-shard \
         -> {:.0} events/s ({shard_workers} workers, {:.2}x serial)",
        sharded_events_per_sec,
        sharded_events_per_sec / events_per_sec
    );

    // --- campaign wall time (the paper's whole evaluation) ---
    //
    // Timed twice: serial (one worker) and fanned out one worker per
    // core, so the JSON records both the work and the parallel speedup.
    // On a single-core runner the two are expected to match.
    let workers = default_workers();
    let (campaign_secs, campaign_serial_secs) = if campaigns > 0 {
        let specs = paper_campaigns(1);
        let start = Instant::now();
        let serial = run_campaigns_with_workers(&specs, 1).unwrap();
        let serial_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let results = run_campaigns_with_workers(&specs, workers).unwrap();
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(results, serial, "worker count changed campaign results");
        let rows: usize = results.iter().map(Vec::len).sum();
        println!(
            "campaigns: {} specs, {rows} rows in {secs:.2} s ({workers} workers; serial {serial_secs:.2} s)",
            specs.len()
        );
        (secs, serial_secs)
    } else {
        (0.0, 0.0)
    };

    let mut json = JsonObject::new()
        .str("bench", "engine")
        .int(
            "cores",
            std::thread::available_parallelism().map_or(1, usize::from) as u64,
        )
        .str("workload", "saturated_3node_testbed")
        .int("sim_ms", sim_ms)
        .int("events", events)
        .num("wall_ms_min", wall_ns / 1e6)
        .num("wall_ms_median", m.median_sample_ns() as f64 / 1e6)
        .num("events_per_sec", events_per_sec)
        .num("ns_per_event", ns_per_event)
        .int("sharded_workers", shard_workers as u64)
        .num("sharded_events_per_sec", sharded_events_per_sec)
        .int("sharded_rounds", shard_rounds)
        .int("sharded_cross_events", shard_cross)
        .int("campaign_workers", workers as u64)
        .num("campaign_wall_secs", campaign_secs)
        .num("campaign_serial_wall_secs", campaign_serial_secs);

    // Compare against a committed baseline, if one is present.
    let baseline_path = std::path::Path::new(&out_path)
        .with_file_name("BENCH_engine.baseline.json");
    if let Ok(baseline) = std::fs::read_to_string(&baseline_path) {
        if let Some(base_eps) = extract_number(&baseline, "events_per_sec") {
            let speedup = events_per_sec / base_eps;
            println!(
                "baseline: {base_eps:.0} events/s -> speedup {speedup:.2}x ({})",
                baseline_path.display()
            );
            json = json
                .num("baseline_events_per_sec", base_eps)
                .num("speedup_vs_baseline", speedup);
        }
    }

    let rendered = json.render();
    std::fs::write(&out_path, format!("{rendered}\n")).expect("write BENCH json");
    println!("wrote {out_path}");
}

