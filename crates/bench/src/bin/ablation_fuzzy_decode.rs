//! Ablation (DESIGN.md §5): error-tolerant control-symbol decoding on/off
//! under random bit noise.
//!
//! §4.3.1 notes the control symbols sit at Hamming distance ≥ 2 and that
//! some single 1→0 faults still decode correctly. This Monte Carlo
//! measures how often a noisy control symbol survives under strict
//! (exact-match) versus tolerant decoding, per number of flipped bits.

use netfi_nftape::Table;
use netfi_phy::ControlSymbol;
use netfi_sim::DetRng;

fn main() {
    let mut rng = DetRng::new(0x66757a7a);
    let trials = 100_000;

    let mut table = Table::new(
        "Control-symbol survival under k random bit flips (100k trials each)",
        &["Flipped bits", "Strict decode ok", "Tolerant decode ok", "Misdecoded (tolerant)"],
    );
    for k in 1..=3u32 {
        let mut strict_ok = 0u64;
        let mut tolerant_ok = 0u64;
        let mut tolerant_wrong = 0u64;
        for _ in 0..trials {
            let sym = *rng
                .choose(&[ControlSymbol::Gap, ControlSymbol::Go, ControlSymbol::Stop])
                .expect("non-empty");
            let mut code = sym.encode();
            // k distinct bit flips.
            let mut bits: Vec<u8> = (0..8).collect();
            rng.shuffle(&mut bits);
            for &b in bits.iter().take(k as usize) {
                code ^= 1 << b;
            }
            if ControlSymbol::decode_exact(code) == Some(sym) {
                strict_ok += 1;
            }
            match ControlSymbol::decode_tolerant(code) {
                Some(decoded) if decoded == sym => tolerant_ok += 1,
                Some(_) => tolerant_wrong += 1,
                None => {}
            }
        }
        let pct = |n: u64| format!("{:.1}%", n as f64 / trials as f64 * 100.0);
        table.row(&[k.to_string(), pct(strict_ok), pct(tolerant_ok), pct(tolerant_wrong)]);
    }
    println!("{table}");
    println!(
        "tolerant decoding recovers a useful fraction of single-bit faults\n\
         (at the cost of occasional misdecodes at 2+ flips) — the trade-off\n\
         behind Myrinet's distance-2 control code."
    );
}
