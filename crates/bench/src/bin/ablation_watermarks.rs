//! Ablation (DESIGN.md §5): slack-buffer headroom above the high
//! watermark versus overflow loss when STOP symbols are eaten.
//!
//! The high watermark stays at 3072 bytes; the sweep varies the capacity
//! above it. Small headroom loses heavily the moment flow control is
//! corrupted; large headroom absorbs the overrun (and costs SRAM — the
//! board-level trade the slack buffer's name refers to).

use netfi_bench::arg;
use netfi_nftape::scenarios::control::{control_symbol_row, ControlCampaignOptions};
use netfi_nftape::Table;
use netfi_phy::ControlSymbol;
use netfi_sim::SimDuration;

fn main() {
    let window = arg("--window", 6u64);
    let mut table = Table::new(
        "NIC slack headroom vs. loss under STOP->IDLE corruption",
        &["Capacity", "Headroom", "Loss", "NIC overflows"],
    );
    for capacity in [3700usize, 4100, 4608, 5600, 7200, 9300] {
        let opts = ControlCampaignOptions {
            window: SimDuration::from_secs(window),
            nic_rx_capacity: capacity,
            ..ControlCampaignOptions::default()
        };
        eprintln!("  capacity {capacity} …");
        let row = control_symbol_row(ControlSymbol::Stop, ControlSymbol::Idle, &opts).unwrap();
        table.row(&[
            capacity.to_string(),
            (capacity - 3072).to_string(),
            format!("{:.1}%", row.loss_rate() * 100.0),
            format!("{:.0}", row.extra("nic_overflow_drops").unwrap_or(0.0)),
        ]);
    }
    println!("{table}");
}
