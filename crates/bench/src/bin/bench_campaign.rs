//! End-to-end campaign wall time, serial vs parallel.
//!
//! Runs the paper's full campaign list and a multi-seed observed suite
//! twice — once on a single worker, once fanned out over `--workers`
//! scoped threads — verifies the outputs are byte-identical (the parallel
//! runner's determinism contract), and emits `BENCH_campaign.json` with
//! both wall times and the speedup.
//!
//! The speedup scales with physical cores: each worker spins a private
//! CPU-bound simulation engine, so on a single-core runner the parallel
//! pass is expected to tie (or slightly trail) the serial one, and the
//! JSON records the core count so readers can tell which case they are
//! looking at.
//!
//! ```text
//! cargo run -p netfi-bench --release --bin bench_campaign -- \
//!     [--out BENCH_campaign.json] [--workers N] [--suite-seeds 4]
//! ```

use netfi_bench::arg;
use netfi_bench::harness::JsonObject;
use netfi_nftape::campaign::{paper_campaigns, run_campaigns_with_workers};
use netfi_nftape::observed::observed_suite;
use netfi_nftape::runner::worker_count;
use std::time::Instant;

fn main() {
    let out_path: String = arg("--out", "BENCH_campaign.json".to_string());
    let requested: usize = arg("--workers", 0);
    let workers = worker_count((requested > 0).then_some(requested));
    let suite_seeds: u64 = arg("--suite-seeds", 4);

    // --- the paper's campaign list, serial then parallel ---
    let specs = paper_campaigns(1);
    let start = Instant::now();
    let serial_rows = run_campaigns_with_workers(&specs, 1).unwrap();
    let serial_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let parallel_rows = run_campaigns_with_workers(&specs, workers).unwrap();
    let parallel_secs = start.elapsed().as_secs_f64();
    assert_eq!(parallel_rows, serial_rows, "worker count changed campaign results");
    let rows: usize = serial_rows.iter().map(Vec::len).sum();
    println!(
        "campaigns: {} specs, {rows} rows | serial {serial_secs:.2} s, {workers} workers {parallel_secs:.2} s ({:.2}x)",
        specs.len(),
        serial_secs / parallel_secs
    );

    // --- the observed suite (every recorder armed), serial then parallel ---
    let seeds: Vec<u64> = (0..suite_seeds).map(|k| 11 + 10 * k).collect();
    let start = Instant::now();
    let suite_serial = observed_suite(&seeds, 1).unwrap();
    let suite_serial_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let suite_parallel = observed_suite(&seeds, workers).unwrap();
    let suite_parallel_secs = start.elapsed().as_secs_f64();
    let fingerprint = suite_serial.fingerprint();
    assert_eq!(
        suite_parallel.fingerprint(),
        fingerprint,
        "worker count changed suite exports"
    );
    println!(
        "observed suite: {} scenarios | serial {suite_serial_secs:.2} s, {workers} workers {suite_parallel_secs:.2} s ({:.2}x), fingerprint {fingerprint:#018x}",
        seeds.len(),
        suite_serial_secs / suite_parallel_secs
    );

    let json = JsonObject::new()
        .str("bench", "campaign")
        .int("cores", netfi_nftape::default_workers() as u64)
        .int("workers", workers as u64)
        .int("specs", specs.len() as u64)
        .int("rows", rows as u64)
        .num("serial_wall_secs", serial_secs)
        .num("parallel_wall_secs", parallel_secs)
        .num("speedup", serial_secs / parallel_secs)
        .int("suite_scenarios", seeds.len() as u64)
        .num("suite_serial_wall_secs", suite_serial_secs)
        .num("suite_parallel_wall_secs", suite_parallel_secs)
        .num("suite_speedup", suite_serial_secs / suite_parallel_secs)
        .str("suite_fingerprint", &format!("{fingerprint:#018x}"))
        .render();
    std::fs::write(&out_path, format!("{json}\n")).expect("write BENCH json");
    println!("wrote {out_path}");
}
