//! End-to-end campaign wall time: serial vs parallel, fresh vs forked.
//!
//! Runs the paper's full campaign list and a multi-seed observed suite
//! twice — once on a single worker, once fanned out over `--workers`
//! scoped threads — verifies the outputs are byte-identical (the parallel
//! runner's determinism contract), then prices the chaos grid both ways:
//! one test bed per failure spec (fresh) against one map-warmed donor
//! forked per spec (`netfi_nftape::grid`). Emits `BENCH_campaign.json`
//! with every wall time and speedup.
//!
//! The parallel speedups scale with physical cores: each worker spins a
//! private CPU-bound simulation engine, so on a single-core runner the
//! parallel pass is expected to tie (or slightly trail) the serial one,
//! and the JSON records the core count so readers can tell which case
//! they are looking at. The fork-vs-fresh speedup does *not* need cores —
//! it removes work (N−1 warm-ups) instead of spreading it.
//!
//! ```text
//! cargo run -p netfi-bench --release --bin bench_campaign -- \
//!     [--out BENCH_campaign.json] [--workers N] [--suite-seeds 4] \
//!     [--mode all|classic|fork]
//! ```

use netfi_bench::arg;
use netfi_bench::harness::JsonObject;
use netfi_nftape::campaign::{paper_campaigns, run_campaigns_with_workers};
use netfi_nftape::grid::{fork_grid, fresh_grid, grid_specs, warm_campaign};
use netfi_nftape::observed::observed_suite;
use netfi_nftape::runner::worker_count;
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let out_path: String = arg("--out", "BENCH_campaign.json".to_string());
    let requested: usize = arg("--workers", 0);
    let workers = worker_count((requested > 0).then_some(requested));
    let suite_seeds: u64 = arg("--suite-seeds", 4);
    let mode: String = arg("--mode", "all".to_string());
    let run_classic = mode != "fork";
    let run_fork = mode != "classic";

    let mut json = JsonObject::new()
        .str("bench", "campaign")
        .int(
            "cores",
            std::thread::available_parallelism().map_or(1, usize::from) as u64,
        )
        .int("workers", workers as u64);

    if run_classic {
        // --- the paper's campaign list, serial then parallel ---
        let specs = paper_campaigns(1);
        let start = Instant::now();
        let serial_rows = run_campaigns_with_workers(&specs, 1).unwrap();
        let serial_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let parallel_rows = run_campaigns_with_workers(&specs, workers).unwrap();
        let parallel_secs = start.elapsed().as_secs_f64();
        assert_eq!(parallel_rows, serial_rows, "worker count changed campaign results");
        let rows: usize = serial_rows.iter().map(Vec::len).sum();
        println!(
            "campaigns: {} specs, {rows} rows | serial {serial_secs:.2} s, {workers} workers {parallel_secs:.2} s ({:.2}x)",
            specs.len(),
            serial_secs / parallel_secs
        );

        // --- the observed suite (every recorder armed), serial then parallel ---
        let seeds: Vec<u64> = (0..suite_seeds).map(|k| 11 + 10 * k).collect();
        let start = Instant::now();
        let suite_serial = observed_suite(&seeds, 1).unwrap();
        let suite_serial_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let suite_parallel = observed_suite(&seeds, workers).unwrap();
        let suite_parallel_secs = start.elapsed().as_secs_f64();
        let fingerprint = suite_serial.fingerprint();
        assert_eq!(
            suite_parallel.fingerprint(),
            fingerprint,
            "worker count changed suite exports"
        );
        println!(
            "observed suite: {} scenarios | serial {suite_serial_secs:.2} s, {workers} workers {suite_parallel_secs:.2} s ({:.2}x), fingerprint {fingerprint:#018x}",
            seeds.len(),
            suite_serial_secs / suite_parallel_secs
        );

        json = json
            .int("specs", specs.len() as u64)
            .int("rows", rows as u64)
            .num("serial_wall_secs", serial_secs)
            .num("parallel_wall_secs", parallel_secs)
            .num("speedup", serial_secs / parallel_secs)
            .int("suite_scenarios", seeds.len() as u64)
            .num("suite_serial_wall_secs", suite_serial_secs)
            .num("suite_parallel_wall_secs", suite_parallel_secs)
            .num("suite_speedup", suite_serial_secs / suite_parallel_secs)
            .str("suite_fingerprint", &format!("{fingerprint:#018x}"));
    }

    if run_fork {
        // --- the chaos grid: fresh-per-spec vs fork-from-one-donor ---
        //
        // The breakdown first: one warm-up (the 2.5 simulated seconds of
        // mapping traffic every scenario pays when built fresh) and the
        // cost of forking the donor once per spec. Then the head-to-head
        // grids, which must render byte-identical results.
        let grid = grid_specs();
        let start = Instant::now();
        let warm = warm_campaign(11).unwrap();
        let fork_warm_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        for _ in &grid {
            black_box(warm.fork_engine());
        }
        let fork_secs = start.elapsed().as_secs_f64();
        drop(warm);

        let start = Instant::now();
        let forked = fork_grid(11, &grid, workers).unwrap();
        let fork_grid_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let fresh = fresh_grid(11, &grid, workers).unwrap();
        let fresh_grid_secs = start.elapsed().as_secs_f64();
        let grid_fingerprint = forked.fingerprint();
        assert_eq!(
            grid_fingerprint,
            fresh.fingerprint(),
            "fork grid diverged from fresh grid"
        );
        println!(
            "chaos grid: {} specs, {workers} workers | warm-up {fork_warm_secs:.3} s once, \
             {} forks {fork_secs:.4} s | fork grid {fork_grid_secs:.2} s vs fresh grid \
             {fresh_grid_secs:.2} s ({:.2}x), fingerprint {grid_fingerprint:#018x}",
            grid.len(),
            grid.len(),
            fresh_grid_secs / fork_grid_secs
        );

        json = json
            .int("fork_specs", grid.len() as u64)
            .num("fork_warm_secs", fork_warm_secs)
            .num("fork_secs", fork_secs)
            .num("fork_grid_wall_secs", fork_grid_secs)
            .num("fresh_grid_wall_secs", fresh_grid_secs)
            .num("fork_grid_speedup", fresh_grid_secs / fork_grid_secs)
            .str("grid_fingerprint", &format!("{grid_fingerprint:#018x}"));
    }

    let rendered = json.render();
    std::fs::write(&out_path, format!("{rendered}\n")).expect("write BENCH json");
    println!("wrote {out_path}");
}
