//! Runs the paper's whole evaluation as a declarative campaign list,
//! in parallel, and prints one summary row per result — the NFTAPE-style
//! automated assessment loop of the paper's introduction.
//!
//! Usage: `campaigns [--seed <n>]`

use netfi_bench::arg;
use netfi_nftape::campaign::{paper_campaigns, run_campaigns_parallel};
use netfi_nftape::Table;

fn main() {
    let seed = arg("--seed", 7u64);
    let specs = paper_campaigns(seed);
    eprintln!("running {} campaigns in parallel …", specs.len());
    let started = std::time::Instant::now();
    let results = run_campaigns_parallel(&specs).unwrap();
    eprintln!("done in {:.1?}", started.elapsed());

    let mut table = Table::new(
        "Campaign results",
        &["Campaign", "Sent", "Received", "Loss", "Notes"],
    );
    for rows in &results {
        for r in rows {
            let notes: Vec<String> = r
                .extra
                .iter()
                .filter(|(_, &v)| v != 0.0)
                .map(|(k, v)| format!("{k}={v:.0}"))
                .collect();
            table.row(&[
                r.name.clone(),
                r.sent.to_string(),
                r.received.to_string(),
                format!("{:.1}%", r.loss_rate() * 100.0),
                notes.join(" "),
            ]);
        }
    }
    println!("{table}");
}
