//! Runs every experiment regenerator at moderate scale and prints the
//! consolidated report — the source of EXPERIMENTS.md's measured columns.
//!
//! Usage: `all_experiments [--quick 1]`

use netfi_bench::arg;
use netfi_nftape::scenarios::{address, control, latency, ptype, random, udpcheck};
use netfi_nftape::Table;
use netfi_sim::SimDuration;

fn main() {
    let quick = arg("--quick", 0u8) != 0;
    let (t4_window, t2_packets, thr_window) = if quick {
        (SimDuration::from_secs(6), 4_000u64, SimDuration::from_secs(5))
    } else {
        (SimDuration::from_secs(20), 20_000, SimDuration::from_secs(10))
    };

    println!("================ netfi: all experiments ================\n");

    // --- Table 1 ---
    println!("{}", netfi_core::synth::render_table1());

    // --- Table 2 ---
    eprintln!("[table 2] latency ping-pong …");
    let rows = latency::latency_table2(t2_packets, 5, 0x616c6c).unwrap();
    let mut t2 = Table::new(
        "Table 2: per-packet time (ns), model / paper",
        &["Experiment", "Without", "With", "Added", "Paper added"],
    );
    for (row, (pw, pwi)) in rows.iter().zip(latency::paper_table2()) {
        t2.row(&[
            row.experiment.to_string(),
            format!("{:.0}", row.without_ns),
            format!("{:.0}", row.with_ns),
            format!("{:+.0}", row.added_ns()),
            format!("{:+.0}", pwi - pw),
        ]);
    }
    println!("{t2}");

    // --- Table 4 ---
    eprintln!("[table 4] control-symbol campaign …");
    let opts = control::ControlCampaignOptions {
        window: t4_window,
        ..control::ControlCampaignOptions::default()
    };
    let results = control::control_symbol_table(&opts).unwrap();
    let mut t4 = Table::new(
        "Table 4: control-symbol corruption, loss model / paper",
        &["Mask", "Replacement", "Sent", "Received", "Loss", "Paper"],
    );
    for ((row, (mask, replacement)), (ps, pr)) in results
        .iter()
        .zip(control::table4_rows())
        .zip(control::table4_paper_loss())
    {
        t4.row(&[
            mask.to_string(),
            replacement.to_string(),
            row.sent.to_string(),
            row.received.to_string(),
            format!("{:.1}%", row.loss_rate() * 100.0),
            format!("{:.1}%", (1.0 - pr as f64 / ps as f64) * 100.0),
        ]);
    }
    println!("{t4}");

    // --- STOP throughput ---
    eprintln!("[4.3.1] faulty STOP throughput …");
    let normal = control::stop_throughput(false, thr_window, 1).unwrap();
    let faulty = control::stop_throughput(true, thr_window, 1).unwrap();
    println!(
        "Faulty STOP: {:.0} vs {:.0} msgs/min = {:.1}% of normal (paper: 5038 vs 48000 = 10.5%)\n",
        faulty.extra("messages_per_minute").unwrap_or(0.0),
        normal.extra("messages_per_minute").unwrap_or(0.0),
        faulty.throughput() / normal.throughput().max(1e-9) * 100.0
    );

    // --- GAP timeout ---
    eprintln!("[4.3.1] GAP long-period timeout …");
    let gnormal = control::gap_timeout(false, thr_window, 2).unwrap();
    let gfaulty = control::gap_timeout(true, thr_window, 2).unwrap();
    println!(
        "GAP corruption: throughput {:.1}% of normal with {} long-period timeouts (paper: ~12%)\n",
        gfaulty.received as f64 / gnormal.received.max(1) as f64 * 100.0,
        gfaulty.extra("long_timeout_releases").unwrap_or(0.0)
    );

    // --- packet type ---
    eprintln!("[4.3.2] packet-type corruption …");
    let mapping = ptype::mapping_packet_corruption(3).unwrap();
    let data = ptype::data_packet_corruption(3).unwrap();
    let msb = ptype::route_msb_corruption(3).unwrap();
    let mis = ptype::route_misroute(3).unwrap();
    println!(
        "mapping 0x0005 corruption: removed={} restored={} (paper: out until next mapping round)",
        mapping.extra("removed").unwrap_or(0.0) == 1.0,
        mapping.extra("restored").unwrap_or(0.0) == 1.0
    );
    println!(
        "data 0x0004 corruption: {}/{} delivered, tables unchanged={} (paper: dropped, tables unchanged)",
        data.received,
        data.sent,
        data.extra("routing_table_unchanged").unwrap_or(0.0) == 1.0
    );
    println!(
        "route MSB: {} route errors, 0 delivered, recovery after disarm={} (paper: consumed without incident)",
        msb.extra("route_errors").unwrap_or(0.0),
        msb.extra("recovered_rx").unwrap_or(0.0) > 0.0
    );
    println!(
        "misroute: {}/{} lost at switch, {} accepted by wrong nodes (paper: losses, no wrong acceptance)\n",
        mis.extra("misroute_drops").unwrap_or(0.0),
        mis.sent,
        mis.extra("accepted_by_wrong_node").unwrap_or(0.0)
    );

    // --- addresses ---
    eprintln!("[4.3.3] address corruption …");
    let dest = address::destination_corruption(4, false).unwrap();
    let own = address::sender_address_corruption(4).unwrap();
    let coll = address::controller_address_collision(4).unwrap();
    let nonx = address::nonexistent_address(4).unwrap();
    println!(
        "destination corrupted: {} to intended, {} to wrong, {} CRC drops (paper: neither receives; CRC-8)",
        dest.received,
        dest.extra("received_by_wrong_node").unwrap_or(0.0),
        dest.extra("crc_drops").unwrap_or(0.0)
    );
    println!(
        "own address := other node: {} delivered, mapping still answers={}, in map={} (paper: deaf but mapped)",
        own.received,
        own.extra("scouts_still_answered").unwrap_or(0.0) > 0.0,
        own.extra("still_in_map").unwrap_or(0.0) == 1.0
    );
    println!(
        "controller collision: {} inconsistent rounds (paper: no consistent map)",
        coll.inconsistent_rounds
    );
    println!(
        "non-existent address: old routable={}, new routable={} (paper: table updated)\n",
        nonx.extra("old_address_routable").unwrap_or(0.0) == 1.0,
        nonx.extra("new_address_routable").unwrap_or(0.0) == 1.0
    );

    // --- random SEU ---
    eprintln!("[3.1] random SEU sweep …");
    for r in random::seu_sweep(6).unwrap() {
        println!(
            "SEU {}: {}/{} delivered, {:.0} CRC-8 drops, {:.0} UDP drops",
            r.name,
            r.received,
            r.sent,
            r.extra("crc8_drops").unwrap_or(0.0),
            r.extra("udp_checksum_drops").unwrap_or(0.0)
        );
    }
    println!();

    // --- UDP checksum ---
    eprintln!("[4.3.4] UDP checksum …");
    let alias = udpcheck::aliasing_corruption(5).unwrap();
    let caught = udpcheck::detected_corruption(5).unwrap();
    println!(
        "word swap: {}/{} delivered corrupt ({}); non-aliasing: {}/{} delivered, {} checksum drops",
        alias.received,
        alias.sent,
        alias.name,
        caught.received,
        caught.sent,
        caught.extra("checksum_drops").unwrap_or(0.0)
    );
    println!("\n================ done ================");
}
