//! §4.3.1: GAP loss, source blocking and the long-period timeout.
//!
//! "Source blocking can occur if the packet-terminating GAP symbol is not
//! transmitted or is lost in transmission. … The network will recover from
//! this occurrence with a long-period timeout, which occurs after roughly
//! four million character transmission periods (~50ms at a data rate of
//! 80MB/s). … This timeout process causes the throughput of the network to
//! drop significantly, … to around 12% of the normal throughput."
//!
//! Usage: `exp_gap_timeout [--window <secs>]`

use netfi_bench::arg;
use netfi_nftape::scenarios::control::gap_timeout;
use netfi_nftape::Table;
use netfi_sim::SimDuration;

fn main() {
    let window = SimDuration::from_secs(arg("--window", 10u64));
    eprintln!("running normal and GAP-corrupted arms ({window} window) …");
    let normal = gap_timeout(false, window, 0x676170).unwrap();
    let faulty = gap_timeout(true, window, 0x676170).unwrap();

    let mut table = Table::new(
        "GAP corruption: throughput under source blocking",
        &[
            "Condition",
            "Sent",
            "Received",
            "Throughput",
            "Long timeouts",
            "Framing drops",
        ],
    );
    for r in [&normal, &faulty] {
        table.row(&[
            r.name.clone(),
            r.sent.to_string(),
            r.received.to_string(),
            format!(
                "{:.1}% of normal",
                r.received as f64 / normal.received.max(1) as f64 * 100.0
            ),
            format!("{:.0}", r.extra("long_timeout_releases").unwrap_or(0.0)),
            format!("{:.0}", r.extra("framing_drops").unwrap_or(0.0)),
        ]);
    }
    println!("{table}");
    println!("paper: throughput drops to ~12% of normal under GAP faults");
}
