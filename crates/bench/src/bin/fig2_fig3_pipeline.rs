//! Figures 2 and 3: the FIFO injector's two-phase clock operation, traced
//! cycle by cycle.
//!
//! "On the first clock cycle (Figure 2), the data is both read and pushed
//! onto the FIFO stack. … The incoming 32-bit data stream is also shifted
//! into the compare registers … On the second clock cycle (Figure 3), the
//! result of the compare operation is available, and if any data needs to
//! be corrupted, it will be overwritten in the FIFO."

use netfi_core::corrupt::CorruptUnit;
use netfi_core::fifo::FifoPipeline;
use netfi_core::trigger::CompareUnit;
use netfi_nftape::Table;
use netfi_phy::clock::ClockGenerator;

fn main() {
    // The §3.3 typical scenario at segment granularity: match 0x1818xxxx,
    // replace with 0x1918xxxx.
    let mut pipeline = FifoPipeline::new(
        8,
        2, // FIFO slack: two segments buffered before output
        CompareUnit::new(0x1818_0000, 0xFFFF_0000),
        CorruptUnit::replace(0x1918_0000, 0xFFFF_0000),
        ClockGenerator::from_hz(200_000_000), // Virtex-class clock, 5 ns
    );

    let stream: [u32; 6] = [
        0xAAAA_0001,
        0xBBBB_0002,
        0x1818_CAFE, // the victim segment
        0xCCCC_0003,
        0xDDDD_0004,
        0xEEEE_0005,
    ];

    let mut table = Table::new(
        "Figures 2/3: odd (push/pull + compare) and even (inject) cycles",
        &["Cycle", "Phase", "Input pushed", "Output pulled", "Even-cycle action", "Occupancy"],
    );
    let mut cycle = 0u64;
    let mut outputs = Vec::new();
    for &seg in &stream {
        cycle += 1;
        let out = pipeline.step_odd(Some(seg));
        let out_text = match out {
            Some(v) => {
                outputs.push(v);
                format!("{v:08X}")
            }
            None => "-".into(),
        };
        table.row(&[
            cycle.to_string(),
            "odd".into(),
            format!("{seg:08X}"),
            out_text,
            String::new(),
            pipeline.occupancy().to_string(),
        ]);
        cycle += 1;
        let injected = pipeline.step_even();
        table.row(&[
            cycle.to_string(),
            "even".into(),
            String::new(),
            String::new(),
            if injected {
                "compare HIT -> segment overwritten in FIFO".into()
            } else {
                "compare miss".into()
            },
            pipeline.occupancy().to_string(),
        ]);
    }
    outputs.extend(pipeline.flush());
    println!("{table}");
    println!("output stream: {outputs:08X?}");
    assert_eq!(outputs[2], 0x1918_CAFE);
    println!(
        "\nthe victim segment 1818CAFE left the device as 1918CAFE: the even\n\
         cycle overwrote it in the FIFO before the pull reached it — exactly\n\
         the Figure 2/3 mechanism, {} cycles at 5 ns per cycle.",
        pipeline.cycles()
    );
}
