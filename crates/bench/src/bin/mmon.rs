//! The `mmon` view: "the status of the network and the associated
//! information (like routing tables and control registers) were monitored
//! with the Myrinet monitoring program mmon" (§4.1).
//!
//! Runs the test bed with mixed traffic and an injection, then prints the
//! full monitoring report.

use netfi_core::{Direction, InjectorConfig, InjectorDevice};
use netfi_myrinet::addr::EthAddr;
use netfi_myrinet::mapper::Topology;
use netfi_myrinet::monitor::{InterfaceSnapshot, MmonReport, SwitchSnapshot};
use netfi_myrinet::Switch;
use netfi_netstack::{build_testbed, Host, TestbedOptions, Workload};
use netfi_phy::ControlSymbol;
use netfi_sim::{SimDuration, SimTime};

fn main() {
    let mut tb = build_testbed(
        TestbedOptions {
            intercept_host: Some(1),
            ..TestbedOptions::default()
        },
        |i, host: &mut Host| {
            if i != 1 {
                host.add_workload(Workload::Sender {
                    dest: EthAddr::myricom(2),
                    interval: SimDuration::from_ms(8),
                    payload_len: 256,
                    forbidden: vec![ControlSymbol::Stop.encode()],
                    burst: 4,
                });
            }
        },
    ).unwrap();
    // A mild STOP-corruption campaign so the counters have a story.
    tb.engine
        .component_as_mut::<InjectorDevice>(tb.injector.unwrap())
        .unwrap()
        .configure(
            Direction::AToB,
            InjectorConfig::control_swap(
                ControlSymbol::Stop.encode(),
                ControlSymbol::Idle.encode(),
            ),
        );
    tb.engine.run_until(SimTime::from_secs(5));

    let mut report = MmonReport::default();
    for &h in &tb.hosts {
        let host = tb.engine.component_as::<Host>(h).unwrap();
        report.interfaces.push(InterfaceSnapshot::capture(host.nic()));
        if host.nic().is_mapper() {
            report.map = host.nic().last_map().cloned();
        }
    }
    report
        .switches
        .push(SwitchSnapshot::capture(
            tb.engine.component_as::<Switch>(tb.switch).unwrap(),
        ));
    println!("{report}");
    if let Some(map) = &report.map {
        println!("{}", map.render(&Topology::single_switch(8)));
    }

    let dev = tb
        .engine
        .component_as::<InjectorDevice>(tb.injector.unwrap())
        .unwrap();
    println!("=== injector ===");
    let fifo = dev.fifo_stats(Direction::AToB);
    println!(
        "A>B: {} packets, {} control injections; B>A: {} packets",
        dev.channel_stats(Direction::AToB).packets,
        fifo.control_injections,
        dev.channel_stats(Direction::BToA).packets,
    );
    for ((src, dst), n) in &dev.channel_stats(Direction::BToA).id_counts {
        println!("  {src} -> {dst}: {n} packets");
    }
}
