//! Observability overhead benchmark: what does `netfi-obs` cost?
//!
//! Runs `bench_engine`'s saturated three-node testbed twice — once with
//! observation disabled (the default `NullProbe` engine, every component
//! recorder disarmed) and once fully armed (engine [`DispatchProbe`] plus
//! recorders on the device, switch, interfaces and hosts) — and emits
//! `BENCH_obs.json`.
//!
//! The contract the subsystem must keep is "zero when off": the disabled
//! run is the same code the committed `BENCH_engine.json` baseline
//! measured, so `--baseline <path> --min-ratio 0.8` turns the binary into
//! a gate — it exits non-zero if the disabled-path throughput falls below
//! `min-ratio` of the baseline's `events_per_sec`.
//!
//! ```text
//! cargo run -p netfi-bench --release --bin bench_obs -- \
//!     [--out BENCH_obs.json] [--sim-ms 2000] [--samples 5] \
//!     [--baseline target/BENCH_engine.json] [--min-ratio 0.8]
//! ```

use netfi_bench::harness::{Bench, JsonObject};
use netfi_bench::{arg, extract_number};
use netfi_core::InjectorDevice;
use netfi_myrinet::addr::EthAddr;
use netfi_myrinet::switch::Switch;
use netfi_netstack::{build_testbed, build_testbed_probed, Host, TestbedOptions, Workload};
use netfi_obs::DispatchProbe;
use netfi_sim::{SimDuration, SimTime};
use std::hint::black_box;

fn options(seed: u64) -> TestbedOptions {
    TestbedOptions {
        intercept_host: Some(1),
        seed,
        paper_era_hosts: true,
        ..TestbedOptions::default()
    }
}

fn workloads(i: usize, host: &mut Host) {
    if i == 0 {
        host.add_workload(Workload::Sender {
            dest: EthAddr::myricom(2),
            interval: SimDuration::from_ms(3),
            payload_len: 256,
            forbidden: vec![],
            burst: 2,
        });
    }
    if i == 2 {
        host.add_workload(Workload::Flood {
            peer: EthAddr::myricom(1),
            payload_len: 64,
            timeout: SimDuration::from_ms(10),
        });
    }
}

/// The baseline path: `NullProbe` engine, every recorder disarmed — the
/// exact configuration `bench_engine` measures.
fn run_disabled(sim_ms: u64, seed: u64) -> u64 {
    let mut tb = build_testbed(options(seed), workloads).unwrap();
    tb.engine.run_until(SimTime::from_ms(sim_ms));
    tb.engine.events_processed()
}

/// The fully armed path: dispatch probe plus flight recorders at every
/// layer.
fn run_enabled(sim_ms: u64, seed: u64) -> u64 {
    let mut tb = build_testbed_probed(options(seed), DispatchProbe::new(1024), workloads).unwrap();
    let hosts = tb.hosts.clone();
    for h in hosts {
        let host = tb.engine.component_as_mut::<Host>(h).unwrap();
        host.obs_mut().arm(1024);
        host.nic_mut().obs_mut().arm(1024);
    }
    tb.engine
        .component_as_mut::<Switch>(tb.switch)
        .unwrap()
        .obs_mut()
        .arm(1024);
    if let Some(dev) = tb.injector {
        tb.engine
            .component_as_mut::<InjectorDevice>(dev)
            .unwrap()
            .obs_mut()
            .arm(1024);
    }
    tb.engine.run_until(SimTime::from_ms(sim_ms));
    tb.engine.events_processed()
}

fn main() {
    let out_path: String = arg("--out", "BENCH_obs.json".to_string());
    let sim_ms: u64 = arg("--sim-ms", 2_000);
    let samples: u32 = arg("--samples", 5);
    let baseline_path: String = arg("--baseline", String::new());
    let min_ratio: f64 = arg("--min-ratio", 0.0);

    let events = run_disabled(sim_ms, 12345);
    assert_eq!(
        events,
        run_enabled(sim_ms, 12345),
        "observation must not change the simulation trajectory"
    );

    let m_off = Bench::new(format!("obs/disabled_{sim_ms}ms"))
        .samples(samples)
        .warmup(1)
        .run(|| black_box(run_disabled(sim_ms, 12345)));
    println!("{}", m_off.report());
    let m_on = Bench::new(format!("obs/enabled_{sim_ms}ms"))
        .samples(samples)
        .warmup(1)
        .run(|| black_box(run_enabled(sim_ms, 12345)));
    println!("{}", m_on.report());

    let eps_off = events as f64 / (m_off.median_sample_ns() as f64 / 1e9);
    let eps_on = events as f64 / (m_on.median_sample_ns() as f64 / 1e9);
    let enabled_ratio = eps_on / eps_off;
    println!(
        "obs: disabled {eps_off:.0} events/s, enabled {eps_on:.0} events/s \
         ({:.1}% of disabled)",
        enabled_ratio * 100.0
    );

    let mut json = JsonObject::new()
        .str("bench", "obs")
        .str("workload", "saturated_3node_testbed")
        .int("sim_ms", sim_ms)
        .int("events", events)
        .num("events_per_sec_disabled", eps_off)
        .num("events_per_sec_enabled", eps_on)
        .num("enabled_over_disabled", enabled_ratio);

    let mut gate_ok = true;
    if !baseline_path.is_empty() {
        match std::fs::read_to_string(&baseline_path)
            .ok()
            .and_then(|s| extract_number(&s, "events_per_sec"))
        {
            Some(base_eps) => {
                let ratio = eps_off / base_eps;
                println!(
                    "baseline: {base_eps:.0} events/s -> disabled-path ratio {ratio:.2} \
                     ({baseline_path})"
                );
                json = json
                    .num("baseline_events_per_sec", base_eps)
                    .num("disabled_over_baseline", ratio);
                if min_ratio > 0.0 && ratio < min_ratio {
                    eprintln!(
                        "FAIL: disabled-path throughput is {ratio:.2}x the baseline \
                         (gate: >= {min_ratio:.2}x) — the obs seam is not free when off"
                    );
                    gate_ok = false;
                }
            }
            None => {
                eprintln!("FAIL: no events_per_sec in baseline {baseline_path}");
                gate_ok = false;
            }
        }
    }

    let rendered = json.render();
    std::fs::write(&out_path, format!("{rendered}\n")).expect("write BENCH json");
    println!("wrote {out_path}");
    if !gate_ok {
        std::process::exit(1);
    }
}
