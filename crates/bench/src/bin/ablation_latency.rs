//! Ablation (DESIGN.md §5): pipeline depth and FIFO slack versus
//! cut-through latency, across link rates.
//!
//! Paper footnote 5: "the latency depends greatly on the VHDL designer's
//! ability to meet timing constraints without pipelining the inject logic
//! excessively" — 3 pipeline cycles + 2 slack segments give 250 ns at
//! 640 Mb/s.

use netfi_nftape::Table;
use netfi_sim::SimDuration;

fn main() {
    let rates: [(u64, &str); 3] = [
        (640_000_000, "640 Mb/s"),
        (1_280_000_000, "1.28 Gb/s"),
        (1_062_500_000, "FC 1.06 Gb/s"),
    ];
    let mut table = Table::new(
        "Cut-through latency vs. pipeline depth + FIFO slack (segments of 32 bits)",
        &["Pipeline+slack", "640 Mb/s", "1.28 Gb/s", "FC 1.06 Gb/s", "vs 3m cable"],
    );
    for total in [2u64, 3, 5, 8, 12] {
        let mut cells = vec![total.to_string()];
        for (rate, _) in rates {
            let seg = SimDuration::from_bits(32, rate);
            cells.push(format!("{}", seg * total));
        }
        // A metre of cable is ~5 ns; the paper argues the device "can be
        // simply modeled by a longer cable".
        let ns_640 = SimDuration::from_bits(32, 640_000_000).as_ns_f64() * total as f64;
        cells.push(format!("{:.0} m", ns_640 / 5.0));
        table.row(&cells);
    }
    println!("{table}");
    println!("the paper's configuration is the 5-segment row: 250 ns at 640 Mb/s,");
    println!("equivalent to ~50 m of extra cable.");
}
