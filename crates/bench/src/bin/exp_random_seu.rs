//! Random SEU characterization (§3.1's first fault model): sweep the
//! injector's LFSR flip probability and watch which protection layer
//! catches the corruption.

use netfi_nftape::scenarios::random::{seu_arm, seu_sweep};
use netfi_nftape::Table;

fn main() {
    eprintln!("sweeping SEU flip probabilities …");
    let mut table = Table::new(
        "Random SEU injection: loss and detection by layer",
        &["p/segment", "Sent", "Received", "Loss", "CRC-8 drops", "UDP drops"],
    );
    for r in seu_sweep(0x736575).unwrap() {
        table.row(&[
            r.name.clone(),
            r.sent.to_string(),
            r.received.to_string(),
            format!("{:.2}%", r.loss_rate() * 100.0),
            format!("{:.0}", r.extra("crc8_drops").unwrap_or(0.0)),
            format!("{:.0}", r.extra("udp_checksum_drops").unwrap_or(0.0)),
        ]);
    }
    // The ablation arm: CRC repaired in flight, so detection falls to UDP.
    let fixed = seu_arm(1e-1, true, 0x736575).unwrap();
    table.row(&[
        fixed.name.clone(),
        fixed.sent.to_string(),
        fixed.received.to_string(),
        format!("{:.2}%", fixed.loss_rate() * 100.0),
        format!("{:.0}", fixed.extra("crc8_drops").unwrap_or(0.0)),
        format!("{:.0}", fixed.extra("udp_checksum_drops").unwrap_or(0.0)),
    ]);
    println!("{table}");
    println!(
        "shape: loss grows with p; the Myrinet CRC-8 is the catching layer\n\
         unless the injector repairs it, in which case UDP's checksum takes\n\
         over — the layered-protection story of §4.3."
    );
}
