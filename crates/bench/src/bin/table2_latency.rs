//! Regenerates Table 2: latency measurements by UDP ping-pong.
//!
//! Usage: `table2_latency [--packets <n>] [--experiments <n>]`
//!
//! The paper passed two million small UDP packets per experiment; the
//! default here is 20 000 per arm (scale up with `--packets` at the cost
//! of run time — the *added latency* estimate converges long before that).

use netfi_bench::arg;
use netfi_nftape::scenarios::latency::{latency_table2, paper_table2};
use netfi_nftape::Table;

fn main() {
    let packets = arg("--packets", 20_000u64);
    let experiments = arg("--experiments", 5usize);
    eprintln!("running {experiments} experiments × 2 arms × {packets} packets …");
    let rows = latency_table2(packets, experiments, 0x7461_626c_6532).unwrap();

    let mut table = Table::new(
        "Table 2: latency measurements (per-packet averages, ns)",
        &[
            "Experiment",
            "Without injector",
            "With injector",
            "Added",
            "Paper w/o",
            "Paper w/",
            "Paper added",
        ],
    );
    let paper = paper_table2();
    for row in &rows {
        let (p_without, p_with) = paper.get(row.experiment - 1).copied().unwrap_or((0.0, 0.0));
        table.row(&[
            format!("{}", row.experiment),
            format!("{:.0}", row.without_ns),
            format!("{:.0}", row.with_ns),
            format!("{:+.0}", row.added_ns()),
            format!("{p_without:.0}"),
            format!("{p_with:.0}"),
            format!("{:+.0}", p_with - p_without),
        ]);
    }
    println!("{table}");
    let mean_added: f64 = rows.iter().map(|r| r.added_ns()).sum::<f64>() / rows.len() as f64;
    println!(
        "mean added latency: {mean_added:.0} ns  (true model value: 255 ns = \
         250 ns pipeline + 5 ns extra cable; paper band: 75–1407 ns)"
    );
}
