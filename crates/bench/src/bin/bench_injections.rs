//! Sampled fault-injection throughput: the headline injections/sec.
//!
//! Warms one donor campaign, then draws and runs a `--points`-sized
//! statistical injection campaign (`netfi-sample`) at each requested
//! worker count, asserting the campaign fingerprint and the rendered
//! coverage report are byte-identical across worker counts — the
//! sampler's determinism contract. The headline number is
//! injections/sec: sampled points executed per wall-clock second by the
//! widest fan-out, warm-up excluded (it is paid once, amortized across
//! any campaign size).
//!
//! Emits `BENCH_injections.json` with the class histogram, Wilson 95%
//! intervals and the throughput, which `scripts/check.sh` gates against
//! the committed baseline.
//!
//! ```text
//! cargo run -p netfi-bench --release --bin bench_injections -- \
//!     [--points 2048] [--seed 11] [--workers N] \
//!     [--out BENCH_injections.json]
//! ```

use netfi_bench::arg;
use netfi_bench::harness::JsonObject;
use netfi_nftape::grid::warm_campaign;
use netfi_nftape::runner::worker_count;
use netfi_sample::{sample_warmed, OutcomeClass, SampleOptions};
use std::time::Instant;

fn main() {
    let out_path: String = arg("--out", "BENCH_injections.json".to_string());
    let points: u64 = arg("--points", 2048);
    let seed: u64 = arg("--seed", 11);
    let requested: usize = arg("--workers", 0);
    let widest = worker_count((requested > 0).then_some(requested));

    let start = Instant::now();
    let warm = warm_campaign(seed).expect("warm donor campaign");
    let warm_secs = start.elapsed().as_secs_f64();

    // Worker sweep: 1/2/8 pin the invariance contract (8 exceeds this
    // topology's parallelism on any box, so oversubscription is covered),
    // plus the requested width. The headline rate is the best pass.
    let mut sweep = vec![1usize, 2, 8, widest];
    sweep.sort_unstable();
    sweep.dedup();

    let mut campaigns = Vec::new();
    let mut best_secs = f64::MAX;
    for &workers in &sweep {
        let opts = SampleOptions {
            seed,
            points,
            workers,
        };
        let start = Instant::now();
        let campaign = sample_warmed(&warm, &opts).expect("sampled campaign");
        let secs = start.elapsed().as_secs_f64();
        println!(
            "sampled {points} points, {workers} workers: {secs:.2} s ({:.1} injections/sec), fingerprint {:#018x}",
            points as f64 / secs,
            campaign.fingerprint()
        );
        best_secs = best_secs.min(secs);
        campaigns.push(campaign);
    }
    let first = &campaigns[0];
    for (campaign, &workers) in campaigns.iter().zip(&sweep).skip(1) {
        assert_eq!(
            campaign.fingerprint(),
            first.fingerprint(),
            "worker count {workers} changed the campaign fingerprint"
        );
        assert_eq!(
            campaign.report().render(),
            first.report().render(),
            "worker count {workers} changed the coverage report bytes"
        );
        assert_eq!(campaign, first, "worker count {workers} changed a record");
    }

    let report = first.report();
    println!("{}", report.render());
    // Per-dimension breakdowns — derived from the records, so already
    // covered by the worker-invariance asserts above.
    let dir_breakdown = first.direction_breakdown();
    let swap_breakdown = first.control_swap_breakdown();
    println!("{}", dir_breakdown.render());
    println!("{}", swap_breakdown.render());
    let injections_per_sec = points as f64 / best_secs;

    // The breakdowns nest as objects keyed by the campaign's stable cell
    // keys (`dir_a`, `gap_to_idle`, ...), one integer field per outcome
    // class, so downstream tooling reads cells without positional logic.
    let nest = |breakdown: &netfi_sample::Breakdown| {
        let mut outer = JsonObject::new();
        for row in &breakdown.rows {
            let mut cell = JsonObject::new();
            for class in OutcomeClass::ALL {
                cell = cell.int(class.label(), row.histogram[class.index()]);
            }
            outer = outer.raw(&row.key, cell.render());
        }
        outer.render()
    };

    let mut json = JsonObject::new()
        .str("bench", "injections")
        .int(
            "cores",
            std::thread::available_parallelism().map_or(1, usize::from) as u64,
        )
        .int("workers", widest as u64)
        .int("points", points)
        .int("seed", seed)
        .num("warm_secs", warm_secs)
        .num("wall_secs", best_secs)
        .num("injections_per_sec", injections_per_sec)
        .str("fingerprint", &format!("{:#018x}", first.fingerprint()));
    for row in &report.rows {
        json = json
            .int(row.class.label(), row.count)
            .num(&format!("{}_lo", row.class.label()), row.low)
            .num(&format!("{}_hi", row.class.label()), row.high);
    }
    json = json
        .raw("dir_breakdown", nest(&dir_breakdown))
        .raw("control_swap_breakdown", nest(&swap_breakdown));
    // The acceptance contract: every class of the taxonomy is present in
    // the report, zero-draw classes included.
    assert_eq!(report.rows.len(), OutcomeClass::ALL.len());

    let rendered = json.render();
    std::fs::write(&out_path, format!("{rendered}\n")).expect("write BENCH json");
    println!("wrote {out_path} ({injections_per_sec:.1} injections/sec)");
}
