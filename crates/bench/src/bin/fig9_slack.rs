//! Figure 9: slack-buffer behaviour — occupancy against the high/low
//! watermarks with STOP/GO generation, driven by a saturating arrival
//! pattern against a slower drain.

use netfi_myrinet::sbuf::{Accept, SlackBuffer};

fn main() {
    let mut buf = SlackBuffer::new(2048, 1536, 512);
    println!("slack buffer: capacity=2048 high=1536 low=512");
    println!("arrivals: 128-byte frames every tick for 20 ticks, then silence");
    println!("drain: 96 bytes per tick (three quarters of the arrival rate)");
    println!();
    println!("{:>4}  {:>9}  {:<32}  events", "tick", "occupancy", "fill");

    let mut pending_drain = 0usize;
    for tick in 0..40 {
        let mut events = Vec::new();
        if tick < 20 {
            match buf.try_accept(128) {
                Accept::Stored => {}
                Accept::Overflow => events.push("OVERFLOW (frame lost)".to_string()),
            }
        }
        pending_drain += 96;
        let drained = pending_drain.min(buf.occupancy());
        if drained > 0 {
            buf.drain(drained);
            pending_drain -= drained;
        }
        while let Some(sym) = buf.poll_flow() {
            events.push(format!("sends {sym} upstream"));
        }
        let bars = buf.occupancy() * 32 / buf.capacity();
        let mut fill = "#".repeat(bars);
        fill.push_str(&" ".repeat(32 - bars));
        // Mark the watermarks within the bar.
        let hi = 1536 * 32 / 2048;
        let lo = 512 * 32 / 2048;
        let mut chars: Vec<char> = fill.chars().collect();
        if chars[hi] == ' ' {
            chars[hi] = '|';
        }
        if chars[lo] == ' ' {
            chars[lo] = '|';
        }
        let fill: String = chars.into_iter().collect();
        println!(
            "{:>4}  {:>9}  [{}]  {}",
            tick,
            buf.occupancy(),
            fill,
            events.join(", ")
        );
    }
    println!();
    println!(
        "totals: STOPs sent = {}, GOs sent = {}, overflows = {}, peak = {}",
        buf.stops_sent(),
        buf.gos_sent(),
        buf.overflows(),
        buf.peak()
    );
}
