//! Figure 8: a Myrinet packet stream, including control symbols.
//!
//! The injector's own full-traffic capture memory (the SDRAM model,
//! enabled over the serial line with `L1`) records every frame crossing
//! the intercepted link: mapping scouts and route distribution first, then
//! DATA packets riding with their terminating GAPs, with flow-control
//! symbols interleaved when the receiver throttles.

use netfi_core::InjectorDevice;
use netfi_myrinet::addr::EthAddr;
use netfi_myrinet::event::Ev;
use netfi_netstack::{build_testbed, Host, TestbedOptions, Workload};
use netfi_sim::{SimDuration, SimTime};

fn main() {
    let mut tb = build_testbed(
        TestbedOptions {
            hosts: 3,
            intercept_host: Some(1),
            ..TestbedOptions::default()
        },
        |i, host: &mut Host| {
            // Slow the receiving host so its NIC generates STOP/GO that
            // appear in the stream.
            host.nic_mut().set_rx_params(4608, 3072, 512, 300_000_000);
            if i == 0 {
                host.add_workload(Workload::Sender {
                    dest: EthAddr::myricom(2),
                    interval: SimDuration::from_ms(2),
                    payload_len: 512,
                    forbidden: vec![],
                    burst: 12,
                });
            }
        },
    ).unwrap();
    let device = tb.injector.expect("injector");
    // Enable the traffic log over the serial line ("L1\n") just before the
    // second mapping round, and capture a short window of the stream.
    for (k, &byte) in b"L1\n".iter().enumerate() {
        tb.engine.schedule(
            SimTime::from_us(990_000 + 87 * k as u64),
            device,
            Ev::Serial(byte),
        );
    }
    tb.engine.run_until(SimTime::from_ms(1_045));

    let dev = tb.engine.component_as::<InjectorDevice>(device).unwrap();
    println!("Figure 8: the frame stream on the intercepted link, from the");
    println!("device's own capture memory (runs of identical symbols grouped):\n");
    let mut last: Option<(String, u64, netfi_sim::SimTime)> = None;
    let mut printed = 0;
    for record in dev.traffic_log().iter() {
        let text = record.value.to_string();
        match &mut last {
            Some((prev, count, _first)) if *prev == text => *count += 1,
            _ => {
                if let Some((prev, count, first)) = last.take() {
                    let times = if count > 1 { format!("  ×{count}") } else { String::new() };
                    println!("  [{first}] {prev}{times}");
                    printed += 1;
                    if printed >= 40 {
                        break;
                    }
                }
                last = Some((text, 1, record.time));
            }
        }
    }
    if let Some((prev, count, first)) = last {
        let times = if count > 1 { format!("  ×{count}") } else { String::new() };
        println!("  [{first}] {prev}{times}");
    }
    println!(
        "\n{} frames captured ({} dropped by the ring)",
        dev.traffic_log().len(),
        dev.traffic_log().dropped()
    );
}
