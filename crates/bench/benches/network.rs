//! Criterion benches of the network simulator itself: how many simulated
//! events per second the engine sustains, with and without the injector in
//! the path (§3.5 transparency at the simulation level), plus switch
//! forwarding cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netfi_myrinet::addr::EthAddr;
use netfi_netstack::{build_testbed, TestbedOptions, Workload};
use netfi_sim::{SimDuration, SimTime};
use std::hint::black_box;

fn run_slice(with_injector: bool) -> u64 {
    let mut tb = build_testbed(
        TestbedOptions {
            hosts: 3,
            intercept_host: with_injector.then_some(1),
            ..TestbedOptions::default()
        },
        |i, host| {
            if i == 0 {
                host.add_workload(Workload::Sender {
                    dest: EthAddr::myricom(2),
                    interval: SimDuration::from_ms(1),
                    payload_len: 256,
                    forbidden: vec![],
                    burst: 4,
                });
            }
        },
    );
    tb.engine.run_until(SimTime::from_ms(1_500));
    tb.engine.events_processed()
}

fn bench_testbed_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("network/testbed_1500ms_sim");
    group.sample_size(10);
    for &with_injector in &[false, true] {
        group.bench_with_input(
            BenchmarkId::new("with_injector", with_injector),
            &with_injector,
            |b, &w| {
                b.iter(|| black_box(run_slice(w)));
            },
        );
    }
    group.finish();
}

fn bench_packet_encode_decode(c: &mut Criterion) {
    use netfi_myrinet::packet::{route_to_host, wire, Packet, PacketType};
    let pkt = Packet::new(
        vec![route_to_host(3)],
        PacketType::DATA,
        vec![0x5A; 512],
    );
    c.bench_function("network/packet_encode", |b| {
        b.iter(|| black_box(black_box(&pkt).encode()));
    });
    let w = pkt.encode();
    c.bench_function("network/packet_parse_delivered", |b| {
        b.iter(|| black_box(Packet::parse_delivered(black_box(&w))));
    });
    c.bench_function("network/route_strip_recompute", |b| {
        b.iter(|| black_box(wire::strip_route_byte(black_box(&w))));
    });
}

criterion_group!(benches, bench_testbed_slice, bench_packet_encode_decode);
criterion_main!(benches);
