//! Benches of the network simulator itself: how many simulated events per
//! second the engine sustains, with and without the injector in the path
//! (§3.5 transparency at the simulation level), plus switch forwarding
//! cost. Runs on the dependency-free harness in `netfi_bench::harness`.

// Tests and examples may unwrap: a failed assertion here is the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use netfi_bench::harness::Bench;
use netfi_myrinet::addr::EthAddr;
use netfi_netstack::{build_testbed, TestbedOptions, Workload};
use netfi_sim::{SimDuration, SimTime};
use std::hint::black_box;

fn run_slice(with_injector: bool) -> u64 {
    let mut tb = build_testbed(
        TestbedOptions {
            hosts: 3,
            intercept_host: with_injector.then_some(1),
            ..TestbedOptions::default()
        },
        |i, host| {
            if i == 0 {
                host.add_workload(Workload::Sender {
                    dest: EthAddr::myricom(2),
                    interval: SimDuration::from_ms(1),
                    payload_len: 256,
                    forbidden: vec![],
                    burst: 4,
                });
            }
        },
    ).unwrap();
    tb.engine.run_until(SimTime::from_ms(1_500));
    tb.engine.events_processed()
}

fn bench_testbed_slice() {
    for &with_injector in &[false, true] {
        let m = Bench::new(format!(
            "network/testbed_1500ms_sim/with_injector_{with_injector}"
        ))
        .samples(5)
        .warmup(1)
        .run(|| black_box(run_slice(with_injector)));
        println!("{}", m.report());
    }
}

fn bench_packet_encode_decode() {
    use netfi_myrinet::packet::{route_to_host, wire, Packet, PacketType};
    let pkt = Packet::new(vec![route_to_host(3)], PacketType::DATA, vec![0x5A; 512]);
    let m = Bench::new("network/packet_encode")
        .iters(1 << 14)
        .run(|| black_box(black_box(&pkt).encode()));
    println!("{}", m.report());
    let w = pkt.encode();
    let m = Bench::new("network/packet_parse_delivered")
        .iters(1 << 14)
        .run(|| black_box(Packet::parse_delivered(black_box(&w))));
    println!("{}", m.report());
    let m = Bench::new("network/route_strip_recompute")
        .iters(1 << 14)
        .run(|| black_box(wire::strip_route_byte(black_box(&w))));
    println!("{}", m.report());
}

fn main() {
    bench_testbed_slice();
    bench_packet_encode_decode();
}
