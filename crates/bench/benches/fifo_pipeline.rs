//! Criterion bench of the cycle-accurate two-phase FIFO pipeline
//! (Figures 2/3), including the DESIGN.md ablation: throughput versus
//! FIFO slack depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netfi_core::corrupt::CorruptUnit;
use netfi_core::fifo::FifoPipeline;
use netfi_core::trigger::CompareUnit;
use netfi_phy::clock::ClockGenerator;
use std::hint::black_box;

fn bench_pipeline_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("fifo_pipeline/two_phase_cycles");
    let input: Vec<u32> = (0..4096u32).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
    group.throughput(Throughput::Bytes((input.len() * 4) as u64));
    for &slack in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("slack", slack), &input, |b, input| {
            b.iter(|| {
                let mut p = FifoPipeline::new(
                    16,
                    slack,
                    CompareUnit::new(0xDEAD_BEEF, u32::MAX),
                    CorruptUnit::toggle(0x1),
                    ClockGenerator::from_hz(200_000_000),
                );
                black_box(p.run(black_box(input)))
            });
        });
    }
    group.finish();
}

fn bench_pipeline_stepping(c: &mut Criterion) {
    c.bench_function("fifo_pipeline/single_odd_even_cycle", |b| {
        let mut p = FifoPipeline::new(
            64,
            2,
            CompareUnit::new(0xFFFF_FFFF, u32::MAX),
            CorruptUnit::toggle(0),
            ClockGenerator::from_hz(200_000_000),
        );
        let mut x = 0u32;
        b.iter(|| {
            x = x.wrapping_add(1);
            let out = p.step_odd(Some(black_box(x)));
            let injected = p.step_even();
            black_box((out, injected))
        });
    });
}

criterion_group!(benches, bench_pipeline_run, bench_pipeline_stepping);
criterion_main!(benches);
