//! Bench of the cycle-accurate two-phase FIFO pipeline (Figures 2/3),
//! including the DESIGN.md ablation: throughput versus FIFO slack depth.
//! Runs on the dependency-free harness in `netfi_bench::harness`.

// Tests and examples may unwrap: a failed assertion here is the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use netfi_bench::harness::Bench;
use netfi_core::corrupt::CorruptUnit;
use netfi_core::fifo::FifoPipeline;
use netfi_core::trigger::CompareUnit;
use netfi_phy::clock::ClockGenerator;
use std::hint::black_box;

fn bench_pipeline_run() {
    let input: Vec<u32> = (0..4096u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    for &slack in &[1usize, 2, 4, 8] {
        let m = Bench::new(format!("fifo_pipeline/two_phase_cycles/slack_{slack}"))
            .iters(16)
            .run(|| {
                let mut p = FifoPipeline::new(
                    16,
                    slack,
                    CompareUnit::new(0xDEAD_BEEF, u32::MAX),
                    CorruptUnit::toggle(0x1),
                    ClockGenerator::from_hz(200_000_000),
                );
                black_box(p.run(black_box(&input)))
            });
        println!("{}", m.report());
    }
}

fn bench_pipeline_stepping() {
    let mut p = FifoPipeline::new(
        64,
        2,
        CompareUnit::new(0xFFFF_FFFF, u32::MAX),
        CorruptUnit::toggle(0),
        ClockGenerator::from_hz(200_000_000),
    );
    let mut x = 0u32;
    let m = Bench::new("fifo_pipeline/single_odd_even_cycle")
        .iters(1 << 16)
        .run(|| {
            x = x.wrapping_add(1);
            let out = p.step_odd(Some(black_box(x)));
            let injected = p.step_even();
            black_box((out, injected))
        });
    println!("{}", m.report());
}

fn main() {
    bench_pipeline_run();
    bench_pipeline_stepping();
}
