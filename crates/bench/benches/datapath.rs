//! Benches for the injector datapath: is the emulated device fast enough
//! to "run at the speed of the network" in simulation, and what do the
//! trigger/corrupt stages cost per packet? Runs on the dependency-free
//! harness in `netfi_bench::harness`.

// Tests and examples may unwrap: a failed assertion here is the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use netfi_bench::harness::Bench;
use netfi_core::config::InjectorConfig;
use netfi_core::fifo::FifoInjector;
use netfi_core::trigger::{CompareUnit, MatchMode};
use netfi_myrinet::packet::{route_to_host, Packet, PacketType};
use std::hint::black_box;

fn wire(len: usize) -> Vec<u8> {
    let payload: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
    Packet::new(vec![route_to_host(1)], PacketType::DATA, payload).encode()
}

fn bench_passthrough() {
    for &len in &[64usize, 512, 4096] {
        let template = wire(len);
        let mut injector = FifoInjector::new(InjectorConfig::passthrough());
        let mut buf = template.clone();
        let m = Bench::new(format!("fifo_injector/passthrough/{len}"))
            .iters((1 << 18) / len as u64)
            .run(|| {
                buf.copy_from_slice(&template);
                black_box(injector.process_packet(black_box(&mut buf)));
            });
        println!("{}", m.report());
    }
}

fn bench_triggered() {
    let config = InjectorConfig::builder()
        .match_mode(MatchMode::On)
        .compare(0x1818_0000, 0xFFFF_0000)
        .corrupt_replace(0x1918_0000, 0xFFFF_0000)
        .recompute_crc(true)
        .build();
    for &len in &[64usize, 512, 4096] {
        let mut template = wire(len);
        // Plant one victim pattern mid-payload.
        let mid = template.len() / 2;
        template[mid] = 0x18;
        template[mid + 1] = 0x18;
        let mut injector = FifoInjector::new(config);
        let mut buf = template.clone();
        let m = Bench::new(format!("fifo_injector/triggered_with_crc_fix/{len}"))
            .iters((1 << 18) / len as u64)
            .run(|| {
                buf.copy_from_slice(&template);
                black_box(injector.process_packet(black_box(&mut buf)));
            });
        println!("{}", m.report());
    }
}

fn bench_compare_scan() {
    let cmp = CompareUnit::new(0xDEAD_BEEF, 0xFFFF_FFFF);
    for &len in &[512usize, 4096, 65536] {
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let m = Bench::new(format!("trigger/scan/{len}"))
            .iters(((1 << 22) / len as u64).max(4))
            .run(|| black_box(cmp.scan(black_box(&data))));
        println!("{}", m.report());
    }
}

fn main() {
    bench_passthrough();
    bench_triggered();
    bench_compare_scan();
}
