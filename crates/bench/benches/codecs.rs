//! Criterion benches of the line codes and checksums the substrates use:
//! Myrinet CRC-8, FC CRC-32, the Internet checksum, and the 8b/10b codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netfi_phy::b8b10::{Byte8, Decoder, Encoder};
use std::hint::black_box;

fn data(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 % 256) as u8).collect()
}

fn bench_crc8(c: &mut Criterion) {
    let mut group = c.benchmark_group("codecs/crc8");
    for &len in &[64usize, 1024, 65536] {
        let d = data(len);
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &d, |b, d| {
            b.iter(|| black_box(netfi_myrinet::crc8::checksum(black_box(d))));
        });
    }
    group.finish();
}

fn bench_crc32(c: &mut Criterion) {
    let mut group = c.benchmark_group("codecs/crc32");
    for &len in &[64usize, 1024, 65536] {
        let d = data(len);
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &d, |b, d| {
            b.iter(|| black_box(netfi_fc::crc32::checksum(black_box(d))));
        });
    }
    group.finish();
}

fn bench_inet_checksum(c: &mut Criterion) {
    let mut group = c.benchmark_group("codecs/ones_complement");
    for &len in &[64usize, 1024, 65536] {
        let d = data(len);
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &d, |b, d| {
            b.iter(|| black_box(netfi_netstack::checksum::checksum(black_box(d))));
        });
    }
    group.finish();
}

fn bench_8b10b(c: &mut Criterion) {
    let d = data(4096);
    let mut group = c.benchmark_group("codecs/8b10b");
    group.throughput(Throughput::Bytes(d.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| {
            let mut enc = Encoder::new();
            let out: Vec<u16> = d
                .iter()
                .map(|&byte| enc.push(Byte8::Data(byte)).expect("data encodes"))
                .collect();
            black_box(out)
        });
    });
    let mut enc = Encoder::new();
    let line: Vec<u16> = d
        .iter()
        .map(|&byte| enc.push(Byte8::Data(byte)).expect("data encodes"))
        .collect();
    group.bench_function("decode", |b| {
        b.iter(|| {
            let mut dec = Decoder::new();
            let out: Vec<Byte8> = line
                .iter()
                .map(|&code| dec.push(code).expect("valid line"))
                .collect();
            black_box(out)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_crc8,
    bench_crc32,
    bench_inet_checksum,
    bench_8b10b
);
criterion_main!(benches);
