//! Benches of the line codes and checksums the substrates use: Myrinet
//! CRC-8, FC CRC-32, the Internet checksum, and the 8b/10b codec. Runs on
//! the dependency-free harness in `netfi_bench::harness`.

// Tests and examples may unwrap: a failed assertion here is the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use netfi_bench::harness::Bench;
use netfi_phy::b8b10::{Byte8, Decoder, Encoder};
use std::hint::black_box;

fn data(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 % 256) as u8).collect()
}

fn bench_crc8() {
    for &len in &[64usize, 1024, 65536] {
        let d = data(len);
        let iters = (1 << 22) / len as u64;
        let m = Bench::new(format!("codecs/crc8/{len}"))
            .iters(iters.max(4))
            .run(|| black_box(netfi_myrinet::crc8::checksum(black_box(&d))));
        println!("{}", m.report());
    }
}

fn bench_crc32() {
    for &len in &[64usize, 1024, 65536] {
        let d = data(len);
        let iters = (1 << 22) / len as u64;
        let m = Bench::new(format!("codecs/crc32/{len}"))
            .iters(iters.max(4))
            .run(|| black_box(netfi_fc::crc32::checksum(black_box(&d))));
        println!("{}", m.report());
    }
}

fn bench_inet_checksum() {
    for &len in &[64usize, 1024, 65536] {
        let d = data(len);
        let iters = (1 << 22) / len as u64;
        let m = Bench::new(format!("codecs/ones_complement/{len}"))
            .iters(iters.max(4))
            .run(|| black_box(netfi_netstack::checksum::checksum(black_box(&d))));
        println!("{}", m.report());
    }
}

fn bench_8b10b() {
    let d = data(4096);
    let m = Bench::new("codecs/8b10b/encode").iters(64).run(|| {
        let mut enc = Encoder::new();
        let out: Vec<u16> = d
            .iter()
            .map(|&byte| enc.push(Byte8::Data(byte)).expect("data encodes"))
            .collect();
        black_box(out)
    });
    println!("{}", m.report());
    let mut enc = Encoder::new();
    let line: Vec<u16> = d
        .iter()
        .map(|&byte| enc.push(Byte8::Data(byte)).expect("data encodes"))
        .collect();
    let m = Bench::new("codecs/8b10b/decode").iters(64).run(|| {
        let mut dec = Decoder::new();
        let out: Vec<Byte8> = line
            .iter()
            .map(|&code| dec.push(code).expect("valid line"))
            .collect();
        black_box(out)
    });
    println!("{}", m.report());
}

fn main() {
    bench_crc8();
    bench_crc32();
    bench_inet_checksum();
    bench_8b10b();
}
