//! A UDP datagram layer over Ethernet-addressed Myrinet payloads.
//!
//! The wire format follows RFC 768 — source port, destination port,
//! length, checksum, payload — with the checksum computed over header and
//! payload directly (no IP pseudo-header: the paper's test bed runs UDP
//! over the Myrinet Ethernet emulation, and the §4.3.4 experiment depends
//! only on the one's-complement arithmetic).

use std::error::Error;
use std::fmt;

use netfi_sim::SharedBytes;

use crate::checksum;

/// Minimum encoded size (the 8-byte header).
pub const HEADER_LEN: usize = 8;

/// A UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes — shared with the wire image it was decoded from.
    pub payload: SharedBytes,
}

/// UDP decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdpError {
    /// Fewer than eight bytes.
    TooShort,
    /// The length field disagrees with the actual size.
    BadLength,
    /// The checksum failed — "when the corruption did not satisfy the
    /// checksum, the packets were dropped" (§4.3.4).
    BadChecksum,
}

impl fmt::Display for UdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UdpError::TooShort => f.write_str("datagram shorter than UDP header"),
            UdpError::BadLength => f.write_str("UDP length field mismatch"),
            UdpError::BadChecksum => f.write_str("UDP checksum failed"),
        }
    }
}

impl Error for UdpError {}

impl UdpDatagram {
    /// Builds a datagram.
    pub fn new(
        src_port: u16,
        dst_port: u16,
        payload: impl Into<SharedBytes>,
    ) -> UdpDatagram {
        UdpDatagram {
            src_port,
            dst_port,
            payload: payload.into(),
        }
    }

    /// The encoded 8-byte header with the checksum computed and filled
    /// in, leaving the payload to be appended separately — a sender with
    /// a scatter-gather transmit path can skip assembling the datagram.
    pub fn header_bytes(&self) -> [u8; HEADER_LEN] {
        let len = HEADER_LEN + self.payload.len();
        let mut header = [0u8; HEADER_LEN];
        header[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        header[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        header[4..6].copy_from_slice(&(len as u16).to_be_bytes());
        // header[6..8] stays zero: the checksum placeholder.
        let ck = checksum::checksum_parts(&[&header, &self.payload]);
        // RFC 768: a computed zero checksum is transmitted as all-ones.
        let ck = if ck == 0 { 0xFFFF } else { ck };
        header[6..8].copy_from_slice(&ck.to_be_bytes());
        header
    }

    /// Serializes with a computed checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.header_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses and verifies a datagram.
    ///
    /// # Errors
    ///
    /// [`UdpError`] on truncation, length mismatch or checksum failure.
    pub fn decode(wire: &[u8]) -> Result<UdpDatagram, UdpError> {
        let (src_port, dst_port) = Self::validate(wire)?;
        Ok(UdpDatagram {
            src_port,
            dst_port,
            payload: SharedBytes::from(&wire[HEADER_LEN..]),
        })
    }

    /// Parses and verifies a datagram from a shared wire image; the
    /// payload is a window into `wire`, so nothing is copied.
    ///
    /// # Errors
    ///
    /// [`UdpError`] on truncation, length mismatch or checksum failure.
    pub fn decode_shared(wire: &SharedBytes) -> Result<UdpDatagram, UdpError> {
        let (src_port, dst_port) = Self::validate(wire)?;
        Ok(UdpDatagram {
            src_port,
            dst_port,
            payload: wire.slice(HEADER_LEN..),
        })
    }

    fn validate(wire: &[u8]) -> Result<(u16, u16), UdpError> {
        if wire.len() < HEADER_LEN {
            return Err(UdpError::TooShort);
        }
        let src_port = u16::from_be_bytes([wire[0], wire[1]]);
        let dst_port = u16::from_be_bytes([wire[2], wire[3]]);
        let len = u16::from_be_bytes([wire[4], wire[5]]) as usize;
        if len != wire.len() {
            return Err(UdpError::BadLength);
        }
        // Verify: sum over the datagram with the checksum field in place
        // must be all-ones (unless the checksum was transmitted as zero =
        // disabled, which this stack never generates but accepts).
        let ck_field = u16::from_be_bytes([wire[6], wire[7]]);
        if ck_field != 0 && !checksum::verify(wire) {
            return Err(UdpError::BadChecksum);
        }
        Ok((src_port, dst_port))
    }
}

/// Builds a payload of `len` filler bytes that avoids every byte in
/// `forbidden` — the paper's campaign methodology: "the messages were UDP
/// packets designed in such a way that the symbol mask we corrupted did
/// not appear in the message itself" (§4.3.1).
pub fn payload_avoiding(len: usize, seq: u64, forbidden: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    payload_avoiding_into(&mut out, len, seq, forbidden);
    out
}

/// Appends the [`payload_avoiding`] filler to an existing buffer, so a
/// caller composing a larger payload (e.g. sequence number + filler) can
/// do it in one allocation.
pub fn payload_avoiding_into(out: &mut Vec<u8>, len: usize, seq: u64, forbidden: &[u8]) {
    // The allowed alphabet is at most the 95 printable ASCII bytes, so it
    // fits on the stack.
    let mut allowed = [0u8; 95];
    let mut count = 0usize;
    for b in 0x20..=0x7E {
        // printable ASCII
        if !forbidden.contains(&b) {
            allowed[count] = b;
            count += 1;
        }
    }
    assert!(count > 0, "no allowed bytes remain");
    // A deterministic, seq-dependent pattern drawn from allowed bytes.
    let mut x = seq.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(len as u64);
    out.reserve(len);
    // `extend` over a range iterator reserves once and skips the per-byte
    // capacity check a `push` loop would pay.
    const A: u64 = 6364136223846793005;
    const C: u64 = 1442695040888963407;
    if count == allowed.len() {
        // Nothing forbidden (the common hot path): the modulus is a
        // compile-time constant (strength-reduced to a multiply), and the
        // LCG runs as four interleaved lanes that each jump four steps at
        // a time — the four multiplies pipeline instead of forming one
        // serial dependency chain. The emitted byte sequence is identical
        // to the one-step-at-a-time recurrence.
        const A2: u64 = A.wrapping_mul(A);
        const A3: u64 = A2.wrapping_mul(A);
        const A4: u64 = A3.wrapping_mul(A);
        const C4: u64 = A3
            .wrapping_mul(C)
            .wrapping_add(A2.wrapping_mul(C))
            .wrapping_add(A.wrapping_mul(C))
            .wrapping_add(C);
        let byte = |v: u64| 0x20 + ((v >> 33) % 95) as u8;
        let mut l0 = A.wrapping_mul(x).wrapping_add(C);
        let mut l1 = A.wrapping_mul(l0).wrapping_add(C);
        let mut l2 = A.wrapping_mul(l1).wrapping_add(C);
        let mut l3 = A.wrapping_mul(l2).wrapping_add(C);
        for _ in 0..len / 4 {
            out.extend_from_slice(&[byte(l0), byte(l1), byte(l2), byte(l3)]);
            l0 = A4.wrapping_mul(l0).wrapping_add(C4);
            l1 = A4.wrapping_mul(l1).wrapping_add(C4);
            l2 = A4.wrapping_mul(l2).wrapping_add(C4);
            l3 = A4.wrapping_mul(l3).wrapping_add(C4);
        }
        let tail = [l0, l1, l2];
        for &lane in &tail[..len % 4] {
            out.push(byte(lane));
        }
    } else {
        out.extend((0..len).map(|_| {
            x = x.wrapping_mul(A).wrapping_add(C);
            allowed[(x >> 33) as usize % count]
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let d = UdpDatagram::new(1234, 7, b"Have a lot of fun!".to_vec());
        let wire = d.encode();
        assert_eq!(UdpDatagram::decode(&wire), Ok(d));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let d = UdpDatagram::new(0, 0, Vec::new());
        assert_eq!(UdpDatagram::decode(&d.encode()), Ok(d));
    }

    #[test]
    fn corruption_detected() {
        let d = UdpDatagram::new(9, 10, b"payload data".to_vec());
        let mut wire = d.encode();
        wire[10] ^= 0x40;
        assert_eq!(UdpDatagram::decode(&wire), Err(UdpError::BadChecksum));
    }

    #[test]
    fn aligned_word_swap_passes_checksum() {
        // §4.3.4: "Have" -> "veHa" slips through.
        let d = UdpDatagram::new(9, 10, b"Have a lot of fun!".to_vec());
        let mut wire = d.encode();
        wire.swap(HEADER_LEN, HEADER_LEN + 2);
        wire.swap(HEADER_LEN + 1, HEADER_LEN + 3);
        let decoded = UdpDatagram::decode(&wire).unwrap();
        assert_eq!(&decoded.payload[..4], b"veHa");
    }

    #[test]
    fn truncation_detected() {
        let d = UdpDatagram::new(9, 10, b"hello".to_vec());
        let wire = d.encode();
        assert_eq!(UdpDatagram::decode(&wire[..4]), Err(UdpError::TooShort));
        assert_eq!(
            UdpDatagram::decode(&wire[..wire.len() - 1]),
            Err(UdpError::BadLength)
        );
    }

    #[test]
    fn zero_checksum_never_emitted() {
        // Find payloads freely; the encoder must never emit a 0 checksum
        // field (0 means "no checksum" in UDP).
        for i in 0..200u16 {
            let d = UdpDatagram::new(i, i, vec![i as u8; (i % 32) as usize]);
            let wire = d.encode();
            let ck = u16::from_be_bytes([wire[6], wire[7]]);
            assert_ne!(ck, 0);
            assert!(UdpDatagram::decode(&wire).is_ok());
        }
    }

    #[test]
    fn payload_avoiding_forbidden_bytes() {
        let forbidden = [0x0F, 0x0C, 0x03, b'A'];
        for seq in 0..50 {
            let p = payload_avoiding(256, seq, &forbidden);
            assert_eq!(p.len(), 256);
            for b in &p {
                assert!(!forbidden.contains(b), "forbidden byte {b:#04x} in payload");
            }
        }
    }

    #[test]
    fn payload_varies_with_seq() {
        assert_ne!(payload_avoiding(64, 1, &[]), payload_avoiding(64, 2, &[]));
    }

    #[test]
    fn unrolled_filler_matches_serial_recurrence() {
        // The four-lane hot path must emit exactly the bytes of the
        // one-step-at-a-time LCG it replaced.
        for seq in [0u64, 1, 7, 12345, u64::MAX] {
            for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 56, 95, 256] {
                let mut x = seq.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(len as u64);
                let reference: Vec<u8> = (0..len)
                    .map(|_| {
                        x = x.wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        0x20 + ((x >> 33) % 95) as u8
                    })
                    .collect();
                assert_eq!(payload_avoiding(len, seq, &[]), reference, "seq={seq} len={len}");
            }
        }
    }
}
