//! A UDP datagram layer over Ethernet-addressed Myrinet payloads.
//!
//! The wire format follows RFC 768 — source port, destination port,
//! length, checksum, payload — with the checksum computed over header and
//! payload directly (no IP pseudo-header: the paper's test bed runs UDP
//! over the Myrinet Ethernet emulation, and the §4.3.4 experiment depends
//! only on the one's-complement arithmetic).

use std::error::Error;
use std::fmt;

use crate::checksum;

/// Minimum encoded size (the 8-byte header).
pub const HEADER_LEN: usize = 8;

/// A UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// UDP decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdpError {
    /// Fewer than eight bytes.
    TooShort,
    /// The length field disagrees with the actual size.
    BadLength,
    /// The checksum failed — "when the corruption did not satisfy the
    /// checksum, the packets were dropped" (§4.3.4).
    BadChecksum,
}

impl fmt::Display for UdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UdpError::TooShort => f.write_str("datagram shorter than UDP header"),
            UdpError::BadLength => f.write_str("UDP length field mismatch"),
            UdpError::BadChecksum => f.write_str("UDP checksum failed"),
        }
    }
}

impl Error for UdpError {}

impl UdpDatagram {
    /// Builds a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Vec<u8>) -> UdpDatagram {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    /// Serializes with a computed checksum.
    pub fn encode(&self) -> Vec<u8> {
        let len = HEADER_LEN + self.payload.len();
        let mut out = Vec::with_capacity(len);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&(len as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.payload);
        let ck = checksum::checksum(&out);
        // RFC 768: a computed zero checksum is transmitted as all-ones.
        let ck = if ck == 0 { 0xFFFF } else { ck };
        out[6..8].copy_from_slice(&ck.to_be_bytes());
        out
    }

    /// Parses and verifies a datagram.
    ///
    /// # Errors
    ///
    /// [`UdpError`] on truncation, length mismatch or checksum failure.
    pub fn decode(wire: &[u8]) -> Result<UdpDatagram, UdpError> {
        if wire.len() < HEADER_LEN {
            return Err(UdpError::TooShort);
        }
        let src_port = u16::from_be_bytes([wire[0], wire[1]]);
        let dst_port = u16::from_be_bytes([wire[2], wire[3]]);
        let len = u16::from_be_bytes([wire[4], wire[5]]) as usize;
        if len != wire.len() {
            return Err(UdpError::BadLength);
        }
        // Verify: sum over the datagram with the checksum field in place
        // must be all-ones (unless the checksum was transmitted as zero =
        // disabled, which this stack never generates but accepts).
        let ck_field = u16::from_be_bytes([wire[6], wire[7]]);
        if ck_field != 0 && !checksum::verify(wire) {
            return Err(UdpError::BadChecksum);
        }
        Ok(UdpDatagram {
            src_port,
            dst_port,
            payload: wire[HEADER_LEN..].to_vec(),
        })
    }
}

/// Builds a payload of `len` filler bytes that avoids every byte in
/// `forbidden` — the paper's campaign methodology: "the messages were UDP
/// packets designed in such a way that the symbol mask we corrupted did
/// not appear in the message itself" (§4.3.1).
pub fn payload_avoiding(len: usize, seq: u64, forbidden: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    // A deterministic, seq-dependent pattern drawn from allowed bytes.
    let allowed: Vec<u8> = (0x20..=0x7E) // printable ASCII
        .filter(|b| !forbidden.contains(b))
        .collect();
    assert!(!allowed.is_empty(), "no allowed bytes remain");
    let mut x = seq.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(len as u64);
    for _ in 0..len {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        out.push(allowed[(x >> 33) as usize % allowed.len()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let d = UdpDatagram::new(1234, 7, b"Have a lot of fun!".to_vec());
        let wire = d.encode();
        assert_eq!(UdpDatagram::decode(&wire), Ok(d));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let d = UdpDatagram::new(0, 0, Vec::new());
        assert_eq!(UdpDatagram::decode(&d.encode()), Ok(d));
    }

    #[test]
    fn corruption_detected() {
        let d = UdpDatagram::new(9, 10, b"payload data".to_vec());
        let mut wire = d.encode();
        wire[10] ^= 0x40;
        assert_eq!(UdpDatagram::decode(&wire), Err(UdpError::BadChecksum));
    }

    #[test]
    fn aligned_word_swap_passes_checksum() {
        // §4.3.4: "Have" -> "veHa" slips through.
        let d = UdpDatagram::new(9, 10, b"Have a lot of fun!".to_vec());
        let mut wire = d.encode();
        wire.swap(HEADER_LEN, HEADER_LEN + 2);
        wire.swap(HEADER_LEN + 1, HEADER_LEN + 3);
        let decoded = UdpDatagram::decode(&wire).unwrap();
        assert_eq!(&decoded.payload[..4], b"veHa");
    }

    #[test]
    fn truncation_detected() {
        let d = UdpDatagram::new(9, 10, b"hello".to_vec());
        let wire = d.encode();
        assert_eq!(UdpDatagram::decode(&wire[..4]), Err(UdpError::TooShort));
        assert_eq!(
            UdpDatagram::decode(&wire[..wire.len() - 1]),
            Err(UdpError::BadLength)
        );
    }

    #[test]
    fn zero_checksum_never_emitted() {
        // Find payloads freely; the encoder must never emit a 0 checksum
        // field (0 means "no checksum" in UDP).
        for i in 0..200u16 {
            let d = UdpDatagram::new(i, i, vec![i as u8; (i % 32) as usize]);
            let wire = d.encode();
            let ck = u16::from_be_bytes([wire[6], wire[7]]);
            assert_ne!(ck, 0);
            assert!(UdpDatagram::decode(&wire).is_ok());
        }
    }

    #[test]
    fn payload_avoiding_forbidden_bytes() {
        let forbidden = [0x0F, 0x0C, 0x03, b'A'];
        for seq in 0..50 {
            let p = payload_avoiding(256, seq, &forbidden);
            assert_eq!(p.len(), 256);
            for b in &p {
                assert!(!forbidden.contains(b), "forbidden byte {b:#04x} in payload");
            }
        }
    }

    #[test]
    fn payload_varies_with_seq() {
        assert_ne!(payload_avoiding(64, 1, &[]), payload_avoiding(64, 2, &[]));
    }
}
