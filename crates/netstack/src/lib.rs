//! `netfi-netstack` — host-side networking for the `netfi` reproduction.
//!
//! The paper's campaigns run UDP traffic over the Myrinet LAN: "network
//! loads were simulated using a simple UDP packet generation program,
//! running concurrently with the standard Unix ping program with the flood
//! option" (§4.1). This crate provides:
//!
//! - [`checksum`]: the 16-bit one's-complement Internet checksum, whose
//!   word-swap blindness drives the §4.3.4 experiment.
//! - [`udp`]: UDP datagrams plus the campaign's pattern-avoiding payload
//!   generator.
//! - [`host`]: the simulated host — OS send/receive overheads with
//!   interrupt-granularity jitter (Table 2's measurement noise), UDP
//!   sockets, echo service, and the campaign workloads (ping-pong latency
//!   measurement, flood ping, fixed-interval senders).
//! - [`net`]: assembly of the Figure 10 test bed, optionally with the
//!   fault injector spliced into one host's link.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod checksum;
pub mod host;
pub mod net;
pub mod udp;

pub use host::{Host, HostCmd, HostConfig, Workload, ECHO_PORT, SINK_PORT};
pub use net::{build_testbed, build_testbed_probed, Testbed, TestbedOptions};
pub use netfi_myrinet::event::ConnectError;
pub use udp::UdpDatagram;
