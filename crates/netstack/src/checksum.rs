//! The 16-bit one's-complement Internet checksum (RFC 1071), as used by
//! UDP.
//!
//! §4.3.4 of the paper turns on a well-known weakness of this checksum:
//! one's-complement addition is commutative, so *reordering* 16-bit words
//! leaves the sum unchanged. "Because the checksum is 16 bits, this can be
//! done by swapping bits that are 16 bits apart. In our case, we corrupted
//! a UDP packet consisting of the string 'Have a lot of fun' to read
//! instead 'veHa a lot of fun'. The checksum was unable to detect this."

/// Computes the one's-complement sum of `data` folded to 16 bits
/// (big-endian word order; odd trailing byte padded with zero).
///
/// Accumulates eight bytes per iteration: a big-endian `u64` read is the
/// concatenation of four 16-bit words, and summing the two 32-bit halves
/// into a wide accumulator adds all four words at once — one's-complement
/// addition is associative and the deferred carries are folded at the
/// end, so the result is bit-identical to the word-at-a-time loop.
fn ones_complement_sum(data: &[u8]) -> u16 {
    let mut sum: u64 = 0;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_be_bytes([
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
        ]);
        sum += (w >> 32) + (w & 0xFFFF_FFFF);
    }
    let mut rest = chunks.remainder().chunks_exact(2);
    for chunk in &mut rest {
        sum += u64::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = rest.remainder() {
        sum += u64::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

/// The Internet checksum of `data`: the one's complement of the
/// one's-complement sum.
///
/// # Example
///
/// ```
/// use netfi_netstack::checksum::checksum;
/// // Swapping 16-bit words does not change the checksum:
/// assert_eq!(checksum(b"Have a lot of fun!"), checksum(b"veHa a lot of fun!"));
/// ```
pub fn checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// The Internet checksum of the concatenation of `parts`, without
/// materialising it.
///
/// One's-complement addition is associative, so the folded sums of the
/// parts add up to the sum of the whole — provided every part except the
/// last has even length (an odd-length part would shift the 16-bit word
/// alignment of everything after it).
pub fn checksum_parts(parts: &[&[u8]]) -> u16 {
    debug_assert!(
        parts.iter().rev().skip(1).all(|p| p.len() % 2 == 0),
        "only the last part may have odd length"
    );
    let mut sum: u32 = 0;
    for part in parts {
        sum += u32::from(ones_complement_sum(part));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Verifies data whose checksum has been *included* in the sum: the total
/// must come to `0xFFFF` (all-ones).
///
/// The checksum field must sit on a 16-bit boundary of `data` (as it does
/// in the UDP header); otherwise the word alignment differs from the one
/// the checksum was computed with.
pub fn verify(data_including_checksum: &[u8]) -> bool {
    ones_complement_sum(data_including_checksum) == 0xFFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_rfc1071_example() {
        // RFC 1071 example: bytes 00 01 f2 03 f4 f5 f6 f7 sum to ddf2
        // (before complement).
        let data = [0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7];
        assert_eq!(ones_complement_sum(&data), 0xDDF2);
        assert_eq!(checksum(&data), !0xDDF2);
    }

    #[test]
    fn empty_and_odd_lengths() {
        assert_eq!(checksum(&[]), 0xFFFF);
        // Odd byte padded with zero on the right.
        assert_eq!(
            ones_complement_sum(&[0xAB]),
            ones_complement_sum(&[0xAB, 0x00])
        );
    }

    #[test]
    fn verify_roundtrip() {
        let mut data = b"checksummed payload!".to_vec(); // even length
        let ck = checksum(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn word_swap_is_undetectable() {
        // The paper's §4.3.4 experiment.
        let original = b"Have a lot of fun!";
        let mut swapped = original.to_vec();
        swapped.swap(0, 2);
        swapped.swap(1, 3);
        assert_eq!(&swapped[..4], b"veHa");
        assert_eq!(checksum(original), checksum(&swapped));
    }

    #[test]
    fn single_bit_flips_are_detected() {
        let data = b"some datagram contents here";
        let ck = checksum(data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.to_vec();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(checksum(&corrupted), ck, "missed {byte}:{bit}");
            }
        }
    }

    #[test]
    fn aligned_word_swaps_anywhere_are_undetectable() {
        let data = b"0123456789abcdef";
        let ck = checksum(data);
        for i in (0..data.len() - 2).step_by(2) {
            let mut swapped = data.to_vec();
            swapped.swap(i, i + 2);
            swapped.swap(i + 1, i + 3);
            assert_eq!(checksum(&swapped), ck, "swap at {i}");
        }
    }

    #[test]
    fn carry_folding() {
        // Many 0xFFFF words force carries to wrap correctly.
        let data = vec![0xFF; 64];
        let s = ones_complement_sum(&data);
        assert_eq!(s, 0xFFFF);
    }
}
