//! The host model: OS overheads, UDP sockets, traffic workloads.
//!
//! The paper's test bed is a 200 MHz Pentium Pro and two 170 MHz
//! UltraSPARCs: per-packet times in Table 2 run ~235 µs for small UDP
//! ping-pong, dominated by host software, with sub-µs run-to-run wobble
//! attributed to "the granularity caused by the computer's interrupt
//! handler". A [`Host`] therefore charges a configurable overhead (plus
//! deterministic jitter and a per-run calibration offset) on each send and
//! receive, wraps a [`HostInterface`], and runs the workloads the campaign
//! needs: UDP echo, ping-pong latency measurement, flood ping and
//! fixed-interval message senders.

use std::any::Any;
use std::collections::BTreeMap;

use netfi_myrinet::addr::EthAddr;
use netfi_myrinet::egress::{split_timer_kind, timer_class, timer_kind};
use netfi_myrinet::event::{Attach, Ev, PortPeer};
use netfi_myrinet::interface::{Delivery, HostInterface, InterfaceConfig};
use netfi_sim::metrics::Summary;
use netfi_obs::{FlightRecorder, Recorder, Sink, Stamped};
use netfi_sim::{Component, Context, DetRng, SharedBytes, SimDuration, SimTime};

use crate::udp::{payload_avoiding, payload_avoiding_into, UdpDatagram, UdpError};

/// The well-known echo port every host answers on.
pub const ECHO_PORT: u16 = 7;
/// The discard/sink port message senders target.
pub const SINK_PORT: u16 = 9999;

/// Host timing parameters.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// The NIC configuration.
    pub iface: InterfaceConfig,
    /// Software cost of a send (system call, driver, DMA setup).
    pub send_overhead: SimDuration,
    /// Software cost of a receive (interrupt, copy, wakeup).
    pub recv_overhead: SimDuration,
    /// Uniform per-operation jitter added on top of each overhead.
    pub overhead_jitter: SimDuration,
    /// Upper bound of the per-run calibration offset (interrupt-handler
    /// granularity), drawn once per host instance.
    pub calibration_max: SimDuration,
    /// Seed for this host's jitter stream.
    pub seed: u64,
}

impl HostConfig {
    /// Paper-era host timing: ~117.5 µs per send/receive, so a small-UDP
    /// ping-pong costs ~235 µs per packet as in Table 2.
    pub fn paper_era(iface: InterfaceConfig, seed: u64) -> HostConfig {
        HostConfig {
            iface,
            send_overhead: SimDuration::from_ns(117_300),
            recv_overhead: SimDuration::from_ns(117_300),
            overhead_jitter: SimDuration::from_ns(400),
            calibration_max: SimDuration::from_ns(700),
            seed,
        }
    }

    /// Fast host timing for protocol-focused tests (negligible overheads).
    pub fn fast(iface: InterfaceConfig, seed: u64) -> HostConfig {
        HostConfig {
            iface,
            send_overhead: SimDuration::from_ns(500),
            recv_overhead: SimDuration::from_ns(500),
            overhead_jitter: SimDuration::ZERO,
            calibration_max: SimDuration::ZERO,
            seed,
        }
    }
}

/// A traffic workload attached to a host.
#[derive(Debug, Clone)]
pub enum Workload {
    /// Measure round-trip latency: send `count` datagrams to the peer's
    /// echo port, each after the previous reply (Table 2 methodology:
    /// "each side waiting for the other's packet before sending a
    /// packet").
    PingPong {
        /// Echo peer.
        peer: EthAddr,
        /// Datagrams to exchange.
        count: u64,
        /// Payload length ("small UDP packets").
        payload_len: usize,
        /// Give up on a reply after this long and send the next one.
        timeout: SimDuration,
    },
    /// Flood ping (`ping -f` in the paper): like ping-pong but unbounded
    /// and with a short loss timeout.
    Flood {
        /// Echo peer.
        peer: EthAddr,
        /// Payload length.
        payload_len: usize,
        /// Loss timeout before the next datagram is sent anyway.
        timeout: SimDuration,
    },
    /// Fixed-interval message sender (the campaign's "message-sending
    /// program"), targeting the sink port.
    Sender {
        /// Destination node.
        dest: EthAddr,
        /// Interval between messages.
        interval: SimDuration,
        /// Payload length.
        payload_len: usize,
        /// Byte values that must not appear in the payload (§4.3.1
        /// methodology).
        forbidden: Vec<u8>,
        /// Messages sent back-to-back per tick (bursts create the
        /// switch-buffer pressure that exercises STOP/GO flow control).
        burst: usize,
    },
}

/// UDP-layer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UdpStats {
    /// Datagrams passed to the NIC.
    pub tx: u64,
    /// Datagrams delivered to applications.
    pub rx_ok: u64,
    /// Datagrams dropped on checksum failure.
    pub rx_checksum_drops: u64,
    /// Datagrams dropped as malformed.
    pub rx_malformed: u64,
}

/// Ping-pong / flood measurement results.
#[derive(Debug, Clone, Default)]
pub struct PingPongReport {
    /// Round-trip time per packet, nanoseconds.
    pub rtt: Summary,
    /// Replies that timed out.
    pub losses: u64,
    /// Exchanges completed.
    pub completed: u64,
    /// Whether the configured count was reached.
    pub done: bool,
}

/// Commands a harness can schedule at a host.
#[derive(Debug, Clone)]
pub enum HostCmd {
    /// Start the NIC (mapping) and all workloads.
    Start,
    /// Send one UDP datagram.
    SendUdp {
        /// Destination node.
        dest: EthAddr,
        /// The datagram.
        datagram: UdpDatagram,
    },
}

// Deferred OS work (modelling host software latency) travels as unboxed
// events: sends as [`Ev::Send`] (the UDP port pair packed into the tag),
// deliveries as [`Ev::Deliver`], and the purely scalar ones (pong
// timeout, sender tick, start retry) as plain [`Ev::Timer`] events in
// the application timer-class range — nothing on the per-packet path
// touches the allocator for the event itself.

/// Packs a UDP port pair into an [`Ev::Send`] application tag.
fn send_tag(src_port: u16, dst_port: u16) -> u32 {
    (u32::from(src_port) << 16) | u32::from(dst_port)
}

/// Ping-pong: give up waiting for the reply (`gen` carries the sequence
/// number, the port field carries the workload index).
const PONG_TIMEOUT_CLASS: u32 = timer_class::APP_BASE;
/// Sender tick (port field = workload index).
const SENDER_TICK_CLASS: u32 = timer_class::APP_BASE + 1;
/// Retry starting a workload that had no route yet (port field =
/// workload index).
const START_RETRY_CLASS: u32 = timer_class::APP_BASE + 2;

#[derive(Debug, Clone, Default)]
struct PingState {
    next_seq: u64,
    outstanding: Option<(u64, SimTime)>,
    report: PingPongReport,
}

/// A simulated host: NIC + OS + workloads.
#[derive(Clone)]
pub struct Host {
    nic: HostInterface,
    config: HostConfig,
    rng: DetRng,
    calibration: SimDuration,
    workloads: Vec<Workload>,
    ping: Vec<PingState>,
    sender_sent: u64,
    udp_stats: UdpStats,
    rx_by_port: BTreeMap<u16, u64>,
    recent: FlightRecorder<(EthAddr, UdpDatagram)>,
    /// `false` once [`power_off`](Host::power_off) has run: the host is a
    /// dead node and ignores every event (fault-grid node deactivation).
    powered: bool,
    /// Observability recorder (scope `"host"`), disarmed by default.
    obs: Recorder,
}

impl std::fmt::Debug for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Host")
            .field("eth", &self.nic.eth_addr())
            .field("workloads", &self.workloads.len())
            .finish_non_exhaustive()
    }
}

impl Host {
    /// Creates a host.
    pub fn new(config: HostConfig) -> Host {
        let mut rng = DetRng::new(config.seed);
        let calibration = if config.calibration_max == SimDuration::ZERO {
            SimDuration::ZERO
        } else {
            SimDuration::from_ps(rng.gen_range(0..config.calibration_max.as_ps()))
        };
        Host {
            nic: HostInterface::new(config.iface.clone()),
            rng,
            calibration,
            workloads: Vec::new(),
            ping: Vec::new(),
            sender_sent: 0,
            udp_stats: UdpStats::default(),
            rx_by_port: BTreeMap::new(),
            recent: FlightRecorder::new(64),
            powered: true,
            obs: Recorder::disarmed(),
            config,
        }
    }

    /// Powers the host off: from now on it ignores every event — no
    /// receives, no timers, no sends. Frames addressed to it serialize
    /// onto its link and vanish, exactly like a crashed node. The
    /// fault grid calls this on a forked engine to model node failure.
    pub fn power_off(&mut self) {
        self.powered = false;
    }

    /// Whether the host is powered (on unless [`power_off`](Host::power_off)
    /// was called).
    pub fn powered(&self) -> bool {
        self.powered
    }

    /// The host's observability recorder.
    pub fn obs(&self) -> &Recorder {
        &self.obs
    }

    /// Mutable access to the recorder (arm it before an observed run).
    pub fn obs_mut(&mut self) -> &mut Recorder {
        &mut self.obs
    }

    /// Convenience: a paper-era host from interface parameters.
    pub fn paper_era(iface: InterfaceConfig, seed: u64) -> Host {
        Host::new(HostConfig::paper_era(iface, seed))
    }

    /// Attaches a workload (call before the simulation starts).
    pub fn add_workload(&mut self, workload: Workload) {
        // The workload index rides in the timer port field (and the
        // ping-pong source port range spans 64 ports anyway).
        assert!(self.workloads.len() < 64, "too many workloads");
        self.workloads.push(workload);
        self.ping.push(PingState::default());
    }

    /// The NIC (for fault hooks and inspection).
    pub fn nic(&self) -> &HostInterface {
        &self.nic
    }

    /// Mutable NIC access (fault hooks: `set_eth_addr`, static routes).
    pub fn nic_mut(&mut self) -> &mut HostInterface {
        &mut self.nic
    }

    /// UDP counters.
    pub fn udp_stats(&self) -> UdpStats {
        self.udp_stats
    }

    /// Messages sent by Sender workloads.
    pub fn sender_sent(&self) -> u64 {
        self.sender_sent
    }

    /// Datagrams received per destination port.
    pub fn rx_count(&self, port: u16) -> u64 {
        self.rx_by_port.get(&port).copied().unwrap_or(0)
    }

    /// The most recent deliveries (bounded).
    pub fn recent_datagrams(&self) -> impl Iterator<Item = &(EthAddr, UdpDatagram)> {
        self.recent.iter().map(|r| &r.value)
    }

    /// The most recent deliveries with their arrival times (bounded) —
    /// the failure-detection layer reads inter-arrival gaps from here.
    pub fn recent_arrivals(&self) -> impl Iterator<Item = &Stamped<(EthAddr, UdpDatagram)>> {
        self.recent.iter()
    }

    /// The report of the `i`-th workload (ping-pong / flood).
    pub fn ping_report(&self, i: usize) -> &PingPongReport {
        &self.ping[i].report
    }

    fn op_delay(&mut self, base: SimDuration) -> SimDuration {
        let jitter = if self.config.overhead_jitter == SimDuration::ZERO {
            SimDuration::ZERO
        } else {
            SimDuration::from_ps(
                self.rng
                    .gen_range(0..self.config.overhead_jitter.as_ps()),
            )
        };
        base + jitter + self.calibration
    }

    fn send_udp(&mut self, ctx: &mut Context<'_, Ev>, dest: EthAddr, datagram: UdpDatagram) {
        let delay = self.op_delay(self.config.send_overhead);
        ctx.send_self(
            delay,
            Ev::Send {
                dest,
                tag: send_tag(datagram.src_port, datagram.dst_port),
                payload: datagram.payload,
            },
        );
    }

    fn start_workload(&mut self, ctx: &mut Context<'_, Ev>, i: usize) {
        match self.workloads[i].clone() {
            Workload::PingPong { .. } | Workload::Flood { .. } => {
                self.ping_send_next(ctx, i);
            }
            Workload::Sender { interval, .. } => {
                ctx.send_self(
                    interval,
                    Ev::Timer {
                        kind: timer_kind(SENDER_TICK_CLASS, i as u8),
                        gen: 0,
                    },
                );
            }
        }
    }

    fn ping_send_next(&mut self, ctx: &mut Context<'_, Ev>, i: usize) {
        let (peer, payload_len, timeout, limit) = match &self.workloads[i] {
            Workload::PingPong {
                peer,
                payload_len,
                timeout,
                count,
            } => (*peer, *payload_len, *timeout, Some(*count)),
            Workload::Flood {
                peer,
                payload_len,
                timeout,
            } => (*peer, *payload_len, *timeout, None),
            Workload::Sender { .. } => return,
        };
        if let Some(count) = limit {
            if self.ping[i].report.completed + self.ping[i].report.losses >= count {
                self.ping[i].report.done = true;
                return;
            }
        }
        // Routes may not exist until the first mapping round completes.
        if self.nic.routing_table().get(&peer).is_none() {
            ctx.send_self(
                SimDuration::from_ms(100),
                Ev::Timer {
                    kind: timer_kind(START_RETRY_CLASS, i as u8),
                    gen: 0,
                },
            );
            return;
        }
        let seq = self.ping[i].next_seq;
        self.ping[i].next_seq += 1;
        let filler_len = payload_len.saturating_sub(8);
        let mut payload = Vec::with_capacity(8 + filler_len);
        payload.extend_from_slice(&seq.to_be_bytes());
        payload_avoiding_into(&mut payload, filler_len, seq, &[]);
        let datagram = UdpDatagram::new(30_000 + i as u16, ECHO_PORT, payload);
        self.ping[i].outstanding = Some((seq, ctx.now()));
        self.udp_stats.tx += 1;
        self.send_udp(ctx, peer, datagram);
        ctx.send_self(
            timeout,
            Ev::Timer {
                kind: timer_kind(PONG_TIMEOUT_CLASS, i as u8),
                gen: seq,
            },
        );
    }

    fn on_app_deliver(&mut self, ctx: &mut Context<'_, Ev>, src: EthAddr, wire: SharedBytes) {
        let datagram = match UdpDatagram::decode_shared(&wire) {
            Ok(d) => d,
            Err(UdpError::BadChecksum) => {
                self.udp_stats.rx_checksum_drops += 1;
                self.obs.instant(ctx.now(), "host", "checksum_drop", wire.len() as u64);
                return;
            }
            Err(_) => {
                self.udp_stats.rx_malformed += 1;
                return;
            }
        };
        self.udp_stats.rx_ok += 1;
        *self.rx_by_port.entry(datagram.dst_port).or_insert(0) += 1;
        self.recent.push(ctx.now(), (src, datagram.clone()));
        match datagram.dst_port {
            ECHO_PORT => {
                // Echo service: reply with the same payload.
                let reply =
                    UdpDatagram::new(ECHO_PORT, datagram.src_port, datagram.payload.clone());
                self.udp_stats.tx += 1;
                self.send_udp(ctx, src, reply);
            }
            port if (30_000..30_064).contains(&port) => {
                // A ping-pong / flood reply.
                let i = (port - 30_000) as usize;
                if i < self.ping.len() {
                    let Ok(seq_bytes) = <[u8; 8]>::try_from(datagram.payload.get(..8).unwrap_or_default()) else {
                        return;
                    };
                    let seq = u64::from_be_bytes(seq_bytes);
                    if let Some((expect, sent_at)) = self.ping[i].outstanding {
                        if expect == seq {
                            self.ping[i].outstanding = None;
                            let rtt = ctx.now() - sent_at;
                            self.ping[i].report.rtt.record(rtt.as_ns_f64());
                            self.obs.sample(ctx.now(), "host", "rtt_ns", rtt.as_ps() / 1_000);
                            self.ping[i].report.completed += 1;
                            self.ping_send_next(ctx, i);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_pong_timeout(&mut self, ctx: &mut Context<'_, Ev>, i: usize, seq: u64) {
        if let Some((expect, _)) = self.ping[i].outstanding {
            if expect == seq {
                self.ping[i].outstanding = None;
                self.ping[i].report.losses += 1;
                self.ping_send_next(ctx, i);
            }
        }
    }

    fn on_sender_tick(&mut self, ctx: &mut Context<'_, Ev>, i: usize) {
        let Workload::Sender {
            dest,
            interval,
            payload_len,
            ref forbidden,
            burst,
        } = self.workloads[i]
        else {
            return;
        };
        let forbidden = forbidden.clone();
        for _ in 0..burst.max(1) {
            let payload = payload_avoiding(payload_len, self.sender_sent, &forbidden);
            let datagram = UdpDatagram::new(40_000, SINK_PORT, payload);
            self.sender_sent += 1;
            self.udp_stats.tx += 1;
            self.send_udp(ctx, dest, datagram);
        }
        ctx.send_self(
            interval,
            Ev::Timer {
                kind: timer_kind(SENDER_TICK_CLASS, i as u8),
                gen: 0,
            },
        );
    }
}

impl Attach for Host {
    fn attach_port(&mut self, port: u8, peer: PortPeer) {
        assert_eq!(port, 0, "hosts have a single NIC port");
        self.nic.attach(peer);
    }
}

impl Component<Ev> for Host {
    fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
        if !self.powered {
            return;
        }
        match ev {
            Ev::Rx { frame, .. } => {
                if let Some(Delivery { src, data, .. }) = self.nic.handle_rx(ctx, frame) {
                    let delay = self.op_delay(self.config.recv_overhead);
                    ctx.send_self(delay, Ev::Deliver { src, data });
                }
            }
            Ev::Timer { kind, gen } => match split_timer_kind(kind) {
                (PONG_TIMEOUT_CLASS, i) => self.on_pong_timeout(ctx, i as usize, gen),
                (SENDER_TICK_CLASS, i) => self.on_sender_tick(ctx, i as usize),
                (START_RETRY_CLASS, i) => self.ping_send_next(ctx, i as usize),
                _ => {
                    // Everything below APP_BASE belongs to the NIC.
                    if let Some(Delivery { src, data, .. }) = self.nic.handle_timer(ctx, kind, gen)
                    {
                        let delay = self.op_delay(self.config.recv_overhead);
                        ctx.send_self(delay, Ev::Deliver { src, data });
                    }
                }
            },
            Ev::Deliver { src, data } => self.on_app_deliver(ctx, src, data),
            Ev::Send { dest, tag, payload } => {
                // Scatter-gather transmit: the checksummed UDP header from
                // the stack, the payload from its shared buffer; the NIC
                // assembles the wire image in its single allocation. A
                // failed send (no route) is a lost message; counters at
                // the NIC record it.
                let datagram = UdpDatagram {
                    src_port: (tag >> 16) as u16,
                    dst_port: tag as u16,
                    payload,
                };
                let header = datagram.header_bytes();
                let _ = self
                    .nic
                    .send_data_parts(ctx, dest, &[&header, &datagram.payload]);
            }
            Ev::App(any) => {
                if let Ok(cmd) = any.downcast::<HostCmd>() {
                    match *cmd {
                        HostCmd::Start => {
                            self.nic.start(ctx);
                            for i in 0..self.workloads.len() {
                                self.start_workload(ctx, i);
                            }
                        }
                        HostCmd::SendUdp { dest, datagram } => {
                            self.udp_stats.tx += 1;
                            self.send_udp(ctx, dest, datagram);
                        }
                    }
                }
            }
            Ev::Serial(_) => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn fork(&self) -> Box<dyn Component<Ev>> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfi_myrinet::addr::NodeAddress;
    use netfi_myrinet::event::connect;
    use netfi_myrinet::mapper::Topology;
    use netfi_myrinet::switch::{Switch, SwitchConfig};
    use netfi_phy::Link;
    use netfi_sim::{ComponentId, Engine};

    fn build(
        n: usize,
        mk: impl Fn(usize, InterfaceConfig) -> Host,
    ) -> (Engine<Ev>, ComponentId, Vec<ComponentId>) {
        let mut engine: Engine<Ev> = Engine::new();
        let topo = Topology::single_switch(8);
        let sw = engine.add_component(Box::new(Switch::new("sw0", 8, SwitchConfig::default())));
        let link = Link::myrinet_640(1.0);
        let mut hosts = Vec::new();
        for i in 0..n {
            let iface = InterfaceConfig::new(
                NodeAddress(100 + i as u64),
                EthAddr::myricom(i as u32 + 1),
                (0, i as u8),
                topo.clone(),
            );
            let h = engine.add_component(Box::new(mk(i, iface)));
            connect::<Host, Switch, _>(&mut engine, (h, 0), (sw, i as u8), &link);
            engine.schedule(SimTime::ZERO, h, Ev::App(Box::new(HostCmd::Start)));
            hosts.push(h);
        }
        (engine, sw, hosts)
    }

    #[test]
    fn udp_echo_roundtrip() {
        let (mut engine, _, hosts) =
            build(2, |i, iface| Host::new(HostConfig::fast(iface, i as u64)));
        engine.run_until(SimTime::from_secs(2));
        engine.schedule(
            engine.now(),
            hosts[0],
            Ev::App(Box::new(HostCmd::SendUdp {
                dest: EthAddr::myricom(2),
                datagram: UdpDatagram::new(31_000, ECHO_PORT, b"ping!".to_vec()),
            })),
        );
        engine.run_until(engine.now() + SimDuration::from_ms(10));
        let h0 = engine.component_as::<Host>(hosts[0]).unwrap();
        // The echo came back to port 31_000.
        assert_eq!(h0.rx_count(31_000), 1);
        let h1 = engine.component_as::<Host>(hosts[1]).unwrap();
        assert_eq!(h1.rx_count(ECHO_PORT), 1);
        assert_eq!(h1.udp_stats().rx_checksum_drops, 0);
    }

    #[test]
    fn pingpong_measures_rtt() {
        let (mut engine, _, hosts) = build(2, |i, iface| {
            let mut h = Host::new(HostConfig::fast(iface, i as u64));
            if i == 0 {
                h.add_workload(Workload::PingPong {
                    peer: EthAddr::myricom(2),
                    count: 50,
                    payload_len: 64,
                    timeout: SimDuration::from_ms(50),
                });
            }
            h
        });
        engine.run_until(SimTime::from_secs(5));
        let h0 = engine.component_as::<Host>(hosts[0]).unwrap();
        let report = h0.ping_report(0);
        assert!(report.done);
        assert_eq!(report.completed, 50);
        assert_eq!(report.losses, 0);
        // RTT must include both hosts' overheads, four times 500 ns plus
        // wire time: > 2 us.
        assert!(report.rtt.mean() > 2_000.0, "mean rtt {}", report.rtt.mean());
    }

    #[test]
    fn paper_era_pingpong_is_about_235_us() {
        let (mut engine, _, hosts) = build(2, |i, iface| {
            let mut h = Host::paper_era(iface, 7 + i as u64);
            if i == 0 {
                h.add_workload(Workload::PingPong {
                    peer: EthAddr::myricom(2),
                    count: 200,
                    payload_len: 64,
                    timeout: SimDuration::from_ms(50),
                });
            }
            h
        });
        engine.run_until(SimTime::from_secs(10));
        let h0 = engine.component_as::<Host>(hosts[0]).unwrap();
        let report = h0.ping_report(0);
        assert!(report.done, "completed={}", report.completed);
        // Table 2 reports "average time per packet", with two packets
        // per round trip: ~235 µs each.
        let per_packet_us = report.rtt.mean() / 1000.0 / 2.0;
        assert!(
            (230.0..245.0).contains(&per_packet_us),
            "per packet {per_packet_us} µs"
        );
    }

    #[test]
    fn sender_workload_delivers_to_sink() {
        let (mut engine, _, hosts) = build(2, |i, iface| {
            let mut h = Host::new(HostConfig::fast(iface, i as u64));
            if i == 0 {
                h.add_workload(Workload::Sender {
                    dest: EthAddr::myricom(2),
                    interval: SimDuration::from_ms(10),
                    payload_len: 128,
                    forbidden: vec![0x0F, 0x0C, 0x03],
                    burst: 1,
                });
            }
            h
        });
        engine.run_until(SimTime::from_secs(3));
        let h0 = engine.component_as::<Host>(hosts[0]).unwrap();
        let sent = h0.sender_sent();
        assert!(sent > 100, "sent={sent}");
        let h1 = engine.component_as::<Host>(hosts[1]).unwrap();
        let received = h1.rx_count(SINK_PORT);
        // Messages before the first mapping round are lost to NoRoute;
        // everything after flows.
        assert!(received > 0);
        let in_network = sent - h0.nic().stats().tx_no_route;
        // The last message may still be in flight at the cutoff.
        assert!(received <= in_network && received + 2 >= in_network,
                "received={received} in_network={in_network}");
    }

    #[test]
    fn flood_keeps_running() {
        let (mut engine, _, hosts) = build(2, |i, iface| {
            let mut h = Host::new(HostConfig::fast(iface, i as u64));
            if i == 0 {
                h.add_workload(Workload::Flood {
                    peer: EthAddr::myricom(2),
                    payload_len: 56,
                    timeout: SimDuration::from_ms(10),
                });
            }
            h
        });
        engine.run_until(SimTime::from_secs(3));
        let h0 = engine.component_as::<Host>(hosts[0]).unwrap();
        let report = h0.ping_report(0);
        assert!(!report.done);
        assert!(report.completed > 1000, "completed={}", report.completed);
        assert_eq!(report.losses, 0);
    }

    #[test]
    fn flood_counts_losses_when_replies_vanish() {
        // The echo peer's NIC register is corrupted mid-run: replies stop
        // (requests are dropped as misaddressed), and the flood limps on
        // its loss timeout, counting every miss.
        let (mut engine, _, hosts) = build(2, |i, iface| {
            let mut h = Host::new(HostConfig::fast(iface, i as u64));
            if i == 0 {
                h.add_workload(Workload::Flood {
                    peer: EthAddr::myricom(2),
                    payload_len: 56,
                    timeout: SimDuration::from_ms(5),
                });
            }
            h
        });
        engine.run_until(SimTime::from_secs(2));
        let before = engine
            .component_as::<Host>(hosts[0])
            .unwrap()
            .ping_report(0)
            .losses;
        assert_eq!(before, 0);
        engine
            .component_as_mut::<Host>(hosts[1])
            .unwrap()
            .nic_mut()
            .set_eth_addr(EthAddr::myricom(0x77));
        engine.run_until(SimTime::from_secs(3));
        let h0 = engine.component_as::<Host>(hosts[0]).unwrap();
        let report = h0.ping_report(0);
        // Losses accumulate on the 5 ms timeout until the next mapping
        // round removes the peer's old address from the routing table;
        // after that the flood parks in no-route retries instead.
        assert!(report.losses >= 3, "losses = {}", report.losses);
        assert_eq!(report.completed, report.rtt.count());
        // After the map updates, the peer's old address is unroutable and
        // the flood parks in silent retries: progress stops entirely.
        let completed_at_3s = report.completed;
        let losses_at_3s = report.losses;
        engine.run_until(SimTime::from_secs(4));
        let h0 = engine.component_as::<Host>(hosts[0]).unwrap();
        assert_eq!(h0.ping_report(0).completed, completed_at_3s);
        assert_eq!(h0.ping_report(0).losses, losses_at_3s);
    }

    #[test]
    fn corrupted_datagram_dropped_by_checksum() {
        let (mut engine, _, hosts) =
            build(2, |i, iface| Host::new(HostConfig::fast(iface, i as u64)));
        engine.run_until(SimTime::from_secs(2));
        // Bypass the encoder: deliver a datagram with a flipped payload
        // bit straight to the UDP layer.
        let mut wire = UdpDatagram::new(1, SINK_PORT, b"intact".to_vec()).encode();
        wire[9] ^= 0x10;
        // inject through the app-deliver path
        engine.schedule(
            engine.now(),
            hosts[1],
            Ev::Deliver {
                src: EthAddr::myricom(1),
                data: wire.into(),
            },
        );
        engine.run_until(engine.now() + SimDuration::from_ms(1));
        let h1 = engine.component_as::<Host>(hosts[1]).unwrap();
        assert_eq!(h1.udp_stats().rx_checksum_drops, 1);
        assert_eq!(h1.rx_count(SINK_PORT), 0);
    }
}
