//! Network assembly helpers, including the paper's Figure 10 test bed.
//!
//! "Fault injections were performed on a three-node network consisting of
//! one PC … two SUN UltraSPARC workstations, and an 8-port Myrinet
//! switch. Each node had a 1.2+1.2 Gbps host interface card installed."
//! The fault injector sits on the link between one host and the switch.

use netfi_core::InjectorDevice;
use netfi_myrinet::addr::{EthAddr, NodeAddress};
use netfi_myrinet::event::{connect, ConnectError, Ev};
use netfi_myrinet::interface::InterfaceConfig;
use netfi_myrinet::mapper::Topology;
use netfi_myrinet::switch::{Switch, SwitchConfig};
use netfi_phy::Link;
use netfi_sim::{ComponentId, Engine, NullProbe, Probe, SimTime};

use crate::host::{Host, HostCmd, HostConfig};

/// Handles to a built test-bed network.
///
/// Generic over the engine's observation [`Probe`]; the default
/// ([`NullProbe`]) is the unobserved test bed every existing harness uses.
#[derive(Debug)]
pub struct Testbed<P: Probe = NullProbe> {
    /// The event engine, ready to run.
    pub engine: Engine<Ev, P>,
    /// Host component ids, in address order (index 0 = lowest).
    pub hosts: Vec<ComponentId>,
    /// The switch.
    pub switch: ComponentId,
    /// The fault injector, if one was spliced in.
    pub injector: Option<ComponentId>,
    /// Host physical addresses, aligned with `hosts`.
    pub eth: Vec<EthAddr>,
}

/// Options for [`build_testbed`].
#[derive(Debug, Clone)]
pub struct TestbedOptions {
    /// Number of hosts (the paper uses 3).
    pub hosts: usize,
    /// Link parameters (the paper's SAN runs 1.28 Gb/s; campaigns use the
    /// 640 Mb/s configuration of footnote 5).
    pub link: Link,
    /// Splice the injector between host `intercepted` and the switch.
    pub intercept_host: Option<usize>,
    /// Host timing (None = fast hosts).
    pub paper_era_hosts: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Customize each host after construction (workloads etc.).
    pub switch_config: SwitchConfig,
}

impl Default for TestbedOptions {
    fn default() -> Self {
        TestbedOptions {
            hosts: 3,
            link: Link::myrinet_640(1.0),
            intercept_host: None,
            paper_era_hosts: false,
            seed: 0x6e65_7466,
            switch_config: SwitchConfig::default(),
        }
    }
}

/// Builds the Figure 10 test bed: `hosts` hosts on one 8-port switch,
/// optionally with the fault injector spliced into one host's link.
///
/// `customize` is called once per host (with its index) so callers can add
/// workloads before the components are boxed. All hosts receive a
/// [`HostCmd::Start`] at time zero.
///
/// # Errors
///
/// Returns [`ConnectError`] if wiring fails — impossible for components
/// this function itself creates, but surfaced rather than panicking.
///
/// # Panics
///
/// Panics if more than 8 hosts are requested.
pub fn build_testbed(
    options: TestbedOptions,
    customize: impl FnMut(usize, &mut Host),
) -> Result<Testbed, ConnectError> {
    build_testbed_probed(options, NullProbe, customize)
}

/// [`build_testbed`], but with an observation [`Probe`] installed on the
/// engine. The probe sees every event dispatch; observation never feeds
/// back into the simulation, so a probed test bed follows the exact same
/// trajectory as an unprobed one with the same options and seed.
///
/// # Errors
///
/// Returns [`ConnectError`] if wiring fails (see [`build_testbed`]).
///
/// # Panics
///
/// Panics if more than 8 hosts are requested.
pub fn build_testbed_probed<P: Probe>(
    options: TestbedOptions,
    probe: P,
    mut customize: impl FnMut(usize, &mut Host),
) -> Result<Testbed<P>, ConnectError> {
    assert!(options.hosts <= 8, "the test-bed switch has 8 ports");
    let mut engine: Engine<Ev, P> = Engine::with_probe(probe);
    let topo = Topology::single_switch(8);
    let switch = engine.add_component(Box::new(Switch::new(
        "sw0",
        8,
        options.switch_config.clone(),
    )));
    let mut hosts = Vec::new();
    let mut eth = Vec::new();
    let mut injector = None;

    for i in 0..options.hosts {
        let addr = NodeAddress(100 + i as u64);
        let mac = EthAddr::myricom(i as u32 + 1);
        let iface = InterfaceConfig::new(addr, mac, (0, i as u8), topo.clone());
        let mut host = if options.paper_era_hosts {
            Host::paper_era(iface, options.seed.wrapping_add(i as u64))
        } else {
            Host::new(HostConfig::fast(iface, options.seed.wrapping_add(i as u64)))
        };
        customize(i, &mut host);
        let h = engine.add_component(Box::new(host));

        if options.intercept_host == Some(i) {
            let dev = engine.add_component(Box::new(InjectorDevice::with_name(format!(
                "fi-host{i}"
            ))));
            connect::<Host, InjectorDevice, _>(&mut engine, (h, 0), (dev, 0), &options.link)?;
            connect::<InjectorDevice, Switch, _>(&mut engine, (dev, 1), (switch, i as u8), &options.link)?;
            injector = Some(dev);
        } else {
            connect::<Host, Switch, _>(&mut engine, (h, 0), (switch, i as u8), &options.link)?;
        }
        engine.schedule(SimTime::ZERO, h, Ev::App(Box::new(HostCmd::Start)));
        hosts.push(h);
        eth.push(mac);
    }

    Ok(Testbed {
        engine,
        hosts,
        switch,
        injector,
        eth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Workload;
    use crate::SINK_PORT;
    use netfi_core::Direction;
    use netfi_sim::SimDuration;

    #[test]
    fn testbed_maps_and_carries_traffic() {
        let mut tb = build_testbed(TestbedOptions::default(), |i, host| {
            if i == 0 {
                host.add_workload(Workload::Sender {
                    dest: EthAddr::myricom(3),
                    interval: SimDuration::from_ms(5),
                    payload_len: 64,
                    forbidden: vec![],
                    burst: 1,
                });
            }
        })
        .unwrap();
        tb.engine.run_until(SimTime::from_secs(3));
        let h2 = tb.engine.component_as::<Host>(tb.hosts[2]).unwrap();
        assert!(h2.rx_count(SINK_PORT) > 100);
        // Highest-addressed host is mapper.
        assert!(h2.nic().is_mapper());
    }

    #[test]
    fn testbed_with_injector_is_transparent() {
        let options = TestbedOptions {
            intercept_host: Some(2),
            ..TestbedOptions::default()
        };
        let mut tb = build_testbed(options, |i, host| {
            if i == 0 {
                host.add_workload(Workload::Sender {
                    dest: EthAddr::myricom(3),
                    interval: SimDuration::from_ms(5),
                    payload_len: 64,
                    forbidden: vec![],
                    burst: 1,
                });
            }
        })
        .unwrap();
        tb.engine.run_until(SimTime::from_secs(3));
        let h2 = tb.engine.component_as::<Host>(tb.hosts[2]).unwrap();
        // Traffic and mapping both flow through the device: host 2 is
        // reachable AND became mapper through the injector link.
        assert!(h2.rx_count(SINK_PORT) > 100);
        assert!(h2.nic().is_mapper());
        // And the device observed both mapping and data packets.
        let dev = tb.injector.unwrap();
        let device = tb
            .engine
            .component_as::<netfi_core::InjectorDevice>(dev)
            .unwrap();
        let stats = device.channel_stats(Direction::AToB);
        assert!(stats.packets > 0);
        let stats_b = device.channel_stats(Direction::BToA);
        assert!(stats_b.mapping_packets > 0, "scout replies pass B->A");
    }

    #[test]
    #[should_panic(expected = "8 ports")]
    fn too_many_hosts_rejected() {
        let options = TestbedOptions {
            hosts: 9,
            ..TestbedOptions::default()
        };
        let _ = build_testbed(options, |_, _| {});
    }
}
