//! Randomized property tests for the host-side stack, driven by seeded
//! loops over [`DetRng`] (no external dependencies).

use netfi_netstack::checksum;
use netfi_netstack::udp::{payload_avoiding, UdpDatagram, UdpError};
use netfi_sim::DetRng;

const CASES: usize = 256;

fn random_bytes(rng: &mut DetRng, min_len: usize, max_len: usize) -> Vec<u8> {
    let len = min_len + rng.gen_index(max_len - min_len + 1);
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

/// UDP datagrams roundtrip for arbitrary ports and payloads.
#[test]
fn udp_roundtrip() {
    let mut rng = DetRng::new(0x0DD_0001);
    for _ in 0..CASES {
        let src = rng.next_u32() as u16;
        let dst = rng.next_u32() as u16;
        let payload = random_bytes(&mut rng, 0, 1024);
        let d = UdpDatagram::new(src, dst, payload);
        assert_eq!(UdpDatagram::decode(&d.encode()), Ok(d));
    }
}

/// Any single bit flip in an encoded datagram is detected (checksum or
/// length), except flips that only touch the checksum field itself —
/// which still fail verification.
#[test]
fn udp_single_flip_detected() {
    let mut rng = DetRng::new(0x0DD_0002);
    for _ in 0..CASES {
        let payload = random_bytes(&mut rng, 0, 256);
        let d = UdpDatagram::new(7, 9, payload);
        let mut wire = d.encode();
        let bit = rng.gen_index(wire.len() * 8);
        wire[bit / 8] ^= 1 << (bit % 8);
        assert!(UdpDatagram::decode(&wire).is_err());
    }
}

/// Swapping any two aligned 16-bit words of the payload is invisible to
/// the checksum — the §4.3.4 weakness, for arbitrary payloads and
/// positions.
#[test]
fn udp_word_swap_undetected() {
    let mut rng = DetRng::new(0x0DD_0003);
    for _ in 0..CASES {
        let mut payload = random_bytes(&mut rng, 8, 256);
        if payload.len() % 2 == 1 {
            payload.pop();
        }
        let words = payload.len() / 2;
        let (wi, wj) = (rng.gen_index(words) * 2, rng.gen_index(words) * 2);
        let d = UdpDatagram::new(1, 2, payload.clone());
        let mut wire = d.encode();
        let base = 8; // header length
        wire.swap(base + wi, base + wj);
        wire.swap(base + wi + 1, base + wj + 1);
        let decoded = UdpDatagram::decode(&wire);
        assert!(decoded.is_ok(), "aligned word swap must pass the checksum");
    }
}

/// The one's-complement sum is invariant under word permutation.
#[test]
fn checksum_word_permutation_invariant() {
    let mut rng = DetRng::new(0x0DD_0004);
    for _ in 0..CASES {
        let words: Vec<u16> = (0..1 + rng.gen_index(63))
            .map(|_| rng.next_u32() as u16)
            .collect();
        let seed = rng.next_u64();
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        let mut shuffled = words.clone();
        let mut shuffle_rng = DetRng::new(seed);
        shuffle_rng.shuffle(&mut shuffled);
        let shuffled_bytes: Vec<u8> = shuffled.iter().flat_map(|w| w.to_be_bytes()).collect();
        assert_eq!(
            checksum::checksum(&bytes),
            checksum::checksum(&shuffled_bytes)
        );
    }
}

/// Verification of data + appended checksum always succeeds for
/// even-length data.
#[test]
fn checksum_verify_roundtrip() {
    let mut rng = DetRng::new(0x0DD_0005);
    for _ in 0..CASES {
        let mut data = random_bytes(&mut rng, 0, 256);
        if data.len() % 2 == 1 {
            data.pop();
        }
        let ck = checksum::checksum(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        assert!(checksum::verify(&data));
    }
}

/// payload_avoiding honours its constraints for arbitrary forbidden sets
/// and lengths, and is deterministic per (len, seq).
#[test]
fn payload_avoiding_properties() {
    let mut rng = DetRng::new(0x0DD_0006);
    for _ in 0..CASES {
        let len = rng.gen_index(512);
        let seq = rng.next_u64();
        // Keep at least one printable byte allowed.
        let forbidden: Vec<u8> = random_bytes(&mut rng, 0, 8)
            .into_iter()
            .filter(|&b| b != b'a')
            .collect();
        let p = payload_avoiding(len, seq, &forbidden);
        assert_eq!(p.len(), len);
        for b in &p {
            assert!(!forbidden.contains(b));
            assert!((0x20..=0x7E).contains(b), "payloads stay printable");
        }
        assert_eq!(payload_avoiding(len, seq, &forbidden), p);
    }
}

/// Truncation is always detected as a length error.
#[test]
fn udp_truncation_detected() {
    let mut rng = DetRng::new(0x0DD_0007);
    for _ in 0..CASES {
        let payload = random_bytes(&mut rng, 1, 128);
        let d = UdpDatagram::new(3, 4, payload);
        let wire = d.encode();
        let cut = rng.gen_index(wire.len() - 1) + 1; // keep at least one byte off
        match UdpDatagram::decode(&wire[..wire.len() - cut]) {
            Err(UdpError::TooShort) | Err(UdpError::BadLength) => {}
            other => panic!("truncation slipped through: {other:?}"),
        }
    }
}
