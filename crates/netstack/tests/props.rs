//! Property-based tests for the host-side stack.

use proptest::prelude::*;

use netfi_netstack::checksum;
use netfi_netstack::udp::{payload_avoiding, UdpDatagram, UdpError};

proptest! {
    /// UDP datagrams roundtrip for arbitrary ports and payloads.
    #[test]
    fn udp_roundtrip(
        src in any::<u16>(),
        dst in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1024)
    ) {
        let d = UdpDatagram::new(src, dst, payload);
        prop_assert_eq!(UdpDatagram::decode(&d.encode()), Ok(d));
    }

    /// Any single bit flip in an encoded datagram is detected (checksum
    /// or length), except flips that only touch the checksum field itself
    /// — which still fail verification.
    #[test]
    fn udp_single_flip_detected(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        bit in any::<usize>()
    ) {
        let d = UdpDatagram::new(7, 9, payload);
        let mut wire = d.encode();
        let bit = bit % (wire.len() * 8);
        wire[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(UdpDatagram::decode(&wire).is_err());
    }

    /// Swapping any two aligned 16-bit words of the payload is invisible
    /// to the checksum — the §4.3.4 weakness, for arbitrary payloads and
    /// positions.
    #[test]
    fn udp_word_swap_undetected(
        payload in proptest::collection::vec(any::<u8>(), 8..256),
        i in any::<proptest::sample::Index>(),
        j in any::<proptest::sample::Index>()
    ) {
        let mut payload = payload;
        if payload.len() % 2 == 1 {
            payload.pop();
        }
        let words = payload.len() / 2;
        let (wi, wj) = (i.index(words) * 2, j.index(words) * 2);
        let d = UdpDatagram::new(1, 2, payload.clone());
        let mut wire = d.encode();
        let base = 8; // header length
        wire.swap(base + wi, base + wj);
        wire.swap(base + wi + 1, base + wj + 1);
        let decoded = UdpDatagram::decode(&wire);
        prop_assert!(decoded.is_ok(), "aligned word swap must pass the checksum");
    }

    /// The one's-complement sum is invariant under word permutation.
    #[test]
    fn checksum_word_permutation_invariant(
        words in proptest::collection::vec(any::<u16>(), 1..64),
        seed in any::<u64>()
    ) {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        let mut shuffled = words.clone();
        let mut rng = netfi_sim::DetRng::new(seed);
        rng.shuffle(&mut shuffled);
        let shuffled_bytes: Vec<u8> = shuffled.iter().flat_map(|w| w.to_be_bytes()).collect();
        prop_assert_eq!(checksum::checksum(&bytes), checksum::checksum(&shuffled_bytes));
    }

    /// Verification of data + appended checksum always succeeds for
    /// even-length data.
    #[test]
    fn checksum_verify_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut data = data;
        if data.len() % 2 == 1 {
            data.pop();
        }
        let ck = checksum::checksum(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        prop_assert!(checksum::verify(&data));
    }

    /// payload_avoiding honours its constraints for arbitrary forbidden
    /// sets and lengths, and is deterministic per (len, seq).
    #[test]
    fn payload_avoiding_properties(
        len in 0usize..512,
        seq in any::<u64>(),
        forbidden in proptest::collection::vec(any::<u8>(), 0..8)
    ) {
        // Keep at least one printable byte allowed.
        let forbidden: Vec<u8> =
            forbidden.into_iter().filter(|&b| b != b'a').collect();
        let p = payload_avoiding(len, seq, &forbidden);
        prop_assert_eq!(p.len(), len);
        for b in &p {
            prop_assert!(!forbidden.contains(b));
            prop_assert!((0x20..=0x7E).contains(b), "payloads stay printable");
        }
        prop_assert_eq!(payload_avoiding(len, seq, &forbidden), p);
    }

    /// Truncation is always detected as a length error.
    #[test]
    fn udp_truncation_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        cut in any::<proptest::sample::Index>()
    ) {
        let d = UdpDatagram::new(3, 4, payload);
        let wire = d.encode();
        let cut = cut.index(wire.len() - 1) + 1; // keep at least one byte off
        match UdpDatagram::decode(&wire[..wire.len() - cut]) {
            Err(UdpError::TooShort) | Err(UdpError::BadLength) => {}
            other => prop_assert!(false, "truncation slipped through: {other:?}"),
        }
    }
}
