//! Coverage statistics: Wilson score intervals and the rendered report.
//!
//! A sampled campaign estimates each outcome class's share of the fault
//! space from `k` hits in `n` draws. The naive ±z·√(p̂(1-p̂)/n) interval
//! collapses to zero width at k = 0 or k = n — exactly the cells a
//! coverage argument cares about (nothing hung in 2048 draws ≠ nothing
//! can hang). The Wilson score interval inverts the normal test instead
//! of linearising around p̂, stays inside [0, 1] by construction, and
//! keeps honest width at the extremes, so it is what the report prints.

use crate::classify::OutcomeClass;

/// z-score for the two-sided 95% interval the reports use.
pub const Z95: f64 = 1.96;

/// The Wilson score interval for `k` successes in `n` trials at
/// confidence `z` (e.g. [`Z95`]). Returns `(low, high)` clamped to
/// [0, 1]; an empty sample is total ignorance, `(0, 1)`.
pub fn wilson_interval(k: u64, n: u64, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let nf = n as f64;
    let p = k as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = z * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// One row of the coverage report: a class, its draw count, and the
/// Wilson 95% interval on its share of the sampled space.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageRow {
    /// The outcome class this row covers.
    pub class: OutcomeClass,
    /// Runs classified into this class.
    pub count: u64,
    /// Point estimate `count / n` (0 when the campaign is empty).
    pub share: f64,
    /// Wilson 95% lower bound on the class share.
    pub low: f64,
    /// Wilson 95% upper bound on the class share.
    pub high: f64,
}

/// The campaign's coverage report: every class of the taxonomy — always
/// all five, zero-draw classes included — with interval estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Campaign size the shares are estimated from.
    pub n: u64,
    /// One row per [`OutcomeClass::ALL`] entry, in that order.
    pub rows: Vec<CoverageRow>,
}

impl CoverageReport {
    /// Builds the report from a class histogram (indexed as
    /// [`OutcomeClass::index`]).
    pub fn from_histogram(histogram: [u64; 5]) -> CoverageReport {
        let n: u64 = histogram.iter().sum();
        let rows = OutcomeClass::ALL
            .into_iter()
            .map(|class| {
                let count = histogram[class.index()];
                let (low, high) = wilson_interval(count, n, Z95);
                CoverageRow {
                    class,
                    count,
                    share: if n == 0 { 0.0 } else { count as f64 / n as f64 },
                    low,
                    high,
                }
            })
            .collect();
        CoverageReport { n, rows }
    }

    /// The count for one class.
    pub fn count(&self, class: OutcomeClass) -> u64 {
        self.rows[class.index()].count
    }

    /// Deterministic fixed-width text rendering — every formatting
    /// decision is byte-stable, so this string participates in the
    /// campaign fingerprint the worker-invariance tests compare.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("coverage over {} sampled injections\n", self.n));
        out.push_str("class                 count   share   wilson95\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:<20} {:>6}  {:>6.4}  [{:.4}, {:.4}]\n",
                row.class.label(),
                row.count,
                row.share,
                row.low,
                row.high
            ));
        }
        out
    }
}

/// One cell of a per-dimension breakdown: a stable key naming the cell
/// (e.g. `dir_a`, `gap_to_idle`) and its outcome histogram, indexed by
/// [`OutcomeClass::index`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakdownRow {
    /// Stable snake_case cell key — reused verbatim as a JSON key in
    /// `BENCH_injections.json`, so it may never change spelling.
    pub key: String,
    /// Outcome counts for draws landing in this cell.
    pub histogram: [u64; 5],
}

/// A coverage breakdown along one drawn axis: the outcome histogram
/// split per cell (per direction, per control-swap row, ...). Cells are
/// fixed by the dimension, not by the draw — zero-draw cells render too,
/// same argument as the zero-draw classes in [`CoverageReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Breakdown {
    /// Human-readable dimension name for the table header.
    pub dimension: &'static str,
    /// One row per cell, in the dimension's fixed order.
    pub rows: Vec<BreakdownRow>,
}

impl Breakdown {
    /// Deterministic fixed-width text table: one line per cell, one
    /// column per outcome class (counts right-aligned under the class
    /// labels), plus a per-cell total.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} breakdown\n", self.dimension));
        out.push_str("cell                  total");
        for class in OutcomeClass::ALL {
            out.push_str(&format!("  {}", class.label()));
        }
        out.push('\n');
        for row in &self.rows {
            let total: u64 = row.histogram.iter().sum();
            out.push_str(&format!("{:<20} {:>6}", row.key, total));
            for class in OutcomeClass::ALL {
                out.push_str(&format!(
                    "  {:>width$}",
                    row.histogram[class.index()],
                    width = class.label().len()
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_matches_hand_computed_values() {
        // k=3, n=10, z=1.96: p̂=0.3, center=0.49208/1.38416, half from
        // √(0.021 + 0.009604) — worked by hand to 5 decimal places.
        let (low, high) = wilson_interval(3, 10, Z95);
        assert!((low - 0.10779).abs() < 1e-5, "low = {low}");
        assert!((high - 0.60323).abs() < 1e-5, "high = {high}");
    }

    #[test]
    fn wilson_extremes_keep_honest_width() {
        // k=0: the lower bound is exactly 0, but the upper bound is not —
        // zero observed hangs do not prove hangs impossible.
        let (low, high) = wilson_interval(0, 100, Z95);
        assert_eq!(low, 0.0);
        assert!(high > 0.03 && high < 0.05, "high = {high}");
        // k=n mirrors it (the bound is 1 up to rounding of the clamp).
        let (low, high) = wilson_interval(100, 100, Z95);
        assert!(low > 0.95 && low < 0.97, "low = {low}");
        assert!(high > 0.9999, "high = {high}");
        // No sample: total ignorance.
        assert_eq!(wilson_interval(0, 0, Z95), (0.0, 1.0));
    }

    #[test]
    fn wilson_is_monotone_in_k() {
        let mut prev = wilson_interval(0, 50, Z95);
        for k in 1..=50 {
            let cur = wilson_interval(k, 50, Z95);
            assert!(cur.0 >= prev.0 && cur.1 >= prev.1, "k={k}");
            prev = cur;
        }
    }

    #[test]
    fn report_always_renders_all_five_classes() {
        let report = CoverageReport::from_histogram([10, 0, 5, 1, 0]);
        assert_eq!(report.n, 16);
        assert_eq!(report.rows.len(), 5);
        assert_eq!(report.count(OutcomeClass::Masked), 10);
        assert_eq!(report.count(OutcomeClass::Hang), 0);
        let text = report.render();
        for class in OutcomeClass::ALL {
            assert!(text.contains(class.label()), "missing {}", class.label());
        }
        // Zero-count rows still carry a non-degenerate upper bound.
        let hang = &report.rows[OutcomeClass::Hang.index()];
        assert_eq!(hang.count, 0);
        assert!(hang.high > 0.0);
    }

    #[test]
    fn render_is_reproducible() {
        let a = CoverageReport::from_histogram([7, 1, 3, 2, 0]).render();
        let b = CoverageReport::from_histogram([7, 1, 3, 2, 0]).render();
        assert_eq!(a, b);
    }

    #[test]
    fn breakdown_renders_every_cell_and_class_column() {
        let breakdown = Breakdown {
            dimension: "outcome x direction",
            rows: vec![
                BreakdownRow {
                    key: "dir_a".to_string(),
                    histogram: [3, 0, 2, 1, 0],
                },
                BreakdownRow {
                    key: "dir_b".to_string(),
                    histogram: [0, 0, 0, 0, 0],
                },
            ],
        };
        let text = breakdown.render();
        assert!(text.starts_with("outcome x direction breakdown\n"));
        for class in OutcomeClass::ALL {
            assert!(text.contains(class.label()), "missing {}", class.label());
        }
        // Zero-draw cells still render, with a zero total.
        let dir_b = text.lines().find(|l| l.starts_with("dir_b")).unwrap();
        assert!(dir_b.contains(" 0"));
        // The per-cell total is the histogram sum.
        let dir_a = text.lines().find(|l| l.starts_with("dir_a")).unwrap();
        assert!(dir_a.contains(" 6"), "line: {dir_a}");
        // Byte-stable: two renders agree.
        assert_eq!(text, breakdown.render());
    }
}
