//! `netfi-sample` — statistical fault-injection sampling with an outcome
//! taxonomy and coverage intervals.
//!
//! The chaos grid (`netfi-nftape::grid`) runs a *hand-picked* set of
//! failure scenarios. This crate answers the complementary question the
//! paper's coverage argument needs: over the injector's *whole* parameter
//! space — arming time, link direction, 32-bit segment offset, bit
//! position, toggle/replace corruption, CRC refresh, control-symbol swaps
//! — what fraction of faults is masked, delivered corrupted, detected by
//! an integrity check, detected by a watchdog, or hangs the system?
//!
//! The pipeline, module by module:
//!
//! - [`space`] draws N injection points from per-point deterministic RNG
//!   substreams, so the draw is independent of worker count and campaign
//!   length.
//! - [`campaign`] runs each point as a bounded fork of one warmed donor
//!   engine (the grid's snapshot/fork machinery), fanned over scoped
//!   workers with byte-identical results for any worker count.
//! - [`mod@classify`] assigns each run one of five outcome classes by
//!   differencing its observability exports and per-layer counters
//!   against a healthy baseline fork.
//! - [`stats`] turns the class histogram into a coverage report with
//!   Wilson 95% intervals — honest bounds even for zero-draw classes.
//!
//! The `bench_injections` binary (in `netfi-bench`) drives a ≥2000-point
//! campaign through this crate and reports the headline injections/sec.

pub mod campaign;
pub mod classify;
pub mod space;
pub mod stats;

pub use campaign::{
    campaign_wire, run_sampled_campaign, sample_warmed, PointRecord, SampleOptions,
    SampledCampaign, ARM_SPAN_NS, SENDS,
};
pub use classify::{classify, OutcomeClass, RunEvidence};
pub use space::{draw_point, window_count, CorruptKind, InjectionPoint, Plane, CONTROL_SWAPS};
pub use stats::{wilson_interval, Breakdown, BreakdownRow, CoverageReport, CoverageRow, Z95};
