//! The sampled parameter space: what one injection point *is*, and how
//! points are drawn.
//!
//! A statistical campaign does not enumerate faults — it draws them. Each
//! [`InjectionPoint`] is one experiment: arm the injector's trigger at a
//! drawn simulated time, on a drawn link direction, against a drawn
//! 32-bit window of the campaign datagram (or a drawn control-symbol
//! swap), with a drawn corruption function and a drawn CRC-refresh
//! setting. The draw is a pure function of `(seed, index)`: point `i` is
//! read from its own [`DetRng`] substream (`DetRng::new(seed).fork(i)`),
//! so growing a campaign from 512 to 2048 points extends it without
//! re-rolling the first 512, and any worker may draw any point without
//! coordination.

use netfi_core::command::DirSelect;
use netfi_phy::ControlSymbol;
use netfi_sim::DetRng;

/// Which datapath the drawn fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plane {
    /// The packet datapath: a 32-bit compare window over the campaign
    /// datagram's wire bytes, corrupted in the FIFO.
    Data,
    /// The control-symbol path: one drawn symbol swap (GAP/STOP/GO/IDLE),
    /// the paper's §4.3.1 fault family.
    Control,
}

/// The drawn corruption function for a data-plane point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// Toggle a single drawn bit of the matched 32-bit segment — never
    /// aliases the UDP one's-complement checksum.
    Toggle,
    /// Replace the matched segment with its two 16-bit halves swapped —
    /// the paper's §4.3.4 aliasing corruption. When the window is aligned
    /// to the datagram's 16-bit word grid the checksum is order-invariant
    /// and the corruption is delivered; misaligned, it is detected.
    WordSwap,
}

/// The nine control-symbol swap rows of the paper's Table 4, in a fixed
/// draw order.
pub const CONTROL_SWAPS: [(ControlSymbol, ControlSymbol); 9] = [
    (ControlSymbol::Stop, ControlSymbol::Idle),
    (ControlSymbol::Stop, ControlSymbol::Gap),
    (ControlSymbol::Stop, ControlSymbol::Go),
    (ControlSymbol::Gap, ControlSymbol::Go),
    (ControlSymbol::Gap, ControlSymbol::Idle),
    (ControlSymbol::Gap, ControlSymbol::Stop),
    (ControlSymbol::Go, ControlSymbol::Idle),
    (ControlSymbol::Go, ControlSymbol::Gap),
    (ControlSymbol::Go, ControlSymbol::Stop),
];

/// One drawn fault-injection experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionPoint {
    /// Position in the campaign (the draw's substream key).
    pub index: u64,
    /// Arming delay, in nanoseconds after the fault stream begins. The
    /// trigger is armed `Once` at this instant over the device's serial
    /// line; draws beyond the stream's tail are expected to stay masked.
    pub t_arm_ns: u64,
    /// Which link direction of the intercepted host the trigger watches.
    pub dir: DirSelect,
    /// Data-segment or control-symbol fault.
    pub plane: Plane,
    /// Byte offset of the 32-bit compare window into the campaign
    /// datagram's wire image (header + payload).
    pub offset: usize,
    /// Bit position (0–31) toggled by [`CorruptKind::Toggle`].
    pub bit: u32,
    /// The drawn corruption function.
    pub mode: CorruptKind,
    /// Whether the device recomputes the link CRC-8 after corrupting, so
    /// the fault survives the link layer.
    pub crc_refresh: bool,
    /// Index into [`CONTROL_SWAPS`] for control-plane points.
    pub control_swap: usize,
}

impl InjectionPoint {
    /// The control-symbol pair a control-plane point swaps.
    pub fn swap(&self) -> (ControlSymbol, ControlSymbol) {
        CONTROL_SWAPS[self.control_swap % CONTROL_SWAPS.len()]
    }
}

/// Number of distinct 32-bit windows over a wire image of `len` bytes.
pub fn window_count(len: usize) -> usize {
    len.saturating_sub(3)
}

/// Draws point `index` of the campaign keyed by `seed`, over a datagram
/// wire image of `wire_len` bytes and an arming window of `arm_span_ns`
/// nanoseconds.
///
/// Every dimension comes from the point's private [`DetRng`] substream in
/// a fixed order, so the draw is independent of worker count, batch size
/// and campaign length.
///
/// # Panics
///
/// Panics if `wire_len < 4` or `arm_span_ns == 0`.
pub fn draw_point(seed: u64, index: u64, wire_len: usize, arm_span_ns: u64) -> InjectionPoint {
    assert!(wire_len >= 4, "wire image too short for a 32-bit window");
    let mut rng = DetRng::new(seed).fork(index);
    // Both directions carry a campaign stream (forward into the
    // intercepted host, reverse out of it), so the direction draw is
    // even; the masked population comes from late arming draws and
    // control swaps whose symbol never occurs.
    let dir = if rng.gen_bool(0.5) {
        DirSelect::B
    } else {
        DirSelect::A
    };
    let plane = if rng.gen_bool(0.75) {
        Plane::Data
    } else {
        Plane::Control
    };
    let offset = rng.gen_index(window_count(wire_len));
    let bit = rng.gen_range(0..32) as u32;
    let mode = if rng.gen_bool(0.5) {
        CorruptKind::Toggle
    } else {
        CorruptKind::WordSwap
    };
    let crc_refresh = rng.gen_bool(0.5);
    let control_swap = rng.gen_index(CONTROL_SWAPS.len());
    let t_arm_ns = rng.gen_range(0..arm_span_ns);
    InjectionPoint {
        index,
        t_arm_ns,
        dir,
        plane,
        offset,
        bit,
        mode,
        crc_refresh,
        control_swap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_is_deterministic_and_index_keyed() {
        let a = draw_point(11, 7, 26, 1_000_000);
        let b = draw_point(11, 7, 26, 1_000_000);
        assert_eq!(a, b);
        let c = draw_point(11, 8, 26, 1_000_000);
        assert_ne!(a, c);
    }

    #[test]
    fn growing_the_campaign_preserves_early_points() {
        // Points are substream-keyed, not drawn from one shared stream:
        // the first 16 points of a 512-point campaign are the 16-point
        // campaign.
        let small: Vec<_> = (0..16).map(|i| draw_point(3, i, 26, 1_000)).collect();
        let large: Vec<_> = (0..512).map(|i| draw_point(3, i, 26, 1_000)).collect();
        assert_eq!(small[..], large[..16]);
    }

    #[test]
    fn draws_cover_the_space() {
        let points: Vec<_> = (0..512).map(|i| draw_point(11, i, 26, 1_000_000)).collect();
        assert!(points.iter().any(|p| p.dir == DirSelect::A));
        assert!(points.iter().any(|p| p.dir == DirSelect::B));
        assert!(points.iter().any(|p| p.plane == Plane::Control));
        assert!(points.iter().any(|p| p.mode == CorruptKind::Toggle));
        assert!(points.iter().any(|p| p.mode == CorruptKind::WordSwap));
        assert!(points.iter().any(|p| p.crc_refresh));
        assert!(points.iter().any(|p| !p.crc_refresh));
        // Every window offset of the 26-byte campaign datagram is drawn.
        let mut seen = [false; 23];
        for p in &points {
            seen[p.offset] = true;
            assert!(p.bit < 32);
            assert!(p.t_arm_ns < 1_000_000);
        }
        assert!(seen.iter().all(|&s| s), "offsets missed: {seen:?}");
    }
}
